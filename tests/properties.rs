//! Property-based tests (proptest) for cross-cutting invariants.

use lammps_kk::core::atom::AtomData;
use lammps_kk::core::comm::build_ghosts;
use lammps_kk::core::domain::Domain;
use lammps_kk::core::neighbor::{NeighborList, NeighborSettings};
use lammps_kk::gpusim::{analytic_hit_rate, CacheConfig, CacheSim, GpuArch, KernelStats};
use lammps_kk::kokkos::{Layout, ScatterMode, ScatterView, Space, View2};
use lammps_kk::snap::cg::clebsch_gordan;
use lammps_kk::snap::context::SnapContext;
use lammps_kk::snap::hyper::HyperParams;
use proptest::prelude::*;

/// Rz(a) · Ry(b) · Rx(g) applied to `v`.
fn rotate(v: [f64; 3], euler: (f64, f64, f64)) -> [f64; 3] {
    let (a, b, g) = euler;
    let (sa, ca) = a.sin_cos();
    let (sb, cb) = b.sin_cos();
    let (sg, cg) = g.sin_cos();
    let rx = [v[0], cg * v[1] - sg * v[2], sg * v[1] + cg * v[2]];
    let ry = [cb * rx[0] + sb * rx[2], rx[1], -sb * rx[0] + cb * rx[2]];
    [ca * ry[0] - sa * ry[1], sa * ry[0] + ca * ry[1], ry[2]]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wrapping any point into any box is idempotent and lands inside.
    #[test]
    fn pbc_wrap_idempotent(
        x in prop::array::uniform3(-1e3f64..1e3),
        lo in prop::array::uniform3(-10f64..10.0),
        ext in prop::array::uniform3(0.5f64..50.0),
    ) {
        let hi = [lo[0] + ext[0], lo[1] + ext[1], lo[2] + ext[2]];
        let d = Domain::new(lo, hi);
        let mut p = x;
        d.wrap(&mut p);
        prop_assert!(d.contains(&p));
        let once = p;
        d.wrap(&mut p);
        prop_assert_eq!(once, p);
    }

    /// Minimum-image displacement components never exceed half a box.
    #[test]
    fn min_image_within_half_box(
        a in prop::array::uniform3(0f64..20.0),
        b in prop::array::uniform3(0f64..20.0),
        l in 1.0f64..20.0,
    ) {
        let d = Domain::cubic(l);
        let mut pa = a;
        let mut pb = b;
        d.wrap(&mut pa);
        d.wrap(&mut pb);
        let disp = d.min_image(&pa, &pb);
        for dk in disp {
            prop_assert!(dk.abs() <= 0.5 * l + 1e-9);
        }
    }

    /// View layout round-trip: Right→Left→Right copy preserves content.
    #[test]
    fn view_layout_round_trip(
        rows in 1usize..20,
        cols in 1usize..20,
        seed in 0u64..1000,
    ) {
        let mut right = View2::<f64>::new("r", [rows, cols]);
        let mut s = seed;
        for i in 0..rows {
            for j in 0..cols {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                right.set([i, j], (s >> 11) as f64);
            }
        }
        let mut left = View2::<f64>::with_layout("l", [rows, cols], Layout::Left);
        left.copy_from(&right);
        let mut back = View2::<f64>::new("b", [rows, cols]);
        back.copy_from(&left);
        prop_assert_eq!(right.as_slice(), back.as_slice());
    }

    /// All ScatterView modes yield identical results for any add set.
    #[test]
    fn scatter_modes_equivalent(adds in prop::collection::vec((0usize..32, 0usize..3, -5f64..5.0), 1..200)) {
        let mut results = Vec::new();
        for mode in [ScatterMode::Atomic, ScatterMode::Duplicated, ScatterMode::Sequential] {
            let mut sv = ScatterView::new(32, 3, mode);
            for &(i, c, v) in &adds {
                sv.add(i, c, v);
            }
            let mut out = vec![0.0; 96];
            sv.contribute_into(&mut out);
            results.push(out);
        }
        for w in results.windows(2) {
            for (a, b) in w[0].iter().zip(&w[1]) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    /// Full neighbor lists are symmetric over local pairs and count
    /// exactly twice the half-list pairs, for random dilute gases.
    #[test]
    fn neighbor_list_full_half_duality(seed in 0u64..500) {
        let l = 12.0;
        let n = 40usize;
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(7);
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let positions: Vec<[f64; 3]> = (0..n).map(|_| [rnd() * l, rnd() * l, rnd() * l]).collect();
        let domain = Domain::cubic(l);
        let settings_half = NeighborSettings::new(2.5, 0.3, true);
        let settings_full = NeighborSettings::new(2.5, 0.3, false);
        let mut atoms = AtomData::from_positions(&positions);
        build_ghosts(&mut atoms, &domain, settings_half.cutneigh());
        let half = NeighborList::build(&atoms, &domain, &settings_half, &Space::Serial);
        let full = NeighborList::build(&atoms, &domain, &settings_full, &Space::Serial);
        prop_assert_eq!(full.total_pairs, 2 * half.total_pairs);
    }

    /// Clebsch-Gordan symmetry: C^{jm}_{j1 m1 j2 m2} =
    /// (−1)^{j1+j2−j} C^{jm}_{j2 m2 j1 m1} (doubled integers).
    #[test]
    fn cg_exchange_symmetry(j1 in 0i64..5, j2 in 0i64..5, j in 0i64..8) {
        let (j1, j2, j) = (2 * j1, 2 * j2, 2 * j); // integer spins
        for m1 in (-j1..=j1).step_by(2) {
            for m2 in (-j2..=j2).step_by(2) {
                let a = clebsch_gordan(j1, m1, j2, m2, j, m1 + m2);
                let b = clebsch_gordan(j2, m2, j1, m1, j, m1 + m2);
                let sign = if ((j1 + j2 - j) / 2) % 2 == 0 { 1.0 } else { -1.0 };
                prop_assert!((a - sign * b).abs() < 1e-12);
            }
        }
    }

    /// Cache simulator hit rate is within [0,1] and the analytic model
    /// is monotone in capacity.
    #[test]
    fn cache_model_sane(ws in 1f64..1e6, cap_kb in 1u64..512) {
        let h1 = analytic_hit_rate(ws, (cap_kb * 1024) as f64);
        let h2 = analytic_hit_rate(ws, (cap_kb * 2048) as f64);
        prop_assert!((0.0..=1.0).contains(&h1));
        prop_assert!(h2 >= h1 - 1e-12);
        let mut sim = CacheSim::new(cap_kb * 1024, 8, 64);
        for i in 0..200u64 {
            sim.access(i * 64 % (ws as u64 + 64));
        }
        prop_assert!(sim.hit_rate() >= 0.0 && sim.hit_rate() <= 1.0);
    }

    /// Kernel cost model: time is monotone non-decreasing in flops,
    /// bytes and atomics, on every architecture.
    #[test]
    fn cost_model_monotonic(
        flops in 1e6f64..1e12,
        bytes in 1e6f64..1e11,
        atomics in 0f64..1e9,
    ) {
        for arch in GpuArch::table1() {
            let cfg = CacheConfig::from_carveout(&arch, 0.5);
            let mut k = KernelStats::new("k");
            k.work_items = 1e7;
            k.flops = flops;
            k.dram_bytes = bytes;
            k.atomic_f64_ops = atomics;
            let t0 = k.time_on(&arch, &cfg).seconds;
            let mut k2 = k.clone();
            k2.flops *= 2.0;
            k2.dram_bytes *= 2.0;
            k2.atomic_f64_ops *= 2.0;
            let t1 = k2.time_on(&arch, &cfg).seconds;
            prop_assert!(t1 >= t0);
        }
    }

    /// SNAP bispectrum components are invariant under arbitrary
    /// rotations of the neighborhood, for random neighbor sets, random
    /// Euler angles, and every supported truncation order.
    #[test]
    fn snap_bispectrum_rotation_invariance(
        seed in 0u64..200,
        a in 0.0f64..std::f64::consts::TAU,
        b in 0.0f64..std::f64::consts::PI,
        g in 0.0f64..std::f64::consts::TAU,
        twojmax in prop::sample::select(vec![2usize, 4, 6]),
    ) {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let nneigh = 3 + (seed % 5) as usize;
        let neigh: Vec<[f64; 3]> = (0..nneigh)
            .map(|_| {
                [
                    3.0 * (rnd() - 0.5),
                    3.0 * (rnd() - 0.5),
                    3.0 * (rnd() - 0.5),
                ]
            })
            // Keep neighbors off the origin (undefined direction).
            .map(|v| {
                let r2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
                if r2 < 0.25 {
                    [v[0] + 1.0, v[1], v[2]]
                } else {
                    v
                }
            })
            .collect();
        let ctx = SnapContext::new(
            twojmax,
            HyperParams::default(),
            SnapContext::synthetic_beta(twojmax, 7),
        );
        let mut scratch = ctx.alloc_scratch();
        ctx.compute_ui(&neigh, &mut scratch, 1);
        let b0 = ctx.compute_bi(&scratch);
        let rotated: Vec<[f64; 3]> = neigh.iter().map(|&v| rotate(v, (a, b, g))).collect();
        ctx.compute_ui(&rotated, &mut scratch, 1);
        let b1 = ctx.compute_bi(&scratch);
        for (x, y) in b0.iter().zip(&b1) {
            prop_assert!((x - y).abs() < 1e-8 * x.abs().max(1.0), "{x} vs {y}");
        }
    }

    /// The flattened contraction tables reproduce the direct quadruple
    /// loops bit-for-bit: `compute_bi`/`compute_yi` (table-driven) vs
    /// the retained `compute_bi_direct`/`compute_yi_direct` references,
    /// across random neighbor clouds, every truncation order, and
    /// zero/nonzero β patterns (zero-stripping must not change a single
    /// summation step).
    #[test]
    fn snap_tables_bitwise_match_direct_loops(
        seed in 0u64..100,
        twojmax in prop::sample::select(vec![2usize, 4, 6, 8]),
        beta_mask in 0usize..8,
    ) {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let nneigh = 2 + (seed % 6) as usize;
        let neigh: Vec<[f64; 3]> = (0..nneigh)
            .map(|_| [1.0 + 2.0 * rnd(), 2.0 * rnd() - 1.0, 2.0 * rnd() - 1.0])
            .collect();
        let mut beta = SnapContext::synthetic_beta(twojmax, seed ^ 0x5eed);
        // Zero a β stripe (mask 7 keeps all nonzero) to exercise the
        // adjoint prefilter.
        if beta_mask < 7 {
            for (i, b) in beta.iter_mut().enumerate() {
                if i % 7 == beta_mask {
                    *b = 0.0;
                }
            }
        }
        let ctx = SnapContext::new(twojmax, HyperParams::default(), beta);
        let mut scratch = ctx.alloc_scratch();
        ctx.compute_ui(&neigh, &mut scratch, 1);

        let b_table = ctx.compute_bi(&scratch);
        let b_direct = ctx.compute_bi_direct(&scratch);
        for (t, d) in b_table.iter().zip(&b_direct) {
            prop_assert_eq!(t.to_bits(), d.to_bits(), "bi drifted: {} vs {}", t, d);
        }

        ctx.compute_yi(&mut scratch);
        let y_r = scratch.y_r.clone();
        let y_i = scratch.y_i.clone();
        ctx.compute_yi_direct(&mut scratch);
        for (t, d) in y_r.iter().zip(&scratch.y_r) {
            prop_assert_eq!(t.to_bits(), d.to_bits(), "y_r drifted: {} vs {}", t, d);
        }
        for (t, d) in y_i.iter().zip(&scratch.y_i) {
            prop_assert_eq!(t.to_bits(), d.to_bits(), "y_i drifted: {} vs {}", t, d);
        }
    }

    /// ComputeUi neighbor batching is bit-for-bit irrelevant to the
    /// accumulated U for any batch size.
    #[test]
    fn snap_ui_batching_invariance(seed in 0u64..100, batch in 1usize..9) {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let neigh: Vec<[f64; 3]> = (0..7)
            .map(|_| [1.0 + 2.0 * rnd(), 2.0 * rnd() - 1.0, 2.0 * rnd() - 1.0])
            .collect();
        let ctx = SnapContext::new(4, HyperParams::default(), SnapContext::synthetic_beta(4, 3));
        let mut s1 = ctx.alloc_scratch();
        let mut s2 = ctx.alloc_scratch();
        ctx.compute_ui(&neigh, &mut s1, 1);
        ctx.compute_ui(&neigh, &mut s2, batch);
        for (a, b) in s1.utot_r.iter().zip(&s2.utot_r) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
