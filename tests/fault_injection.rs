//! Chaos tests for the fault-injection + retry/timeout layer under the
//! brick comm path (see `docs/robustness.md`).
//!
//! The determinism contract: for any *recoverable* seed, a rank-parallel
//! run under injected delays, drops, duplicates, reorders, and payload
//! corruptions must produce a final state **bitwise identical** to the
//! fault-free run at the same rank count — and must not grow the
//! message pool after warmup (all retransmit scratch is pooled). For an
//! *unrecoverable* schedule (a permanently dead edge), every rank must
//! return a structured [`CommError`] within the retry budget instead of
//! deadlocking — asserted here under a watchdog.
//!
//! The default tests sweep a handful of seeds at P ∈ {2, 4, 8}; the CI
//! chaos job additionally runs the `#[ignore]`d 16-seed sweep in
//! release (`cargo test --release --test fault_injection -- --include-ignored`).

use lkk_core::prelude::*;
use lkk_perf::faults::diff_runs;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// The fixed seeds the CI chaos matrix sweeps (see `scripts/ci.sh`).
const CI_SEEDS: [u64; 16] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];

fn lj_atoms(temp: f64) -> (AtomData, Domain) {
    let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let mut atoms = AtomData::from_positions(&lat.positions(4, 4, 4));
    create_velocities(&mut atoms, &Units::lj(), temp, 87287);
    (atoms, lat.domain(4, 4, 4))
}

fn lj_pair() -> PairKokkos<LjCut> {
    PairKokkos::with_options(
        LjCut::single_type(1.0, 1.0, 2.5),
        &Space::Serial,
        PairKokkosOptions {
            force_half: Some(true),
            ..Default::default()
        },
    )
}

fn lj_spec(steps: u64) -> RunSpec {
    let (atoms, domain) = lj_atoms(1.44);
    let mut spec = RunSpec::new(&atoms, domain, steps);
    // The pool-growth gate needs a warmup window that sizes the message
    // pools (including the fault-mode provisioning pass).
    spec.warmup_steps = 4;
    spec
}

fn lj_factory(_rank: usize, system: System) -> Simulation {
    Simulation::new(system, Box::new(lj_pair()))
}

/// Run `spec` fault-free at `nranks`, then once per seed with a
/// recoverable fault schedule, asserting every faulted trajectory is
/// bitwise identical and every seed actually injected faults.
fn assert_seeds_bitwise_identical(spec: &RunSpec, nranks: usize, seeds: &[u64]) {
    let spec = spec.clone().comm(CommSpec::Brick {
        ranks: nranks,
        balance: None,
    });
    let reference = spec.run(lj_factory).expect("fault-free reference failed");
    for &seed in seeds {
        let mut faulted_spec = spec.clone();
        faulted_spec.fault = Some(FaultConfig::recoverable(seed));
        let faulted = faulted_spec
            .run(lj_factory)
            .unwrap_or_else(|f| panic!("P={nranks} seed {seed}: recoverable run aborted: {f}"));
        let violations = diff_runs(&reference, &faulted);
        assert!(
            violations.is_empty(),
            "P={nranks} seed {seed}: {violations:?}"
        );
        assert!(
            faulted.fault_stats.injected() > 0,
            "P={nranks} seed {seed}: no faults injected (test has no teeth)"
        );
        assert_eq!(
            faulted.fault_stats.timeouts, 0,
            "P={nranks} seed {seed}: a recoverable seed must never exhaust retries"
        );
    }
}

#[test]
fn recoverable_seeds_reproduce_lj_bitwise_at_2_4_8_ranks() {
    let spec = lj_spec(12);
    for nranks in [2usize, 4, 8] {
        assert_seeds_bitwise_identical(&spec, nranks, &CI_SEEDS[..3]);
    }
}

/// The full CI chaos matrix: every fixed seed at every rank count. Run
/// in release by the chaos job; too slow for the default debug suite.
#[test]
#[ignore = "chaos CI matrix: run with --include-ignored (release)"]
fn ci_seed_matrix_reproduces_lj_bitwise_at_2_4_8_ranks() {
    let spec = lj_spec(12);
    for nranks in [2usize, 4, 8] {
        assert_seeds_bitwise_identical(&spec, nranks, &CI_SEEDS);
    }
}

#[test]
fn recoverable_seeds_reproduce_eam_bitwise() {
    // EAM exercises the forward-scalar exchange (per-atom F'(rho)) on
    // top of the LJ paths — the envelope flow the deferred-error slot
    // in `System::forward_ghost_scalar` protects.
    let steps = 8;
    let params = EamParams::default();
    let lat = Lattice::new(LatticeKind::Fcc, params.r0 * std::f64::consts::SQRT_2);
    let mut atoms = AtomData::from_positions(&lat.positions(3, 3, 3));
    let units = Units::metal();
    create_velocities(&mut atoms, &units, 600.0, 12345);
    let domain = lat.domain(3, 3, 3);
    let mut spec = RunSpec::new(&atoms, domain, steps);
    spec.units = units;
    spec.warmup_steps = 2;

    let factory = |_rank: usize, system: System| {
        Simulation::new(system, Box::new(PairEam::new(EamParams::default())))
    };
    let spec = spec.comm(CommSpec::Brick {
        ranks: 4,
        balance: None,
    });
    let reference = spec.run(factory).expect("fault-free reference failed");
    assert!(
        reference.comm_stats.scalar_msgs > 0,
        "EAM reference exchanged no F' scalars"
    );
    for seed in [5u64, 11] {
        let mut faulted_spec = spec.clone();
        faulted_spec.fault = Some(FaultConfig::recoverable(seed));
        let faulted = faulted_spec
            .run(factory)
            .unwrap_or_else(|f| panic!("EAM seed {seed}: recoverable run aborted: {f}"));
        let violations = diff_runs(&reference, &faulted);
        assert!(violations.is_empty(), "EAM seed {seed}: {violations:?}");
        assert!(faulted.fault_stats.injected() > 0);
    }
}

#[test]
fn message_pool_stays_steady_under_faults() {
    // The steady-state invariant of `tests/rank_equivalence.rs` extends
    // to fault recovery: every retransmit copy, duplicate, reorder
    // pre-send, and parked envelope is pooled scratch, so after warmup
    // (which provisions for the worst-case extras) nothing grows.
    let mut spec = lj_spec(40);
    spec.warmup_steps = 20;
    spec.fault = Some(FaultConfig::recoverable(0xFA57));
    let run = spec
        .comm(CommSpec::Brick {
            ranks: 4,
            balance: None,
        })
        .run(lj_factory)
        .expect("recoverable run aborted");
    assert!(run.comm_grow > 0, "pools never sized themselves");
    assert_eq!(
        run.comm_grow_after_warmup, 0,
        "fault recovery grew the message pool after warmup"
    );
    assert!(run.fault_stats.injected() > 0, "no faults injected");
    assert!(
        run.fault_stats.recovered() > 0,
        "faults injected but no recovery actions recorded"
    );
}

#[test]
fn fault_stats_expose_every_counter() {
    let mut spec = lj_spec(20);
    spec.fault = Some(FaultConfig::recoverable(2));
    let run = spec
        .comm(CommSpec::Brick {
            ranks: 4,
            balance: None,
        })
        .run(lj_factory)
        .expect("recoverable run aborted");
    let stats = run.fault_stats;
    let entries = stats.entries();
    for name in [
        "delays",
        "drops",
        "duplicates",
        "reorders",
        "corruptions",
        "nacks_sent",
        "retransmits",
        "stale_discards",
        "crc_failures",
        "timeouts",
    ] {
        assert!(
            entries.iter().any(|(n, _)| *n == name),
            "fault counter {name} missing from entries(): {entries:?}"
        );
    }
    // ~3% fault rate over 20 steps of 4-rank exchanges hits every
    // injected kind; recovery must at least have discarded stales
    // (duplicates/reorders) and retransmitted (drops/corruptions).
    assert!(stats.injected() > 0);
    assert!(stats.stale_discards > 0, "no stale discards: {stats:?}");
    assert!(stats.retransmits > 0, "no retransmits: {stats:?}");
    assert_eq!(stats.timeouts, 0, "recoverable run timed out somewhere");
}

#[test]
// Audited wall-clock site: lint_allow.toml LKK001 (CI watchdog).
#[allow(clippy::disallowed_methods)]
fn unrecoverable_dead_edge_fails_within_budget_on_all_ranks() {
    // Edge 0→1 goes permanently dead from the first envelope: the
    // receiver's NACKs are answered by nothing (dead-edge drops park no
    // retransmit copy), so rank 1 must exhaust its retries and return a
    // structured timeout — and every other rank must unwind (its own
    // timeout or a disconnect as the failed ranks drop their channels)
    // instead of deadlocking. The watchdog asserts the whole collapse
    // lands well inside a CI-friendly bound.
    let mut spec = lj_spec(12);
    let config = FaultConfig::unrecoverable(7, 0, 1, 0);
    let per_wait_budget_ms = config.policy.budget_ms();
    spec.fault = Some(config);

    let (tx, rx) = mpsc::channel();
    let started = Instant::now();
    let spec = spec.comm(CommSpec::Brick {
        ranks: 4,
        balance: None,
    });
    std::thread::spawn(move || {
        let _ = tx.send(spec.run(lj_factory));
    });
    let result = rx
        .recv_timeout(Duration::from_secs(20))
        .expect("watchdog fired: unrecoverable run deadlocked");
    let elapsed = started.elapsed();

    let failure = match result {
        Ok(_) => panic!("run with a dead edge completed"),
        Err(failure) => failure,
    };
    assert_eq!(failure.nranks, 4);
    assert!(!failure.errors.is_empty(), "no per-rank errors collected");
    // The dead edge's receiver always unwinds — with its own timeout,
    // or with a disconnect if a neighbor (stalled on *its* receives
    // from the stuck rank) exhausted retries first and dropped its
    // channels. Which rank wins that race is timing, but the collapse
    // always *starts* with someone's retry exhaustion.
    assert!(
        failure.errors.iter().any(|(rank, _)| *rank == 1),
        "rank 1 (the dead edge's receiver) reported no error: {failure}"
    );
    let (_, timeout) = failure
        .errors
        .iter()
        .find(|(_, err)| matches!(err, CommError::Timeout { .. }))
        .expect("no rank reported a retry-exhaustion timeout");
    if let CommError::Timeout {
        retries, waited_ms, ..
    } = timeout
    {
        assert!(*retries > 0);
        // One receive's wait stays inside the policy budget (with
        // generous slop for scheduler starvation under parallel test
        // threads).
        assert!(
            *waited_ms <= per_wait_budget_ms * 2 + 500,
            "single wait {waited_ms} ms blew the {per_wait_budget_ms} ms budget"
        );
    }
    for (rank, err) in &failure.errors {
        assert!(
            matches!(
                err,
                CommError::Timeout { .. } | CommError::PeerDisconnected { .. }
            ),
            "rank {rank}: unexpected error kind {err:?}"
        );
    }
    // The collapse is prompt: a handful of per-wait budgets, not a
    // pile-up anywhere near the watchdog.
    assert!(
        elapsed < Duration::from_secs(15),
        "collapse took {elapsed:?}"
    );
    let display = format!("{failure}");
    assert!(
        display.contains("of 4 ranks failed"),
        "CommFailure display lost the rank census: {display}"
    );
}

#[test]
fn fault_counters_reach_the_metrics_registry() {
    // The `comm.fault.*` instants noted by the brick layer sum into
    // per-rank counters in the `lkk-trace` metrics registry — the
    // artifact the CI chaos job uploads.
    use lkk_kokkos::profile;
    use std::sync::Arc;

    let collector = Arc::new(lkk_trace::TraceCollector::deterministic(
        lkk_gpusim::GpuArch::h100(),
    ));
    let id = profile::register_subscriber(collector.clone());
    let mut spec = lj_spec(12);
    spec.fault = Some(FaultConfig::recoverable(1));
    let run = spec
        .comm(CommSpec::Brick {
            ranks: 4,
            balance: None,
        })
        .run(lj_factory);
    profile::unregister_subscriber(id);
    let run = run.expect("recoverable run aborted");
    assert!(run.fault_stats.injected() > 0);

    let metrics = collector.metrics();
    let dump = metrics.to_canonical_json();
    assert!(
        dump.contains("comm.fault."),
        "no comm.fault.* counters in the metrics dump"
    );
    // At least one rank recorded recovery traffic under its own lane
    // root (seed 1 injects drops on several edges).
    let seen = (0..4).any(|r| {
        metrics
            .counter(&format!("rank{r}/comm.fault.nack"))
            .unwrap_or(0.0)
            > 0.0
    });
    assert!(seen, "no per-rank comm.fault.nack counter: {dump}");
}
