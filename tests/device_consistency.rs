//! Functional cross-architecture consistency: the *physics* computed
//! on every simulated device is identical — performance portability
//! means the architecture descriptor changes predicted time, never
//! trajectories. (The KOKKOS package's core promise: single source,
//! same results, on any backend.)

use lammps_kk::core::atom::AtomData;
use lammps_kk::core::lattice::{create_velocities, Lattice, LatticeKind};
use lammps_kk::core::pair::lj::LjCut;
use lammps_kk::core::pair::PairKokkos;
use lammps_kk::core::sim::{Simulation, System};
use lammps_kk::core::units::Units;
use lammps_kk::gpusim::GpuArch;
use lammps_kk::kokkos::Space;

fn melt_on(space: Space) -> (f64, [f64; 3]) {
    let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let mut atoms = AtomData::from_positions(&lat.positions(4, 4, 4));
    create_velocities(&mut atoms, &Units::lj(), 1.44, 20260706);
    let system = System::new(atoms, lat.domain(4, 4, 4), space.clone());
    let pair = PairKokkos::new(LjCut::single_type(1.0, 1.0, 2.5), &space);
    let mut sim = Simulation::new(system, Box::new(pair));
    sim.run(25);
    let e = sim.total_energy();
    (e, sim.system.atoms.pos(100))
}

#[test]
fn every_architecture_computes_identical_physics() {
    let (e_ref, x_ref) = melt_on(Space::Serial);
    for arch in GpuArch::table1() {
        let name = arch.name;
        let (e, x) = melt_on(Space::device(arch));
        assert!(
            (e - e_ref).abs() < 1e-8 * e_ref.abs(),
            "{name}: energy {e} vs {e_ref}"
        );
        for k in 0..3 {
            assert!(
                (x[k] - x_ref[k]).abs() < 1e-8,
                "{name}: trajectory diverged in dim {k}"
            );
        }
    }
}
