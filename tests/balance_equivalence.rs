//! Load balancing must never change the physics.
//!
//! A rebalanced run moves the brick cut planes and migrates atoms to
//! new owners, so every rank sees a different owned set and a
//! different ghost halo than the static run. With the determinism
//! knobs on (canonical neighbor-row order + full lists for LJ,
//! quantized force scatter for SNAP), per-atom trajectories are a
//! pure function of the global atom state — ownership is invisible —
//! so the balanced and static runs must agree *bitwise* on every
//! position, velocity, and force. Reduced energies are summed in a
//! different grouping across decompositions and match only to
//! accumulation-order noise.
//!
//! The lattice is deliberately skewed (a dense slab plus a sparse
//! tail along x) so the static decomposition is badly imbalanced and
//! the balancer has real work to do.

use lkk_core::prelude::*;
use lkk_perf::faults::diff_runs;
use lkk_snap::{PairSnap, SnapKernelConfig, SnapParams};

/// Energy tolerance for reductions whose grouping differs across
/// decompositions (same band as `tests/rank_equivalence.rs`).
const E_TOL: f64 = 1e-12;

/// Elongated fcc LJ box (32x4x4 cells at rho* = 0.8442): the first
/// quarter along x keeps every atom, the rest keeps one in four.
/// 896 atoms, static imbalance ~2.3 at eight ranks.
fn skewed_lj() -> (AtomData, Domain) {
    let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let (nx, ny, nz) = (32, 4, 4);
    let domain = lat.domain(nx, ny, nz);
    let lx = domain.hi[0] - domain.lo[0];
    let kept: Vec<[f64; 3]> = lat
        .positions(nx, ny, nz)
        .into_iter()
        .enumerate()
        .filter(|(i, p)| p[0] - domain.lo[0] < 0.25 * lx || i % 4 == 0)
        .map(|(_, p)| p)
        .collect();
    let mut atoms = AtomData::from_positions(&kept);
    create_velocities(&mut atoms, &Units::lj(), 1.44, 87287);
    (atoms, domain)
}

/// LJ with a full neighbor list (newton off): every rank accumulates
/// its owned forces entirely from its own rows, so no cross-rank sum
/// exists whose order could depend on the decomposition. Canonical
/// row order makes the per-row accumulation decomposition-invariant.
fn lj_full(_rank: usize, system: System) -> Simulation {
    let pair = PairKokkos::with_options(
        LjCut::single_type(1.0, 1.0, 2.5),
        &Space::Serial,
        PairKokkosOptions {
            force_half: Some(false),
            ..Default::default()
        },
    );
    let mut sim = Simulation::new(system, Box::new(pair));
    sim.settings.sort_rows = true;
    sim
}

/// Elongated bcc tungsten box (10x3x3 cells): the first third along x
/// keeps every atom, the rest keeps one in two. 120 atoms.
fn skewed_snap() -> (AtomData, Domain) {
    let lat = Lattice::new(LatticeKind::Bcc, 3.16);
    let (nx, ny, nz) = (10, 3, 3);
    let domain = lat.domain(nx, ny, nz);
    let lx = domain.hi[0] - domain.lo[0];
    let kept: Vec<[f64; 3]> = lat
        .positions(nx, ny, nz)
        .into_iter()
        .enumerate()
        .filter(|(i, p)| p[0] - domain.lo[0] < lx / 3.0 || i % 2 == 0)
        .map(|(_, p)| p)
        .collect();
    let mut atoms = AtomData::from_positions(&kept);
    atoms.mass = vec![183.84];
    create_velocities(&mut atoms, &Units::metal(), 300.0, 4242);
    (atoms, domain)
}

/// SNAP scatters per-pair forces onto ghosts and completes them by
/// reverse communication; quantizing every contribution to a multiple
/// of 2^-32 makes those f64 sums exact, hence order- and
/// decomposition-invariant.
fn snap_quantized(_rank: usize, system: System) -> Simulation {
    let params = SnapParams {
        twojmax: 4,
        rcut: 3.5,
        ..Default::default()
    };
    let pair = PairSnap::new(params, &Space::Serial).with_config(SnapKernelConfig {
        quantize_scatter: true,
        ..Default::default()
    });
    let mut sim = Simulation::new(system, Box::new(pair));
    sim.settings.sort_rows = true;
    sim.dt = 0.0005;
    sim
}

/// Bitwise comparison of final per-atom state (tag order), energies
/// at accumulation-order tolerance.
fn assert_same_trajectory(a: &MultiRankRun, b: &MultiRankRun, what: &str) {
    assert_eq!(a.states.len(), b.states.len(), "{what}: atom count");
    for (sa, sb) in a.states.iter().zip(&b.states) {
        assert_eq!(sa.tag, sb.tag, "{what}: tag order");
        for (field, ra, rb) in [("x", sa.x, sb.x), ("v", sa.v, sb.v), ("f", sa.f, sb.f)] {
            assert_eq!(
                ra.map(f64::to_bits),
                rb.map(f64::to_bits),
                "{what}: tag {} {field} diverged: {ra:?} vs {rb:?}",
                sa.tag
            );
        }
    }
    for (name, ea, eb) in [
        ("e_pair", a.e_pair, b.e_pair),
        ("e_kinetic", a.e_kinetic, b.e_kinetic),
    ] {
        assert!(
            (ea - eb).abs() <= E_TOL * eb.abs().max(1.0),
            "{what}: {name} diverged: {ea} vs {eb}"
        );
    }
}

fn run_pair(
    spec: &RunSpec,
    nranks: usize,
    factory: fn(usize, System) -> Simulation,
) -> (MultiRankRun, MultiRankRun) {
    let run_with = |balance: Option<BalancePolicy>| {
        spec.clone()
            .comm(CommSpec::Brick {
                ranks: nranks,
                balance,
            })
            .run(factory)
            .expect("run failed")
    };
    let static_run = run_with(None);
    let balanced = run_with(Some(BalancePolicy::default()));

    // The balancer actually engaged on the balanced run and stayed
    // silent on the static one (static baselines keep their bytes).
    assert!(
        balanced.comm_stats.rebalances > 0,
        "P={nranks}: balancer never moved the cuts"
    );
    assert!(balanced.comm_stats.balance_msgs > 0);
    assert_eq!(static_run.comm_stats.rebalances, 0);
    assert_eq!(static_run.comm_stats.balance_msgs, 0);
    // Migration storms from rebalancing must not defeat the
    // steady-state allocation invariant.
    assert_eq!(
        balanced.comm_grow_after_warmup, 0,
        "P={nranks}: pools grew after warmup under rebalancing"
    );
    (static_run, balanced)
}

#[test]
fn lj_balanced_matches_static_bitwise_at_2_4_8_ranks() {
    let (atoms, domain) = skewed_lj();
    let mut spec = RunSpec::new(&atoms, domain, 12);
    spec.warmup_steps = 6;
    for nranks in [2usize, 4, 8] {
        let (static_run, balanced) = run_pair(&spec, nranks, lj_full);
        assert_same_trajectory(&static_run, &balanced, &format!("LJ P={nranks}"));
    }
}

#[test]
fn snap_balanced_matches_static_bitwise_at_2_4_8_ranks() {
    let (atoms, domain) = skewed_snap();
    let mut spec = RunSpec::new(&atoms, domain, 6);
    spec.units = Units::metal();
    spec.warmup_steps = 2;
    for nranks in [2usize, 4, 8] {
        let (static_run, balanced) = run_pair(&spec, nranks, snap_quantized);
        assert_same_trajectory(&static_run, &balanced, &format!("SNAP P={nranks}"));
    }
}

#[test]
fn skewed_lattice_rebalancing_cuts_peak_imbalance_at_8_ranks() {
    let (atoms, domain) = skewed_lj();
    let mut spec = RunSpec::new(&atoms, domain, 12);
    spec.warmup_steps = 6;
    let (static_run, balanced) = run_pair(&spec, 8, lj_full);
    let before = static_run.atom_imbalance();
    let after = balanced.atom_imbalance();
    assert!(
        before >= 2.0,
        "skewed lattice not skewed enough: static imbalance {before:.3}"
    );
    assert!(
        after <= 1.15,
        "rebalancing left peak imbalance {after:.3} (static was {before:.3})"
    );
}

#[test]
fn fault_injection_composes_with_rebalancing() {
    // Recoverable faults hit the balance envelopes like any other
    // traffic (CRC + NACK + retransmit), so a faulted balanced run
    // must reproduce the fault-free balanced run bit for bit — the
    // same gate `tests/fault_injection.rs` holds over static runs.
    let (atoms, domain) = skewed_lj();
    let mut spec = RunSpec::new(&atoms, domain, 10).comm(CommSpec::Brick {
        ranks: 4,
        balance: Some(BalancePolicy::default()),
    });
    spec.warmup_steps = 4;
    let reference = spec.clone().run(lj_full).expect("fault-free run failed");
    assert!(reference.comm_stats.rebalances > 0);

    let mut faulted_spec = spec.clone();
    faulted_spec.fault = Some(FaultConfig::recoverable(11));
    let faulted = faulted_spec.run(lj_full).expect("faulted run failed");
    assert!(faulted.fault_stats.injected() > 0, "no faults fired");
    assert!(faulted.comm_stats.rebalances > 0);

    let violations = diff_runs(&reference, &faulted);
    assert!(
        violations.is_empty(),
        "faulted balanced run diverged:\n{}",
        violations.join("\n")
    );
}
