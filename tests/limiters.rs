//! Paper-anchored limiter assertions: §4.3.4 and Appendix C name the
//! binding resource of each top kernel; this test pins the model to
//! those claims so recalibration can't silently drift away from the
//! paper's analysis.

use lammps_kk::core::atom::AtomData;
use lammps_kk::core::comm::build_ghosts;
use lammps_kk::core::lattice::{Lattice, LatticeKind};
use lammps_kk::core::neighbor::{NeighborList, NeighborSettings};
use lammps_kk::core::pair::PairStyle;
use lammps_kk::core::sim::System;
use lammps_kk::core::units::Units;
use lammps_kk::gpusim::cost::Limiter;
use lammps_kk::gpusim::{CacheConfig, GpuArch, KernelStats};
use lammps_kk::kokkos::Space;
use lammps_kk::snap::{PairSnap, SnapParams};

fn snap_stats(arch: GpuArch) -> Vec<KernelStats> {
    let space = Space::device(arch);
    let ctx = space.device_ctx().unwrap().clone();
    let lat = Lattice::new(LatticeKind::Bcc, 3.16);
    let atoms = AtomData::from_positions(&lat.positions(8, 8, 8));
    let mut system =
        System::new(atoms, lat.domain(8, 8, 8), space.clone()).with_units(Units::metal());
    let mut pair = PairSnap::new(SnapParams::default(), &space);
    let settings = NeighborSettings::new(pair.cutoff(), 0.3, false);
    system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
    let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
    let _ = pair.compute(&mut system, &list, true);
    ctx.log.aggregate()
}

fn limiter_of(stats: &[KernelStats], name: &str, arch: &GpuArch) -> Limiter {
    let k = stats.iter().find(|s| s.name == name).unwrap();
    let cfg = CacheConfig::default_for_kernel(
        arch,
        k.scratch_bytes_per_team,
        k.threads_per_team.max(arch.warp_width),
    );
    k.time_on(arch, &cfg).limiter
}

#[test]
fn snap_kernel_limiters_match_the_papers_analysis() {
    let h100 = GpuArch::h100();
    let stats_h = snap_stats(h100.clone());
    // §4.3.4: "The ComputeYi kernel was limited by L1 cache throughput."
    assert_eq!(
        limiter_of(&stats_h, "ComputeYi", &h100),
        Limiter::L1Throughput,
        "ComputeYi limiter on H100"
    );
    // §4.3.4 after batching: ComputeUi driven "towards double-precision
    // compute" — at the default (unbatched here) config it is
    // atomic/FP64 bound, never bandwidth bound.
    let ui = limiter_of(&stats_h, "ComputeUi", &h100);
    assert!(
        ui == Limiter::Fp64 || ui == Limiter::AtomicThroughput,
        "ComputeUi limiter on H100: {ui:?}"
    );
    // Appendix C.3: SNAP top kernels are "all either FP64 limited or L1
    // throughput limited" on H100.
    for name in ["ComputeUi", "ComputeYi", "ComputeFusedDeidrj"] {
        let l = limiter_of(&stats_h, name, &h100);
        assert!(
            matches!(
                l,
                Limiter::Fp64 | Limiter::L1Throughput | Limiter::AtomicThroughput
            ),
            "{name}: {l:?}"
        );
    }

    // On MI300A the tiny 32 kB L1 spills the U working set: ComputeYi
    // becomes HBM-bound — which is exactly why the paper's Table-2 Yi
    // batching shows no uplift there.
    let mi300a = GpuArch::mi300a();
    let stats_m = snap_stats(mi300a.clone());
    assert_eq!(
        limiter_of(&stats_m, "ComputeYi", &mi300a),
        Limiter::HbmBandwidth,
        "ComputeYi limiter on MI300A"
    );
}

#[test]
fn snap_is_identical_on_h100_and_gh200() {
    // Appendix C.3: "The top kernels of the SNAP potential are all
    // either FP64 limited or L1 throughput limited. The performance of
    // each is identical between H100 and GH200."
    let stats = snap_stats(GpuArch::h100());
    let h100 = GpuArch::h100();
    let gh200 = GpuArch::gh200();
    for name in ["ComputeUi", "ComputeYi", "ComputeFusedDeidrj"] {
        let k = stats.iter().find(|s| s.name == name).unwrap();
        let t_h = {
            let cfg = CacheConfig::default_for_kernel(
                &h100,
                k.scratch_bytes_per_team,
                k.threads_per_team.max(32),
            );
            k.time_on(&h100, &cfg).seconds
        };
        let t_g = {
            let cfg = CacheConfig::default_for_kernel(
                &gh200,
                k.scratch_bytes_per_team,
                k.threads_per_team.max(32),
            );
            k.time_on(&gh200, &cfg).seconds
        };
        assert!(
            ((t_h - t_g) / t_h).abs() < 0.02,
            "{name}: H100 {t_h:.3e} vs GH200 {t_g:.3e}"
        );
    }
}
