//! Cross-crate integration: input scripts driving all three potentials
//! through the full engine (registry → styles → neighbor → comm →
//! integration → thermo), on host and simulated-device spaces.

use lammps_kk::core::input::Lammps;
use lammps_kk::core::style::StyleRegistry;
use lammps_kk::reaxff::PairReaxff;
use lammps_kk::snap::PairSnap;

/// The full registry a downstream user would assemble.
fn full_registry() -> StyleRegistry {
    let mut reg = StyleRegistry::core();
    PairSnap::register(&mut reg);
    PairReaxff::register(&mut reg);
    reg
}

#[test]
fn registry_exposes_all_styles_in_both_forms() {
    let names = full_registry().pair_names();
    for base in ["lj/cut", "morse", "yukawa", "snap", "reaxff"] {
        assert!(names.contains(&base.to_string()), "{base} missing");
        assert!(names.contains(&format!("{base}/kk")), "{base}/kk missing");
    }
}

#[test]
fn lj_script_device_and_host_agree() {
    let base = r#"
        units lj
        lattice fcc 0.8442
        create_box 5 5 5
        create_atoms
        mass 1 1.0
        velocity all create 1.44 12345
        pair_style lj/cut 2.5
        pair_coeff 1 1 1.0 1.0
        fix 1 all nve
        timestep 0.005
        thermo 25
        run 50
    "#;
    let mut host = Lammps::new(full_registry());
    host.run_script(base).unwrap();
    let dev_script = base.replace(
        "pair_style lj/cut 2.5",
        "package kokkos device mi300a\nsuffix kk\npair_style lj/cut 2.5",
    );
    let mut dev = Lammps::new(full_registry());
    dev.run_script(&dev_script).unwrap();
    let e_host = host.sim.as_mut().unwrap().total_energy();
    let e_dev = dev.sim.as_mut().unwrap().total_energy();
    assert!(
        (e_host - e_dev).abs() < 1e-6 * e_host.abs(),
        "host {e_host} vs device {e_dev}"
    );
    // The device run logged kernels for the performance model.
    let sim = dev.sim.as_ref().unwrap();
    assert!(sim.system.space.device_ctx().unwrap().log.len() > 100);
}

#[test]
fn snap_script_runs_under_global_suffix() {
    let script = r#"
        units metal
        lattice bcc 0.1266
        create_box 4 4 4
        create_atoms
        mass 1 183.84
        velocity all create 300.0 777
        suffix kk
        pair_style snap 4 3.5
        timestep 0.0005
        fix 1 all nve
        run 5
    "#;
    let mut lmp = Lammps::new(full_registry());
    lmp.run_script(script).unwrap();
    let sim = lmp.sim.as_mut().unwrap();
    assert_eq!(sim.pair.name(), "snap/kk");
    assert_eq!(sim.system.atoms.nlocal, 128);
    assert!(sim.total_energy().is_finite());
}

#[test]
fn reaxff_script_equilibrates_charges() {
    // HNS-like parameterization is built into the style; build a small
    // CO-like diatomic grid via the lattice commands (types default to
    // 0 = carbon) just to exercise the pipeline end-to-end.
    let script = r#"
        units metal
        atom_types 4
        lattice sc 0.008
        create_box 4 4 4
        create_atoms
        mass 1 12.0
        mass 2 1.0
        mass 3 14.0
        mass 4 16.0
        pair_style reaxff
        timestep 0.0001
        fix 1 all nve
        run 2
    "#;
    let mut lmp = Lammps::new(full_registry());
    lmp.run_script(script).unwrap();
    let sim = lmp.sim.as_ref().unwrap();
    let pair = sim
        .pair
        .as_any()
        .downcast_ref::<PairReaxff>()
        .expect("reaxff style");
    // All same type → all charges zero; QEq still ran.
    assert!(pair.last_charges.iter().all(|q| q.abs() < 1e-8));
}

#[test]
fn simulated_mpi_decomposition_matches_reference() {
    use lammps_kk::core::atom::AtomData;
    use lammps_kk::core::comm::brick::RunSpec;
    use lammps_kk::core::comm::CommSpec;
    use lammps_kk::core::lattice::{Lattice, LatticeKind};
    use lammps_kk::core::pair::lj::LjCut;
    use lammps_kk::core::pair::{PairKokkos, PairKokkosOptions};
    use lammps_kk::core::sim::Simulation;
    use lammps_kk::kokkos::Space;

    // 6³ cells: a 6-rank grid (1×2×3) needs every split dimension at
    // least one ghost cutoff wide and every unsplit dimension at least
    // two — the brick comm layer's minimum-image preconditions.
    let n = 6;
    let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let positions: Vec<[f64; 3]> = lat
        .positions(n, n, n)
        .iter()
        .enumerate()
        .map(|(i, p)| {
            [
                p[0] + 0.03 * ((i % 5) as f64 - 2.0),
                p[1] + 0.03 * ((i % 7) as f64 - 3.0),
                p[2],
            ]
        })
        .collect();
    let atoms = AtomData::from_positions(&positions);
    let spec = RunSpec::new(&atoms, lat.domain(n, n, n), 8);
    let run_at = |nranks: usize| {
        let spec = spec.clone().comm(CommSpec::Brick {
            ranks: nranks,
            balance: None,
        });
        spec.run(|_, system| {
            let pair = PairKokkos::with_options(
                LjCut::single_type(1.0, 1.0, 2.5),
                &Space::Serial,
                PairKokkosOptions {
                    force_half: Some(true),
                    ..Default::default()
                },
            );
            let mut sim = Simulation::new(system, Box::new(pair));
            sim.dt = 0.002;
            sim
        })
        .expect("fault-free run failed")
    };
    let r1 = run_at(1);
    let r6 = run_at(6);
    assert_eq!(r1.states.len(), r6.states.len());
    for (a, b) in r1.states.iter().zip(&r6.states) {
        assert_eq!(a.tag, b.tag);
        for k in 0..3 {
            assert!((a.x[k] - b.x[k]).abs() < 1e-9);
        }
    }
    assert!((r1.e_pair - r6.e_pair).abs() < 1e-8 * r1.e_pair.abs().max(1.0));
    // The per-rank ownership census satellite: 6 ranks cover all atoms.
    assert_eq!(r6.owned_atoms.len(), 6);
    assert_eq!(r6.owned_atoms.iter().sum::<usize>(), positions.len());
    assert!(r6.atom_imbalance() >= 1.0 && r6.pair_time_imbalance() >= 1.0);
}

#[test]
fn write_data_read_data_round_trip_through_scripts() {
    let dir = std::env::temp_dir().join("lkk_data_roundtrip.data");
    let path = dir.to_str().unwrap().to_string();
    let script = format!(
        "units lj\nlattice fcc 0.8442\ncreate_box 4 4 4\ncreate_atoms\nmass 1 1.0\nvelocity all create 1.44 42\npair_style lj/cut 2.5\npair_coeff 1 1 1.0 1.0\nfix 1 all nve\nrun 10\nwrite_data {path}"
    );
    let mut a = Lammps::new(full_registry());
    a.run_script(&script).unwrap();
    let e_a = a.sim.as_mut().unwrap().total_energy();

    // Restart from the data file and evaluate the same state.
    let script_b = format!(
        "units lj\nread_data {path}\npair_style lj/cut 2.5\npair_coeff 1 1 1.0 1.0\nfix 1 all nve\nrun 0"
    );
    let mut b = Lammps::new(full_registry());
    b.run_script(&script_b).unwrap();
    let e_b = b.sim.as_mut().unwrap().total_energy();
    assert!(
        (e_a - e_b).abs() < 1e-9 * e_a.abs(),
        "restart energy {e_b} vs {e_a}"
    );
    std::fs::remove_file(&path).ok();
}
