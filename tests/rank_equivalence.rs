//! Rank-count invariance of the brick communication layer.
//!
//! A decomposed run must reproduce the single-rank trajectory: the
//! forward path replays the exact ghost arithmetic of the single-rank
//! build (raw owner bits + stored shift), so positions, velocities,
//! forces, and reduced energies of a 2/4/8-rank run are compared
//! against one rank at 1e-12 — float-accumulation-order noise only.
//! The migration stress test drives atoms across brick corners every
//! few steps and checks conservation plus the steady-state invariant:
//! after warmup, no pool in the exchange path grows.

use lkk_core::prelude::*;

const TOL: f64 = 1e-12;

fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
    assert!(
        (a - b).abs() <= tol * b.abs().max(1.0),
        "{what}: {a} vs {b} (diff {:.3e})",
        (a - b).abs()
    );
}

/// Per-atom state of a single-rank run, in tag order, plus the final
/// energies — the reference every rank count is compared against.
struct Reference {
    x: Vec<[f64; 3]>,
    v: Vec<[f64; 3]>,
    f: Vec<[f64; 3]>,
    e_pair: f64,
    e_kinetic: f64,
}

fn single_rank_reference(mut sim: Simulation, steps: u64) -> Reference {
    sim.run(steps);
    sim.system.atoms.sync(&Space::Serial, Mask::ALL);
    let a = &sim.system.atoms;
    let (xh, vh, fh, tagh) = (a.x.h_view(), a.v.h_view(), a.f.h_view(), a.tag.h_view());
    let mut rows: Vec<usize> = (0..a.nlocal).collect();
    rows.sort_by_key(|&i| tagh.at([i]));
    let grab = |view: &dyn Fn(usize, usize) -> f64| -> Vec<[f64; 3]> {
        rows.iter()
            .map(|&i| [view(i, 0), view(i, 1), view(i, 2)])
            .collect()
    };
    Reference {
        x: grab(&|i, k| xh.at([i, k])),
        v: grab(&|i, k| vh.at([i, k])),
        f: grab(&|i, k| fh.at([i, k])),
        e_pair: sim.last_results.energy,
        e_kinetic: compute::kinetic_energy(&sim.system.atoms, &sim.system.units),
    }
}

fn compare(run: &MultiRankRun, reference: &Reference, nranks: usize, tol: f64) {
    assert_eq!(
        run.states.len(),
        reference.x.len(),
        "atom count at P={nranks}"
    );
    for (s, ((rx, rv), rf)) in run
        .states
        .iter()
        .zip(reference.x.iter().zip(&reference.v).zip(&reference.f))
    {
        for k in 0..3 {
            assert_close(
                s.x[k],
                rx[k],
                tol,
                &format!("P={nranks} tag={} x[{k}]", s.tag),
            );
            assert_close(
                s.v[k],
                rv[k],
                tol,
                &format!("P={nranks} tag={} v[{k}]", s.tag),
            );
            assert_close(
                s.f[k],
                rf[k],
                tol,
                &format!("P={nranks} tag={} f[{k}]", s.tag),
            );
        }
    }
    assert_close(
        run.e_pair,
        reference.e_pair,
        tol,
        &format!("P={nranks} e_pair"),
    );
    assert_close(
        run.e_kinetic,
        reference.e_kinetic,
        tol,
        &format!("P={nranks} e_kinetic"),
    );
}

fn lj_atoms(temp: f64) -> (AtomData, Domain) {
    let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let mut atoms = AtomData::from_positions(&lat.positions(4, 4, 4));
    create_velocities(&mut atoms, &Units::lj(), temp, 87287);
    (atoms, lat.domain(4, 4, 4))
}

fn lj_pair() -> PairKokkos<LjCut> {
    // Half list + newton on: cross-rank pairs are computed once and
    // completed by reverse communication.
    PairKokkos::with_options(
        LjCut::single_type(1.0, 1.0, 2.5),
        &Space::Serial,
        PairKokkosOptions {
            force_half: Some(true),
            ..Default::default()
        },
    )
}

#[test]
fn lj_matches_single_rank_at_2_4_8_ranks() {
    let steps = 20;
    let (atoms, domain) = lj_atoms(1.44);
    let spec = RunSpec::new(&atoms, domain, steps);
    let reference = single_rank_reference(
        SimulationBuilder::new(atoms, domain)
            .pair(lj_pair())
            .build(),
        steps,
    );
    for nranks in [2usize, 4, 8] {
        let run = spec
            .clone()
            .comm(CommSpec::Brick {
                ranks: nranks,
                balance: None,
            })
            .run(|_, system| Simulation::new(system, Box::new(lj_pair())))
            .expect("fault-free run failed");
        assert_eq!(run.nranks, nranks);
        compare(&run, &reference, nranks, TOL);
        // Cross-rank traffic actually flowed.
        let stats = run.comm_stats;
        assert!(stats.forward_msgs > 0, "P={nranks}: no forward messages");
        assert!(stats.reverse_msgs > 0, "P={nranks}: no reverse messages");
        assert!(stats.border_msgs > 0, "P={nranks}: no border messages");
    }
}

#[test]
fn eam_matches_single_rank_at_2_4_8_ranks() {
    // EAM adds the per-atom F'(rho) forward-scalar exchange (the
    // paper's Fig. 1 extra communication) on top of the LJ paths. Its
    // two accumulation passes (rho, then forces through F') double the
    // reordering noise per step, so fewer steps keep the comparison
    // inside the 1e-12 band.
    let steps = 10;
    let params = EamParams::default();
    let lat = Lattice::new(LatticeKind::Fcc, params.r0 * std::f64::consts::SQRT_2);
    let mut atoms = AtomData::from_positions(&lat.positions(3, 3, 3));
    let units = Units::metal();
    create_velocities(&mut atoms, &units, 600.0, 12345);
    let domain = lat.domain(3, 3, 3);

    let mut spec = RunSpec::new(&atoms, domain, steps);
    spec.units = units;
    let reference = single_rank_reference(
        SimulationBuilder::new(atoms, domain)
            .units(units)
            .pair(PairEam::new(params))
            .build(),
        steps,
    );
    for nranks in [2usize, 4, 8] {
        let run = spec
            .clone()
            .comm(CommSpec::Brick {
                ranks: nranks,
                balance: None,
            })
            .run(|_, system| Simulation::new(system, Box::new(PairEam::new(params))))
            .expect("fault-free run failed");
        compare(&run, &reference, nranks, TOL);
        assert!(
            run.comm_stats.scalar_msgs > 0,
            "P={nranks}: EAM must exchange F' with ghost owners"
        );
    }
}

#[test]
fn migration_stress_crosses_brick_corners() {
    // Hot system + tight skin: rebuilds (and therefore migrations)
    // every few steps, with atoms crossing faces, edges, and corners of
    // the 2x2x2 brick grid. Accumulated float noise from the extra
    // rebuild churn allows a slightly looser tolerance.
    let steps = 60;
    let (atoms, domain) = lj_atoms(3.0);
    let mut spec = RunSpec::new(&atoms, domain, steps);
    spec.warmup_steps = 0;
    let reference = single_rank_reference(
        SimulationBuilder::new(atoms, domain)
            .pair(lj_pair())
            .skin(0.1)
            .build(),
        steps,
    );
    let run = spec
        .comm(CommSpec::Brick {
            ranks: 8,
            balance: None,
        })
        .run(|_, system| {
            let mut sim = Simulation::new(system, Box::new(lj_pair()));
            sim.settings.skin = 0.1;
            sim
        })
        .expect("fault-free run failed");
    compare(&run, &reference, 8, 1e-9);
    assert!(
        run.comm_stats.migrate_msgs > 0,
        "stress run migrated no atoms"
    );
    // Conservation: every tag exactly once.
    let mut tags: Vec<i64> = run.states.iter().map(|s| s.tag).collect();
    tags.dedup();
    assert_eq!(tags.len(), run.natoms, "duplicate or lost tags");
}

#[test]
fn steady_state_exchanges_do_not_grow_pools() {
    // The zero-steady-state-allocation invariant extends to the comm
    // layer: after a warmup that sizes the message pools, further
    // stepping (including rebuilds and migrations) reuses buffers.
    let (atoms, domain) = lj_atoms(1.44);
    let mut spec = RunSpec::new(&atoms, domain, 40);
    spec.warmup_steps = 20;
    let run = spec
        .comm(CommSpec::Brick {
            ranks: 4,
            balance: None,
        })
        .run(|_, system| Simulation::new(system, Box::new(lj_pair())))
        .expect("fault-free run failed");
    assert!(run.comm_grow > 0, "pools never sized themselves");
    assert_eq!(
        run.comm_grow_after_warmup, 0,
        "comm message pool grew after warmup"
    );
    assert_eq!(
        run.scatter_grow_after_warmup, 0,
        "scatter pool grew after warmup"
    );
}
