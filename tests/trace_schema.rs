//! Schema validation of the `lkk-trace` Chrome trace_event export and
//! byte-stability of the canonical metrics dump.
//!
//! The capture used here is the fast subset of the perf-smoke suite
//! (LJ single-rank plus the `ranks4` rank-parallel workload) — the same
//! code path `perf-smoke --trace/--metrics` runs in CI, and the
//! contract this test pins down:
//!
//! 1. the export is valid JSON with a `traceEvents` array;
//! 2. every lane (`(pid, tid)` pair) has nondecreasing timestamps;
//! 3. `B`/`E` span events are balanced per lane and properly nested;
//! 4. one host lane per simulated rank (`rank0`..`rank3`) plus at
//!    least one simulated-device lane is present;
//! 5. two captures of the same workload produce byte-identical traces
//!    and metrics dumps (the determinism CI's byte-gate relies on);
//! 6. every cross-rank flow id binds exactly one `s` event to one `f`
//!    event on two different lanes — fault-free and under recoverable
//!    fault injection with retransmissions — and the critical-path
//!    report's attribution buckets tile each rank's time exactly.

use lkk_perf::json::{self, Value};
use lkk_perf::report::with_exclusive_run;
use lkk_perf::tracing::capture_with;
use lkk_perf::workloads;
use std::collections::BTreeMap;

fn str_of(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

#[test]
fn trace_event_export_is_schema_valid_and_deterministic() {
    let a = capture_with(vec![workloads::lj()]);
    let b = capture_with(vec![workloads::lj()]);
    assert_eq!(a.chrome_json, b.chrome_json, "trace not byte-stable");
    assert_eq!(a.metrics_json, b.metrics_json, "metrics not byte-stable");

    let doc = json::parse(&a.chrome_json).expect("trace is not valid JSON");
    let Some(Value::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents missing or not an array");
    };
    assert!(!events.is_empty());

    let mut lane_names: Vec<(usize, String)> = Vec::new();
    let mut last_ts: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut open: BTreeMap<(usize, usize), Vec<String>> = BTreeMap::new();
    let mut device_complete = 0usize;

    for ev in events {
        let ph = str_of(ev.get("ph").expect("event without ph"));
        let pid = ev.get("pid").and_then(Value::as_f64).expect("pid") as usize;
        let tid = ev.get("tid").and_then(Value::as_f64).expect("tid") as usize;
        let name = str_of(ev.get("name").expect("event without name")).to_string();
        match ph {
            "M" => {
                if name == "thread_name" {
                    let lane = str_of(ev.get("args").unwrap().get("name").unwrap());
                    lane_names.push((pid, lane.to_string()));
                }
            }
            "B" | "E" | "X" | "i" | "C" | "s" | "f" => {
                let ts = ev.get("ts").and_then(Value::as_f64).expect("ts");
                let key = (pid, tid);
                let prev = last_ts.insert(key, ts).unwrap_or(f64::NEG_INFINITY);
                assert!(
                    ts >= prev,
                    "timestamps regress on lane {key:?}: {prev} -> {ts}"
                );
                match ph {
                    "B" => open.entry(key).or_default().push(name),
                    "E" => {
                        let top = open
                            .entry(key)
                            .or_default()
                            .pop()
                            .unwrap_or_else(|| panic!("unbalanced E {name:?} on lane {key:?}"));
                        assert_eq!(top, name, "mis-nested span on lane {key:?}");
                    }
                    "X" => {
                        assert_eq!(pid, 1, "complete events only on the device process");
                        assert!(
                            ev.get("dur").and_then(Value::as_f64).unwrap_or(-1.0) >= 0.0,
                            "X event without a duration"
                        );
                        device_complete += 1;
                    }
                    _ => {}
                }
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }

    for (lane, stack) in &open {
        assert!(stack.is_empty(), "lane {lane:?} left spans open: {stack:?}");
    }
    for rank in 0..4 {
        let want = format!("rank{rank}");
        assert!(
            lane_names.iter().any(|(pid, n)| *pid == 0 && *n == want),
            "missing host lane {want}; lanes: {lane_names:?}"
        );
    }
    assert!(
        lane_names.iter().any(|(pid, _)| *pid == 1),
        "no simulated-device lane; lanes: {lane_names:?}"
    );
    assert!(device_complete > 0, "no predicted device events");

    // The comm-phase spans from the brick layer made it to the rank
    // lanes (gated instrumentation actually fired under the collector).
    for needle in ["\"pack\"", "\"unpack\"", "\"recv\""] {
        assert!(
            a.chrome_json.contains(needle),
            "trace missing comm phase {needle}"
        );
    }

    // The rank workloads stamp every exchange with a flow pair.
    let nflows = assert_flow_pairing(&a.chrome_json);
    assert!(nflows > 0, "no flow events in the rank-parallel capture");
}

/// Parse a Chrome trace export and assert the flow-event contract:
/// every flow id appears exactly once as `s` and once as `f`, on two
/// *different* lanes (a message never flows to its own sender), with
/// `cat: "comm"`. Returns the number of distinct flow ids.
fn assert_flow_pairing(chrome_json: &str) -> usize {
    let doc = json::parse(chrome_json).expect("trace is not valid JSON");
    let Some(Value::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents missing or not an array");
    };
    // id → (`s` lanes, `f` lanes), each lane a `(pid, tid)` pair.
    type Lane = (usize, usize);
    let mut flows: BTreeMap<u64, (Vec<Lane>, Vec<Lane>)> = BTreeMap::new();
    for ev in events {
        let ph = str_of(ev.get("ph").expect("event without ph"));
        if ph != "s" && ph != "f" {
            continue;
        }
        let pid = ev.get("pid").and_then(Value::as_f64).expect("pid") as usize;
        let tid = ev.get("tid").and_then(Value::as_f64).expect("tid") as usize;
        let id = ev
            .get("id")
            .and_then(Value::as_f64)
            .expect("flow without id") as u64;
        assert_eq!(
            ev.get("cat").map(str_of),
            Some("comm"),
            "flow event without cat: comm"
        );
        let entry = flows.entry(id).or_default();
        if ph == "s" {
            entry.0.push((pid, tid));
        } else {
            assert_eq!(
                ev.get("bp").map(str_of),
                Some("e"),
                "flow end without bp: e"
            );
            entry.1.push((pid, tid));
        }
    }
    for (id, (starts, finishes)) in &flows {
        assert_eq!(starts.len(), 1, "flow {id:#x} has {} starts", starts.len());
        assert_eq!(
            finishes.len(),
            1,
            "flow {id:#x} has {} finishes",
            finishes.len()
        );
        assert_ne!(
            starts[0], finishes[0],
            "flow {id:#x} starts and finishes on the same lane"
        );
    }
    flows.len()
}

#[test]
fn metrics_dump_parses_and_carries_the_rank_census() {
    let cap = capture_with(vec![workloads::lj()]);
    let doc = json::parse(&cap.metrics_json).expect("metrics dump is not valid JSON");
    assert_eq!(doc.get("schema").and_then(Value::as_f64), Some(1.0));

    let gauges = doc.get("gauges").expect("gauges section");
    for rank in 0..4 {
        let key = format!("ranks4/rank{rank}/owned_atoms");
        assert!(
            gauges.get(&key).and_then(Value::as_f64).unwrap_or(0.0) > 0.0,
            "missing per-rank census gauge {key}"
        );
    }
    assert!(gauges.get("ranks4/atom_imbalance").and_then(Value::as_f64) >= Some(1.0));
    assert_eq!(
        gauges
            .get("ranks4/comm/pool_grow_after_warmup")
            .and_then(Value::as_f64),
        Some(0.0),
        "steady-state exchange allocated"
    );

    // The histogram of per-rank ownership has one observation per rank.
    let hist = doc
        .get("histograms")
        .and_then(|h| h.get("ranks4/owned_atoms"))
        .expect("ownership histogram");
    assert_eq!(hist.get("count").and_then(Value::as_f64), Some(4.0));
}

/// The fissioned SNAP pipeline must surface its three stages as
/// distinct spans in the timeline (ISSUE 7: "ComputeUi / ComputeYi /
/// ComputeDeidrj appear as distinct spans in the Perfetto trace"), and
/// the contraction-table shape counters must land in the metrics dump.
#[test]
fn snap_stage_fission_emits_distinct_spans() {
    let cap = capture_with(vec![workloads::snap()]);
    let doc = json::parse(&cap.chrome_json).expect("trace is not valid JSON");
    let Some(Value::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents missing or not an array");
    };
    for stage in ["ComputeUi", "ComputeYi", "ComputeDeidrj"] {
        let begins = events
            .iter()
            .filter(|ev| {
                ev.get("ph").map(str_of) == Some("B") && ev.get("name").map(str_of) == Some(stage)
            })
            .count();
        assert!(begins > 0, "no B span named {stage} in the snap trace");
    }
    for counter in [
        "snap.table.items",
        "snap.table.pairs",
        "snap.table.y_items",
        "snap.table.y_scatters",
        "snap.table.builds",
    ] {
        assert!(
            cap.metrics_json.contains(counter),
            "metrics dump missing {counter}"
        );
    }
}

/// Parse a Chrome trace export and assert every lane's `B`/`E` spans
/// are balanced and properly nested. Returns the thread-lane names.
fn assert_balanced_lanes(chrome_json: &str) -> Vec<String> {
    let doc = json::parse(chrome_json).expect("trace is not valid JSON");
    let Some(Value::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents missing or not an array");
    };
    let mut lanes = Vec::new();
    let mut open: BTreeMap<(usize, usize), Vec<String>> = BTreeMap::new();
    for ev in events {
        let ph = str_of(ev.get("ph").expect("event without ph"));
        let pid = ev.get("pid").and_then(Value::as_f64).expect("pid") as usize;
        let tid = ev.get("tid").and_then(Value::as_f64).expect("tid") as usize;
        let name = str_of(ev.get("name").expect("event without name")).to_string();
        match ph {
            "M" if name == "thread_name" => {
                lanes.push(str_of(ev.get("args").unwrap().get("name").unwrap()).to_string());
            }
            "B" => open.entry((pid, tid)).or_default().push(name),
            "E" => {
                let top = open
                    .entry((pid, tid))
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("unbalanced E {name:?} on lane ({pid},{tid})"));
                assert_eq!(top, name, "mis-nested span on lane ({pid},{tid})");
            }
            _ => {}
        }
    }
    for (lane, stack) in &open {
        assert!(
            stack.is_empty(),
            "lane {lane:?} left spans open after abort: {stack:?}"
        );
    }
    lanes
}

/// A mid-phase communication abort (unrecoverable dead edge) must not
/// leave dangling `B` events on any rank lane: every `RegionGuard` on
/// the error path unwinds through `?`, closing its span, on every rank
/// — the fault-path audit of the trace layer.
#[test]
fn comm_abort_leaves_balanced_spans_on_every_rank_lane() {
    use lkk_core::prelude::FaultConfig;
    use lkk_kokkos::profile;
    use std::sync::Arc;

    let (chrome, metrics) = with_exclusive_run(|| {
        let collector = Arc::new(lkk_trace::TraceCollector::deterministic(
            lkk_gpusim::GpuArch::h100(),
        ));
        let id = profile::register_subscriber(collector.clone());
        let ranks = workloads::ranks4();
        let mut spec = ranks.spec.clone();
        spec.fault = Some(FaultConfig::unrecoverable(7, 0, 1, 0));
        let result = spec.run(ranks.factory);
        profile::unregister_subscriber(id);
        assert!(result.is_err(), "run with a dead edge completed");
        (
            collector.export_chrome(),
            collector.metrics().to_canonical_json(),
        )
    });

    let lanes = assert_balanced_lanes(&chrome);
    for rank in 0..4 {
        let want = format!("rank{rank}");
        assert!(
            lanes.contains(&want),
            "missing rank lane {want} in aborted capture; lanes: {lanes:?}"
        );
    }
    // The abort left its diagnostics in the metrics registry.
    assert!(
        metrics.contains("comm.fault.abort"),
        "abort instant missing from metrics: {metrics}"
    );
    assert!(
        metrics.contains("comm.fault.timeout"),
        "timeout counter missing from metrics: {metrics}"
    );
}

/// Same audit for the panic path: a rank that panics outright (here at
/// factory time) tears down the run via `RankPanicked` + peer
/// disconnects, and every surviving rank's unwind must still close its
/// open spans.
#[test]
fn rank_panic_leaves_balanced_spans_on_surviving_lanes() {
    use lkk_core::prelude::CommError;
    use lkk_kokkos::profile;
    use std::sync::Arc;

    let chrome = with_exclusive_run(|| {
        let collector = Arc::new(lkk_trace::TraceCollector::deterministic(
            lkk_gpusim::GpuArch::h100(),
        ));
        let id = profile::register_subscriber(collector.clone());
        let ranks = workloads::ranks4();
        let factory = ranks.factory;
        // Quiet the expected panic's default backtrace spew.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = ranks.spec.run(move |rank, system| {
            if rank == 2 {
                panic!("injected test panic");
            }
            factory(rank, system)
        });
        std::panic::set_hook(prev_hook);
        profile::unregister_subscriber(id);
        let failure = result.expect_err("run with a panicking rank completed");
        assert!(
            failure.errors.iter().any(|(rank, err)| *rank == 2
                && matches!(err, CommError::RankPanicked { message, .. }
                    if message.contains("injected test panic"))),
            "panic not surfaced as RankPanicked: {failure}"
        );
        collector.export_chrome()
    });
    assert_balanced_lanes(&chrome);
}

/// Under recoverable fault injection the recovery layer retransmits,
/// reorders, and duplicates envelopes — but a retransmission reuses the
/// original `(edge, tag, seq)` identity, duplicate deliveries are
/// discarded before the flow end fires, and dropped copies simply delay
/// it. So even a faulted timeline must keep every exported flow id
/// singly bound (one `s`, one `f`, different lanes), with spans still
/// balanced on every rank lane.
#[test]
fn faulted_runs_keep_flows_singly_bound_across_retransmissions() {
    use lkk_core::prelude::FaultConfig;
    use lkk_kokkos::profile;
    use std::sync::Arc;

    let mut saw_retransmit = false;
    for seed in [1u64, 2, 3] {
        let (chrome, metrics) = with_exclusive_run(|| {
            let collector = Arc::new(lkk_trace::TraceCollector::deterministic(
                lkk_gpusim::GpuArch::h100(),
            ));
            let id = profile::register_subscriber(collector.clone());
            let ranks = workloads::ranks4();
            let mut spec = ranks.spec.clone();
            spec.fault = Some(FaultConfig::recoverable(seed));
            let run = spec.run(ranks.factory);
            profile::unregister_subscriber(id);
            run.expect("recoverable faulted run failed");
            (
                collector.export_chrome(),
                collector.metrics().to_canonical_json(),
            )
        });
        assert_balanced_lanes(&chrome);
        let nflows = assert_flow_pairing(&chrome);
        assert!(nflows > 0, "seed {seed}: no flows in faulted capture");
        assert!(
            metrics.contains("comm.fault."),
            "seed {seed}: no faults injected — sweep is vacuous"
        );
        saw_retransmit |= metrics.contains("comm.fault.retransmit");
    }
    assert!(
        saw_retransmit,
        "no seed in the sweep produced a retransmission; pick other seeds"
    );
}

/// The critical-path analyzer's exactness contract over a real
/// rank-parallel run: on every rank the six attribution buckets sum to
/// the run's total step time identically, and the canonical report is
/// byte-stable across two captures in deterministic mode (what the
/// `perf-smoke --check-report` byte-gate relies on).
#[test]
fn critical_path_buckets_tile_rank_time_and_report_is_byte_stable() {
    use lkk_kokkos::profile;
    use std::sync::Arc;

    let capture = || {
        with_exclusive_run(|| {
            let collector = Arc::new(lkk_trace::TraceCollector::deterministic(
                lkk_gpusim::GpuArch::h100(),
            ));
            let id = profile::register_subscriber(collector.clone());
            let ranks = workloads::ranks4();
            let run = ranks.spec.run(ranks.factory);
            profile::unregister_subscriber(id);
            run.expect("fault-free rank-parallel run failed");
            collector.critical_path()
        })
    };

    let report = capture();
    assert_eq!(report.lanes.len(), 4);
    assert!(report.nsteps > 0);
    assert!(report.flows_complete > 0);
    assert_eq!(report.flows_dangling, 0, "dangling flows in a clean run");
    for rank in &report.ranks {
        let sum: f64 = rank.entries().iter().map(|(_, v)| *v).sum();
        assert_eq!(
            sum, report.total_time,
            "{}: buckets do not tile the run's step time",
            rank.lane
        );
        assert_eq!(sum, rank.total(), "{}: entries() != total()", rank.lane);
        assert_eq!(rank.retry, 0.0, "{}: retry time without faults", rank.lane);
    }
    // Every step's critical path is non-empty and its weight matches
    // the sum of its spans.
    for step in &report.steps {
        assert!(
            !step.path.is_empty(),
            "step {} has an empty path",
            step.index
        );
        let w: f64 = step.path.iter().map(|s| s.duration).sum();
        assert_eq!(
            w, step.critical,
            "step {}: path weight mismatch",
            step.index
        );
    }

    let again = capture();
    assert_eq!(
        report.to_canonical_json(),
        again.to_canonical_json(),
        "critical-path report not byte-stable in deterministic mode"
    );
}
