//! Validate the `lkk-machine` analytic halo model against traffic
//! measured from functional multi-rank runs.
//!
//! The scaling model (Figures 6-7) charges each rank
//! `CommProfile::analytic_halo(n)` bytes and messages per step — a
//! face-only surface-to-volume estimate. The brick comm layer counts
//! what is actually sent, so the two must agree to within the known
//! geometric slack: the model ignores edge/corner ghosts (measured
//! runs high on bytes) and assumes a 12-message stencil regardless of
//! how many distinct peer ranks the grid collapses to (measured runs
//! low on messages at small rank counts).

use lammps_kk::machine::{scaling::presets, MeasuredComm};
use lammps_kk::prelude::*;

#[test]
fn measured_halo_traffic_matches_the_analytic_model_band() {
    // Newton-on half lists send forces back, so the like-for-like
    // analytic volume is twice the preset's forward-only 24 B/atom.
    let mut comm = presets::lj().comm;
    comm.bytes_per_halo_atom = 2.0 * 24.0;

    let steps = 10u64;
    let cells = 8;
    let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let mut atoms = AtomData::from_positions(&lat.positions(cells, cells, cells));
    create_velocities(&mut atoms, &Units::lj(), 1.44, 87287);
    let spec = RunSpec::new(&atoms, lat.domain(cells, cells, cells), steps);

    for ranks in [4usize, 8] {
        let run = spec
            .clone()
            .comm(CommSpec::Brick {
                ranks,
                balance: None,
            })
            .run(|_, system| {
                let pair = PairKokkos::with_options(
                    LjCut::single_type(1.0, 1.0, 2.5),
                    &Space::Serial,
                    PairKokkosOptions {
                        force_half: Some(true),
                        ..Default::default()
                    },
                );
                Simulation::new(system, Box::new(pair))
            })
            .expect("fault-free run failed");
        let s = run.comm_stats;
        let per_rank_step = ranks as f64 * steps as f64;
        let cmp = comm.compare_measured(&MeasuredComm {
            ranks: ranks as f64,
            atoms_per_rank: run.natoms as f64 / ranks as f64,
            halo_bytes_per_rank_step: (s.forward_bytes + s.reverse_bytes) as f64 / per_rank_step,
            halo_msgs_per_rank_step: (s.forward_msgs + s.reverse_msgs) as f64 / per_rank_step,
        });
        assert!(
            cmp.bytes_ratio > 1.0 && cmp.bytes_ratio < 4.0,
            "P={ranks}: measured/analytic halo bytes {:.2} outside (1, 4): \
             measured {:.0}, analytic {:.0}",
            cmp.bytes_ratio,
            cmp.measured_bytes,
            cmp.analytic_bytes
        );
        assert!(
            cmp.msgs_ratio > 0.1 && cmp.msgs_ratio < 4.0,
            "P={ranks}: measured/analytic halo messages {:.2} outside (0.1, 4)",
            cmp.msgs_ratio
        );
    }
}
