//! Validation of the analytic cache model against the trace-driven
//! simulator on a *real* workload: the address stream of the LJ force
//! kernel (own position + neighbor positions, in neighbor-list order).
//!
//! This is the bridge that justifies using the fast analytic
//! `analytic_hit_rate` inside the figure harnesses: on the actual
//! access pattern, the two agree on the ordering and rough magnitude of
//! hit rates across cache sizes, including the spatial-sorting effect.

use lammps_kk::core::atom::AtomData;
use lammps_kk::core::comm::build_ghosts;
use lammps_kk::core::lattice::{Lattice, LatticeKind};
use lammps_kk::core::neighbor::{spatial_sort, NeighborList, NeighborSettings};
use lammps_kk::gpusim::{analytic_hit_rate, CacheSim};
use lammps_kk::kokkos::Space;

/// Replay the LJ force kernel's x-array reads through a cache and
/// report the hit rate (skipping the cold first block).
///
/// GPU-faithful ordering: an SM runs ~`block` threads concurrently,
/// each handling one atom, advancing through neighbor slots roughly in
/// lock-step. We therefore interleave the per-atom streams slot-major
/// (all atoms' slot-0 neighbor, then slot 1, ...), which is what makes
/// the *union* of the block's neighborhoods the working set — a serial
/// atom-by-atom replay would see only each atom's own tiny stream.
fn replay_hit_rate(list: &NeighborList, capacity: u64, block: usize) -> f64 {
    let mut sim = CacheSim::new(capacity, 8, 64);
    // Warm up on one block, then measure over several.
    let mut measured_blocks = 0;
    let mut b = 0;
    while measured_blocks < 8 && (b + 1) * block <= list.nlocal {
        if b == 1 {
            sim.reset();
        }
        let lo = b * block;
        let hi = lo + block;
        let max_nn = (lo..hi)
            .map(|i| list.numneigh.at([i]) as usize)
            .max()
            .unwrap();
        for i in lo..hi {
            sim.access_range(i as u64 * 24, 24);
        }
        for s in 0..max_nn {
            for i in lo..hi {
                if s < list.numneigh.at([i]) as usize {
                    let j = list.neighbors.at([i, s]) as u64;
                    sim.access_range(j * 24, 24);
                }
            }
        }
        if b >= 1 {
            measured_blocks += 1;
        }
        b += 1;
    }
    sim.hit_rate()
}

#[test]
fn analytic_model_tracks_trace_simulation_on_lj_access_pattern() {
    let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let mut atoms = AtomData::from_positions(&lat.positions(12, 12, 12));
    let domain = lat.domain(12, 12, 12);
    let settings = NeighborSettings::new(2.5, 0.3, false);
    // Spatially sorted atoms: the GPU-realistic layout.
    spatial_sort(&mut atoms, &domain, settings.cutneigh());
    build_ghosts(&mut atoms, &domain, settings.cutneigh());
    let list = NeighborList::build(&atoms, &domain, &settings, &Space::Threads);

    let block = 2048;
    let ws = list.working_set_bytes(block);
    assert!(ws > 16.0 * 1024.0, "working set suspiciously small: {ws}");

    for capacity_kib in [16u64, 64, 256] {
        let cap = capacity_kib * 1024;
        let simulated = replay_hit_rate(&list, cap, block);
        // The trace also enjoys 64-byte-line *spatial* locality (three
        // 24-byte coordinate triples share a line, and sorted neighbor
        // ids are nearly contiguous), worth ~0.45 hit rate even when
        // the reuse working set vastly exceeds capacity. The analytic
        // model deliberately prices only the reuse component, so the
        // fair comparison adds that floor.
        let analytic = analytic_hit_rate(ws, cap as f64).max(0.45);
        assert!(
            (simulated - analytic).abs() < 0.35,
            "{capacity_kib} KiB: simulated {simulated:.3} vs analytic {analytic:.3}"
        );
    }
    // Both models agree that more cache → more hits.
    let s16 = replay_hit_rate(&list, 16 * 1024, block);
    let s256 = replay_hit_rate(&list, 256 * 1024, block);
    assert!(s256 > s16 + 0.1, "16K {s16:.3} vs 256K {s256:.3}");
}

#[test]
fn spatial_sorting_improves_trace_hit_rate() {
    let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let mut positions = lat.positions(12, 12, 12);
    // Deterministic shuffle to destroy spatial locality in memory.
    let n = positions.len();
    let mut s = 7u64;
    for i in (1..n).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        positions.swap(i, (s >> 33) as usize % (i + 1));
    }
    let domain = lat.domain(12, 12, 12);
    let settings = NeighborSettings::new(2.5, 0.3, false);

    let hit_for = |pos: &[[f64; 3]], sort: bool| -> f64 {
        let mut atoms = AtomData::from_positions(pos);
        if sort {
            spatial_sort(&mut atoms, &domain, settings.cutneigh());
        }
        build_ghosts(&mut atoms, &domain, settings.cutneigh());
        let list = NeighborList::build(&atoms, &domain, &settings, &Space::Threads);
        replay_hit_rate(&list, 64 * 1024, 2048)
    };
    let shuffled = hit_for(&positions, false);
    let sorted = hit_for(&positions, true);
    assert!(
        sorted > shuffled + 0.1,
        "sorting did not help: shuffled {shuffled:.3}, sorted {sorted:.3}"
    );
}
