#!/usr/bin/env bash
# Run the same gate CI runs, locally. Any failure stops the script.
#
#   scripts/ci.sh
#
# Steps mirror .github/workflows/ci.yml exactly; if you change one,
# change the other.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> perf-smoke --check results/perf_baseline.json"
cargo run --release -p lkk-perf --bin perf-smoke -- --check results/perf_baseline.json

echo "==> perf-smoke --time (advisory wall-clock, not gated)"
cargo run --release -p lkk-perf --bin perf-smoke -- --time --reps 3

echo "==> all green"
