#!/usr/bin/env bash
# Run the same gate CI runs, locally. Any failure stops the script.
#
#   scripts/ci.sh
#
# Steps mirror .github/workflows/ci.yml exactly; if you change one,
# change the other.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# Already covered by the workspace run above; repeated in release as an
# explicit, named gate on the ISSUE-3 acceptance bar (2/4/8-rank
# trajectories ≤1e-12, comm-model validation).
echo "==> rank-equivalence + comm-validation suites (release)"
cargo test --release -q --test rank_equivalence --test comm_validation

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> perf-smoke --check results/perf_baseline.json"
cargo run --release -p lkk-perf --bin perf-smoke -- --check results/perf_baseline.json

echo "==> perf-smoke trace capture + metrics byte-gate"
cargo run --release -p lkk-perf --bin perf-smoke -- \
  --trace results/trace_smoke.json \
  --check-metrics results/metrics_baseline.json

echo "==> perf-smoke --time (advisory wall-clock, not gated)"
cargo run --release -p lkk-perf --bin perf-smoke -- --time --reps 3

echo "==> all green"
