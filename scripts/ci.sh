#!/usr/bin/env bash
# Run the same gate CI runs, locally. Any failure stops the script.
#
#   scripts/ci.sh
#
# Steps mirror the jobs in .github/workflows/ci.yml (build, test,
# lint-invariants, lint, perf, chaos) run back-to-back; if you change
# one, change the other. The sanitizer lanes of
# .github/workflows/sanitizers.yml run at the end when a nightly
# toolchain is installed; Miri gates (as it does in CI), TSan stays
# advisory.
set -euo pipefail
cd "$(dirname "$0")/.."

# --- build job ---------------------------------------------------------

echo "==> cargo build --release (deny warnings)"
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo build --release

echo "==> cargo bench --no-run"
cargo bench --no-run

# --- test job ----------------------------------------------------------

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# Already covered by the workspace run above; repeated in release as an
# explicit, named gate on the ISSUE-3 acceptance bar (2/4/8-rank
# trajectories ≤1e-12, comm-model validation).
echo "==> rank-equivalence + comm-validation suites (release)"
cargo test --release -q --test rank_equivalence --test comm_validation

# --- lint-invariants job ------------------------------------------------

# Workspace invariant linter (LKK001..LKK005, docs/static-analysis.md):
# exit 1 on violations, exit 2 on a malformed lint_allow.toml. Gating.
echo "==> lkk-lint (workspace invariants)"
cargo run --release -p lkk-lint

# --- lint job ----------------------------------------------------------

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

# --- perf job ----------------------------------------------------------

echo "==> perf-smoke --check results/perf_baseline.json"
cargo run --release -p lkk-perf --bin perf-smoke -- --check results/perf_baseline.json

# The SNAP contraction-table shape counters must stay pinned in the
# baseline (construction-once invariant: snap.table.builds == 1 per
# context per step at tolerance 0).
echo "==> snap.table.* counters pinned in baseline"
for key in snap.table.items snap.table.pairs snap.table.y_items \
           snap.table.y_scatters snap.table.builds; do
  grep -q "\"$key@" results/perf_baseline.json ||
    { echo "missing $key in results/perf_baseline.json"; exit 1; }
done

# The load-balancer counters must stay pinned at tolerance 0: the
# static ranks4 workload stays balance-silent (its bytes cannot drift)
# and the skewed8 workload keeps its census traffic, rebalance count,
# and peak imbalance in the committed baseline.
echo "==> comm balance counters pinned in baseline"
grep -q '"skewed8"' results/perf_baseline.json ||
  { echo "missing skewed8 workload in results/perf_baseline.json"; exit 1; }
for key in balance_bytes balance_msgs rebalances atom_imbalance; do
  grep -q "\"$key\"" results/perf_baseline.json ||
    { echo "missing $key in results/perf_baseline.json"; exit 1; }
done

echo "==> perf-smoke trace capture + metrics byte-gate"
cargo run --release -p lkk-perf --bin perf-smoke -- \
  --trace results/trace_smoke.json \
  --check-metrics results/metrics_baseline.json

# The critical-path attribution document must stay byte-identical to
# the committed baseline; refresh deliberately after a comm-scheduling
# or instrumentation change with --write-report-baseline.
echo "==> perf-smoke critical-path report byte-gate"
cargo run --release -p lkk-perf --bin perf-smoke -- \
  --report results/run_report_current.json \
  --check-report results/run_report.json

echo "==> perf-smoke --time (advisory wall-clock, not gated)"
cargo run --release -p lkk-perf --bin perf-smoke -- --time --reps 3

# --- chaos job ---------------------------------------------------------

# 16 fixed seeds of recoverable chaos over the ranks4 workload: every
# faulted trajectory must match the fault-free run bitwise and the
# message pool must stay steady (see docs/robustness.md). The per-seed
# fault-counter report lands in results/fault_report.json.
echo "==> perf-smoke --faults (16-seed chaos sweep, bitwise gate)"
cargo run --release -p lkk-perf --bin perf-smoke -- \
  --faults 1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16 \
  --out results/fault_report.json

echo "==> fault-injection suite (release, full matrix)"
cargo test --release -q --test fault_injection -- --include-ignored

# Load balancing must be physics-invisible: balanced vs static runs
# bitwise identical at 2/4/8 ranks (LJ and SNAP), the skewed-lattice
# peak-imbalance gate (static >= 2.0 -> balanced <= 1.15), and chaos
# composed with rebalancing (see tests/balance_equivalence.rs).
echo "==> balance-equivalence suite (release, bitwise + imbalance gate)"
cargo test --release -q --test balance_equivalence

# The committed metrics dump must show the balancer holding the skewed
# workload under the acceptance gate.
echo "==> skewed8 imbalance gauge under the 1.15 gate"
grep -q '"skewed8/atom_imbalance"' results/metrics_baseline.json ||
  { echo "missing skewed8/atom_imbalance gauge"; exit 1; }
awk -F': *' '/"skewed8\/atom_imbalance"/ { if ($2 + 0 > 1.15) \
  { print "skewed8 imbalance " $2 " above 1.15"; exit 1 } }' \
  results/metrics_baseline.json

# --- sanitizer lanes (need a nightly toolchain) ------------------------

# Miri GATES when available (mirrors the gating miri job in
# sanitizers.yml); TSan stays advisory — see the workflow comments.
if rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
  if cargo +nightly miri --version >/dev/null 2>&1; then
    echo "==> miri: lkk-kokkos atomic + scatter-view unit tests (gating)"
    MIRIFLAGS="-Zmiri-seed=7 -Zmiri-strict-provenance" \
      cargo +nightly miri test -p lkk-kokkos atomic scatter
  else
    echo "==> miri not installed for nightly; skipping (rustup component add miri --toolchain nightly)"
  fi
  if rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src.*(installed)'; then
    echo "==> tsan: rank-equivalence suite (advisory)"
    RUSTFLAGS="-Zsanitizer=thread" TSAN_OPTIONS="history_size=7" \
      cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
      --test rank_equivalence ||
      echo "==> tsan lane FAILED (advisory — tracked by the sanitizers badge)"
  else
    echo "==> rust-src not installed for nightly; skipping TSan (rustup component add rust-src --toolchain nightly)"
  fi
else
  echo "==> no nightly toolchain; skipping sanitizer lanes (see .github/workflows/sanitizers.yml)"
fi

echo "==> all green"
