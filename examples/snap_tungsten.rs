//! SNAP on a bcc tungsten-like lattice (the paper's §4.3 workload),
//! with all four kernel stages exercised and Table-2's batching knobs
//! compared in real host wall-clock time.
//!
//! Run with: `cargo run --release --example snap_tungsten`

use lammps_kk::prelude::*;
use lammps_kk::snap::{PairSnap, SnapKernelConfig, SnapParams};
use std::time::Instant;

fn build(config: SnapKernelConfig) -> Simulation {
    let lat = Lattice::new(LatticeKind::Bcc, 3.16);
    let mut atoms = AtomData::from_positions(&lat.positions(6, 6, 6));
    atoms.mass = vec![183.84];
    create_velocities(&mut atoms, &Units::metal(), 600.0, 777);
    let space = Space::Threads;
    let params = SnapParams {
        twojmax: 8,
        rcut: 4.7,
        ..Default::default()
    };
    SimulationBuilder::new(atoms, lat.domain(6, 6, 6))
        .space(space.clone())
        .units(Units::metal())
        .pair(PairSnap::new(params, &space).with_config(config))
        .dt(0.0005)
        .build()
}

// Audited wall-clock site: lint_allow.toml LKK001 (demo timing line).
#[allow(clippy::disallowed_methods)]
fn main() {
    println!("SNAP (2J = 8, 55 bispectrum components) on bcc W, 432 atoms\n");

    // Short NVE trajectory with thermo output.
    let mut sim = build(SnapKernelConfig::default());
    sim.thermo_every = 5;
    sim.verbose = true;
    let e0 = {
        sim.setup();
        sim.total_energy()
    };
    sim.run(20);
    println!(
        "\nper-atom energy drift over 20 steps: {:.2e} eV\n",
        (sim.total_energy() - e0).abs() / sim.system.atoms.nlocal as f64
    );

    // Host wall-clock effect of the §4.3.4 batching knobs (on CPUs the
    // balance differs from GPUs — the paper's point about architecture-
    // specific tuning).
    for (label, config) in [
        ("ui_batch=1, fused ", SnapKernelConfig::default()),
        (
            "ui_batch=4, fused ",
            SnapKernelConfig {
                ui_batch: 4,
                ..Default::default()
            },
        ),
        (
            "ui_batch=1, unfused",
            SnapKernelConfig {
                fuse_deidrj: false,
                ..Default::default()
            },
        ),
    ] {
        let mut sim = build(config);
        sim.setup();
        let start = Instant::now();
        sim.run(3);
        println!("host wall-clock, {label}: {:?} / 3 steps", start.elapsed());
    }
}
