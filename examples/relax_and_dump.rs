//! A realistic small workflow: perturb an EAM metal crystal, relax it
//! with FIRE, run thermostatted dynamics with trajectory dumping, and
//! write a LAMMPS data file of the final state.
//!
//! Exercises: the EAM many-body style (Fig. 1's communication pattern),
//! the FIRE minimizer, `fix nvt`, the extended-XYZ dump fix, the timing
//! breakdown, and data-file round-tripping.
//!
//! Run with: `cargo run --release --example relax_and_dump`

use lammps_kk::core::{data_io, dump::XyzDump, fix::FixNvt};
use lammps_kk::prelude::*;

fn main() {
    // A Cu-like fcc crystal, rattled hard.
    let lat = Lattice::new(LatticeKind::Fcc, 3.61);
    let positions: Vec<[f64; 3]> = lat
        .positions(4, 4, 4)
        .iter()
        .enumerate()
        .map(|(i, p)| {
            [
                p[0] + 0.25 * (((i * 7) % 13) as f64 / 13.0 - 0.5),
                p[1] + 0.25 * (((i * 11) % 17) as f64 / 17.0 - 0.5),
                p[2] + 0.25 * (((i * 5) % 19) as f64 / 19.0 - 0.5),
            ]
        })
        .collect();
    let mut atoms = AtomData::from_positions(&positions);
    atoms.mass = vec![63.546];
    let mut sim = SimulationBuilder::new(atoms, lat.domain(4, 4, 4))
        .space(Space::Threads)
        .units(Units::metal())
        .pair(PairEam::new(EamParams::default()))
        .dt(0.002)
        .build();

    // 1. Relax.
    sim.setup();
    let e0 = sim.last_results.energy;
    let result = sim.minimize_fire(1e-5, 3000);
    println!(
        "FIRE: {} iterations, converged = {}, E {:.4} -> {:.4} eV (fmax {:.2e})",
        result.iterations, result.converged, e0, result.energy, result.fmax
    );

    // 2. Heat to 300 K under Nosé-Hoover (FixNvt integrates by itself),
    //    dumping a trajectory frame every 25 steps.
    sim.fixes = vec![Box::new(FixNvt::new(300.0, 0.05))];
    let dump = XyzDump::new(Vec::new(), 25, &["Cu"]);
    sim.fixes.push(Box::new(dump));
    sim.thermo_every = 50;
    sim.verbose = true;
    sim.run(200);

    // 3. Write the final state as a LAMMPS data file.
    let mut buf = Vec::new();
    data_io::write_data(&mut buf, &sim.system.atoms, &sim.system.domain, 1).unwrap();
    println!(
        "\nwrote LAMMPS data file ({} bytes); first lines:",
        buf.len()
    );
    for line in String::from_utf8_lossy(&buf).lines().take(8) {
        println!("  {line}");
    }
}
