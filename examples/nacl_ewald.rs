//! Long-range electrostatics (the KSPACE package): compute the
//! Madelung constant of rock-salt NaCl with Ewald summation and show
//! the α-invariance that makes the real/reciprocal split consistent.
//!
//! Run with: `cargo run --release --example nacl_ewald`

use lammps_kk::core::kspace::Ewald;
use lammps_kk::prelude::*;

fn main() {
    // 3×3×3 conventional cells of NaCl with r0 = 1 (reduced units).
    let cells = 3usize;
    let mut positions = Vec::new();
    let mut charges = Vec::new();
    for ix in 0..(2 * cells) {
        for iy in 0..(2 * cells) {
            for iz in 0..(2 * cells) {
                positions.push([ix as f64, iy as f64, iz as f64]);
                charges.push(if (ix + iy + iz) % 2 == 0 { 1.0 } else { -1.0 });
            }
        }
    }
    let domain = Domain::cubic(2.0 * cells as f64);
    let mut atoms = AtomData::from_positions(&positions);
    for (i, &q) in charges.iter().enumerate() {
        atoms.q.h_view_mut().set([i], q);
    }
    println!(
        "NaCl rock salt: {} ions, r0 = 1, exact Madelung constant 1.7475646\n",
        positions.len()
    );
    println!(
        "{:>8} {:>8} {:>14} {:>12}",
        "r_cut", "k_max", "E/ion-pair", "Madelung"
    );
    for rc in [1.6f64, 2.0, 2.5] {
        let ewald = Ewald::for_box(&domain, rc, 1.0);
        let (e, _) = ewald.compute(&atoms, &domain, &Space::Threads);
        let per_pair = e / (positions.len() as f64 / 2.0);
        println!(
            "{:>8.2} {:>8} {:>14.7} {:>12.7}",
            rc, ewald.k_max, per_pair, -per_pair
        );
    }
    println!("\n(the answer is independent of the real/reciprocal split — the");
    println!(" self-consistency that anchors the KSPACE implementation)");
}
