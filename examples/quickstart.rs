//! Quickstart: the classic Lennard-Jones melt through the Rust API.
//!
//! Builds an fcc lattice at reduced density 0.8442, gives the atoms a
//! Maxwell-Boltzmann velocity distribution at T* = 1.44, and runs 250
//! NVE steps on the multi-threaded host backend — the same benchmark
//! the paper's Figure 2 exercises.
//!
//! Run with: `cargo run --release --example quickstart`

use lammps_kk::prelude::*;

fn main() {
    // 10×10×10 fcc cells = 4000 atoms.
    let lattice = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let mut atoms = AtomData::from_positions(&lattice.positions(10, 10, 10));
    create_velocities(&mut atoms, &Units::lj(), 1.44, 87287);

    // Threaded host execution (the `/kk/host` space); lj/cut with
    // ε = σ = 1, r_c = 2.5σ. The PairKokkos driver picks a half
    // neighbor list + ScatterView on hosts (§4.1 of the paper).
    let space = Space::Threads;
    let mut sim = SimulationBuilder::new(atoms, lattice.domain(10, 10, 10))
        .space(space.clone())
        .pair(PairKokkos::new(LjCut::single_type(1.0, 1.0, 2.5), &space))
        .dt(0.005)
        .thermo_every(50)
        .verbose(true)
        .build();

    println!("LJ melt: 4000 atoms, rho* = 0.8442, T* = 1.44, dt = 0.005\n");
    sim.run(250);

    let first = sim.thermo.first().unwrap().e_total;
    let last = sim.total_energy();
    println!(
        "\nEnergy conservation: E(0) = {first:.6}, E(end) = {last:.6}, \
         per-atom drift = {:.2e}",
        (last - first).abs() / sim.system.atoms.nlocal as f64
    );
    println!("Neighbor list rebuilds: {}", sim.rebuild_count);
}
