//! The same LJ melt driven by a LAMMPS-style input script (§2.1 of the
//! paper), executed twice: once on the plain serial host path and once
//! with `package kokkos device h100` + `suffix kk`, which swaps every
//! style for its accelerated variant on the simulated H100 and logs
//! kernel launches for the performance model.
//!
//! Run with: `cargo run --release --example lj_melt_script`

use lammps_kk::core::input::Lammps;
use lammps_kk::core::style::StyleRegistry;

const BASE: &str = r#"
    units lj
    lattice fcc 0.8442
    create_box 8 8 8
    create_atoms
    mass 1 1.0
    velocity all create 1.44 87287
    pair_style lj/cut 2.5
    pair_coeff 1 1 1.0 1.0
    neighbor 0.3
    fix 1 all nve
    timestep 0.005
    thermo 50
    run 100
"#;

fn main() {
    // Plain build: no suffix, serial host (like base LAMMPS + MPI).
    let mut plain = Lammps::new(StyleRegistry::core());
    plain.run_script(BASE).expect("plain run failed");
    let sim = plain.sim.as_ref().unwrap();
    println!(
        "plain     : style {:>10}  E/atom = {:.6}",
        sim.pair.name(),
        sim.thermo.last().unwrap().e_total / sim.system.atoms.nlocal as f64
    );

    // KOKKOS package on the simulated device.
    let script = BASE.replace(
        "pair_style lj/cut 2.5",
        "package kokkos device h100\nsuffix kk\npair_style lj/cut 2.5",
    );
    let mut kk = Lammps::new(StyleRegistry::core());
    kk.run_script(&script).expect("kokkos run failed");
    let sim = kk.sim.as_ref().unwrap();
    println!(
        "kokkos/kk : style {:>10}  E/atom = {:.6}",
        sim.pair.name(),
        sim.thermo.last().unwrap().e_total / sim.system.atoms.nlocal as f64
    );

    // The device context logged every kernel launch with event counts.
    let ctx = sim.system.space.device_ctx().unwrap();
    let agg = ctx.log.aggregate();
    println!(
        "\nsimulated-device kernel log ({} distinct kernels):",
        agg.len()
    );
    for k in agg.iter().take(8) {
        println!(
            "  {:<24} launches {:>6}  work items {:>12.0}  flops {:>12.3e}",
            k.name, k.launches, k.work_items, k.flops
        );
    }
}
