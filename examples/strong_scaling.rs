//! Strong-scaling projection: what Figure 6 looks like for the LJ melt
//! on all five machines, using kernel event counts measured from a real
//! force computation on the simulated-device space — then a validation
//! table comparing the model's analytic halo traffic against what the
//! functional brick comm layer actually sends at 2/4/8 ranks.
//!
//! Run with: `cargo run --release --example strong_scaling`

use lammps_kk::machine::{scaling::presets, Machine, MeasuredComm, StrongScaling};
use lammps_kk::prelude::*;

/// Run the LJ melt through the rank-parallel driver and compare the
/// measured per-rank halo traffic against `CommProfile::analytic_halo`.
fn measured_vs_analytic() {
    // The preset models the paper's GPU runs: full list, newton off, so
    // only positions cross (24 B/halo atom). The functional runs below
    // use half lists + newton on, where forces come back too — double
    // the per-atom volume for a like-for-like comparison.
    let mut comm = presets::lj().comm;
    comm.bytes_per_halo_atom = 2.0 * 24.0;

    let steps = 10u64;
    let cells = 8; // 2048 atoms: sub-bricks stay wider than the cutoff at P=8
    let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let mut atoms = AtomData::from_positions(&lat.positions(cells, cells, cells));
    create_velocities(&mut atoms, &Units::lj(), 1.44, 87287);
    let spec = RunSpec::new(&atoms, lat.domain(cells, cells, cells), steps);

    println!("\nHalo validation: functional brick runs vs the analytic model");
    println!(
        "({} atoms, {} steps; bytes and messages per rank per step)\n",
        4 * cells * cells * cells,
        steps
    );
    println!(
        "{:<8}{:>14}{:>14}{:>8}{:>12}{:>12}{:>8}{:>10}{:>10}",
        "ranks",
        "meas bytes",
        "model bytes",
        "ratio",
        "meas msgs",
        "model msgs",
        "ratio",
        "atom imb",
        "pair imb"
    );
    for ranks in [2usize, 4, 8] {
        let run = spec
            .clone()
            .comm(CommSpec::Brick {
                ranks,
                balance: None,
            })
            .run(|_, system| {
                let pair = PairKokkos::with_options(
                    LjCut::single_type(1.0, 1.0, 2.5),
                    &Space::Serial,
                    PairKokkosOptions {
                        force_half: Some(true),
                        ..Default::default()
                    },
                );
                Simulation::new(system, Box::new(pair))
            })
            .expect("fault-free rank-parallel run failed");
        let s = run.comm_stats;
        let per_rank_step = ranks as f64 * steps as f64;
        let cmp = comm.compare_measured(&MeasuredComm {
            ranks: ranks as f64,
            atoms_per_rank: run.natoms as f64 / ranks as f64,
            halo_bytes_per_rank_step: (s.forward_bytes + s.reverse_bytes) as f64 / per_rank_step,
            halo_msgs_per_rank_step: (s.forward_msgs + s.reverse_msgs) as f64 / per_rank_step,
        });
        println!(
            "{:<8}{:>14.0}{:>14.0}{:>8.2}{:>12.1}{:>12.1}{:>8.2}{:>10.3}{:>10.3}",
            ranks,
            cmp.measured_bytes,
            cmp.analytic_bytes,
            cmp.bytes_ratio,
            cmp.measured_msgs,
            cmp.analytic_msgs,
            cmp.msgs_ratio,
            run.atom_imbalance(),
            run.pair_time_imbalance()
        );
    }
    println!(
        "\n(The face-only model undercounts edge/corner ghosts, so ratios\n\
         sit above 1 at these small per-rank sizes and approach 1 as the\n\
         sub-brick grows relative to the cutoff. The imbalance columns\n\
         are max/mean over ranks — 1.0 is perfect balance; atom imb is\n\
         deterministic, pair imb is wall-clock and advisory.)"
    );
}

fn main() {
    let atoms = 16_000_000.0;
    println!("LJ melt, {} atoms: projected timesteps/s\n", atoms as u64);
    let machines = Machine::all();
    print!("{:<8}", "nodes");
    for m in &machines {
        print!("{:>12}", m.name);
    }
    println!();
    let mut nodes = 1u32;
    while nodes <= 8192 {
        print!("{nodes:<8}");
        for m in &machines {
            if nodes > m.max_nodes {
                print!("{:>12}", "-");
                continue;
            }
            let s = StrongScaling {
                machine: m.clone(),
                workload: presets::lj(),
                total_atoms: atoms,
            };
            print!("{:>12.1}", s.steps_per_second(nodes));
        }
        println!();
        nodes *= 4;
    }
    println!(
        "\nReaxFF for contrast ({}k atoms — the QEq allreduce wall):",
        465
    );
    print!("{:<8}", "nodes");
    for m in &machines {
        print!("{:>12}", m.name);
    }
    println!();
    let mut nodes = 1u32;
    while nodes <= 1024 {
        print!("{nodes:<8}");
        for m in &machines {
            let s = StrongScaling {
                machine: m.clone(),
                workload: presets::reaxff(),
                total_atoms: 465_000.0,
            };
            print!("{:>12.1}", s.steps_per_second(nodes));
        }
        println!();
        nodes *= 4;
    }

    measured_vs_analytic();
}
