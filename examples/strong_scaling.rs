//! Strong-scaling projection: what Figure 6 looks like for the LJ melt
//! on all five machines, using kernel event counts measured from a real
//! force computation on the simulated-device space.
//!
//! Run with: `cargo run --release --example strong_scaling`

use lammps_kk::machine::{scaling::presets, Machine, StrongScaling};

fn main() {
    let atoms = 16_000_000.0;
    println!("LJ melt, {} atoms: projected timesteps/s\n", atoms as u64);
    let machines = Machine::all();
    print!("{:<8}", "nodes");
    for m in &machines {
        print!("{:>12}", m.name);
    }
    println!();
    let mut nodes = 1u32;
    while nodes <= 8192 {
        print!("{nodes:<8}");
        for m in &machines {
            if nodes > m.max_nodes {
                print!("{:>12}", "-");
                continue;
            }
            let s = StrongScaling {
                machine: m.clone(),
                workload: presets::lj(),
                total_atoms: atoms,
            };
            print!("{:>12.1}", s.steps_per_second(nodes));
        }
        println!();
        nodes *= 4;
    }
    println!(
        "\nReaxFF for contrast ({}k atoms — the QEq allreduce wall):",
        465
    );
    print!("{:<8}", "nodes");
    for m in &machines {
        print!("{:>12}", m.name);
    }
    println!();
    let mut nodes = 1u32;
    while nodes <= 1024 {
        print!("{nodes:<8}");
        for m in &machines {
            let s = StrongScaling {
                machine: m.clone(),
                workload: presets::reaxff(),
                total_atoms: 465_000.0,
            };
            print!("{:>12.1}", s.steps_per_second(nodes));
        }
        println!();
        nodes *= 4;
    }
}
