//! Capture a wall-clock trace timeline of a rank-parallel LJ melt and
//! write it as Chrome trace_event JSON for Perfetto.
//!
//! Run with: `cargo run --release --example trace_timeline`
//!
//! Then open <https://ui.perfetto.dev> and drag `lj_trace.json` in (or
//! use `chrome://tracing`). What you will see:
//!
//! * **host** process (`pid 0`): one track per simulated MPI rank
//!   (`rank0`..`rank3`) with the nested region spans of the MD loop —
//!   `step/pair`, `step/comm/fwd/{pack,send,recv,unpack}`, pool
//!   `reclaim` blocking, neighbor rebuilds — plus instant markers for
//!   per-edge exchange bytes and counter tracks for owned/ghost atoms.
//! * **gpusim (predicted)** process (`pid 1`): the cost-model device
//!   timeline — one complete event per kernel launch whose duration is
//!   the `lkk-gpusim` prediction for the chosen architecture.
//!
//! This example uses wall-clock mode (microsecond timestamps, real
//! concurrency visible). CI uses the deterministic mode instead, where
//! timestamps are per-lane logical ticks and the bytes never change —
//! see `perf-smoke --trace` and `docs/observability.md`.

use lammps_kk::gpusim::GpuArch;
use lammps_kk::kokkos::profile;
use lammps_kk::prelude::*;
use lammps_kk::trace::TraceCollector;
use std::sync::Arc;

fn main() {
    let cells = 6; // 864 atoms over 4 ranks
    let steps = 20u64;
    let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let mut atoms = AtomData::from_positions(&lat.positions(cells, cells, cells));
    create_velocities(&mut atoms, &Units::lj(), 1.44, 87287);

    let collector = Arc::new(TraceCollector::wall(GpuArch::h100()));
    let id = profile::register_subscriber(collector.clone());
    // The unified driver API: one builder for any CommSpec (swap in
    // `CommSpec::Single` and the same code runs in-process).
    let run = SimulationBuilder::new(atoms, lat.domain(cells, cells, cells))
        .pair_with(|_rank| {
            Box::new(PairKokkos::with_options(
                LjCut::single_type(1.0, 1.0, 2.5),
                &Space::Serial,
                PairKokkosOptions {
                    force_half: Some(true),
                    ..Default::default()
                },
            ))
        })
        .comm(CommSpec::Brick {
            ranks: 4,
            balance: None,
        })
        .run(steps)
        .expect("fault-free rank-parallel run failed");
    profile::unregister_subscriber(id);

    let json = collector.export_chrome();
    let path = "lj_trace.json";
    std::fs::write(path, &json).expect("writing trace");

    println!(
        "Ran {} atoms for {} steps on {} simulated ranks.",
        run.natoms, run.steps, run.nranks
    );
    println!(
        "Atom imbalance {:.3}, pair-time imbalance {:.3} (max/mean over ranks).",
        run.atom_imbalance(),
        run.pair_time_imbalance()
    );
    println!(
        "Wrote {path} ({} lanes, {} KiB) — open it at https://ui.perfetto.dev",
        collector.lane_count(),
        json.len() / 1024
    );

    // The same collector doubles as the metrics sink: exchange bytes
    // and the per-rank census land in the registry as it records.
    let metrics = collector.metrics();
    if let Some(grow) = metrics.counter("rank0/pool_grow") {
        println!("rank0 requested {grow} words of message-pool growth.");
    }
    for rank in 0..run.nranks {
        if let Some(owned) = metrics.gauge(&format!("rank{rank}/owned_atoms")) {
            println!("rank{rank} finished owning {owned} atoms.");
        }
    }

    // And as the critical-path analyzer: the flow events the comm layer
    // stamped let it chain the per-rank timelines into a step DAG and
    // say which rank each step was actually waiting on. Wall-clock mode
    // here, so durations are µs (CI gates the deterministic-tick
    // variant via `perf-smoke --check-report`).
    let report = collector.critical_path();
    println!(
        "\nCritical path: {:.0} of {:.0} µs stepped time across {} steps; \
         {} cross-rank flows ({} dangling).",
        report.critical_time,
        report.total_time,
        report.nsteps,
        report.flows_complete,
        report.flows_dangling
    );
    for rank in &report.ranks {
        println!(
            "  {:<6} compute {:>8.0}  pack {:>6.0}  wire_wait {:>8.0}  \
             unpack {:>6.0}  retry {:>4.0}  slack {:>8.0} µs",
            rank.lane, rank.compute, rank.pack, rank.wire_wait, rank.unpack, rank.retry, rank.slack
        );
    }
    println!("Top critical-path spans per step (first 5 steps, top 3 each):");
    for step in report.steps.iter().take(5) {
        let mut spans: Vec<_> = step.path.iter().collect();
        spans.sort_by(|a, b| b.duration.total_cmp(&a.duration));
        let top: Vec<String> = spans
            .iter()
            .take(3)
            .map(|s| format!("{}:{} {:.0}µs", s.lane, s.name, s.duration))
            .collect();
        println!(
            "  step {:>2} ({:>6.0} µs critical): {}",
            step.index,
            step.critical,
            top.join(", ")
        );
    }
}
