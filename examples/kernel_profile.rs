//! An Nsight-Compute-style kernel profile of one SNAP + one LJ timestep
//! on the simulated H100 and MI300A — the §4.3.4 workflow ("limiters
//! were identified using NVIDIA Nsight Compute") against our model.
//!
//! Run with: `cargo run --release --example kernel_profile`

use lammps_kk::core::comm::build_ghosts;
use lammps_kk::gpusim::{render, GpuArch};
use lammps_kk::prelude::*;
use lammps_kk::snap::{PairSnap, SnapParams};

fn main() {
    for arch in [GpuArch::h100(), GpuArch::mi300a()] {
        let space = Space::device(arch.clone());
        let ctx = space.device_ctx().unwrap().clone();
        let lat = Lattice::new(LatticeKind::Bcc, 3.16);
        let atoms = AtomData::from_positions(&lat.positions(10, 10, 10));
        let mut system =
            System::new(atoms, lat.domain(10, 10, 10), space.clone()).with_units(Units::metal());
        let mut pair = PairSnap::new(SnapParams::default(), &space);
        let settings = NeighborSettings::new(pair.cutoff(), 0.3, false);
        system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
        let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
        let _ = pair.compute(&mut system, &list, true);
        let stats: Vec<_> = ctx
            .log
            .aggregate()
            .into_iter()
            .filter(|s| s.name.starts_with("Compute"))
            .collect();
        println!("{}", render(&stats, &arch));
    }
}
