//! ReaxFF on the synthetic HNS-like molecular crystal — the paper's
//! §4.2 benchmark workload. Runs a short NVE trajectory and reports the
//! reactive bookkeeping: bond counts, compressed-quad selectivity
//! (the <5% divergence statistic), QEq iterations, and the equilibrated
//! charge distribution by element.
//!
//! Run with: `cargo run --release --example reaxff_hns`

use lammps_kk::prelude::*;
use lammps_kk::reaxff::{hns, PairReaxff, ReaxParams};

fn main() {
    // 2×2×2 molecular cells × 18 atoms (C6H3N3O6 motifs).
    let (positions, types, domain) = hns::crystal(2, 2, 2, 17.0);
    let mut atoms = AtomData::from_positions(&positions);
    atoms.mass = vec![12.011, 1.008, 14.007, 15.999];
    for (i, &t) in types.iter().enumerate() {
        atoms.typ.h_view_mut().set([i], t);
    }
    let natoms = atoms.nlocal;
    create_velocities(&mut atoms, &Units::metal(), 300.0, 424242);

    let mut sim = SimulationBuilder::new(atoms, domain)
        .space(Space::Threads)
        .units(Units::metal())
        .pair(PairReaxff::new(ReaxParams::hns_like()))
        .dt(0.0002) // 0.2 fs — reactive force fields need short steps
        .thermo_every(20)
        .verbose(true)
        .build();

    println!("ReaxFF HNS-like crystal: {natoms} atoms (C/H/N/O), T = 300 K\n");
    sim.run(100);

    // Downcast to read the reactive diagnostics.
    let pair = sim
        .pair
        .as_any()
        .downcast_ref::<PairReaxff>()
        .expect("reaxff style");
    println!("\nbonds: {}", pair.last_bond_count);
    let qs = pair.last_quad_stats;
    println!(
        "torsion quads: {} kept of {} candidates ({:.1}% — the paper's divergence statistic)",
        qs.kept,
        qs.candidates,
        100.0 * qs.kept as f64 / qs.candidates.max(1) as f64
    );
    println!(
        "QEq CG iterations (fused dual solve): {}",
        pair.last_qeq_iterations
    );

    // Mean charge per element.
    let names = ["C", "H", "N", "O"];
    let typ = sim.system.atoms.typ.h_view();
    for (t, name) in names.iter().enumerate() {
        let (mut sum, mut count) = (0.0, 0);
        for i in 0..natoms {
            if typ.at([i]) as usize == t {
                sum += pair.last_charges[i];
                count += 1;
            }
        }
        println!(
            "  mean q({name}) = {:+.4} e  ({count} atoms)",
            sum / count as f64
        );
    }
}
