//! Shared workload builders and measurement plumbing for the figure
//! harnesses (see DESIGN.md §4 for the experiment index).
//!
//! Every harness follows the same recipe:
//!
//! 1. build the paper's workload (LJ melt / HNS-like ReaxFF crystal /
//!    bcc SNAP) on a *simulated device* execution space,
//! 2. run the real kernels once to collect measured per-kernel event
//!    counts from the launch log,
//! 3. feed the counts through the `lkk-gpusim` cost model at the
//!    paper's system sizes / architectures / cache configurations, and
//! 4. print the table/series the paper reports.

use lkk_core::atom::AtomData;
use lkk_core::comm::build_ghosts;
use lkk_core::lattice::{Lattice, LatticeKind};
use lkk_core::neighbor::{NeighborList, NeighborSettings};
use lkk_core::pair::lj::LjCut;
use lkk_core::pair::{PairKokkos, PairKokkosOptions, PairStyle};
use lkk_core::sim::System;
use lkk_core::units::Units;
use lkk_gpusim::{GpuArch, KernelStats};
use lkk_kokkos::Space;
use lkk_machine::{CommProfile, Workload};
use lkk_reaxff::{hns, PairReaxff, ReaxParams};
use lkk_snap::{PairSnap, SnapKernelConfig, SnapParams};

/// Measured per-step kernel stats + the atom count they refer to.
pub struct Measured {
    pub natoms: f64,
    pub stats: Vec<KernelStats>,
    pub avg_neighbors: f64,
}

fn device_space(arch: GpuArch) -> Space {
    Space::device(arch)
}

fn drain(space: &Space) -> Vec<KernelStats> {
    space
        .device_ctx()
        .expect("device space required")
        .log
        .drain()
}

fn aggregate(stats: Vec<KernelStats>) -> Vec<KernelStats> {
    let mut by_name: Vec<KernelStats> = Vec::new();
    for s in stats {
        if let Some(e) = by_name.iter_mut().find(|e| e.name == s.name) {
            e.accumulate(&s);
        } else {
            by_name.push(s);
        }
    }
    by_name
}

/// Build an LJ melt with roughly `target_atoms` atoms and run one force
/// computation on `arch`, returning measured kernel stats.
pub fn measure_lj(target_atoms: usize, arch: GpuArch, options: PairKokkosOptions) -> Measured {
    measure_lj_with_cutoff(target_atoms, arch, options, 2.5)
}

/// [`measure_lj`] at an explicit force cutoff (the §4.1 ablation axis).
pub fn measure_lj_with_cutoff(
    target_atoms: usize,
    arch: GpuArch,
    options: PairKokkosOptions,
    cutoff: f64,
) -> Measured {
    let cells = ((target_atoms as f64 / 4.0).cbrt().round() as usize).max(3);
    let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let atoms = AtomData::from_positions(&lat.positions(cells, cells, cells));
    let space = device_space(arch);
    let mut system = System::new(atoms, lat.domain(cells, cells, cells), space.clone());
    let mut pair = PairKokkos::with_options(LjCut::single_type(1.0, 1.0, cutoff), &space, options);
    let half = pair.wants_half_list();
    let settings = NeighborSettings::new(pair.cutoff(), 0.3, half);
    system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
    let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
    let avg = list.avg_neighbors();
    // Perturb slightly so forces are non-trivial (perfect lattices
    // short-circuit nothing, but keep it honest).
    let _ = pair.compute(&mut system, &list, true);
    let natoms = system.atoms.nlocal as f64;
    // Keep only the pair kernel (neighbor build/launch noise aside) and
    // add the integration kernels of one timestep.
    let mut stats: Vec<KernelStats> = aggregate(drain(&space))
        .into_iter()
        .filter(|s| s.name.starts_with("PairCompute"))
        .collect();
    let mut nve = KernelStats::new("Integrate");
    nve.work_items = natoms;
    nve.flops = natoms * 18.0;
    nve.dram_bytes = natoms * 96.0;
    nve.launches = 2.0;
    stats.push(nve);
    Measured {
        natoms,
        stats,
        avg_neighbors: avg,
    }
}

/// LJ communication profile (fcc melt at ρ* = 0.8442, r_c = 2.5σ).
pub fn lj_comm() -> CommProfile {
    CommProfile {
        cut_ghost: 2.8,
        number_density: 0.8442,
        bytes_per_halo_atom: 24.0,
        messages_per_step: 12.0,
        allreduces_per_step: 0.0,
    }
}

/// Build a bcc SNAP workload and measure one force computation.
pub fn measure_snap(target_atoms: usize, arch: GpuArch, config: SnapKernelConfig) -> Measured {
    let cells = ((target_atoms as f64 / 2.0).cbrt().round() as usize).max(3);
    let lat = Lattice::new(LatticeKind::Bcc, 3.16);
    let atoms = AtomData::from_positions(&lat.positions(cells, cells, cells));
    let space = device_space(arch);
    let mut system = System::new(atoms, lat.domain(cells, cells, cells), space.clone())
        .with_units(Units::metal());
    let mut pair = PairSnap::new(SnapParams::default(), &space).with_config(config);
    let settings = NeighborSettings::new(pair.cutoff(), 0.3, false);
    system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
    let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
    let avg = list.avg_neighbors();
    let _ = pair.compute(&mut system, &list, true);
    let natoms = system.atoms.nlocal as f64;
    let stats = aggregate(drain(&space))
        .into_iter()
        .filter(|s| s.name.starts_with("Compute") || s.name.starts_with("PairSnap"))
        .collect();
    Measured {
        natoms,
        stats,
        avg_neighbors: avg,
    }
}

/// SNAP communication profile (bcc tungsten-like, r_c = 4.7 Å).
pub fn snap_comm() -> CommProfile {
    CommProfile {
        cut_ghost: 5.0,
        number_density: 2.0 / (3.16f64.powi(3)),
        bytes_per_halo_atom: 48.0,
        messages_per_step: 12.0,
        allreduces_per_step: 0.0,
    }
}

/// The reduced ReaxFF implements the σ-only bond-order chemistry; the
/// full force field evaluates ~6× more bonded work per atom (π/π²
/// bond orders, lone pairs, under-coordination, valence conjugation,
/// three-/four-body permutation sets, hydrogen bonds) spread over many
/// more kernels. Figure-level harnesses scale the measured bonded and
/// non-bonded event counts by this factor so absolute ReaxFF rates land
/// in the paper's regime; QEq is complete as implemented and is not
/// scaled. (DESIGN.md §2, substitution table.)
pub const REAXFF_FULL_CHEMISTRY_WORK: f64 = 6.0;
pub const REAXFF_FULL_CHEMISTRY_LAUNCHES: f64 = 8.0;

/// Build an HNS-like ReaxFF crystal and measure one force computation.
pub fn measure_reaxff(target_atoms: usize, arch: GpuArch) -> Measured {
    let cells = ((target_atoms as f64 / 18.0).cbrt().round() as usize).max(2);
    let (pos, types, domain) = hns::crystal(cells, cells, cells, 7.5);
    let mut atoms = AtomData::from_positions(&pos);
    atoms.mass = vec![12.0, 1.0, 14.0, 16.0];
    for (i, &t) in types.iter().enumerate() {
        atoms.typ.h_view_mut().set([i], t);
    }
    let space = device_space(arch);
    let mut system = System::new(atoms, domain, space.clone()).with_units(Units::metal());
    let mut pair = PairReaxff::new(ReaxParams::hns_like());
    let settings = NeighborSettings::new(pair.cutoff(), 0.3, false);
    system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
    let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
    let avg = list.avg_neighbors();
    let _ = pair.compute(&mut system, &list, true);
    let natoms = system.atoms.nlocal as f64;
    let stats = aggregate(drain(&space))
        .into_iter()
        .map(|mut s| {
            if !s.name.starts_with("QEq") {
                s.flops *= REAXFF_FULL_CHEMISTRY_WORK;
                s.dram_bytes *= REAXFF_FULL_CHEMISTRY_WORK;
                s.reused_bytes *= REAXFF_FULL_CHEMISTRY_WORK;
                s.atomic_f64_ops *= REAXFF_FULL_CHEMISTRY_WORK;
                s.launches *= REAXFF_FULL_CHEMISTRY_LAUNCHES;
            }
            s
        })
        .collect();
    Measured {
        natoms,
        stats,
        avg_neighbors: avg,
    }
}

/// ReaxFF communication profile (HNS-like molecular crystal, QEq CG
/// halo+allreduce traffic measured from `iterations`).
pub fn reaxff_comm(cg_iterations: f64) -> CommProfile {
    CommProfile {
        cut_ghost: 8.0,
        number_density: 18.0 / 7.5f64.powi(3),
        bytes_per_halo_atom: 32.0,
        messages_per_step: 12.0 + 2.0 * cg_iterations,
        allreduces_per_step: 3.0 * cg_iterations,
    }
}

/// Predicted single-device time per timestep for measured stats scaled
/// to `natoms`, at the default (heuristic) cache configuration.
pub fn step_time(measured: &Measured, natoms: f64, arch: &GpuArch) -> f64 {
    let w = Workload::from_measured("w", measured.stats.clone(), measured.natoms, lj_comm());
    w.kernel_time(natoms, arch)
}

/// Convert a `Measured` into a `lkk-machine` workload.
pub fn to_workload(name: &str, measured: &Measured, comm: CommProfile) -> Workload {
    Workload::from_measured(name, measured.stats.clone(), measured.natoms, comm)
}

/// Format atoms/second-style rates compactly.
pub fn eng(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lj_measurement_produces_pair_kernel() {
        let m = measure_lj(4000, GpuArch::h100(), PairKokkosOptions::default());
        assert!(m.natoms >= 2000.0);
        assert!(m.stats.iter().any(|s| s.name == "PairComputeLJCut"));
        assert!(m.avg_neighbors > 30.0, "avg neigh {}", m.avg_neighbors);
    }

    #[test]
    fn snap_measurement_produces_three_kernels() {
        let m = measure_snap(1024, GpuArch::h100(), SnapKernelConfig::default());
        for k in ["ComputeUi", "ComputeYi", "ComputeFusedDeidrj"] {
            assert!(m.stats.iter().any(|s| s.name == k), "{k} missing");
        }
    }

    #[test]
    fn reaxff_measurement_produces_qeq_kernels() {
        let m = measure_reaxff(600, GpuArch::h100());
        assert!(m.stats.iter().any(|s| s.name == "QEqSpmvFused"));
        assert!(m.stats.iter().any(|s| s.name == "TorsionCompute"));
    }

    #[test]
    fn step_time_scales_superlinearly_below_saturation() {
        let m = measure_lj(8000, GpuArch::h100(), PairKokkosOptions::default());
        let arch = GpuArch::h100();
        let t_small = step_time(&m, 1e4, &arch);
        let t_big = step_time(&m, 1e7, &arch);
        // 1000× more atoms, less than 1000× more time (saturation).
        assert!(t_big > t_small);
        assert!(t_big / t_small < 1000.0);
    }
}
