//! Figure 2a: effect of exposing parallelism over neighbors for the LJ
//! potential, as a function of atom count, on H100 and MI250X.
//!
//! "For small systems, the benefit of additional parallelism outweighs
//! the reduced efficiency of the more complex iteration pattern."

use lkk_bench::{eng, measure_lj, step_time};
use lkk_core::pair::PairKokkosOptions;
use lkk_gpusim::GpuArch;

fn main() {
    let archs = [GpuArch::h100(), GpuArch::mi250x_gcd()];
    let atom_parallel = PairKokkosOptions {
        force_half: Some(false),
        team_over_neighbors: false,
    };
    let team_parallel = PairKokkosOptions {
        force_half: Some(false),
        team_over_neighbors: true,
    };
    println!("Figure 2a: LJ atom-parallel vs neighbor-team parallel (atom-steps/s)");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>8}",
        "arch", "atoms", "atom-par", "team-par", "team/atom"
    );
    for arch in archs {
        // Measure both strategies once on a real melt; sweep sizes
        // through the cost model.
        let flat = measure_lj(110_000, arch.clone(), atom_parallel);
        let team = measure_lj(110_000, arch.clone(), team_parallel);
        for &n in &[2_000.0f64, 8e3, 32e3, 128e3, 512e3, 2e6, 8e6] {
            let t_flat = step_time(&flat, n, &arch);
            let t_team = step_time(&team, n, &arch);
            println!(
                "{:<14} {:>10} {:>12} {:>12} {:>8.2}",
                arch.name,
                eng(n),
                eng(n / t_flat),
                eng(n / t_team),
                t_flat / t_team
            );
        }
        println!();
    }
    println!("(team/atom > 1 means hierarchical parallelism wins: expected at small N)");
}
