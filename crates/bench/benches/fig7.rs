//! Figure 7 / Appendix C: Alps (GH200, Slingshot-11) vs Eos (H100 ×4
//! per node, NDR400).
//!
//! Expected shapes: near-identical SNAP curves; LJ slightly faster on
//! GH200 at large per-GPU sizes (bandwidth) but slower in the deep
//! strong-scaling regime (higher launch latency); ReaxFF similar with
//! Eos ahead at scale.

use lkk_bench::{
    lj_comm, measure_lj, measure_reaxff, measure_snap, reaxff_comm, snap_comm, to_workload,
};
use lkk_core::pair::PairKokkosOptions;
use lkk_gpusim::GpuArch;
use lkk_machine::{Machine, StrongScaling};
use lkk_snap::SnapKernelConfig;

fn main() {
    let href = GpuArch::h100();
    let workloads = vec![
        (
            to_workload(
                "LJ",
                &measure_lj(110_000, href.clone(), PairKokkosOptions::default()),
                lj_comm(),
            ),
            16_000_000.0,
        ),
        (
            to_workload(
                "ReaxFF",
                &measure_reaxff(20_000, href.clone()),
                reaxff_comm(30.0),
            ),
            465_000.0,
        ),
        (
            to_workload(
                "SNAP",
                &measure_snap(16_000, href, SnapKernelConfig::default()),
                snap_comm(),
            ),
            2_000_000.0,
        ),
    ];
    let machines = [Machine::alps(), Machine::eos()];
    println!("Figure 7: Alps (GH200) vs Eos (H100, 4 GPUs/node used), timesteps/s");
    for (w, atoms) in &workloads {
        println!();
        println!("== {} at {} atoms ==", w.name, atoms);
        println!(
            "{:<8} {:>12} {:>12} {:>12}",
            "nodes", "Alps", "Eos", "Alps/Eos"
        );
        let mut nodes = 1u32;
        while nodes <= 256 {
            let rates: Vec<f64> = machines
                .iter()
                .map(|m| {
                    StrongScaling {
                        machine: m.clone(),
                        workload: w.clone(),
                        total_atoms: *atoms,
                    }
                    .steps_per_second(nodes)
                })
                .collect();
            println!(
                "{:<8} {:>12.1} {:>12.1} {:>12.2}",
                nodes,
                rates[0],
                rates[1],
                rates[0] / rates[1]
            );
            nodes *= 4;
        }
    }
    println!();
    println!("(paper App. C: GH200 ahead at large per-GPU problems, H100/Eos ahead");
    println!(" deep in strong scaling due to GH200's higher launch latency)");
}
