//! Figure 2b: half neighbor list (+ atomics, newton on) vs full list
//! (redundant computation, newton off) for LJ on H100 and MI250X.
//!
//! "For simple pairwise potentials, whose computational cost is low,
//! the full neighbor list is faster" — especially on NVIDIA parts with
//! high atomic throughput.

use lkk_bench::{eng, measure_lj, step_time};
use lkk_core::pair::PairKokkosOptions;
use lkk_gpusim::GpuArch;

fn main() {
    let archs = [GpuArch::h100(), GpuArch::mi250x_gcd()];
    println!("Figure 2b: LJ full list (newton off) vs half list (newton on), atom-steps/s");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10}",
        "arch", "atoms", "full", "half", "full/half"
    );
    for arch in archs {
        let full = measure_lj(
            110_000,
            arch.clone(),
            PairKokkosOptions {
                force_half: Some(false),
                team_over_neighbors: false,
            },
        );
        let half = measure_lj(
            110_000,
            arch.clone(),
            PairKokkosOptions {
                force_half: Some(true),
                team_over_neighbors: false,
            },
        );
        for &n in &[32e3f64, 128e3, 512e3, 2e6, 8e6, 16e6] {
            let t_full = step_time(&full, n, &arch);
            let t_half = step_time(&half, n, &arch);
            println!(
                "{:<14} {:>10} {:>12} {:>12} {:>10.2}",
                arch.name,
                eng(n),
                eng(n / t_full),
                eng(n / t_half),
                t_half / t_full
            );
        }
        println!();
    }
    println!("(full/half > 1: redundant computation beats atomics, the paper's GPU result)");
}
