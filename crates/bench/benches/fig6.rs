//! Figure 6: strong scaling of the three benchmarks on Frontier,
//! Aurora, El Capitan, and Alps.
//!
//! Expected shapes (§5.2): LJ and SNAP approach ~1000 steps/s given
//! enough nodes; ReaxFF never exceeds ~100 steps/s (QEq allreduce
//! latency); relative machine order follows single-GPU performance.

use lkk_bench::{
    lj_comm, measure_lj, measure_reaxff, measure_snap, reaxff_comm, snap_comm, to_workload,
};
use lkk_core::pair::PairKokkosOptions;
use lkk_gpusim::GpuArch;
use lkk_machine::{Machine, StrongScaling};
use lkk_snap::SnapKernelConfig;

fn main() {
    // Measure each workload once (the counts are per-atom and
    // architecture-independent; only the stats' structure matters).
    let href = GpuArch::h100();
    let reax_m = measure_reaxff(20_000, href.clone());
    let workloads = vec![
        (
            to_workload(
                "LJ",
                &measure_lj(110_000, href.clone(), PairKokkosOptions::default()),
                lj_comm(),
            ),
            vec![16_000_000.0, 256_000_000.0],
        ),
        (
            to_workload("ReaxFF", &reax_m, reaxff_comm(30.0)),
            vec![465_000.0, 29_760_000.0],
        ),
        (
            to_workload(
                "SNAP",
                &measure_snap(16_000, href, SnapKernelConfig::default()),
                snap_comm(),
            ),
            vec![64_000.0, 16_000_000.0],
        ),
    ];
    let machines = [
        Machine::frontier(),
        Machine::aurora(),
        Machine::el_capitan(),
        Machine::alps(),
    ];
    println!("Figure 6: strong scaling (timesteps/s)");
    for (w, sizes) in &workloads {
        for &atoms in sizes {
            println!();
            println!("== {} at {:.0}k atoms ==", w.name, atoms / 1000.0);
            print!("{:<12}", "nodes");
            for m in &machines {
                print!("{:>12}", m.name);
            }
            println!();
            let mut nodes = 1u32;
            while nodes <= 8192 {
                print!("{nodes:<12}");
                for m in &machines {
                    if nodes > m.max_nodes {
                        print!("{:>12}", "-");
                        continue;
                    }
                    let s = StrongScaling {
                        machine: m.clone(),
                        workload: w.clone(),
                        total_atoms: atoms,
                    };
                    if nodes < s.min_nodes() {
                        print!("{:>12}", "OOM");
                    } else {
                        print!("{:>12.1}", s.steps_per_second(nodes));
                    }
                }
                println!();
                nodes *= 4;
            }
        }
    }
    println!();
    println!("(paper: LJ/SNAP reach ~1000 steps/s; ReaxFF stays under ~100 steps/s)");
}
