//! Appendix B: exascale preparedness against 32-bit integer overflow.
//!
//! Demonstrates the two refactors the paper describes on our QEq data
//! structures: (1) 64-bit row offsets in the over-allocated CSR format
//! while column indices stay 32-bit; (2) 2-D bond tables whose indices
//! never exceed 32 bits regardless of total size.

fn main() {
    println!("Appendix B: integer-overflow preparedness");

    // Case 1: sparse-matrix row offsets. A large-but-realistic local
    // problem: 6M atoms × 400 allocated slots = 2.4e9 > i32::MAX.
    let n_atoms: i64 = 6_000_000;
    let max_row: i64 = 400;
    let offsets: Vec<i64> = (0..=4).map(|k| k * n_atoms / 4 * max_row).collect();
    let total_slots = n_atoms * max_row;
    println!(
        "  QEq CSR: {} atoms x {} slots/row = {} slots (i32::MAX = {})",
        n_atoms,
        max_row,
        total_slots,
        i32::MAX
    );
    assert!(total_slots > i32::MAX as i64);
    assert!(offsets[4] == total_slots);
    println!(
        "  -> row offsets are i64 (last offset {}), column indices stay i32 (max {} < i32::MAX)",
        offsets[4],
        n_atoms - 1
    );
    assert!(n_atoms - 1 < i32::MAX as i64);

    // Case 2: bond tables. A flat 1-D indexing of 6M atoms × 24 bond
    // slots × 16 entries would overflow; the 2-D (atom, slot) indexing
    // keeps every index small.
    let bonds_per_atom: i64 = 24;
    let entries_per_bond: i64 = 16;
    let flat = n_atoms * bonds_per_atom * entries_per_bond;
    println!(
        "  Bond table: flat 1-D index space {} ({}x i32::MAX); 2-D indices: atom {} (< i32::MAX), slot {}",
        flat,
        flat / i32::MAX as i64,
        n_atoms - 1,
        bonds_per_atom - 1
    );
    assert!(flat > i32::MAX as i64);

    // The production structures use exactly these types:
    // lkk_reaxff::qeq::QeqMatrix { offsets: Vec<i64>, cols: Vec<i32>,
    // nnz: Vec<i32>, .. } and BondTable's per-row 2-D layout.
    println!("  (see lkk_reaxff::qeq::QeqMatrix and lkk_reaxff::bond_order::BondTable)");
    println!("OK");
}
