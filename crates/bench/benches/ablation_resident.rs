//! Ablation (paper §1): the KOKKOS package's GPU-resident strategy vs
//! the GPU package's offload-per-step strategy.
//!
//! The GPU package "requires frequent data copies between host and
//! device in every timestep": positions H2D before the force kernel,
//! forces D2H after it, every step. The KOKKOS package keeps all data
//! device-resident; DualView's modify/sync tracking moves nothing in
//! steady state. We compare the modeled per-step transfer overhead for
//! the LJ melt across atom counts on H100 (PCIe) and GH200 (NVLink-C2C).

use lkk_bench::{eng, measure_lj, step_time};
use lkk_core::pair::PairKokkosOptions;
use lkk_gpusim::{GpuArch, LinkModel};

fn main() {
    println!("Ablation: device-resident (KOKKOS pkg) vs offload-per-step (GPU pkg), LJ");
    println!(
        "{:<14} {:>9} {:>12} {:>12} {:>12} {:>10}",
        "arch", "atoms", "kernel/step", "xfer/step", "slowdown", "xfer/kern"
    );
    for arch in [GpuArch::h100(), GpuArch::gh200()] {
        let m = measure_lj(110_000, arch.clone(), PairKokkosOptions::default());
        let link = LinkModel::of(&arch);
        for &n in &[32e3f64, 512e3, 8e6] {
            let t_kernel = step_time(&m, n, &arch);
            // Offload style: x H2D + f D2H (+ ghost x), 2 transfers.
            let bytes = 2.0 * n * 24.0 * 1.2;
            let t_xfer = link.time(bytes, 2.0);
            println!(
                "{:<14} {:>9} {:>11}s {:>11}s {:>11.2}x {:>10.1}",
                arch.name,
                eng(n),
                eng_time(t_kernel),
                eng_time(t_xfer),
                (t_kernel + t_xfer) / t_kernel,
                t_xfer / t_kernel
            );
        }
    }
    println!();
    println!("(the offload strategy pays a large fraction of a step in PCIe traffic;");
    println!(" NVLink-C2C shrinks but does not remove it — the DualView-resident");
    println!(" design transfers nothing in steady state)");
}

fn eng_time(t: f64) -> String {
    if t < 1e-6 {
        format!("{:.1}n", t * 1e9)
    } else if t < 1e-3 {
        format!("{:.1}u", t * 1e6)
    } else {
        format!("{:.2}m", t * 1e3)
    }
}
