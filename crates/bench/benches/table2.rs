//! Table 2: relative performance uplift from work-batching on the top
//! three SNAP kernels, on NVIDIA H100 and AMD MI300A.
//!
//! Paper: ComputeUi 2.23× (batch 4) / 1.75× (batch 2),
//!        ComputeYi 1.54× (batch 4) / 1.04× (batch 4),
//!        ComputeFusedDeidrj 1.49× / 1.74×.

use lkk_bench::measure_snap;
use lkk_gpusim::{CacheConfig, GpuArch, KernelStats};
use lkk_snap::SnapKernelConfig;

fn kernel_time(stats: &[KernelStats], name: &str, arch: &GpuArch) -> f64 {
    let k = stats
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("{name} missing"));
    let cfg = CacheConfig::default_for_kernel(
        arch,
        k.scratch_bytes_per_team,
        k.threads_per_team.max(arch.warp_width),
    );
    k.time_on(arch, &cfg).seconds
}

fn main() {
    // Event counts are per-atom scale-invariant: 16k atoms (saturated on
    // every part) give the same kernel-time *ratios* as the paper's 64k.
    println!("Table 2: work-batching speedups for the top SNAP kernels (2J=8)");
    println!(
        "{:<20} {:>18} {:>18}",
        "Kernel", "MI300A speed-up", "H100 speed-up"
    );
    let atoms = 16_384;
    type CfgFn = fn(&str) -> SnapKernelConfig;
    let rows: Vec<(&str, SnapKernelConfig, CfgFn)> = vec![
        ("ComputeUi", SnapKernelConfig::default(), |arch| {
            SnapKernelConfig {
                ui_batch: if arch == "AMD MI300A" { 2 } else { 4 },
                ..Default::default()
            }
        }),
        ("ComputeYi", SnapKernelConfig::default(), |_arch| {
            SnapKernelConfig {
                yi_batch: 4,
                ..Default::default()
            }
        }),
        (
            "ComputeFusedDeidrj",
            SnapKernelConfig {
                fuse_deidrj: false,
                ..Default::default()
            },
            |_arch| SnapKernelConfig {
                fuse_deidrj: true,
                ..Default::default()
            },
        ),
    ];
    for (label, base_cfg, best) in rows {
        let kernel_name = |cfg: &SnapKernelConfig| -> &'static str {
            match label {
                "ComputeFusedDeidrj" => {
                    if cfg.fuse_deidrj {
                        "ComputeFusedDeidrj"
                    } else {
                        "ComputeDeidrj"
                    }
                }
                "ComputeUi" => "ComputeUi",
                _ => "ComputeYi",
            }
        };
        let mut row = format!("{label:<20}");
        for arch in [GpuArch::mi300a(), GpuArch::h100()] {
            let batched_cfg = best(arch.name);
            let base = measure_snap(atoms, arch.clone(), base_cfg);
            let opt = measure_snap(atoms, arch.clone(), batched_cfg);
            let t_base = kernel_time(&base.stats, kernel_name(&base_cfg), &arch);
            let t_opt = kernel_time(&opt.stats, kernel_name(&batched_cfg), &arch);
            let batch_note = match label {
                "ComputeUi" => format!(" (batch {})", batched_cfg.ui_batch),
                "ComputeYi" => format!(" (batch {})", batched_cfg.yi_batch),
                _ => String::new(),
            };
            row += &format!("{:>13.2}x{:<5}", t_base / t_opt, batch_note);
        }
        println!("{row}");
    }
    println!();
    println!("Paper:      ComputeUi 1.75x (batch 2) | 2.23x (batch 4)");
    println!("            ComputeYi 1.04x (batch 4) | 1.54x (batch 4)");
    println!("            ComputeFusedDeidrj 1.74x  | 1.49x");
}
