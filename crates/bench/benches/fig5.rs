//! Figure 5: single-GPU performance across architectures, normalized
//! to a 36-core Skylake CPU node running the non-Kokkos MPI code.
//!
//! Workload sizes as in the paper: LJ 16M atoms, ReaxFF 465k atoms,
//! SNAP 64k atoms.

use lkk_bench::{
    lj_comm, measure_lj, measure_reaxff, measure_snap, reaxff_comm, snap_comm, to_workload,
};
use lkk_core::pair::PairKokkosOptions;
use lkk_gpusim::{CpuArch, GpuArch};
use lkk_machine::Workload;
use lkk_snap::SnapKernelConfig;

/// CPU-node reference time: the same per-atom flop/byte volumes run at
/// a CPU-realistic efficiency (LAMMPS pair kernels sustain ~10% of
/// peak on Skylake).
fn cpu_time(w: &Workload, n: f64, cpu: &CpuArch) -> f64 {
    let flops: f64 = w.per_atom.iter().map(|k| k.flops).sum::<f64>() * n;
    let bytes: f64 = w
        .per_atom
        .iter()
        .map(|k| k.dram_bytes + 0.3 * k.reused_bytes)
        .sum::<f64>()
        * n;
    cpu.kernel_time(flops, bytes, 0.10)
}

fn main() {
    let h100 = GpuArch::h100();
    let cpu = CpuArch::skylake36();
    let workloads = vec![
        (
            to_workload(
                "LJ",
                &measure_lj(110_000, h100.clone(), PairKokkosOptions::default()),
                lj_comm(),
            ),
            16_000_000.0,
        ),
        (
            to_workload(
                "ReaxFF",
                &measure_reaxff(20_000, h100.clone()),
                reaxff_comm(30.0),
            ),
            465_000.0,
        ),
        (
            to_workload(
                "SNAP",
                &measure_snap(16_000, h100.clone(), SnapKernelConfig::default()),
                snap_comm(),
            ),
            64_000.0,
        ),
    ];

    println!("Figure 5: single-GPU speedup over a 36-core Skylake node");
    println!("(LJ: 16M atoms, ReaxFF: 465k atoms, SNAP: 64k atoms)");
    print!("{:<18}", "arch");
    for (w, _) in &workloads {
        print!("{:>10}", w.name);
    }
    println!();
    for arch in GpuArch::table1() {
        print!("{:<18}", arch.name);
        for (w, n) in &workloads {
            let t_gpu = w.kernel_time(*n, &arch);
            let t_cpu = cpu_time(w, *n, &cpu);
            print!("{:>9.1}x", t_cpu / t_gpu);
        }
        println!();
    }
    println!();
    println!("(paper Fig. 5: NVIDIA parts lead, large V100→A100→H100 generational");
    println!(" jumps, MI300A between A100 and H100, MI250X-GCD/PVC-stack lowest)");
}
