//! Figure 3: kernel performance vs the shared-memory carveout on
//! NVIDIA H100, at 1,024,000 atoms, normalized to the default
//! (heuristic) carveout.
//!
//! Expected shapes (§4.4): PairComputeLJCut and ComputeYi *lose*
//! performance as the carveout grows (they live off L1);
//! ComputeUi and ComputeFusedDeidrj *gain* roughly linearly
//! ("occupancy is proportional to shared memory utilization").

use lkk_bench::{measure_lj, measure_snap};
use lkk_core::pair::PairKokkosOptions;
use lkk_gpusim::{CacheConfig, GpuArch, KernelStats};
use lkk_snap::SnapKernelConfig;

const ATOMS: f64 = 1_024_000.0;

fn scaled(k: &KernelStats, measured_atoms: f64) -> KernelStats {
    let f = ATOMS / measured_atoms;
    let mut s = k.clone();
    s.work_items *= f;
    s.flops *= f;
    s.dram_bytes *= f;
    s.reused_bytes *= f;
    s.l1_only_bytes *= f;
    s.atomic_f64_ops *= f;
    s
}

fn main() {
    let arch = GpuArch::h100();
    let lj = measure_lj(110_000, arch.clone(), PairKokkosOptions::default());
    let snap = measure_snap(16_000, arch.clone(), SnapKernelConfig::default());

    let mut kernels: Vec<(String, KernelStats)> = Vec::new();
    for (m, names) in [
        (&lj, vec!["PairComputeLJCut"]),
        (&snap, vec!["ComputeUi", "ComputeYi", "ComputeFusedDeidrj"]),
    ] {
        for name in names {
            let k = m.stats.iter().find(|s| s.name == name).unwrap();
            kernels.push((name.to_string(), scaled(k, m.natoms)));
        }
    }

    println!("Figure 3: performance vs shared-memory carveout on H100 (1,024,000 atoms)");
    print!("{:<22}", "carveout");
    let carveouts = [0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0];
    for c in carveouts {
        print!("{:>7.0}%", c * 100.0);
    }
    println!();
    for (name, k) in &kernels {
        // Normalize by the heuristic ("default") configuration.
        let t_default = k.time_on_default(&arch).seconds;
        print!("{name:<22}");
        for c in carveouts {
            let cfg = CacheConfig::from_carveout(&arch, c);
            let t = k.time_on(&arch, &cfg).seconds;
            print!("{:>8.2}", t_default / t);
        }
        println!();
    }
    println!();
    println!("(values are perf relative to the default carveout; paper Fig. 3 shows");
    println!(" LJ/Yi falling toward high carveout and Ui/FusedDeidrj rising)");
}
