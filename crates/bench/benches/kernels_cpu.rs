//! Real wall-clock CPU microbenchmarks (Criterion): the host-side
//! counterparts of the paper's kernel comparisons.
//!
//! * LJ half list (+ScatterView duplication) vs full list — §4.1's CPU
//!   claim is that half wins on hosts.
//! * ScatterView modes under a threaded scatter workload — §3.2.
//! * SNAP ComputeUi neighbor batching and Deidrj fusion on the host —
//!   §4.3.3 notes the CPU balance differs from the GPU.
//! * QEq fused dual SpMV vs two separate passes — §4.2.3's matrix-load
//!   reuse is a real, measurable effect on CPUs too.
//! * Neighbor-list construction, half vs full.

use criterion::{criterion_group, criterion_main, Criterion};
use lkk_core::atom::AtomData;
use lkk_core::comm::build_ghosts;
use lkk_core::lattice::{Lattice, LatticeKind};
use lkk_core::neighbor::{NeighborList, NeighborSettings};
use lkk_core::pair::lj::LjCut;
use lkk_core::pair::{PairKokkos, PairKokkosOptions, PairStyle};
use lkk_core::sim::System;
use lkk_kokkos::{ScatterMode, ScatterView, Space};
use lkk_reaxff::qeq::QeqMatrix;
use lkk_reaxff::{hns, ReaxParams};
use lkk_snap::{SnapContext, SnapKernelConfig};
use std::hint::black_box;

fn lj_setup(cells: usize, half: bool) -> (System, NeighborList) {
    let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let atoms = AtomData::from_positions(&lat.positions(cells, cells, cells));
    let space = Space::Threads;
    let mut system = System::new(atoms, lat.domain(cells, cells, cells), space.clone());
    let settings = NeighborSettings::new(2.5, 0.3, half);
    system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
    let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
    (system, list)
}

fn bench_lj(c: &mut Criterion) {
    let mut group = c.benchmark_group("lj_force_32k");
    group.sample_size(15);
    for (name, half, team) in [
        ("full", false, false),
        ("half_scatterview", true, false),
        ("full_team", false, true),
    ] {
        let (mut system, list) = lj_setup(20, half);
        let space = system.space.clone();
        let mut pair = PairKokkos::with_options(
            LjCut::single_type(1.0, 1.0, 2.5),
            &space,
            PairKokkosOptions {
                force_half: Some(half),
                team_over_neighbors: team,
            },
        );
        group.bench_function(name, |b| {
            b.iter(|| black_box(pair.compute(&mut system, &list, true)))
        });
    }
    group.finish();
}

fn bench_scatter(c: &mut Criterion) {
    let mut group = c.benchmark_group("scatter_modes");
    group.sample_size(20);
    let n = 100_000;
    for (name, mode) in [
        ("atomic", ScatterMode::Atomic),
        ("duplicated", ScatterMode::Duplicated),
    ] {
        let mut sv = ScatterView::new(n, 3, mode);
        group.bench_function(name, |b| {
            b.iter(|| {
                let svr = &sv;
                Space::Threads.parallel_for("scatter", 8 * n, |k| {
                    svr.add((k * 37) % n, k % 3, 1.0);
                });
                let mut out = vec![0.0; n * 3];
                sv.contribute_into(&mut out);
                black_box(out[0])
            })
        });
    }
    group.finish();
}

fn bench_snap(c: &mut Criterion) {
    let mut group = c.benchmark_group("snap_kernels_cpu");
    group.sample_size(15);
    let ctx = SnapContext::new(8, Default::default(), SnapContext::synthetic_beta(8, 42));
    let mut scratch = ctx.alloc_scratch();
    // A representative 26-neighbor bcc environment.
    let neigh: Vec<[f64; 3]> = (0..26)
        .map(|k| {
            let t = k as f64;
            [
                2.6 * (t * 0.7).sin() + 0.8,
                2.6 * (t * 1.3).cos(),
                2.2 * ((t * 0.9).sin() - 0.3),
            ]
        })
        .collect();
    for batch in [1usize, 4] {
        group.bench_function(format!("compute_ui_batch{batch}"), |b| {
            b.iter(|| {
                ctx.compute_ui(black_box(&neigh), &mut scratch, batch);
                black_box(scratch.utot_r[10])
            })
        });
    }
    ctx.compute_ui(&neigh, &mut scratch, 1);
    ctx.compute_yi(&mut scratch);
    for (name, fused) in [("deidrj_fused", true), ("deidrj_unfused", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &d in &neigh {
                    acc += ctx.compute_deidrj(d, &mut scratch, fused)[0];
                }
                black_box(acc)
            })
        });
    }
    group.bench_function("compute_yi", |b| {
        b.iter(|| {
            ctx.compute_yi(&mut scratch);
            black_box(scratch.y_r[5])
        })
    });
    let _ = SnapKernelConfig::default();
    group.finish();
}

fn bench_qeq_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("qeq_spmv");
    group.sample_size(10);
    let params = ReaxParams::hns_like();
    // Large enough that the matrix (~30 MB) spills the last-level
    // cache — the fused dual SpMV's matrix-reload saving (§4.2.3) only
    // exists when the matrix actually streams from DRAM.
    let (pos, types, domain) = hns::crystal(12, 12, 12, 7.5);
    let mut atoms = AtomData::from_positions(&pos);
    atoms.mass = vec![12.0, 1.0, 14.0, 16.0];
    for (i, &t) in types.iter().enumerate() {
        atoms.typ.h_view_mut().set([i], t);
    }
    atoms.wrap_positions(&domain);
    let settings = NeighborSettings::new(params.r_nonb, 0.3, false);
    let ghosts = build_ghosts(&mut atoms, &domain, settings.cutneigh());
    let list = NeighborList::build(&atoms, &domain, &settings, &Space::Threads);
    let m = QeqMatrix::build(&atoms, &list, &ghosts, &params, &Space::Threads);
    let n = m.n;
    let x1: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let x2: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
    let mut y1 = vec![0.0; n];
    let mut y2 = vec![0.0; n];
    group.bench_function("fused_dual", |b| {
        b.iter(|| {
            m.spmv_fused(&x1, &x2, &mut y1, &mut y2, &Space::Threads);
            black_box(y1[0] + y2[0])
        })
    });
    group.bench_function("two_separate", |b| {
        b.iter(|| {
            // Two passes: the matrix is loaded twice.
            m.spmv_fused(&x1, &x1, &mut y1, &mut y2, &Space::Threads);
            let a = y1[0];
            m.spmv_fused(&x2, &x2, &mut y1, &mut y2, &Space::Threads);
            black_box(a + y1[0])
        })
    });
    group.finish();
}

fn bench_neighbor(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_build_32k");
    group.sample_size(15);
    for (name, half) in [("half", true), ("full", false)] {
        let (system, _) = lj_setup(20, half);
        let settings = NeighborSettings::new(2.5, 0.3, half);
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(NeighborList::build(
                    &system.atoms,
                    &system.domain,
                    &settings,
                    &Space::Threads,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lj,
    bench_scatter,
    bench_snap,
    bench_qeq_spmv,
    bench_neighbor
);
criterion_main!(benches);
