//! Per-stage wall-clock microbenchmarks of the fissioned SNAP pipeline
//! (Criterion): ComputeUi, ComputeYi, and the cached ComputeDeidrj, as
//! `pair_style snap` runs them after the stage fission, plus the
//! flattened contraction tables against the retained direct loops.
//!
//! This is the host-side companion of the `snap.ui/yi/deidrj` FLOP/byte
//! instants the pair style emits per step: the same three stages, timed
//! in isolation on one representative atom environment.

use criterion::{criterion_group, criterion_main, Criterion};
use lkk_snap::{NeighborCache, SnapContext};
use std::hint::black_box;

/// A representative 26-neighbor bcc-like environment (same cloud the
/// `kernels_cpu` suite uses, so numbers are comparable across suites).
fn cloud() -> Vec<[f64; 3]> {
    (0..26)
        .map(|k| {
            let t = k as f64;
            [
                2.6 * (t * 0.7).sin() + 0.8,
                2.6 * (t * 1.3).cos(),
                2.2 * ((t * 0.9).sin() - 0.3),
            ]
        })
        .collect()
}

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("snap_stages");
    group.sample_size(15);
    let ctx = SnapContext::new(8, Default::default(), SnapContext::synthetic_beta(8, 42));
    let u_len = ctx.idx.u_len;
    let neigh = cloud();
    let wts = vec![1.0f64; neigh.len()];
    let mut scratch = ctx.alloc_scratch();
    let mut cache = NeighborCache::default();
    let mut utot_r = vec![0.0f64; u_len];
    let mut utot_i = vec![0.0f64; u_len];
    let mut y_r = vec![0.0f64; u_len];
    let mut y_i = vec![0.0f64; u_len];

    // Stage 1 — ComputeUi: accumulate U and fill the (fc, u) cache.
    group.bench_function("stage_ui", |b| {
        b.iter(|| {
            ctx.compute_ui_into(
                black_box(&neigh),
                Some(&wts),
                1,
                &mut cache,
                &mut utot_r,
                &mut utot_i,
                &mut scratch,
            );
            black_box(utot_r[10])
        })
    });

    ctx.compute_ui_into(
        &neigh,
        Some(&wts),
        1,
        &mut cache,
        &mut utot_r,
        &mut utot_i,
        &mut scratch,
    );

    // Stage 2 — ComputeYi: shared-Z energy + adjoint construction.
    group.bench_function("stage_yi", |b| {
        b.iter(|| {
            let e = ctx.compute_energy_yi_into(
                black_box(&utot_r),
                &utot_i,
                &mut y_r,
                &mut y_i,
                &mut scratch,
            );
            black_box(e)
        })
    });

    ctx.compute_energy_yi_into(&utot_r, &utot_i, &mut y_r, &mut y_i, &mut scratch);

    // Stage 3 — ComputeDeidrj: the cached contraction (du-only
    // recursion, geometry and u read back from the stage-1 cache).
    group.bench_function("stage_deidrj", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (k, &d) in neigh.iter().enumerate() {
                let (u_r, u_i) = cache.u(k, u_len);
                acc += ctx.compute_deidrj_cached(
                    black_box(d),
                    wts[k],
                    &cache.geom[k],
                    u_r,
                    u_i,
                    &y_r,
                    &y_i,
                    &mut scratch,
                )[0];
            }
            black_box(acc)
        })
    });

    // Flattened tables vs the retained direct quadruple loops — the
    // tentpole's headline comparison.
    ctx.compute_ui(&neigh, &mut scratch, 1);
    group.bench_function("bi_tables", |b| {
        b.iter(|| black_box(ctx.compute_bi(black_box(&scratch))[0]))
    });
    group.bench_function("bi_direct", |b| {
        b.iter(|| black_box(ctx.compute_bi_direct(black_box(&scratch))[0]))
    });
    group.bench_function("yi_tables", |b| {
        b.iter(|| {
            ctx.compute_yi(&mut scratch);
            black_box(scratch.y_r[5])
        })
    });
    group.bench_function("yi_direct", |b| {
        b.iter(|| {
            ctx.compute_yi_direct(&mut scratch);
            black_box(scratch.y_r[5])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
