//! Figure 4: saturation of normalized performance (atom-steps/s) on a
//! single NVIDIA H100 as a function of atom count, for LJ, ReaxFF, and
//! SNAP.
//!
//! Expected shapes (§5.1): SNAP saturates at far lower atom counts
//! ("the primary compute kernels expose several degrees of parallelism
//! beyond just particle count"); LJ and ReaxFF saturate at similar,
//! much larger counts; ReaxFF runs out of HBM before full saturation.

use lkk_bench::{
    eng, lj_comm, measure_lj, measure_reaxff, measure_snap, reaxff_comm, snap_comm, to_workload,
};
use lkk_core::pair::PairKokkosOptions;
use lkk_gpusim::cost::fits_in_hbm;
use lkk_gpusim::GpuArch;
use lkk_snap::SnapKernelConfig;

fn main() {
    let arch = GpuArch::h100();
    let lj = to_workload(
        "LJ",
        &measure_lj(110_000, arch.clone(), PairKokkosOptions::default()),
        lj_comm(),
    );
    let snap = to_workload(
        "SNAP",
        &measure_snap(16_000, arch.clone(), SnapKernelConfig::default()),
        snap_comm(),
    );
    let reax_m = measure_reaxff(20_000, arch.clone());
    let reax = to_workload("ReaxFF", &reax_m, reaxff_comm(30.0));

    // Bytes of device-resident state per atom (ReaxFF's big sparse
    // matrix is what makes it "run out of HBM": ~300 nnz × 12 B plus
    // bond/angle/torsion tables ≈ 6 kB/atom; LJ/SNAP ~1 kB).
    let footprint = |name: &str, n: f64| -> f64 {
        match name {
            "ReaxFF" => n * 6000.0,
            _ => n * 1000.0,
        }
    };

    println!("Figure 4: single-H100 saturation (atom-steps/s vs atoms)");
    print!("{:<10}", "atoms");
    for w in [&lj, &reax, &snap] {
        print!("{:>12}", w.name);
    }
    println!();
    let mut n = 1000.0f64;
    while n <= 128e6 {
        print!("{:<10}", eng(n));
        for w in [&lj, &reax, &snap] {
            if !fits_in_hbm(&arch, footprint(&w.name, n)) {
                print!("{:>12}", "OOM");
                continue;
            }
            let t = w.kernel_time(n, &arch);
            print!("{:>12}", eng(n / t));
        }
        println!();
        n *= 4.0;
    }
    println!();
    // Report the 50%-of-peak saturation points.
    for w in [&lj, &reax, &snap] {
        let peak = (0..20)
            .map(|k| {
                let n = 1000.0 * 2f64.powi(k);
                n / w.kernel_time(n, &arch)
            })
            .fold(0.0f64, f64::max);
        let mut sat = 0.0;
        for k in 0..20 {
            let n = 1000.0 * 2f64.powi(k);
            if n / w.kernel_time(n, &arch) > 0.5 * peak {
                sat = n;
                break;
            }
        }
        println!("{}: 50%-saturation at ~{} atoms", w.name, eng(sat));
    }
    println!("(paper: SNAP saturates at much lower atom counts than LJ/ReaxFF)");
}
