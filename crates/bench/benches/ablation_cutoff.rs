//! Ablation: how the half-vs-full neighbor list decision depends on
//! the cutoff (compute intensity).
//!
//! §4.1: "Which neighbor list style to use does not have a
//! one-size-fits-all answer. It highly depends on the hardware
//! architecture, the specific pair style, and the cutoff distance ...
//! the more compute intensive a pair style is the more likely it is
//! that half neighbor lists are the right choice."
//!
//! Longer cutoffs mean more pairs per atom: the full list's redundant
//! compute grows linearly with pair count while the half list's atomic
//! overhead grows the same way — but the *ratio* of redundant compute
//! to saved atomics shifts with the per-pair flop count, so the margin
//! narrows (and on atomic-strong hardware eventually flips).

use lkk_bench::{measure_lj_with_cutoff, step_time};
use lkk_core::pair::PairKokkosOptions;
use lkk_gpusim::GpuArch;

fn main() {
    println!("Ablation: LJ full/half advantage vs cutoff (2M atoms)");
    println!(
        "{:<14} {:>8} {:>12} {:>14} {:>11}",
        "arch", "cutoff", "pairs/atom", "full/half", "winner"
    );
    for arch in [GpuArch::h100(), GpuArch::mi250x_gcd()] {
        for &cut in &[2.5f64, 3.5, 5.0] {
            let full = measure_lj_with_cutoff(
                110_000,
                arch.clone(),
                PairKokkosOptions {
                    force_half: Some(false),
                    team_over_neighbors: false,
                },
                cut,
            );
            let half = measure_lj_with_cutoff(
                110_000,
                arch.clone(),
                PairKokkosOptions {
                    force_half: Some(true),
                    team_over_neighbors: false,
                },
                cut,
            );
            let n = 2e6;
            let ratio = step_time(&half, n, &arch) / step_time(&full, n, &arch);
            println!(
                "{:<14} {:>8.1} {:>12.1} {:>14.2} {:>11}",
                arch.name,
                cut,
                full.avg_neighbors,
                ratio,
                if ratio > 1.0 { "full" } else { "half" }
            );
        }
        println!();
    }
}
