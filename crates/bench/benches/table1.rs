//! Table 1: GPU architecture properties.
//!
//! Regenerates the paper's hardware table from the `lkk-gpusim`
//! descriptors (the values are asserted verbatim in
//! `lkk-gpusim::arch::tests`).

use lkk_gpusim::GpuArch;

fn main() {
    println!("Table 1: GPU architecture properties");
    println!(
        "{:<18} {:>9} {:>10} {:>7} {:>14}",
        "GPU", "BW", "Capacity", "FP64", "L1 + Shared"
    );
    for a in GpuArch::table1() {
        let cache = if a.unified_cache {
            format!("{:.0} kB", a.l1_kib)
        } else {
            format!("{:.0} + {:.0} kB", a.l1_kib, a.shared_kib)
        };
        println!(
            "{:<18} {:>6.1} TB/s {:>7.0} GB {:>4.1} TF {:>14}",
            a.name,
            a.hbm_bw_gbs / 1000.0,
            a.hbm_capacity_gib,
            a.fp64_tflops,
            cache
        );
    }
}
