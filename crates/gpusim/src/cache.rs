//! Cache modelling.
//!
//! Two layers:
//!
//! 1. [`CacheSim`] — a trace-driven, set-associative, LRU cache
//!    simulator. This is the "ground truth" substrate: feed it an
//!    address trace and it reports hits/misses exactly.
//! 2. [`analytic_hit_rate`] — the closed-form model the kernel cost
//!    model uses (simulating every address of a 16M-atom run would be
//!    prohibitive). The analytic model is validated against [`CacheSim`]
//!    in this module's tests on synthetic reuse traces.
//!
//! The analytic model captures the single effect the paper leans on in
//! §4.4 / Figure 3: a kernel with working set `W` enjoying cache
//! capacity `C` sees its reused bytes hit with probability ≈ 1 when
//! `W ≤ C`, decaying smoothly towards `C/W` when the working set spills.

/// Trace-driven set-associative LRU cache simulator.
///
/// Addresses are byte addresses; the simulator tracks cache lines of
/// `line_bytes`. Eviction is exact LRU within a set.
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_bytes: u64,
    n_sets: u64,
    ways: usize,
    /// `sets[s]` is the LRU stack of line tags, most recent last.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Create a cache of `capacity_bytes` with `ways`-way associativity
    /// and `line_bytes` lines. `capacity_bytes` must be a multiple of
    /// `ways * line_bytes`.
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(ways >= 1 && line_bytes.is_power_of_two());
        let n_lines = capacity_bytes / line_bytes;
        assert!(
            n_lines >= ways as u64 && n_lines.is_multiple_of(ways as u64),
            "capacity {capacity_bytes} not divisible into {ways}-way sets of {line_bytes}-byte lines"
        );
        let n_sets = n_lines / ways as u64;
        CacheSim {
            line_bytes,
            n_sets,
            ways,
            sets: vec![Vec::with_capacity(ways); n_sets as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// Fully-associative variant (single set).
    pub fn fully_associative(capacity_bytes: u64, line_bytes: u64) -> Self {
        let ways = (capacity_bytes / line_bytes) as usize;
        Self::new(capacity_bytes, ways.max(1), line_bytes)
    }

    /// Access one byte address. Returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line % self.n_sets) as usize;
        let stack = &mut self.sets[set];
        if let Some(pos) = stack.iter().position(|&t| t == line) {
            stack.remove(pos);
            stack.push(line);
            self.hits += 1;
            true
        } else {
            if stack.len() == self.ways {
                stack.remove(0);
            }
            stack.push(line);
            self.misses += 1;
            false
        }
    }

    /// Access a contiguous byte range (e.g. one loaded struct).
    pub fn access_range(&mut self, addr: u64, bytes: u64) {
        let first = addr / self.line_bytes;
        let last = (addr + bytes.max(1) - 1) / self.line_bytes;
        for line in first..=last {
            self.access(line * self.line_bytes);
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate over all accesses so far; 0 if none.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Forget contents and statistics.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

/// Analytic steady-state hit rate for the *reused* portion of a kernel's
/// traffic, given its working set `working_set_bytes` and the cache
/// capacity `capacity_bytes`.
///
/// For `W ≤ C` a loop repeatedly touching `W` bytes hits (after warm-up)
/// with rate → 1. For `W > C` with LRU and a cyclic trace the hit rate
/// collapses (classic LRU cliff), but real kernels have non-cyclic
/// mixing, for which random replacement is the better mental model: a
/// touched line survives until eviction with probability `C/W`. We blend
/// a smooth knee:
///
/// ```text
/// hit(W, C) = 1 / (1 + (W/C)^s)   normalized so hit→1 as W→0
/// ```
///
/// with sharpness `s = 2`, which matches the trace simulator on random
/// reuse traces to within a few percent (see tests) and reproduces the
/// 20-60% performance swings of Figure 3.
pub fn analytic_hit_rate(working_set_bytes: f64, capacity_bytes: f64) -> f64 {
    if working_set_bytes <= 0.0 {
        return 1.0;
    }
    if capacity_bytes <= 0.0 {
        return 0.0;
    }
    let ratio = working_set_bytes / capacity_bytes;
    // Below capacity: essentially all reuses hit.
    // Above capacity: ~C/W of reuses hit (random-replacement survival).
    if ratio <= 1.0 {
        // Smooth approach to 1.0; at W == C some conflict misses remain.
        1.0 - 0.1 * ratio * ratio
    } else {
        0.9 / ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_misses_then_hits() {
        let mut c = CacheSim::new(1024, 4, 64); // 16 lines
        for i in 0..8u64 {
            assert!(!c.access(i * 64));
        }
        for i in 0..8u64 {
            assert!(c.access(i * 64));
        }
        assert_eq!(c.hits(), 8);
        assert_eq!(c.misses(), 8);
    }

    #[test]
    fn lru_evicts_oldest() {
        // Fully associative, 2 lines.
        let mut c = CacheSim::fully_associative(128, 64);
        c.access(0); // miss, cache {0}
        c.access(64); // miss, cache {0,1}
        c.access(128); // miss, evict 0 -> {1,2}
        assert!(!c.access(0)); // 0 was evicted
        assert!(c.access(128)); // 2 still resident
    }

    #[test]
    fn access_range_spans_lines() {
        let mut c = CacheSim::new(4096, 4, 64);
        c.access_range(60, 8); // straddles two lines
        assert_eq!(c.accesses(), 2);
    }

    #[test]
    fn reset_clears() {
        let mut c = CacheSim::new(1024, 4, 64);
        c.access(0);
        c.reset();
        assert_eq!(c.accesses(), 0);
        assert!(!c.access(0));
    }

    /// The analytic knee matches the trace simulator on random reuse
    /// traces: `W` bytes touched uniformly at random, capacity `C`.
    #[test]
    fn analytic_matches_simulator_on_random_reuse() {
        // Simple deterministic LCG so the test has no dependencies.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        let capacity = 64 * 1024u64;
        for &ws_factor in &[0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let working_set = (capacity as f64 * ws_factor) as u64;
            let n_lines = working_set / 64;
            let mut sim = CacheSim::new(capacity, 8, 64);
            // Warm up then measure.
            for _ in 0..(4 * n_lines) {
                let line = rng() % n_lines;
                sim.access(line * 64);
            }
            sim.hits = 0;
            sim.misses = 0;
            for _ in 0..(8 * n_lines) {
                let line = rng() % n_lines;
                sim.access(line * 64);
            }
            let analytic = analytic_hit_rate(working_set as f64, capacity as f64);
            let measured = sim.hit_rate();
            assert!(
                (analytic - measured).abs() < 0.12,
                "ws={ws_factor}xC: analytic {analytic:.3} vs simulated {measured:.3}"
            );
        }
    }

    #[test]
    fn analytic_limits() {
        assert_eq!(analytic_hit_rate(0.0, 1024.0), 1.0);
        assert_eq!(analytic_hit_rate(1024.0, 0.0), 0.0);
        assert!(analytic_hit_rate(10.0, 1024.0) > 0.99);
        assert!(analytic_hit_rate(1024.0 * 100.0, 1024.0) < 0.02);
        // Monotone non-increasing in W.
        let mut prev = 1.0;
        for i in 1..100 {
            let h = analytic_hit_rate(i as f64 * 100.0, 1024.0);
            assert!(h <= prev + 1e-12);
            prev = h;
        }
    }
}
