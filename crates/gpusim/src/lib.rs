//! Simulated GPU architectures for the `lammps-kk` stack.
//!
//! This crate is the substitute for real GPU hardware (see `DESIGN.md` §2):
//! it provides
//!
//! * [`arch`] — architecture descriptors encoding Table 1 of the paper
//!   (HBM bandwidth and capacity, FP64 throughput, L1/shared cache sizes)
//!   plus the quantities the paper discusses qualitatively: atomic-add
//!   throughput, kernel launch latency, warp width, maximum resident
//!   threads, and host-device link characteristics.
//! * [`cache`] — both an analytic cache hit-rate model and a trace-driven
//!   set-associative LRU cache simulator used to validate it.
//! * [`carveout`] — the NVIDIA unified-cache "shared memory carveout"
//!   knob (Figure 3 of the paper) and the fixed splits of AMD/Intel parts.
//! * [`cost`] — the kernel performance model: a roofline over memory,
//!   FP64, L1 and atomic throughput, folded with an occupancy /
//!   launch-latency model. Event counts are supplied by instrumented
//!   kernels executing functionally on the CPU (`lkk-kokkos`).
//! * [`subscriber`] — the Kokkos-Tools-style profiling event interface:
//!   a [`ProfileSubscriber`] trait fired by the `lkk-kokkos` dispatch
//!   layer (regions, kernel launches, kernel stats, transfers) and a
//!   [`StatsAccumulator`] that merges the stream per (region, kernel).
//! * [`transfer`] — host-device transfer model used for the
//!   device-resident vs. offload-per-step ablation.
//!
//! The model is intentionally simple and fully documented: every figure
//! of the paper that depends on hardware behaviour is regenerated from
//! these few parameters, so the provenance of each reproduced trend is
//! auditable.

pub mod arch;
pub mod cache;
pub mod carveout;
pub mod cost;
pub mod report;
pub mod subscriber;
pub mod transfer;

pub use arch::{CpuArch, GpuArch, Vendor};
pub use cache::{analytic_hit_rate, CacheSim};
pub use carveout::CacheConfig;
pub use cost::{KernelStats, KernelTime, Roofline, RooflineClass};
pub use report::{profile, render, ProfileRow};
pub use subscriber::{
    AccumulatedProfile, ProfileSubscriber, StatsAccumulator, TransferDir, TransferTotals,
};
pub use transfer::LinkModel;
