//! Host ↔ device transfer model.
//!
//! Used for the device-resident (KOKKOS package) versus
//! offload-per-step (GPU package) ablation described in the paper's
//! introduction: the 2010 GPU package "requires frequent data copies
//! between host and device in every timestep", with "limited transfer
//! speed and high latency between the separate memories".

use crate::arch::GpuArch;

/// A host-device link (PCIe or NVLink-C2C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Sustained bandwidth, GB/s (one direction).
    pub bw_gbs: f64,
    /// Per-transfer latency, microseconds.
    pub latency_us: f64,
}

impl LinkModel {
    pub fn of(arch: &GpuArch) -> Self {
        LinkModel {
            bw_gbs: arch.link_bw_gbs,
            latency_us: arch.link_latency_us,
        }
    }

    /// Time in seconds to move `bytes` in `transfers` separate copies.
    pub fn time(&self, bytes: f64, transfers: f64) -> f64 {
        bytes / (self.bw_gbs * 1e9) + transfers * self.latency_us * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuArch;

    #[test]
    fn batching_transfers_amortizes_latency() {
        let link = LinkModel::of(&GpuArch::h100());
        let one = link.time(1e6, 1.0);
        let many = link.time(1e6, 100.0);
        assert!(many > one);
        assert!((many - one - 99.0 * link.latency_us * 1e-6).abs() < 1e-12);
    }

    #[test]
    fn nvlink_c2c_beats_pcie() {
        let pcie = LinkModel::of(&GpuArch::h100());
        let c2c = LinkModel::of(&GpuArch::gh200());
        assert!(c2c.time(1e9, 1.0) < pcie.time(1e9, 1.0) / 5.0);
    }
}
