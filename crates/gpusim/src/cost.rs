//! The kernel performance model.
//!
//! A kernel is summarized by a [`KernelStats`] record of *measured*
//! event counts (the instrumented kernels in `lkk-kokkos` fill these in
//! while executing functionally on the host). The model folds the
//! counts with a [`GpuArch`](crate::arch::GpuArch) descriptor and a
//! [`CacheConfig`](crate::carveout::CacheConfig) into a predicted
//! execution time, as the maximum of four throughput limiters — HBM
//! bandwidth, FP64 issue rate, aggregate L1 throughput, and FP64
//! atomic-add throughput — divided by a utilization factor that captures
//! occupancy (resident-thread) limits and problem-size starvation, plus
//! a fixed launch latency.
//!
//! This is exactly the vocabulary in which the paper explains its
//! results: "ComputeUi was limited by double precision floating point
//! addition", "ComputeYi was limited by L1 cache throughput" (§4.3.4),
//! "occupancy is proportional to shared memory utilization" (§4.4),
//! "hardware-induced thread starvation ... and kernel launch overheads
//! reduce the achievable performance" (§5.1).

use crate::arch::GpuArch;
use crate::cache::analytic_hit_rate;
use crate::carveout::CacheConfig;

/// Measured event counts for one kernel launch (or one logical kernel
/// per timestep, summed over launches).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel name, e.g. `"ComputeUi"`.
    pub name: String,
    /// Profiling region path active when the kernel was recorded
    /// (e.g. `"step/pair"`), `""` outside any region. Attached by the
    /// `lkk-kokkos` profiling layer; purely observational.
    pub region: String,
    /// Exposed parallel work items (GPU threads' worth of work).
    pub work_items: f64,
    /// Double-precision floating point operations.
    pub flops: f64,
    /// Compulsory (streaming) DRAM traffic in bytes — data touched once.
    pub dram_bytes: f64,
    /// Traffic with reuse: bytes that hit in L1 when the working set
    /// fits (neighbor coordinates for LJ, `U_j` matrices for ComputeYi).
    pub reused_bytes: f64,
    /// Traffic that is always served by L1/constant caches and never
    /// reaches DRAM (small warp-uniform lookup tables — ComputeYi's
    /// coupling coefficients, §4.3.4). Counts against L1 throughput
    /// only.
    pub l1_only_bytes: f64,
    /// The per-SM reuse working set in bytes, measured from the data
    /// actually touched by one SM's worth of work.
    pub working_set_bytes: f64,
    /// FP64 atomic add operations.
    pub atomic_f64_ops: f64,
    /// Software-managed scratch requested per team, bytes.
    pub scratch_bytes_per_team: f64,
    /// Threads per team (for occupancy math). 0 ⇒ flat range policy,
    /// treated as warp-sized blocks.
    pub threads_per_team: u32,
    /// Independent instruction streams per thread (work batching / ILP;
    /// §4.3.4). 1.0 for unbatched kernels.
    pub ilp: f64,
    /// Fraction of SIMT lanes doing useful work. 1.0 = fully convergent;
    /// ReaxFF's unpreprocessed 4-body kernel has <0.05 (§4.2.1).
    pub convergence: f64,
    /// Number of kernel launches represented by these counts.
    pub launches: f64,
}

impl KernelStats {
    /// A zeroed record with sane defaults (fully convergent, no ILP
    /// batching, one launch).
    pub fn new(name: impl Into<String>) -> Self {
        KernelStats {
            name: name.into(),
            region: String::new(),
            work_items: 0.0,
            flops: 0.0,
            dram_bytes: 0.0,
            reused_bytes: 0.0,
            l1_only_bytes: 0.0,
            working_set_bytes: 0.0,
            atomic_f64_ops: 0.0,
            scratch_bytes_per_team: 0.0,
            threads_per_team: 0,
            ilp: 1.0,
            convergence: 1.0,
            launches: 1.0,
        }
    }

    /// Sum event counts of `other` into `self` (keeping `self`'s
    /// configuration fields: scratch, team size, ilp, convergence).
    pub fn accumulate(&mut self, other: &KernelStats) {
        self.work_items += other.work_items;
        self.flops += other.flops;
        self.dram_bytes += other.dram_bytes;
        self.reused_bytes += other.reused_bytes;
        self.l1_only_bytes += other.l1_only_bytes;
        self.working_set_bytes = self.working_set_bytes.max(other.working_set_bytes);
        self.atomic_f64_ops += other.atomic_f64_ops;
        self.launches += other.launches;
    }
}

/// Which throughput resource bounds a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    HbmBandwidth,
    Fp64,
    L1Throughput,
    AtomicThroughput,
    LaunchLatency,
}

/// The model's verdict for one kernel on one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTime {
    /// Predicted execution time in seconds (including launch latency).
    pub seconds: f64,
    /// The binding throughput limiter.
    pub limiter: Limiter,
    /// Utilization in [0, 1]: 1 means the device was saturated.
    pub utilization: f64,
    /// L1 hit rate used for the reused traffic.
    pub l1_hit_rate: f64,
    /// Achieved occupancy (resident threads / max resident threads).
    pub occupancy: f64,
    /// Individual limiter times (seconds, at full utilization).
    pub t_hbm: f64,
    pub t_fp64: f64,
    pub t_l1: f64,
    pub t_atomic: f64,
}

/// How much of FP64 peak a single instruction stream can sustain; extra
/// independent streams (ILP ≥ `ILP_SATURATION`) reach peak. §4.3.4: the
/// compiler interleaves independent work, "hiding serial dependencies,
/// and possibly improving throughput".
const ILP_SATURATION: f64 = 4.0;
const ILP_BASE_EFFICIENCY: f64 = 0.45;

fn issue_efficiency(ilp: f64) -> f64 {
    let x = (ilp.max(1.0) - 1.0) / (ILP_SATURATION - 1.0);
    (ILP_BASE_EFFICIENCY + (1.0 - ILP_BASE_EFFICIENCY) * x.min(1.0)).min(1.0)
}

impl KernelStats {
    /// Predict the execution time of this kernel on `arch` with cache
    /// configuration `cfg`.
    pub fn time_on(&self, arch: &GpuArch, cfg: &CacheConfig) -> KernelTime {
        // --- Cache: reused traffic filtered by L1 hit rate. ---
        let hit = analytic_hit_rate(self.working_set_bytes, cfg.l1_bytes());
        let dram = self.dram_bytes + self.reused_bytes * (1.0 - hit);
        let t_hbm = dram / (arch.hbm_bw_gbs * 1e9);

        // --- L1: all addressed traffic passes through L1. ---
        let l1_traffic = self.dram_bytes + self.reused_bytes + self.l1_only_bytes;
        let t_l1 = l1_traffic / (arch.l1_bw_gbs * 1e9);

        // --- FP64: divergence wastes lanes, ILP raises issue rate. ---
        let eff = issue_efficiency(self.ilp) * self.convergence.clamp(1e-3, 1.0);
        let t_fp64 = self.flops / (arch.fp64_tflops * 1e12 * eff);

        // --- Atomics. ---
        let t_atomic = self.atomic_f64_ops / (arch.atomic_f64_gops * 1e9);

        let (t_limit, limiter) = [
            (t_hbm, Limiter::HbmBandwidth),
            (t_fp64, Limiter::Fp64),
            (t_l1, Limiter::L1Throughput),
            (t_atomic, Limiter::AtomicThroughput),
        ]
        .into_iter()
        .fold((0.0, Limiter::HbmBandwidth), |acc, x| {
            if x.0 > acc.0 {
                x
            } else {
                acc
            }
        });

        // --- Occupancy: shared-memory limits on resident threads. ---
        let threads_per_sm = arch.max_resident_threads as f64 / arch.sm_count as f64;
        let occupancy = if self.scratch_bytes_per_team > 0.0 {
            let team = self.threads_per_team.max(arch.warp_width) as f64;
            let teams_fit = (cfg.shared_bytes() / self.scratch_bytes_per_team).floor();
            ((teams_fit * team) / threads_per_sm).clamp(0.0, 1.0)
        } else {
            1.0
        };

        // --- Problem-size starvation (Fig. 4): too few work items to
        //     fill the resident-thread capacity twice over. ---
        let resident_capacity = occupancy * arch.max_resident_threads as f64;
        let saturation = 2.0 * arch.max_resident_threads as f64;
        let starvation = ((self.work_items * self.ilp.max(1.0)) / saturation).min(1.0);

        // Latency hiding: both fewer resident threads (occupancy) and
        // fewer total work items slow a kernel down proportionally.
        let occ_factor = if resident_capacity > 0.0 {
            (resident_capacity / arch.max_resident_threads as f64).clamp(0.05, 1.0)
        } else {
            0.05
        };
        let utilization = (starvation * occ_factor).clamp(1e-4, 1.0);

        let launch = self.launches * arch.launch_latency_us * 1e-6;
        let seconds = t_limit / utilization + launch;
        let limiter = if launch > t_limit / utilization {
            Limiter::LaunchLatency
        } else {
            limiter
        };

        KernelTime {
            seconds,
            limiter,
            utilization,
            l1_hit_rate: hit,
            occupancy,
            t_hbm,
            t_fp64,
            t_l1,
            t_atomic,
        }
    }

    /// Convenience: time with the Kokkos-like default carveout heuristic.
    pub fn time_on_default(&self, arch: &GpuArch) -> KernelTime {
        let cfg = CacheConfig::default_for_kernel(
            arch,
            self.scratch_bytes_per_team,
            self.threads_per_team.max(arch.warp_width),
        );
        self.time_on(arch, &cfg)
    }
}

/// Does a resident data footprint fit in device memory? (Fig. 4:
/// "ReaxFF ran out of HBM before reaching full saturation".)
pub fn fits_in_hbm(arch: &GpuArch, footprint_bytes: f64) -> bool {
    footprint_bytes <= 0.9 * arch.hbm_capacity_bytes()
}

/// Roofline classification of a kernel against an architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RooflineClass {
    /// Arithmetic intensity below the machine balance: DRAM traffic
    /// bounds throughput.
    MemoryBound,
    /// Arithmetic intensity above the machine balance: FP64 issue rate
    /// bounds throughput.
    ComputeBound,
    /// Too little work to saturate either resource (launch latency or
    /// thread starvation dominates); the roofline position is moot.
    LatencyBound,
}

/// A kernel's position on the classical roofline: measured arithmetic
/// intensity (flop/byte of DRAM traffic) against the machine balance
/// (peak FP64 flop/s over peak HBM byte/s) of one architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// flops / DRAM bytes actually moved (after L1 filtering).
    pub arithmetic_intensity: f64,
    /// Arch FP64 peak divided by HBM bandwidth, flop/byte.
    pub machine_balance: f64,
    pub class: RooflineClass,
}

impl KernelStats {
    /// Classify this kernel on `arch`'s roofline. The DRAM traffic uses
    /// the same L1-filtered estimate as [`KernelStats::time_on`] with the
    /// default carveout, so the classification agrees with the limiter
    /// the cost model reports.
    pub fn roofline_on(&self, arch: &GpuArch) -> Roofline {
        let t = self.time_on_default(arch);
        let machine_balance = (arch.fp64_tflops * 1e12) / (arch.hbm_bw_gbs * 1e9);
        // Reconstruct the filtered DRAM traffic from the limiter time.
        let dram = t.t_hbm * arch.hbm_bw_gbs * 1e9;
        let arithmetic_intensity = if dram > 0.0 {
            self.flops / dram
        } else {
            f64::INFINITY
        };
        let class = match t.limiter {
            Limiter::LaunchLatency => RooflineClass::LatencyBound,
            _ if arithmetic_intensity < machine_balance => RooflineClass::MemoryBound,
            _ => RooflineClass::ComputeBound,
        };
        Roofline {
            arithmetic_intensity,
            machine_balance,
            class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_stream(name: &str) -> KernelStats {
        let mut s = KernelStats::new(name);
        s.work_items = 1e7;
        s.dram_bytes = 1e9;
        s.flops = 1e9;
        s
    }

    #[test]
    fn bandwidth_bound_kernel_scales_with_bw() {
        let s = big_stream("stream");
        let h = GpuArch::h100();
        let m = GpuArch::mi300a();
        let th = s.time_on_default(&h);
        let tm = s.time_on_default(&m);
        assert_eq!(th.limiter, Limiter::HbmBandwidth);
        // MI300A has 5.3/3.3x the bandwidth of H100.
        let ratio = th.seconds / tm.seconds;
        assert!((ratio - 5300.0 / 3300.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn compute_bound_kernel_identified() {
        let mut s = KernelStats::new("dgemm-ish");
        s.work_items = 1e7;
        s.flops = 1e13;
        s.dram_bytes = 1e6;
        s.ilp = 8.0;
        let t = s.time_on_default(&GpuArch::h100());
        assert_eq!(t.limiter, Limiter::Fp64);
        // 1e13 flops at 34 TF peak ≈ 0.29 ms at full efficiency.
        assert!(t.seconds > 1e13 / 34e12 * 0.99);
    }

    #[test]
    fn atomics_hurt_more_on_amd() {
        let mut s = KernelStats::new("scatter");
        s.work_items = 1e7;
        s.atomic_f64_ops = 1e9;
        let th = s.time_on_default(&GpuArch::h100());
        let tm = s.time_on_default(&GpuArch::mi250x_gcd());
        assert_eq!(th.limiter, Limiter::AtomicThroughput);
        assert!(tm.seconds > 3.0 * th.seconds);
    }

    #[test]
    fn small_problems_are_latency_bound() {
        let mut s = KernelStats::new("tiny");
        s.work_items = 1000.0;
        s.dram_bytes = 1000.0 * 24.0;
        let t = s.time_on_default(&GpuArch::h100());
        assert_eq!(t.limiter, Limiter::LaunchLatency);
        // Throughput per atom rises with N in the starved regime.
        let mut s2 = s.clone();
        s2.work_items = 10_000.0;
        s2.dram_bytes *= 10.0;
        let t2 = s2.time_on_default(&GpuArch::h100());
        let rate1 = s.work_items / t.seconds;
        let rate2 = s2.work_items / t2.seconds;
        assert!(rate2 > 5.0 * rate1);
    }

    #[test]
    fn ilp_improves_fp64_throughput() {
        let mut s = KernelStats::new("recursion");
        s.work_items = 1e7;
        s.flops = 1e12;
        s.ilp = 1.0;
        let t1 = s.time_on_default(&GpuArch::h100());
        s.ilp = 4.0;
        let t4 = s.time_on_default(&GpuArch::h100());
        assert!(
            t1.seconds / t4.seconds > 1.8,
            "ILP speedup {:.2}",
            t1.seconds / t4.seconds
        );
    }

    #[test]
    fn divergence_wastes_compute() {
        let mut s = KernelStats::new("divergent");
        s.work_items = 1e7;
        s.flops = 1e12;
        s.convergence = 0.05;
        let bad = s.time_on_default(&GpuArch::h100());
        s.convergence = 1.0;
        let good = s.time_on_default(&GpuArch::h100());
        assert!(bad.seconds / good.seconds > 10.0);
    }

    #[test]
    fn scratch_limits_occupancy_and_carveout_restores_it() {
        let h = GpuArch::h100();
        let mut s = KernelStats::new("ComputeUi-like");
        s.work_items = 1e7;
        s.flops = 1e12;
        s.ilp = 4.0;
        s.scratch_bytes_per_team = 24.0 * 1024.0;
        s.threads_per_team = 128;
        // Small carveout: little shared memory, poor occupancy.
        let lo = s.time_on(&h, &CacheConfig::from_carveout(&h, 0.1));
        // Max carveout: high occupancy.
        let hi = s.time_on(&h, &CacheConfig::from_carveout(&h, 1.0));
        assert!(hi.occupancy > lo.occupancy);
        assert!(
            lo.seconds > 1.5 * hi.seconds,
            "lo {} hi {}",
            lo.seconds,
            hi.seconds
        );
    }

    #[test]
    fn l1_working_set_spill_slows_cache_sensitive_kernel() {
        let h = GpuArch::h100();
        let mut s = KernelStats::new("lj-like");
        s.work_items = 1e7;
        s.reused_bytes = 1e9;
        s.dram_bytes = 1e8;
        // Working set fits in full 256k L1 but not in 32k.
        s.working_set_bytes = 128.0 * 1024.0;
        let big_l1 = s.time_on(&h, &CacheConfig::from_carveout(&h, 0.0));
        let small_l1 = s.time_on(&h, &CacheConfig::from_carveout(&h, 1.0));
        assert!(big_l1.l1_hit_rate > 0.9);
        assert!(small_l1.l1_hit_rate < 0.3);
        assert!(small_l1.seconds > 1.4 * big_l1.seconds);
    }

    #[test]
    fn accumulate_sums_counts() {
        let mut a = KernelStats::new("a");
        a.flops = 1.0;
        a.launches = 1.0;
        let mut b = KernelStats::new("b");
        b.flops = 2.0;
        b.dram_bytes = 5.0;
        b.launches = 1.0;
        a.accumulate(&b);
        assert_eq!(a.flops, 3.0);
        assert_eq!(a.dram_bytes, 5.0);
        assert_eq!(a.launches, 2.0);
    }

    #[test]
    fn roofline_classifies_memory_and_compute() {
        let h = GpuArch::h100();
        let stream = big_stream("stream");
        let r = stream.roofline_on(&h);
        assert_eq!(r.class, RooflineClass::MemoryBound);
        assert!(r.arithmetic_intensity < r.machine_balance);

        let mut dense = KernelStats::new("dense");
        dense.work_items = 1e7;
        dense.flops = 1e13;
        dense.dram_bytes = 1e6;
        dense.ilp = 8.0;
        let r = dense.roofline_on(&h);
        assert_eq!(r.class, RooflineClass::ComputeBound);

        let mut tiny = KernelStats::new("tiny");
        tiny.work_items = 100.0;
        tiny.dram_bytes = 2400.0;
        assert_eq!(tiny.roofline_on(&h).class, RooflineClass::LatencyBound);
    }

    #[test]
    fn hbm_capacity_check() {
        let h = GpuArch::h100();
        assert!(fits_in_hbm(&h, 10e9));
        assert!(!fits_in_hbm(&h, 100e9));
    }
}
