//! Architecture descriptors.
//!
//! The numeric columns of Table 1 in the paper are encoded verbatim in
//! the constructors below; the remaining parameters (SM counts, warp
//! widths, atomic throughput, launch latency, link bandwidth) come from
//! vendor documentation or are calibrated so that the model reproduces
//! the qualitative statements in the paper (e.g. "on NVIDIA GPUs the
//! atomic throughput is high enough that the overhead of atomics can be
//! lower than the cost of the redundant computation", §4.1; "higher
//! launch latencies on GH200", Appendix C.1). Each constructor documents
//! its provenance.

/// GPU vendor, used for vendor-specific behaviour such as the
/// NVIDIA-only dynamic shared-memory carveout (§4.4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    Nvidia,
    Amd,
    Intel,
}

/// A single logical GPU (one GCD of an MI250X, one stack of a PVC, one
/// full NVIDIA part), as used throughout the paper's single-GPU results.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuArch {
    /// Marketing name, e.g. `"NVIDIA H100"`.
    pub name: &'static str,
    pub vendor: Vendor,
    /// HBM bandwidth in GB/s (Table 1 "BW").
    pub hbm_bw_gbs: f64,
    /// HBM capacity in GiB (Table 1 "Capacity").
    pub hbm_capacity_gib: f64,
    /// FP64 vector throughput in TFLOP/s, excluding matrix hardware
    /// (Table 1 "FP64").
    pub fp64_tflops: f64,
    /// Hardware-managed L1 data cache per SM/CU in KiB. For NVIDIA this
    /// is the *unified* L1+shared pool (Table 1 lists the combined size);
    /// the split is chosen at launch via the carveout (see [`crate::carveout`]).
    pub l1_kib: f64,
    /// Software-managed scratch (shared memory / LDS / SLM) per SM/CU in
    /// KiB. Zero for NVIDIA (the unified pool is split dynamically).
    pub shared_kib: f64,
    /// Whether L1 and shared memory share one configurable pool.
    pub unified_cache: bool,
    /// Number of streaming multiprocessors / compute units.
    pub sm_count: u32,
    /// SIMT width: 32 on NVIDIA/Intel, 64 on AMD (§4.3.2).
    pub warp_width: u32,
    /// Maximum simultaneously resident threads on the whole device.
    /// The paper: "now exceed 200,000 simultaneously active threads" (§5.1).
    pub max_resident_threads: u32,
    /// Kernel launch latency in microseconds. Appendix C.1 attributes the
    /// deep-strong-scaling gap between Alps and Eos to "higher launch
    /// latencies on GH200".
    pub launch_latency_us: f64,
    /// Sustained device-wide FP64 *scatter* atomic-add throughput in
    /// 1e9 ops/s (unstructured targets with occasional conflicts, the
    /// force-array pattern). NVIDIA parts have fast L2-resident FP64
    /// atomics; AMD/Intel parts emulate via CAS loops and sustain much
    /// less (§4.1).
    pub atomic_f64_gops: f64,
    /// Aggregate L1 cache bandwidth in GB/s (all SMs). ComputeYi is "L1
    /// cache throughput" limited (§4.3.4), so this matters.
    pub l1_bw_gbs: f64,
    /// L2 capacity in MiB (Appendix C: H100 50 MiB vs GH200 60 MiB).
    pub l2_mib: f64,
    /// Host link bandwidth in GB/s (PCIe gen4/5 or NVLink-C2C).
    pub link_bw_gbs: f64,
    /// Host link latency per transfer in microseconds.
    pub link_latency_us: f64,
}

impl GpuArch {
    /// NVIDIA V100-16GB-SXM3. Table 1: 0.9 TB/s, 16 GB, 7.8 TF, 128 kB
    /// unified L1+shared. 80 SMs, 2048 threads/SM.
    pub fn v100() -> Self {
        GpuArch {
            name: "NVIDIA V100",
            vendor: Vendor::Nvidia,
            hbm_bw_gbs: 900.0,
            hbm_capacity_gib: 16.0,
            fp64_tflops: 7.8,
            l1_kib: 128.0,
            shared_kib: 0.0,
            unified_cache: true,
            sm_count: 80,
            warp_width: 32,
            max_resident_threads: 80 * 2048,
            launch_latency_us: 6.0,
            atomic_f64_gops: 100.0,
            l1_bw_gbs: 80.0 * 128.0,
            l2_mib: 6.0,
            link_bw_gbs: 16.0,
            link_latency_us: 8.0,
        }
    }

    /// NVIDIA A100-40GB-SXM4. Table 1: 1.5 TB/s, 40 GB, 9.7 TF, 192 kB.
    pub fn a100() -> Self {
        GpuArch {
            name: "NVIDIA A100",
            vendor: Vendor::Nvidia,
            hbm_bw_gbs: 1500.0,
            hbm_capacity_gib: 40.0,
            fp64_tflops: 9.7,
            l1_kib: 192.0,
            shared_kib: 0.0,
            unified_cache: true,
            sm_count: 108,
            warp_width: 32,
            max_resident_threads: 108 * 2048,
            launch_latency_us: 5.0,
            atomic_f64_gops: 200.0,
            l1_bw_gbs: 108.0 * 160.0,
            l2_mib: 40.0,
            link_bw_gbs: 25.0,
            link_latency_us: 8.0,
        }
    }

    /// NVIDIA H100-HBM3-SXM5. Table 1: 3.3 TB/s, 80 GB, 34 TF, 256 kB.
    pub fn h100() -> Self {
        GpuArch {
            name: "NVIDIA H100",
            vendor: Vendor::Nvidia,
            hbm_bw_gbs: 3300.0,
            hbm_capacity_gib: 80.0,
            fp64_tflops: 34.0,
            l1_kib: 256.0,
            shared_kib: 0.0,
            unified_cache: true,
            sm_count: 132,
            warp_width: 32,
            max_resident_threads: 132 * 2048,
            launch_latency_us: 4.0,
            atomic_f64_gops: 400.0,
            l1_bw_gbs: 132.0 * 256.0,
            l2_mib: 50.0,
            link_bw_gbs: 55.0,
            link_latency_us: 6.0,
        }
    }

    /// NVIDIA GH200 (Grace-Hopper). Table 1: 4.0 TB/s, 96 GB, 34 TF,
    /// 256 kB. Appendix C: +20% bandwidth/capacity/L2 over H100, same
    /// FP64 and unified-cache capacity, *higher* launch latency, and a
    /// fast NVLink-C2C host link.
    pub fn gh200() -> Self {
        GpuArch {
            name: "NVIDIA GH200",
            vendor: Vendor::Nvidia,
            hbm_bw_gbs: 4000.0,
            hbm_capacity_gib: 96.0,
            fp64_tflops: 34.0,
            l1_kib: 256.0,
            shared_kib: 0.0,
            unified_cache: true,
            sm_count: 132,
            warp_width: 32,
            max_resident_threads: 132 * 2048,
            launch_latency_us: 7.0,
            atomic_f64_gops: 400.0,
            l1_bw_gbs: 132.0 * 256.0,
            l2_mib: 60.0,
            link_bw_gbs: 450.0,
            link_latency_us: 2.0,
        }
    }

    /// One GCD (half) of an AMD MI250X, as used on Frontier. Table 1:
    /// 1.6 TB/s, 64 GB, 24 TF, 16 kB L1 + 64 kB LDS per CU. 110 CUs per
    /// GCD, wavefront width 64.
    pub fn mi250x_gcd() -> Self {
        GpuArch {
            name: "AMD MI250X/2",
            vendor: Vendor::Amd,
            hbm_bw_gbs: 1600.0,
            hbm_capacity_gib: 64.0,
            fp64_tflops: 24.0,
            l1_kib: 16.0,
            shared_kib: 64.0,
            unified_cache: false,
            sm_count: 110,
            warp_width: 64,
            max_resident_threads: 110 * 2048,
            launch_latency_us: 8.0,
            atomic_f64_gops: 60.0,
            l1_bw_gbs: 110.0 * 64.0,
            l2_mib: 8.0,
            link_bw_gbs: 36.0,
            link_latency_us: 10.0,
        }
    }

    /// AMD MI300A APU, as used on El Capitan. Table 1: 5.3 TB/s, 128 GB,
    /// 61 TF, 32 kB L1 + 64 kB LDS. 228 CUs.
    pub fn mi300a() -> Self {
        GpuArch {
            name: "AMD MI300A",
            vendor: Vendor::Amd,
            hbm_bw_gbs: 5300.0,
            hbm_capacity_gib: 128.0,
            fp64_tflops: 61.0,
            l1_kib: 32.0,
            shared_kib: 64.0,
            unified_cache: false,
            sm_count: 228,
            warp_width: 64,
            max_resident_threads: 228 * 2048,
            launch_latency_us: 7.0,
            atomic_f64_gops: 150.0,
            l1_bw_gbs: 228.0 * 128.0,
            l2_mib: 32.0,
            link_bw_gbs: 128.0,
            link_latency_us: 3.0,
        }
    }

    /// One stack (half) of an Intel Data Center GPU Max 1550 ("PVC"), as
    /// used on Aurora. Table 1: 1.6 TB/s, 64 GB, 26 TF, 128 kB SLM
    /// (hardware L1 size not listed; we model a small 32 kB L1).
    pub fn pvc_stack() -> Self {
        GpuArch {
            name: "Intel PVC stack",
            vendor: Vendor::Intel,
            hbm_bw_gbs: 1600.0,
            hbm_capacity_gib: 64.0,
            fp64_tflops: 26.0,
            l1_kib: 32.0,
            shared_kib: 128.0,
            unified_cache: false,
            sm_count: 64,
            warp_width: 32,
            max_resident_threads: 64 * 4096,
            launch_latency_us: 10.0,
            atomic_f64_gops: 80.0,
            l1_bw_gbs: 64.0 * 128.0,
            l2_mib: 204.0,
            link_bw_gbs: 64.0,
            link_latency_us: 8.0,
        }
    }

    /// Look up a descriptor by short name (`"h100"`, `"mi300a"`, ...),
    /// as used by the `package kokkos device <arch>` input command.
    pub fn by_name(name: &str) -> Option<GpuArch> {
        match name {
            "v100" => Some(Self::v100()),
            "a100" => Some(Self::a100()),
            "h100" => Some(Self::h100()),
            "gh200" => Some(Self::gh200()),
            "mi250x" => Some(Self::mi250x_gcd()),
            "mi300a" => Some(Self::mi300a()),
            "pvc" => Some(Self::pvc_stack()),
            _ => None,
        }
    }

    /// All seven descriptors, in Table-1 row order.
    pub fn table1() -> Vec<GpuArch> {
        vec![
            Self::v100(),
            Self::a100(),
            Self::h100(),
            Self::gh200(),
            Self::mi250x_gcd(),
            Self::mi300a(),
            Self::pvc_stack(),
        ]
    }

    /// Total unified / combined L1-class capacity per SM in KiB
    /// (L1 + shared for split designs; the single pool for NVIDIA).
    pub fn l1_class_kib(&self) -> f64 {
        self.l1_kib + self.shared_kib
    }

    /// HBM capacity in bytes.
    pub fn hbm_capacity_bytes(&self) -> f64 {
        self.hbm_capacity_gib * 1024.0 * 1024.0 * 1024.0
    }

    /// The atom count at which a kernel exposing `items_per_atom` work
    /// items saturates the device, assuming a couple of waves are needed
    /// to hide latency.
    pub fn saturation_items(&self) -> f64 {
        // Two full waves of resident threads are a common rule of thumb
        // for hiding memory latency on all three vendors' parts.
        2.0 * self.max_resident_threads as f64
    }
}

/// A CPU node descriptor, used (a) as the Figure-5 normalization
/// baseline (36-core Skylake node running non-Kokkos MPI LAMMPS) and
/// (b) as the host side of reverse-offload discussions.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuArch {
    pub name: &'static str,
    pub cores: u32,
    /// Sustained DRAM bandwidth, GB/s.
    pub dram_bw_gbs: f64,
    /// Aggregate FP64 throughput, TFLOP/s.
    pub fp64_tflops: f64,
    /// Per-core L2+L1 capacity, KiB (cache behaviour on CPUs is benign
    /// for our kernels; this is used only for working-set checks).
    pub cache_per_core_kib: f64,
}

impl CpuArch {
    /// Dual-socket 18+18 core Intel Skylake node (e.g. Xeon Gold 6140),
    /// the Figure-5 reference: ~2.6 GHz, AVX-512 ⇒ ≈2.0 TF FP64 peak,
    /// ~220 GB/s of DRAM bandwidth across both sockets.
    pub fn skylake36() -> Self {
        CpuArch {
            name: "2x18-core Skylake",
            cores: 36,
            dram_bw_gbs: 220.0,
            fp64_tflops: 2.0,
            cache_per_core_kib: 1024.0 + 32.0,
        }
    }

    /// Roofline time (seconds) for a kernel on this CPU node. CPU MD
    /// kernels rarely hit peak FLOPs; `efficiency` captures the fraction
    /// of peak a real pair kernel sustains (LAMMPS reaches ~5-15%).
    pub fn kernel_time(&self, flops: f64, dram_bytes: f64, efficiency: f64) -> f64 {
        let t_flop = flops / (self.fp64_tflops * 1e12 * efficiency);
        let t_mem = dram_bytes / (self.dram_bw_gbs * 1e9);
        t_flop.max(t_mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 of the paper, verbatim.
    #[test]
    fn table1_values_match_paper() {
        let t = GpuArch::table1();
        let row = |name: &str| t.iter().find(|a| a.name.contains(name)).unwrap();

        let v100 = row("V100");
        assert_eq!(v100.hbm_bw_gbs, 900.0);
        assert_eq!(v100.hbm_capacity_gib, 16.0);
        assert_eq!(v100.fp64_tflops, 7.8);
        assert_eq!(v100.l1_class_kib(), 128.0);

        let a100 = row("A100");
        assert_eq!(a100.hbm_bw_gbs, 1500.0);
        assert_eq!(a100.hbm_capacity_gib, 40.0);
        assert_eq!(a100.fp64_tflops, 9.7);
        assert_eq!(a100.l1_class_kib(), 192.0);

        let h100 = row("H100");
        assert_eq!(h100.hbm_bw_gbs, 3300.0);
        assert_eq!(h100.hbm_capacity_gib, 80.0);
        assert_eq!(h100.fp64_tflops, 34.0);
        assert_eq!(h100.l1_class_kib(), 256.0);

        let gh200 = row("GH200");
        assert_eq!(gh200.hbm_bw_gbs, 4000.0);
        assert_eq!(gh200.hbm_capacity_gib, 96.0);
        assert_eq!(gh200.fp64_tflops, 34.0);
        assert_eq!(gh200.l1_class_kib(), 256.0);

        let mi250x = row("MI250X");
        assert_eq!(mi250x.hbm_bw_gbs, 1600.0);
        assert_eq!(mi250x.hbm_capacity_gib, 64.0);
        assert_eq!(mi250x.fp64_tflops, 24.0);
        assert_eq!(mi250x.l1_kib, 16.0);
        assert_eq!(mi250x.shared_kib, 64.0);

        let mi300a = row("MI300A");
        assert_eq!(mi300a.hbm_bw_gbs, 5300.0);
        assert_eq!(mi300a.hbm_capacity_gib, 128.0);
        assert_eq!(mi300a.fp64_tflops, 61.0);
        assert_eq!(mi300a.l1_kib, 32.0);
        assert_eq!(mi300a.shared_kib, 64.0);

        let pvc = row("PVC");
        assert_eq!(pvc.hbm_bw_gbs, 1600.0);
        assert_eq!(pvc.hbm_capacity_gib, 64.0);
        assert_eq!(pvc.fp64_tflops, 26.0);
        assert_eq!(pvc.shared_kib, 128.0);
    }

    #[test]
    fn paper_qualitative_relations_hold() {
        // §5.1: modern GPUs exceed 200k simultaneously active threads.
        assert!(GpuArch::h100().max_resident_threads > 200_000);
        assert!(GpuArch::mi300a().max_resident_threads > 200_000);
        // §4.1: NVIDIA atomic throughput is high relative to AMD.
        assert!(GpuArch::h100().atomic_f64_gops > 2.0 * GpuArch::mi250x_gcd().atomic_f64_gops);
        // §4.3.2: warp 32 on NVIDIA, 64 on AMD.
        assert_eq!(GpuArch::h100().warp_width, 32);
        assert_eq!(GpuArch::mi250x_gcd().warp_width, 64);
        // Appendix C: GH200 has +20% bandwidth and L2, same FP64, higher
        // launch latency than H100.
        let (h, g) = (GpuArch::h100(), GpuArch::gh200());
        assert!((g.hbm_bw_gbs / h.hbm_bw_gbs - 1.21).abs() < 0.02);
        assert_eq!(g.fp64_tflops, h.fp64_tflops);
        assert!((g.l2_mib / h.l2_mib - 1.2).abs() < 0.01);
        assert!(g.launch_latency_us > h.launch_latency_us);
        // NVIDIA parts have much larger L1-class capacity than AMD
        // (the paper's §4.4/§5.1 explanation of NVIDIA's edge).
        assert!(h.l1_class_kib() > 2.0 * GpuArch::mi300a().l1_class_kib());
    }

    #[test]
    fn skylake_reference_is_sane() {
        let c = CpuArch::skylake36();
        assert_eq!(c.cores, 36);
        // A memory-bound kernel: 1 GB at 220 GB/s ≈ 4.5 ms.
        let t = c.kernel_time(0.0, 1e9, 0.1);
        assert!((t - 1.0 / 220.0).abs() < 1e-6);
        // A compute-bound kernel dominates when flops are huge.
        let t2 = c.kernel_time(1e12, 1e6, 0.5);
        assert!(t2 > 0.9);
    }

    #[test]
    fn by_name_covers_every_descriptor() {
        for short in ["v100", "a100", "h100", "gh200", "mi250x", "mi300a", "pvc"] {
            assert!(GpuArch::by_name(short).is_some(), "{short}");
        }
        assert!(GpuArch::by_name("b200").is_none());
    }

    #[test]
    fn saturation_is_two_waves() {
        let h = GpuArch::h100();
        assert_eq!(h.saturation_items(), 2.0 * (132.0 * 2048.0));
    }
}
