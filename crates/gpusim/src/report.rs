//! Nsight-Compute-style kernel reports.
//!
//! §4.3.4: "Limiters were identified using NVIDIA Nsight Compute" and
//! "kernel runtimes were measured using NVIDIA Nsight Systems". This
//! module is the analogue for the simulated device: it renders a
//! per-kernel table of predicted time, binding limiter, utilization,
//! occupancy, and L1 hit rate from a set of measured [`KernelStats`].

use crate::arch::GpuArch;
use crate::carveout::CacheConfig;
use crate::cost::{KernelStats, Limiter, Roofline, RooflineClass};

/// One row of the profile table.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    pub name: String,
    pub seconds: f64,
    pub limiter: Limiter,
    pub utilization: f64,
    pub occupancy: f64,
    pub l1_hit_rate: f64,
    pub launches: f64,
    /// Memory-vs-compute roofline position on this architecture.
    pub roofline: Roofline,
}

/// Profile a set of kernels on `arch` with the per-kernel default
/// cache configuration, sorted by predicted time (descending).
pub fn profile(stats: &[KernelStats], arch: &GpuArch) -> Vec<ProfileRow> {
    let mut rows: Vec<ProfileRow> = stats
        .iter()
        .map(|k| {
            let cfg = CacheConfig::default_for_kernel(
                arch,
                k.scratch_bytes_per_team,
                k.threads_per_team.max(arch.warp_width),
            );
            let t = k.time_on(arch, &cfg);
            ProfileRow {
                name: k.name.clone(),
                seconds: t.seconds,
                limiter: t.limiter,
                utilization: t.utilization,
                occupancy: t.occupancy,
                l1_hit_rate: t.l1_hit_rate,
                launches: k.launches,
                roofline: k.roofline_on(arch),
            }
        })
        .collect();
    rows.sort_by(|a, b| b.seconds.partial_cmp(&a.seconds).unwrap());
    rows
}

fn limiter_name(l: Limiter) -> &'static str {
    match l {
        Limiter::HbmBandwidth => "HBM bandwidth",
        Limiter::Fp64 => "FP64 issue",
        Limiter::L1Throughput => "L1 throughput",
        Limiter::AtomicThroughput => "FP64 atomics",
        Limiter::LaunchLatency => "launch latency",
    }
}

fn roofline_name(c: RooflineClass) -> &'static str {
    match c {
        RooflineClass::MemoryBound => "mem",
        RooflineClass::ComputeBound => "comp",
        RooflineClass::LatencyBound => "lat",
    }
}

/// Render the profile as an Nsight-like text table.
pub fn render(stats: &[KernelStats], arch: &GpuArch) -> String {
    let rows = profile(stats, arch);
    let total: f64 = rows.iter().map(|r| r.seconds).sum();
    let mut out = format!(
        "Kernel profile on {} (total {:.3} ms/step)\n{:<26} {:>10} {:>6} {:>16} {:>6} {:>6} {:>7} {:>9}\n",
        arch.name,
        total * 1e3,
        "kernel",
        "time",
        "%",
        "limiter",
        "util",
        "occ",
        "L1 hit",
        "roofline"
    );
    for r in &rows {
        out += &format!(
            "{:<26} {:>8.1}us {:>5.1}% {:>16} {:>5.0}% {:>5.0}% {:>6.0}% {:>4} {:>4.1}\n",
            r.name,
            r.seconds * 1e6,
            100.0 * r.seconds / total,
            limiter_name(r.limiter),
            100.0 * r.utilization,
            100.0 * r.occupancy,
            100.0 * r.l1_hit_rate,
            roofline_name(r.roofline.class),
            r.roofline.arithmetic_intensity,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_sorts_and_classifies() {
        let mut big = KernelStats::new("big");
        big.work_items = 1e7;
        big.dram_bytes = 1e9;
        let mut small = KernelStats::new("small");
        small.work_items = 1e7;
        small.flops = 1e10;
        small.ilp = 8.0;
        let rows = profile(&[small.clone(), big.clone()], &GpuArch::h100());
        assert_eq!(rows[0].name, "big");
        assert_eq!(rows[0].limiter, Limiter::HbmBandwidth);
        assert_eq!(rows[1].limiter, Limiter::Fp64);
        let text = render(&[small, big], &GpuArch::h100());
        assert!(text.contains("HBM bandwidth"));
        assert!(text.contains("big"));
        assert_eq!(rows[0].roofline.class, RooflineClass::MemoryBound);
        assert_eq!(rows[1].roofline.class, RooflineClass::ComputeBound);
    }
}
