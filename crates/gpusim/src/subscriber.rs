//! The profiling event stream: a Kokkos-Tools-style subscriber API.
//!
//! The real LAMMPS-KOKKOS stack exposes its kernel activity through the
//! Kokkos Tools callback interface (`kokkosp_begin_parallel_for`,
//! `kokkosp_push_profile_region`, `kokkosp_begin_deep_copy`, ...) so
//! that profilers, space-time-stack tools, and the test harness all
//! observe the *same* event stream the runtime emits. This module is
//! that interface for the simulated stack: `lkk-kokkos` fires these
//! callbacks from its dispatch layer, and both the cost-model reporting
//! in this crate and the perf-regression harness in `lkk-perf` consume
//! them through the same trait.
//!
//! The trait lives here (the base crate) rather than in `lkk-kokkos`
//! because the natural payload of a kernel event is a [`KernelStats`]
//! record, and `lkk-kokkos` already depends on `lkk-gpusim` for it.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::cost::KernelStats;

/// Direction of a host↔device data transfer (deep copy / sync).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDir {
    HostToDevice,
    DeviceToHost,
}

/// A profiling subscriber: the analogue of a Kokkos Tools library.
///
/// All methods have empty default bodies so a subscriber only overrides
/// the events it cares about. Callbacks may fire from worker threads
/// concurrently, so implementations must be `Send + Sync` and do their
/// own locking.
pub trait ProfileSubscriber: Send + Sync {
    /// A named region was pushed. `path` is the full nested path with
    /// `/` separators (e.g. `"step/pair"`), `depth` its 1-based depth.
    fn region_begin(&self, path: &str, depth: usize) {
        let _ = (path, depth);
    }

    /// The region at `path` was popped after `seconds` of wall time.
    /// Wall time is advisory (it is *not* part of the deterministic
    /// counter set); counter-based consumers should ignore it.
    fn region_end(&self, path: &str, depth: usize, seconds: f64) {
        let _ = (path, depth, seconds);
    }

    /// A kernel was dispatched: fired at launch, before execution, with
    /// the exposed work-item count. `region` is the active region path.
    fn kernel_launch(&self, name: &str, region: &str, work_items: usize) {
        let _ = (name, region, work_items);
    }

    /// Measured event counts for a kernel were recorded (typically at
    /// the end of an instrumented kernel). `stats.region` carries the
    /// region path active at record time.
    fn kernel_stats(&self, stats: &KernelStats) {
        let _ = stats;
    }

    /// A host↔device transfer of `bytes` completed. `label` names the
    /// View involved when known, `""` otherwise.
    fn transfer(&self, dir: TransferDir, label: &str, bytes: u64) {
        let _ = (dir, label, bytes);
    }

    /// A point-in-time event with no duration (`kokkosp_profile_event`
    /// analogue): something happened *now* — a pool growth, a rebuild
    /// decision, a blocking wait ending. `region` is the active region
    /// path, `value` an event-specific payload (0.0 when meaningless).
    fn instant(&self, name: &str, region: &str, value: f64) {
        let _ = (name, region, value);
    }

    /// A counter sample: the metric `name` has `value` as of now.
    /// Consumers that render timelines plot these as counter tracks;
    /// aggregating consumers may keep the last value or the sum,
    /// whichever their metric kind calls for.
    fn counter(&self, name: &str, region: &str, value: f64) {
        let _ = (name, region, value);
    }

    /// A cross-lane causal flow starts here: this thread just emitted
    /// the message identified by `id` (see
    /// `lkk_core::comm::fault::flow_id`), named by its phase tag.
    /// Timeline consumers render it as a Perfetto flow-`s` event bound
    /// to the enclosing span; aggregating consumers ignore it —
    /// [`StatsAccumulator`] deliberately does not override these, so
    /// the deterministic counter baseline is flow-blind.
    fn flow_begin(&self, name: &str, region: &str, id: u64) {
        let _ = (name, region, id);
    }

    /// The flow `id` terminates here: this thread just accepted the
    /// message. The matching flow-`f` event on the receiver lane.
    fn flow_end(&self, name: &str, region: &str, id: u64) {
        let _ = (name, region, id);
    }
}

/// Totals for one transfer direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferTotals {
    pub bytes: u64,
    pub count: u64,
}

/// Everything [`StatsAccumulator`] has gathered, snapshotted.
#[derive(Debug, Clone, Default)]
pub struct AccumulatedProfile {
    /// Kernel stats merged per `(region, kernel name)`, in sorted key
    /// order (deterministic iteration).
    pub kernels: Vec<KernelStats>,
    /// Launch counts per kernel name (including launches for which no
    /// stats record was ever pushed).
    pub launches: BTreeMap<String, u64>,
    /// Region entry counts per path.
    pub regions: BTreeMap<String, u64>,
    /// Instant/counter samples merged per `name@region` (bare name when
    /// the region is empty): `(sample count, value sum)`.
    pub counters: BTreeMap<String, (u64, f64)>,
    pub h2d: TransferTotals,
    pub d2h: TransferTotals,
}

#[derive(Default)]
struct AccumulatorInner {
    kernels: BTreeMap<(String, String), KernelStats>,
    launches: BTreeMap<String, u64>,
    regions: BTreeMap<String, u64>,
    counters: BTreeMap<String, (u64, f64)>,
    h2d: TransferTotals,
    d2h: TransferTotals,
}

/// Key for the merged instant/counter table.
fn counter_key(name: &str, region: &str) -> String {
    if region.is_empty() {
        name.to_string()
    } else {
        format!("{name}@{region}")
    }
}

/// The workhorse subscriber: merges every [`KernelStats`] record by
/// `(region, name)`, tallies launches, region entries, and transfer
/// traffic. All state is behind one mutex; snapshot with
/// [`StatsAccumulator::snapshot`].
#[derive(Default)]
pub struct StatsAccumulator {
    inner: Mutex<AccumulatorInner>,
}

impl StatsAccumulator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy out everything gathered so far, with kernels in
    /// deterministic `(region, name)` order.
    pub fn snapshot(&self) -> AccumulatedProfile {
        let inner = self.inner.lock().unwrap();
        AccumulatedProfile {
            kernels: inner.kernels.values().cloned().collect(),
            launches: inner.launches.clone(),
            regions: inner.regions.clone(),
            counters: inner.counters.clone(),
            h2d: inner.h2d,
            d2h: inner.d2h,
        }
    }

    /// Drop all accumulated state.
    pub fn reset(&self) {
        *self.inner.lock().unwrap() = AccumulatorInner::default();
    }
}

impl ProfileSubscriber for StatsAccumulator {
    fn region_begin(&self, path: &str, _depth: usize) {
        let mut inner = self.inner.lock().unwrap();
        *inner.regions.entry(path.to_string()).or_insert(0) += 1;
    }

    fn kernel_launch(&self, name: &str, _region: &str, _work_items: usize) {
        let mut inner = self.inner.lock().unwrap();
        *inner.launches.entry(name.to_string()).or_insert(0) += 1;
    }

    fn kernel_stats(&self, stats: &KernelStats) {
        let mut inner = self.inner.lock().unwrap();
        let key = (stats.region.clone(), stats.name.clone());
        match inner.kernels.get_mut(&key) {
            Some(existing) => existing.accumulate(stats),
            None => {
                inner.kernels.insert(key, stats.clone());
            }
        }
    }

    fn transfer(&self, dir: TransferDir, _label: &str, bytes: u64) {
        let mut inner = self.inner.lock().unwrap();
        let t = match dir {
            TransferDir::HostToDevice => &mut inner.h2d,
            TransferDir::DeviceToHost => &mut inner.d2h,
        };
        t.bytes += bytes;
        t.count += 1;
    }

    fn instant(&self, name: &str, region: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        let e = inner
            .counters
            .entry(counter_key(name, region))
            .or_insert((0, 0.0));
        e.0 += 1;
        e.1 += value;
    }

    fn counter(&self, name: &str, region: &str, value: f64) {
        // Same table as instants: for the deterministic report both are
        // "a named sample with a value"; count+sum reconstructs either
        // a total or (for constants like table shapes) the pinned value.
        self.instant(name, region, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_merges_by_region_and_name() {
        let acc = StatsAccumulator::new();
        let mut a = KernelStats::new("k");
        a.region = "step/pair".into();
        a.flops = 10.0;
        acc.kernel_stats(&a);
        acc.kernel_stats(&a);
        let mut b = KernelStats::new("k");
        b.region = "setup".into();
        b.flops = 1.0;
        acc.kernel_stats(&b);

        let snap = acc.snapshot();
        assert_eq!(snap.kernels.len(), 2);
        // BTreeMap order: ("setup","k") before ("step/pair","k").
        assert_eq!(snap.kernels[0].region, "setup");
        assert_eq!(snap.kernels[0].flops, 1.0);
        assert_eq!(snap.kernels[1].flops, 20.0);
        assert_eq!(snap.kernels[1].launches, 2.0);
    }

    #[test]
    fn accumulator_tallies_launches_regions_transfers() {
        let acc = StatsAccumulator::new();
        acc.kernel_launch("k", "", 100);
        acc.kernel_launch("k", "", 100);
        acc.region_begin("step", 1);
        acc.transfer(TransferDir::HostToDevice, "x", 64);
        acc.transfer(TransferDir::HostToDevice, "x", 64);
        acc.transfer(TransferDir::DeviceToHost, "f", 8);
        let snap = acc.snapshot();
        assert_eq!(snap.launches["k"], 2);
        assert_eq!(snap.regions["step"], 1);
        assert_eq!(
            snap.h2d,
            TransferTotals {
                bytes: 128,
                count: 2
            }
        );
        assert_eq!(snap.d2h, TransferTotals { bytes: 8, count: 1 });
        acc.reset();
        assert!(acc.snapshot().kernels.is_empty());
        assert_eq!(acc.snapshot().h2d.count, 0);
    }

    #[test]
    fn accumulator_merges_instants_and_counters() {
        let acc = StatsAccumulator::new();
        acc.instant("snap.ui.flops", "step/pair/snap", 10.0);
        acc.instant("snap.ui.flops", "step/pair/snap", 5.0);
        acc.counter("snap.table.builds", "snap", 1.0);
        acc.instant("pool.grow", "", 3.0);
        let snap = acc.snapshot();
        assert_eq!(snap.counters["snap.ui.flops@step/pair/snap"], (2, 15.0));
        assert_eq!(snap.counters["snap.table.builds@snap"], (1, 1.0));
        assert_eq!(snap.counters["pool.grow"], (1, 3.0));
    }

    #[test]
    fn default_methods_are_no_ops() {
        struct Nop;
        impl ProfileSubscriber for Nop {}
        let n = Nop;
        n.region_begin("a", 1);
        n.region_end("a", 1, 0.0);
        n.kernel_launch("k", "", 1);
        n.kernel_stats(&KernelStats::new("k"));
        n.transfer(TransferDir::DeviceToHost, "", 1);
        n.instant("evt", "", 0.0);
        n.counter("metric", "", 1.0);
        n.flow_begin("forward", "", 42);
        n.flow_end("forward", "", 42);
    }

    #[test]
    fn accumulator_ignores_flow_events() {
        // The counter baseline must stay flow-blind: attaching flows
        // to a StatsAccumulator changes nothing it snapshots.
        let acc = StatsAccumulator::new();
        acc.flow_begin("forward", "rank0/step", 7);
        acc.flow_end("forward", "rank1/step", 7);
        let snap = acc.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.regions.is_empty());
        assert!(snap.kernels.is_empty());
    }
}
