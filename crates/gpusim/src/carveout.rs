//! The L1 / shared-memory split.
//!
//! §4.4 of the paper: "modern NVIDIA GPUs have a unified cache where the
//! L1 and shared memory capacity can be dynamically shifted" via the
//! CUDA shared-memory *carveout* (the fraction of the unified pool
//! reserved for shared memory), while AMD and Intel parts have fixed,
//! discrete units. Kokkos has a built-in heuristic for the carveout,
//! which Figure 3 overrides to sweep the knob explicitly — this module
//! provides both the heuristic and the override.

use crate::arch::GpuArch;

/// A concrete split of the L1-class storage of one SM/CU, in KiB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Hardware-managed L1 capacity available to a kernel.
    pub l1_kib: f64,
    /// Software-managed scratch capacity available to a kernel.
    pub shared_kib: f64,
}

impl CacheConfig {
    /// The split resulting from forcing a specific carveout fraction
    /// `carveout` ∈ [0, 1] on `arch`.
    ///
    /// On NVIDIA (unified pool) the shared portion is
    /// `carveout * pool`, except a 32 KiB floor of L1 always remains —
    /// matching the paper's observation that "the maximum carveout for
    /// shared memory ... leaves only 32kB for L1" on H100.
    /// On AMD/Intel the split is fixed by hardware and the carveout
    /// argument is ignored.
    pub fn from_carveout(arch: &GpuArch, carveout: f64) -> Self {
        if arch.unified_cache {
            let pool = arch.l1_kib;
            let min_l1 = 32.0f64.min(pool);
            let shared = (carveout.clamp(0.0, 1.0) * pool).min(pool - min_l1);
            CacheConfig {
                l1_kib: pool - shared,
                shared_kib: shared,
            }
        } else {
            CacheConfig {
                l1_kib: arch.l1_kib,
                shared_kib: arch.shared_kib,
            }
        }
    }

    /// The Kokkos-like runtime heuristic ("default" carveout in
    /// Figure 3): reserve just enough shared memory for the kernel's
    /// declared per-team scratch at full SM occupancy, leaving the rest
    /// as L1.
    pub fn default_for_kernel(
        arch: &GpuArch,
        scratch_bytes_per_team: f64,
        threads_per_team: u32,
    ) -> Self {
        if !arch.unified_cache {
            return Self::from_carveout(arch, 0.0);
        }
        if scratch_bytes_per_team <= 0.0 {
            // No scratch requested: everything is L1.
            return Self::from_carveout(arch, 0.0);
        }
        // Teams needed to fill one SM with resident threads.
        let threads_per_sm = arch.max_resident_threads as f64 / arch.sm_count as f64;
        let teams_per_sm = (threads_per_sm / threads_per_team.max(1) as f64).max(1.0);
        let wanted_kib = scratch_bytes_per_team * teams_per_sm / 1024.0;
        let frac = (wanted_kib / arch.l1_kib).clamp(0.0, 1.0);
        Self::from_carveout(arch, frac)
    }

    /// Effective L1 bytes.
    pub fn l1_bytes(&self) -> f64 {
        self.l1_kib * 1024.0
    }

    /// Effective shared-memory bytes.
    pub fn shared_bytes(&self) -> f64 {
        self.shared_kib * 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_extremes_match_paper() {
        let h = GpuArch::h100();
        // Max carveout leaves only 32 kB of L1 (paper §4.4).
        let max = CacheConfig::from_carveout(&h, 1.0);
        assert_eq!(max.l1_kib, 32.0);
        assert_eq!(max.shared_kib, 224.0);
        // Zero carveout: all 256 kB is L1.
        let min = CacheConfig::from_carveout(&h, 0.0);
        assert_eq!(min.l1_kib, 256.0);
        assert_eq!(min.shared_kib, 0.0);
    }

    #[test]
    fn carveout_is_monotone_and_conserves_pool() {
        let h = GpuArch::h100();
        let mut prev_shared = -1.0;
        for i in 0..=10 {
            let c = CacheConfig::from_carveout(&h, i as f64 / 10.0);
            assert!((c.l1_kib + c.shared_kib - 256.0).abs() < 1e-9);
            assert!(c.shared_kib >= prev_shared);
            prev_shared = c.shared_kib;
        }
    }

    #[test]
    fn fixed_split_ignores_carveout() {
        let a = GpuArch::mi300a();
        for i in 0..=4 {
            let c = CacheConfig::from_carveout(&a, i as f64 / 4.0);
            assert_eq!(c.l1_kib, 32.0);
            assert_eq!(c.shared_kib, 64.0);
        }
    }

    #[test]
    fn heuristic_scales_with_scratch_request() {
        let h = GpuArch::h100();
        let none = CacheConfig::default_for_kernel(&h, 0.0, 128);
        assert_eq!(none.shared_kib, 0.0);
        let small = CacheConfig::default_for_kernel(&h, 1024.0, 128);
        let large = CacheConfig::default_for_kernel(&h, 8192.0, 128);
        assert!(small.shared_kib > 0.0);
        assert!(large.shared_kib > small.shared_kib);
        // Never exceeds the pool minus the L1 floor.
        assert!(large.shared_kib <= 224.0 + 1e-9);
    }
}
