//! Flattened sparse contraction tables for the Zi/Bi/Yi kernels.
//!
//! The direct eq. 3 evaluation walks a quadruple loop per bispectrum
//! triple — `(mb, ma)` over the target block, `(mb1, ma1)` over the
//! coupled blocks — recomputing `saturating_sub`/`min` bounds, flat
//! `u` indices, and Clebsch-Gordan lookups on every trip, and branching
//! past the (many) zero coefficients. This module runs those loops
//! *once*, at `SnapContext` construction, and records what survives:
//!
//! * [`ZItem`] — one per `(triple, mb, ma)` work item, in the exact
//!   traversal order of the direct loops (triple order, `mb` outer,
//!   `ma` inner — the TestSNAP `idxz` layout), owning a contiguous
//!   range of [`ZPair`]s.
//! * [`ZPair`] — one surviving inner iteration: the two flat `u`
//!   indices plus the fused coefficient `cab = ca·cb`, zero entries
//!   stripped.
//! * [`YItem`]/[`YScatter`] — the adjoint (ComputeYi) work list,
//!   prefiltered to `β ≠ 0` triples with the fused scatter weight
//!   `w = β·ca·cb` precomputed, so neither early-out branch survives
//!   in the hot loop.
//!
//! **Bit-identity rule.** The runtime kernels must accumulate in the
//! same order the direct loops did, and every precomputed product must
//! use the same association the direct expression parsed to:
//! `zr += ca*cb*pr` is `(ca·cb)·pr`, so storing `cab = ca*cb` is
//! exact; `w = beta * ca * cgb.get(..)` is `(β·ca)·cb`, so `w` is
//! built with that exact expression. Zero-stripping is safe precisely
//! where the direct code `continue`d on the same computed value.
//!
//! **Construction-once invariant.** Tables are built exactly once per
//! `SnapContext` (in `SnapContext::new`) and are immutable afterwards;
//! `snap.table.builds` stays pinned at 1 in the perf baseline, so a
//! mid-run rebuild would show up as a counter drift at zero tolerance.

use crate::cg::CgBlock;
use crate::indices::SnapIndices;

/// One surviving inner iteration of the Z contraction: precomputed
/// flat indices into `utot` and the fused CG product.
#[derive(Debug, Clone, Copy)]
pub struct ZPair {
    pub i1: u32,
    pub i2: u32,
    /// `ca · cb`, both Clebsch-Gordan factors fused (nonzero).
    pub cab: f64,
}

/// One `(triple, mb, ma)` work item of the Z/B traversal.
#[derive(Debug, Clone, Copy)]
pub struct ZItem {
    /// Flat index of `U_j(mb, ma)` — the conjugate factor of eq. 3 and
    /// the term-1 target of ComputeYi.
    pub iu: u32,
    /// Range of this item's [`ZPair`]s in [`ContractionTables::pairs`].
    pub pair_lo: u32,
    pub pair_hi: u32,
}

/// One surviving scatter of ComputeYi's term 2: targets plus the fused
/// weight `w = β·ca·cb` (nonzero).
#[derive(Debug, Clone, Copy)]
pub struct YScatter {
    pub i1: u32,
    pub i2: u32,
    pub w: f64,
}

/// One adjoint work item (`β ≠ 0` triples only), in direct-loop order.
#[derive(Debug, Clone, Copy)]
pub struct YItem {
    /// The shared [`ZItem`] (for its `z` value and `iu`).
    pub z: u32,
    /// The triple's `β` (term-1 weight).
    pub beta: f64,
    /// Range in [`ContractionTables::y_scatters`].
    pub scat_lo: u32,
    pub scat_hi: u32,
}

/// The flattened sparse contraction tables, built once per context.
#[derive(Debug, Clone, Default)]
pub struct ContractionTables {
    /// All `(triple, mb, ma)` items, triple-major, `mb` outer / `ma`
    /// inner within a triple (the direct `compute_bi` order).
    pub items: Vec<ZItem>,
    /// `items` range per triple: triple `t` owns
    /// `items[triple_items[t]..triple_items[t+1]]`.
    pub triple_items: Vec<u32>,
    /// All surviving Z inner iterations, item-major.
    pub pairs: Vec<ZPair>,
    /// Adjoint items, prefiltered to `β ≠ 0`, in direct `compute_yi`
    /// order.
    pub y_items: Vec<YItem>,
    /// All surviving term-2 scatters, y-item-major.
    pub y_scatters: Vec<YScatter>,
}

impl ContractionTables {
    /// Run the direct loops once and record the surviving work.
    pub fn build(idx: &SnapIndices, cg: &[CgBlock], beta: &[f64]) -> Self {
        let mut t = ContractionTables {
            triple_items: vec![0],
            ..Default::default()
        };
        for (ti, &(j1, j2, j)) in idx.triples.iter().enumerate() {
            let cgb = &cg[ti];
            let shift = (j1 + j2 - j) / 2;
            let b = beta[ti];
            for mb in 0..=j {
                for ma in 0..=j {
                    let pair_lo = t.pairs.len() as u32;
                    let ma1_lo = (ma + shift).saturating_sub(j2);
                    let ma1_hi = (ma + shift).min(j1);
                    let mb1_lo = (mb + shift).saturating_sub(j2);
                    let mb1_hi = (mb + shift).min(j1);
                    for ma1 in ma1_lo..=ma1_hi {
                        let ma2 = ma + shift - ma1;
                        let ca = cgb.get(ma1, ma2);
                        if ca == 0.0 {
                            continue;
                        }
                        for mb1 in mb1_lo..=mb1_hi {
                            let mb2 = mb + shift - mb1;
                            let cb = cgb.get(mb1, mb2);
                            if cb == 0.0 {
                                continue;
                            }
                            t.pairs.push(ZPair {
                                i1: idx.u_index(j1, mb1, ma1) as u32,
                                i2: idx.u_index(j2, mb2, ma2) as u32,
                                // Same association as `zr += ca*cb*pr`.
                                cab: ca * cb,
                            });
                        }
                    }
                    let z = t.items.len() as u32;
                    t.items.push(ZItem {
                        iu: idx.u_index(j, mb, ma) as u32,
                        pair_lo,
                        pair_hi: t.pairs.len() as u32,
                    });
                    if b != 0.0 {
                        let scat_lo = t.y_scatters.len() as u32;
                        for ma1 in ma1_lo..=ma1_hi {
                            let ma2 = ma + shift - ma1;
                            let ca = cgb.get(ma1, ma2);
                            if ca == 0.0 {
                                continue;
                            }
                            for mb1 in mb1_lo..=mb1_hi {
                                let mb2 = mb + shift - mb1;
                                // Exact direct expression: (β·ca)·cb.
                                let w = b * ca * cgb.get(mb1, mb2);
                                if w == 0.0 {
                                    continue;
                                }
                                t.y_scatters.push(YScatter {
                                    i1: idx.u_index(j1, mb1, ma1) as u32,
                                    i2: idx.u_index(j2, mb2, ma2) as u32,
                                    w,
                                });
                            }
                        }
                        t.y_items.push(YItem {
                            z,
                            beta: b,
                            scat_lo,
                            scat_hi: t.y_scatters.len() as u32,
                        });
                    }
                }
            }
            t.triple_items.push(t.items.len() as u32);
        }
        t
    }

    /// Items of triple `t`.
    #[inline]
    pub fn triple_range(&self, t: usize) -> std::ops::Range<usize> {
        self.triple_items[t] as usize..self.triple_items[t + 1] as usize
    }
}

/// Evaluate one item's `z` from its precomputed pairs — the flattened
/// form of the direct `z_element`, summing in the identical order.
#[inline(always)]
pub fn z_from_pairs(pairs: &[ZPair], utot_r: &[f64], utot_i: &[f64]) -> (f64, f64) {
    let mut zr = 0.0;
    let mut zi = 0.0;
    for p in pairs {
        let (i1, i2) = (p.i1 as usize, p.i2 as usize);
        let pr = utot_r[i1] * utot_r[i2] - utot_i[i1] * utot_i[i2];
        let pi = utot_r[i1] * utot_i[i2] + utot_i[i1] * utot_r[i2];
        zr += p.cab * pr;
        zi += p.cab * pi;
    }
    (zr, zi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::CgBlock;

    fn tables_for(twojmax: usize, beta: &[f64]) -> (SnapIndices, ContractionTables) {
        let idx = SnapIndices::new(twojmax);
        let cg: Vec<CgBlock> = idx
            .triples
            .iter()
            .map(|&(j1, j2, j)| CgBlock::new(j1, j2, j))
            .collect();
        let t = ContractionTables::build(&idx, &cg, beta);
        (idx, t)
    }

    #[test]
    fn item_count_covers_every_block_element() {
        for twojmax in [2usize, 4, 6, 8] {
            let idx = SnapIndices::new(twojmax);
            let beta = vec![1.0; idx.n_bispectrum()];
            let (idx, t) = tables_for(twojmax, &beta);
            let want: usize = idx.triples.iter().map(|&(_, _, j)| (j + 1) * (j + 1)).sum();
            assert_eq!(t.items.len(), want);
            assert_eq!(t.triple_items.len(), idx.triples.len() + 1);
            assert_eq!(*t.triple_items.last().unwrap() as usize, t.items.len());
            // With every beta nonzero the adjoint list covers all items.
            assert_eq!(t.y_items.len(), t.items.len());
        }
    }

    #[test]
    fn zero_beta_triples_are_prefiltered() {
        let idx = SnapIndices::new(4);
        let mut beta = vec![1.0; idx.n_bispectrum()];
        beta[0] = 0.0;
        beta[3] = 0.0;
        let (idx, t) = tables_for(4, &beta);
        let skipped: usize = [0usize, 3]
            .iter()
            .map(|&ti| {
                let (_, _, j) = idx.triples[ti];
                (j + 1) * (j + 1)
            })
            .sum();
        assert_eq!(t.y_items.len(), t.items.len() - skipped);
        for y in &t.y_items {
            assert_ne!(y.beta, 0.0);
        }
    }

    #[test]
    fn no_zero_coefficients_survive() {
        let idx = SnapIndices::new(8);
        let beta: Vec<f64> = (0..idx.n_bispectrum())
            .map(|i| (i % 3) as f64 - 1.0)
            .collect();
        let (_, t) = tables_for(8, &beta);
        assert!(!t.pairs.is_empty());
        for p in &t.pairs {
            assert_ne!(p.cab, 0.0);
        }
        for s in &t.y_scatters {
            assert_ne!(s.w, 0.0);
        }
        // Ranges are contiguous and ordered.
        let mut prev = 0u32;
        for item in &t.items {
            assert_eq!(item.pair_lo, prev);
            assert!(item.pair_hi >= item.pair_lo);
            prev = item.pair_hi;
        }
        assert_eq!(prev as usize, t.pairs.len());
    }
}
