//! Clebsch-Gordan coupling coefficients.
//!
//! Computed with the standard Racah factorial formula in doubled-integer
//! convention (`j = 2J`, `m = 2M`), exactly as LAMMPS' `SNA::factorial`
//! path does. `twojmax ≤ 12` keeps every factorial ≤ 25!, well inside
//! `f64`'s exact-integer range for the leading digits (relative error
//! ≤ 1e-15, irrelevant against the 1e-8 force-check tolerances).

/// Factorial with `f64` accumulation.
fn factorial(n: i64) -> f64 {
    debug_assert!(n >= 0, "negative factorial");
    (1..=n).map(|k| k as f64).product()
}

/// Clebsch-Gordan coefficient `C^{j m}_{j1 m1 j2 m2}` with all angular
/// momenta and projections **doubled** (so `m1` ranges over
/// `-j1, -j1+2, …, j1`).
pub fn clebsch_gordan(j1: i64, m1: i64, j2: i64, m2: i64, j: i64, m: i64) -> f64 {
    if m1 + m2 != m {
        return 0.0;
    }
    // Triangle and projection bounds.
    if j < (j1 - j2).abs() || j > j1 + j2 || (j1 + j2 + j) % 2 != 0 {
        return 0.0;
    }
    if m1.abs() > j1 || m2.abs() > j2 || m.abs() > j {
        return 0.0;
    }
    if (j1 + m1) % 2 != 0 || (j2 + m2) % 2 != 0 || (j + m) % 2 != 0 {
        return 0.0;
    }
    // All the following are genuine integers (halves of even sums).
    let h = |x: i64| -> i64 {
        debug_assert!(x % 2 == 0);
        x / 2
    };
    let z_min = 0.max(h(j2 - j - m1)).max(h(j1 - j + m2));
    let z_max = h(j1 + j2 - j).min(h(j1 - m1)).min(h(j2 + m2));
    if z_min > z_max {
        return 0.0;
    }
    let mut sum = 0.0;
    for z in z_min..=z_max {
        let sign = if z % 2 == 0 { 1.0 } else { -1.0 };
        sum += sign
            / (factorial(z)
                * factorial(h(j1 + j2 - j) - z)
                * factorial(h(j1 - m1) - z)
                * factorial(h(j2 + m2) - z)
                * factorial(h(j - j2 + m1) + z)
                * factorial(h(j - j1 - m2) + z));
    }
    let prefactor = ((j + 1) as f64
        * factorial(h(j + j1 - j2))
        * factorial(h(j - j1 + j2))
        * factorial(h(j1 + j2 - j))
        / factorial(h(j + j1 + j2) + 1))
    .sqrt();
    let mfact = (factorial(h(j + m))
        * factorial(h(j - m))
        * factorial(h(j1 + m1))
        * factorial(h(j1 - m1))
        * factorial(h(j2 + m2))
        * factorial(h(j2 - m2)))
    .sqrt();
    prefactor * mfact * sum
}

/// A precomputed CG block for one `(j1, j2, j)` triple: indexed by
/// `(ma1, ma2)` in matrix-index convention (`m = 2·ma − j`).
#[derive(Debug, Clone)]
pub struct CgBlock {
    pub j1: usize,
    pub j2: usize,
    pub j: usize,
    /// `coeff[ma1 * (j2+1) + ma2]`.
    coeff: Vec<f64>,
}

impl CgBlock {
    pub fn new(j1: usize, j2: usize, j: usize) -> Self {
        let mut coeff = vec![0.0; (j1 + 1) * (j2 + 1)];
        for ma1 in 0..=j1 {
            for ma2 in 0..=j2 {
                let m1 = 2 * ma1 as i64 - j1 as i64;
                let m2 = 2 * ma2 as i64 - j2 as i64;
                let m = m1 + m2;
                if m.abs() <= j as i64 {
                    coeff[ma1 * (j2 + 1) + ma2] =
                        clebsch_gordan(j1 as i64, m1, j2 as i64, m2, j as i64, m);
                }
            }
        }
        CgBlock { j1, j2, j, coeff }
    }

    /// `C^{j, m1+m2}_{j1 m1 j2 m2}` by matrix indices.
    #[inline(always)]
    pub fn get(&self, ma1: usize, ma2: usize) -> f64 {
        self.coeff[ma1 * (self.j2 + 1) + ma2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // C^{00}_{½½ ½-½} = 1/√2 ; doubled: j1=j2=1, m1=1, m2=-1, j=0, m=0.
        let c = clebsch_gordan(1, 1, 1, -1, 0, 0);
        assert!((c - 1.0 / 2.0_f64.sqrt()).abs() < 1e-14, "{c}");
        // C^{11}_{½½ ½½} = 1 (doubled j=2, m=2).
        assert!((clebsch_gordan(1, 1, 1, 1, 2, 2) - 1.0).abs() < 1e-14);
        // C^{10}_{½½ ½-½} = 1/√2.
        assert!((clebsch_gordan(1, 1, 1, -1, 2, 0) - 1.0 / 2.0_f64.sqrt()).abs() < 1e-14);
        // 1 ⊗ 1 → 2: C^{20}_{10 10} = sqrt(2/3); doubled: (2,0,2,0,4,0).
        assert!((clebsch_gordan(2, 0, 2, 0, 4, 0) - (2.0 / 3.0f64).sqrt()).abs() < 1e-14);
        // 1 ⊗ 1 → 0: C^{00}_{10 10} = -1/√3.
        assert!((clebsch_gordan(2, 0, 2, 0, 0, 0) - (-1.0 / 3.0f64.sqrt())).abs() < 1e-14);
    }

    #[test]
    fn selection_rules() {
        assert_eq!(clebsch_gordan(2, 0, 2, 2, 4, 0), 0.0); // m1+m2 != m
        assert_eq!(clebsch_gordan(2, 0, 2, 0, 1, 0), 0.0); // parity
        assert_eq!(clebsch_gordan(2, 0, 2, 0, 6, 0), 0.0); // triangle
    }

    /// Orthogonality: Σ_{m1,m2} C^{jm}_{j1m1j2m2} C^{j'm'}_{j1m1j2m2} = δ_{jj'} δ_{mm'}.
    #[test]
    fn orthogonality() {
        let (j1, j2) = (4i64, 2i64);
        for j in [2i64, 4, 6] {
            for jp in [2i64, 4, 6] {
                for m in (-j..=j).step_by(2) {
                    for mp in (-jp..=jp).step_by(2) {
                        let mut sum = 0.0;
                        for m1 in (-j1..=j1).step_by(2) {
                            for m2 in (-j2..=j2).step_by(2) {
                                sum += clebsch_gordan(j1, m1, j2, m2, j, m)
                                    * clebsch_gordan(j1, m1, j2, m2, jp, mp);
                            }
                        }
                        let expect = if j == jp && m == mp { 1.0 } else { 0.0 };
                        assert!(
                            (sum - expect).abs() < 1e-12,
                            "j={j} j'={jp} m={m} m'={mp}: {sum}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn block_lookup_matches_direct() {
        let block = CgBlock::new(4, 2, 4);
        for ma1 in 0..=4usize {
            for ma2 in 0..=2usize {
                let m1 = 2 * ma1 as i64 - 4;
                let m2 = 2 * ma2 as i64 - 2;
                let direct = clebsch_gordan(4, m1, 2, m2, 4, m1 + m2);
                assert_eq!(block.get(ma1, ma2), direct);
            }
        }
    }
}
