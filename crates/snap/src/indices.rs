//! Quantum-number index bookkeeping.
//!
//! All angular momenta are stored as *doubled* integers (`j = 2·J`),
//! so half-integer values are exact. A Wigner block `u_j` is a dense
//! `(j+1) × (j+1)` complex matrix indexed by `(mb, ma)` with
//! `ma, mb ∈ 0..=j` (the physical `m = ma − j/2`). Blocks for all `j`
//! up to `twojmax` are flattened into one array, `j` slowest and `ma`
//! fastest — §4.3.1's "j slowest, m' fastest convention to promote
//! locality: rows and columns of matrices stay together".

/// Flattened indexing for the `u`/`Y` arrays and the bispectrum triples.
#[derive(Debug, Clone)]
pub struct SnapIndices {
    /// Doubled maximum angular momentum (`2·J_max`).
    pub twojmax: usize,
    /// Offset of block `j` in the flattened `u` array.
    pub u_block: Vec<usize>,
    /// Total flattened `u` length (`Σ_j (j+1)²`).
    pub u_len: usize,
    /// The ordered bispectrum triples `(j1, j2, j)` with
    /// `0 ≤ j2 ≤ j1 ≤ j ≤ twojmax`, triangle-allowed, `j1+j2+j` even —
    /// the group-theoretic constraint of §4.3 that "significantly
    /// reduces the required work and storage".
    pub triples: Vec<(usize, usize, usize)>,
}

impl SnapIndices {
    pub fn new(twojmax: usize) -> Self {
        let mut u_block = Vec::with_capacity(twojmax + 2);
        let mut off = 0;
        for j in 0..=twojmax {
            u_block.push(off);
            off += (j + 1) * (j + 1);
        }
        let mut triples = Vec::new();
        for j1 in 0..=twojmax {
            for j2 in 0..=j1 {
                let mut j = j1 - j2;
                while j <= (j1 + j2).min(twojmax) {
                    if j >= j1 {
                        triples.push((j1, j2, j));
                    }
                    j += 2;
                }
            }
        }
        SnapIndices {
            twojmax,
            u_block,
            u_len: off,
            triples,
        }
    }

    /// Flattened index of `u_j(mb, ma)`.
    #[inline(always)]
    pub fn u_index(&self, j: usize, mb: usize, ma: usize) -> usize {
        debug_assert!(j <= self.twojmax && mb <= j && ma <= j);
        self.u_block[j] + mb * (j + 1) + ma
    }

    /// Number of bispectrum components (`β` coefficients).
    pub fn n_bispectrum(&self) -> usize {
        self.triples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_offsets_and_length() {
        let idx = SnapIndices::new(4);
        // Blocks: 1, 4, 9, 16, 25 → offsets 0, 1, 5, 14, 30; total 55.
        assert_eq!(idx.u_block, vec![0, 1, 5, 14, 30]);
        assert_eq!(idx.u_len, 55);
        assert_eq!(idx.u_index(2, 1, 2), 5 + 3 + 2);
    }

    #[test]
    fn triple_count_matches_lammps_convention() {
        // LAMMPS `twojmax = 8` (J = 4) gives 55 bispectrum components
        // under the j >= j1 >= j2 ordering with even parity.
        assert_eq!(SnapIndices::new(8).n_bispectrum(), 55);
        // twojmax = 6 gives 30, twojmax = 4 gives 14, twojmax = 2 gives 5.
        assert_eq!(SnapIndices::new(6).n_bispectrum(), 30);
        assert_eq!(SnapIndices::new(4).n_bispectrum(), 14);
        assert_eq!(SnapIndices::new(2).n_bispectrum(), 5);
    }

    #[test]
    fn triples_obey_constraints() {
        let idx = SnapIndices::new(8);
        for &(j1, j2, j) in &idx.triples {
            assert!(j2 <= j1 && j1 <= j && j <= 8);
            assert!(j + j2 >= j1 && j1 + j2 >= j, "triangle violated");
            assert_eq!((j1 + j2 + j) % 2, 0, "parity violated");
        }
        // No duplicates. Insert-only set (never iterated): order
        // cannot leak into the assertion.
        #[allow(clippy::disallowed_types)]
        let mut seen = std::collections::HashSet::new();
        for t in &idx.triples {
            assert!(seen.insert(*t));
        }
    }
}
