//! The recursive Wigner-U evaluation and its derivative.
//!
//! Eq. 2 of the paper: `u_j = F(u_{j−1/2})` — each block follows from
//! the previous by a linear two-term recursion in the Cayley-Klein
//! parameters (the "recursive polynomial evaluation" of §4.3.3 that is
//! "inherently compute bound"). We compute the full `(j+1)²` blocks,
//! using the VMK inversion symmetry to fill the upper half:
//! `u_j(j−mb, j−ma) = (−1)^{ma+mb} · conj(u_j(mb, ma))`.

use crate::hyper::{CayleyKlein, CayleyKleinDeriv};
use crate::indices::SnapIndices;

/// Precomputed `sqrt(p/q)` table.
#[derive(Debug, Clone)]
pub struct RootPq {
    n: usize,
    table: Vec<f64>,
}

impl RootPq {
    pub fn new(twojmax: usize) -> Self {
        let n = twojmax + 1;
        let mut table = vec![0.0; n * n];
        for p in 0..n {
            for q in 1..n {
                table[p * n + q] = (p as f64 / q as f64).sqrt();
            }
        }
        RootPq { n, table }
    }

    #[inline(always)]
    pub fn get(&self, p: usize, q: usize) -> f64 {
        self.table[p * self.n + q]
    }
}

#[inline(always)]
fn conj_mul(ar: f64, ai: f64, ur: f64, ui: f64) -> (f64, f64) {
    // conj(a) * u
    (ar * ur + ai * ui, ar * ui - ai * ur)
}

/// Compute all Wigner blocks `u_j(mb, ma)` for one neighbor into
/// `(u_r, u_i)` (flattened per [`SnapIndices`]). The arrays are fully
/// overwritten.
pub fn compute_u(
    idx: &SnapIndices,
    rootpq: &RootPq,
    ck: &CayleyKlein,
    u_r: &mut [f64],
    u_i: &mut [f64],
) {
    debug_assert_eq!(u_r.len(), idx.u_len);
    u_r[0] = 1.0;
    u_i[0] = 0.0;
    for j in 1..=idx.twojmax {
        // Lower half via recursion.
        let mut mb = 0;
        while 2 * mb <= j {
            for ma in 0..=j {
                let iu = idx.u_index(j, mb, ma);
                let mut vr = 0.0;
                let mut vi = 0.0;
                if ma < j {
                    let p = idx.u_index(j - 1, mb, ma);
                    let (tr, ti) = conj_mul(ck.a_r, ck.a_i, u_r[p], u_i[p]);
                    let c = rootpq.get(j - ma, j - mb);
                    vr += c * tr;
                    vi += c * ti;
                }
                if ma > 0 {
                    let p = idx.u_index(j - 1, mb, ma - 1);
                    let (tr, ti) = conj_mul(ck.b_r, ck.b_i, u_r[p], u_i[p]);
                    let c = rootpq.get(ma, j - mb);
                    vr -= c * tr;
                    vi -= c * ti;
                }
                u_r[iu] = vr;
                u_i[iu] = vi;
            }
            mb += 1;
        }
        // Upper half via inversion symmetry.
        for mbp in mb..=j {
            for map in 0..=j {
                let src = idx.u_index(j, j - mbp, j - map);
                let dst = idx.u_index(j, mbp, map);
                let sign = if (mbp + map) % 2 == 0 { 1.0 } else { -1.0 };
                u_r[dst] = sign * u_r[src];
                u_i[dst] = -sign * u_i[src];
            }
        }
    }
}

/// Compute `u` and its three Cartesian derivatives together (the
/// "hybrid depth/breadth evaluation" cost structure of ComputeDuidrj).
/// Derivative arrays are indexed `u_index * 3 + dir`.
pub fn compute_u_du(
    idx: &SnapIndices,
    rootpq: &RootPq,
    ckd: &CayleyKleinDeriv,
    u_r: &mut [f64],
    u_i: &mut [f64],
    du_r: &mut [f64],
    du_i: &mut [f64],
) {
    debug_assert_eq!(du_r.len(), idx.u_len * 3);
    let ck = &ckd.ck;
    u_r[0] = 1.0;
    u_i[0] = 0.0;
    for k in 0..3 {
        du_r[k] = 0.0;
        du_i[k] = 0.0;
    }
    for j in 1..=idx.twojmax {
        let mut mb = 0;
        while 2 * mb <= j {
            for ma in 0..=j {
                let iu = idx.u_index(j, mb, ma);
                let mut vr = 0.0;
                let mut vi = 0.0;
                let mut dv_r = [0.0f64; 3];
                let mut dv_i = [0.0f64; 3];
                if ma < j {
                    let p = idx.u_index(j - 1, mb, ma);
                    let c = rootpq.get(j - ma, j - mb);
                    let (tr, ti) = conj_mul(ck.a_r, ck.a_i, u_r[p], u_i[p]);
                    vr += c * tr;
                    vi += c * ti;
                    for k in 0..3 {
                        let (d1r, d1i) = conj_mul(ckd.da_r[k], ckd.da_i[k], u_r[p], u_i[p]);
                        let (d2r, d2i) = conj_mul(ck.a_r, ck.a_i, du_r[p * 3 + k], du_i[p * 3 + k]);
                        dv_r[k] += c * (d1r + d2r);
                        dv_i[k] += c * (d1i + d2i);
                    }
                }
                if ma > 0 {
                    let p = idx.u_index(j - 1, mb, ma - 1);
                    let c = rootpq.get(ma, j - mb);
                    let (tr, ti) = conj_mul(ck.b_r, ck.b_i, u_r[p], u_i[p]);
                    vr -= c * tr;
                    vi -= c * ti;
                    for k in 0..3 {
                        let (d1r, d1i) = conj_mul(ckd.db_r[k], ckd.db_i[k], u_r[p], u_i[p]);
                        let (d2r, d2i) = conj_mul(ck.b_r, ck.b_i, du_r[p * 3 + k], du_i[p * 3 + k]);
                        dv_r[k] -= c * (d1r + d2r);
                        dv_i[k] -= c * (d1i + d2i);
                    }
                }
                u_r[iu] = vr;
                u_i[iu] = vi;
                for k in 0..3 {
                    du_r[iu * 3 + k] = dv_r[k];
                    du_i[iu * 3 + k] = dv_i[k];
                }
            }
            mb += 1;
        }
        for mbp in mb..=j {
            for map in 0..=j {
                let src = idx.u_index(j, j - mbp, j - map);
                let dst = idx.u_index(j, mbp, map);
                let sign = if (mbp + map) % 2 == 0 { 1.0 } else { -1.0 };
                u_r[dst] = sign * u_r[src];
                u_i[dst] = -sign * u_i[src];
                for k in 0..3 {
                    du_r[dst * 3 + k] = sign * du_r[src * 3 + k];
                    du_i[dst * 3 + k] = -sign * du_i[src * 3 + k];
                }
            }
        }
    }
}

/// The derivative half of [`compute_u_du`] alone, reading the `u`
/// blocks from a cached evaluation (ComputeUi stores the per-neighbor
/// `u` in `SnapScratch`; the Deidrj pass then skips re-deriving it).
/// `compute_u` and `compute_u_du` produce bit-identical `u` (see
/// `u_du_consistent_with_u`), and the `du` recursion only ever reads
/// `u` from the previous, completed block — so this function's `du`
/// output is bit-identical to `compute_u_du`'s.
pub fn compute_du_cached(
    idx: &SnapIndices,
    rootpq: &RootPq,
    ckd: &CayleyKleinDeriv,
    u_r: &[f64],
    u_i: &[f64],
    du_r: &mut [f64],
    du_i: &mut [f64],
) {
    debug_assert_eq!(u_r.len(), idx.u_len);
    debug_assert_eq!(du_r.len(), idx.u_len * 3);
    let ck = &ckd.ck;
    for k in 0..3 {
        du_r[k] = 0.0;
        du_i[k] = 0.0;
    }
    for j in 1..=idx.twojmax {
        let mut mb = 0;
        while 2 * mb <= j {
            for ma in 0..=j {
                let iu = idx.u_index(j, mb, ma);
                let mut dv_r = [0.0f64; 3];
                let mut dv_i = [0.0f64; 3];
                if ma < j {
                    let p = idx.u_index(j - 1, mb, ma);
                    let c = rootpq.get(j - ma, j - mb);
                    for k in 0..3 {
                        let (d1r, d1i) = conj_mul(ckd.da_r[k], ckd.da_i[k], u_r[p], u_i[p]);
                        let (d2r, d2i) = conj_mul(ck.a_r, ck.a_i, du_r[p * 3 + k], du_i[p * 3 + k]);
                        dv_r[k] += c * (d1r + d2r);
                        dv_i[k] += c * (d1i + d2i);
                    }
                }
                if ma > 0 {
                    let p = idx.u_index(j - 1, mb, ma - 1);
                    let c = rootpq.get(ma, j - mb);
                    for k in 0..3 {
                        let (d1r, d1i) = conj_mul(ckd.db_r[k], ckd.db_i[k], u_r[p], u_i[p]);
                        let (d2r, d2i) = conj_mul(ck.b_r, ck.b_i, du_r[p * 3 + k], du_i[p * 3 + k]);
                        dv_r[k] -= c * (d1r + d2r);
                        dv_i[k] -= c * (d1i + d2i);
                    }
                }
                for k in 0..3 {
                    du_r[iu * 3 + k] = dv_r[k];
                    du_i[iu * 3 + k] = dv_i[k];
                }
            }
            mb += 1;
        }
        for mbp in mb..=j {
            for map in 0..=j {
                let src = idx.u_index(j, j - mbp, j - map);
                let dst = idx.u_index(j, mbp, map);
                let sign = if (mbp + map) % 2 == 0 { 1.0 } else { -1.0 };
                for k in 0..3 {
                    du_r[dst * 3 + k] = sign * du_r[src * 3 + k];
                    du_i[dst * 3 + k] = -sign * du_i[src * 3 + k];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyper::HyperParams;

    fn setup(twojmax: usize) -> (SnapIndices, RootPq, HyperParams) {
        (
            SnapIndices::new(twojmax),
            RootPq::new(twojmax),
            HyperParams::default(),
        )
    }

    /// Each u_j is a unitary matrix: its rows have unit norm.
    #[test]
    fn u_matrices_are_unitary() {
        let (idx, rootpq, p) = setup(8);
        let ck = p.map([1.1, -0.6, 2.0]);
        let mut u_r = vec![0.0; idx.u_len];
        let mut u_i = vec![0.0; idx.u_len];
        compute_u(&idx, &rootpq, &ck, &mut u_r, &mut u_i);
        for j in 0..=8usize {
            for mb in 0..=j {
                let mut norm = 0.0;
                for ma in 0..=j {
                    let iu = idx.u_index(j, mb, ma);
                    norm += u_r[iu] * u_r[iu] + u_i[iu] * u_i[iu];
                }
                assert!((norm - 1.0).abs() < 1e-10, "j={j} mb={mb}: row norm {norm}");
            }
        }
        // Orthogonality of distinct rows (full unitarity).
        for j in [4usize, 7] {
            for mb1 in 0..=j {
                for mb2 in (mb1 + 1)..=j {
                    let mut dot_r = 0.0;
                    let mut dot_i = 0.0;
                    for ma in 0..=j {
                        let i1 = idx.u_index(j, mb1, ma);
                        let i2 = idx.u_index(j, mb2, ma);
                        dot_r += u_r[i1] * u_r[i2] + u_i[i1] * u_i[i2];
                        dot_i += u_i[i1] * u_r[i2] - u_r[i1] * u_i[i2];
                    }
                    assert!(dot_r.abs() < 1e-10 && dot_i.abs() < 1e-10);
                }
            }
        }
    }

    /// The j=1 block is the Cayley-Klein SU(2) matrix itself.
    #[test]
    fn j_one_block_is_cayley_klein() {
        let (idx, rootpq, p) = setup(2);
        let ck = p.map([0.9, 0.4, -1.2]);
        let mut u_r = vec![0.0; idx.u_len];
        let mut u_i = vec![0.0; idx.u_len];
        compute_u(&idx, &rootpq, &ck, &mut u_r, &mut u_i);
        // u_1 = [[a*, -b*], [b, a]] in (mb, ma) convention.
        let at = (u_r[idx.u_index(1, 0, 0)], u_i[idx.u_index(1, 0, 0)]);
        assert!((at.0 - ck.a_r).abs() < 1e-14 && (at.1 + ck.a_i).abs() < 1e-14);
        let bt = (u_r[idx.u_index(1, 0, 1)], u_i[idx.u_index(1, 0, 1)]);
        assert!((bt.0 + ck.b_r).abs() < 1e-14 && (bt.1 - ck.b_i).abs() < 1e-14);
        let b2 = (u_r[idx.u_index(1, 1, 0)], u_i[idx.u_index(1, 1, 0)]);
        assert!((b2.0 - ck.b_r).abs() < 1e-14 && (b2.1 - ck.b_i).abs() < 1e-14);
        let a2 = (u_r[idx.u_index(1, 1, 1)], u_i[idx.u_index(1, 1, 1)]);
        assert!((a2.0 - ck.a_r).abs() < 1e-14 && (a2.1 - ck.a_i).abs() < 1e-14);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let (idx, rootpq, p) = setup(6);
        let d0 = [1.4, -0.8, 1.9];
        let ckd = p.map_with_derivatives(d0);
        let mut u_r = vec![0.0; idx.u_len];
        let mut u_i = vec![0.0; idx.u_len];
        let mut du_r = vec![0.0; idx.u_len * 3];
        let mut du_i = vec![0.0; idx.u_len * 3];
        compute_u_du(
            &idx, &rootpq, &ckd, &mut u_r, &mut u_i, &mut du_r, &mut du_i,
        );
        let h = 1e-6;
        for k in 0..3 {
            let mut dp = d0;
            let mut dm = d0;
            dp[k] += h;
            dm[k] -= h;
            let mut up_r = vec![0.0; idx.u_len];
            let mut up_i = vec![0.0; idx.u_len];
            let mut um_r = vec![0.0; idx.u_len];
            let mut um_i = vec![0.0; idx.u_len];
            compute_u(&idx, &rootpq, &p.map(dp), &mut up_r, &mut up_i);
            compute_u(&idx, &rootpq, &p.map(dm), &mut um_r, &mut um_i);
            for iu in 0..idx.u_len {
                let fd_r = (up_r[iu] - um_r[iu]) / (2.0 * h);
                let fd_i = (up_i[iu] - um_i[iu]) / (2.0 * h);
                assert!(
                    (du_r[iu * 3 + k] - fd_r).abs() < 1e-6,
                    "re iu={iu} k={k}: {} vs {}",
                    du_r[iu * 3 + k],
                    fd_r
                );
                assert!((du_i[iu * 3 + k] - fd_i).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn u_du_consistent_with_u() {
        let (idx, rootpq, p) = setup(8);
        let d0 = [0.7, 1.2, -0.4];
        let ckd = p.map_with_derivatives(d0);
        let mut u1_r = vec![0.0; idx.u_len];
        let mut u1_i = vec![0.0; idx.u_len];
        compute_u(&idx, &rootpq, &ckd.ck, &mut u1_r, &mut u1_i);
        let mut u2_r = vec![0.0; idx.u_len];
        let mut u2_i = vec![0.0; idx.u_len];
        let mut du_r = vec![0.0; idx.u_len * 3];
        let mut du_i = vec![0.0; idx.u_len * 3];
        compute_u_du(
            &idx, &rootpq, &ckd, &mut u2_r, &mut u2_i, &mut du_r, &mut du_i,
        );
        for iu in 0..idx.u_len {
            assert_eq!(u1_r[iu], u2_r[iu]);
            assert_eq!(u1_i[iu], u2_i[iu]);
        }
    }

    /// The du-only recursion over cached `u` reproduces every bit of
    /// `compute_u_du`'s derivative output — the contract that lets
    /// ComputeDeidrj reuse the `u` ComputeUi already computed.
    #[test]
    fn du_cached_is_bitwise_identical_to_full_recursion() {
        for twojmax in [2usize, 4, 8] {
            let (idx, rootpq, p) = setup(twojmax);
            for d0 in [[0.7, 1.2, -0.4], [1.9, -0.2, 0.3], [-1.1, -0.8, 1.6]] {
                let ckd = p.map_with_derivatives(d0);
                let mut u_r = vec![0.0; idx.u_len];
                let mut u_i = vec![0.0; idx.u_len];
                let mut du_r = vec![0.0; idx.u_len * 3];
                let mut du_i = vec![0.0; idx.u_len * 3];
                compute_u_du(
                    &idx, &rootpq, &ckd, &mut u_r, &mut u_i, &mut du_r, &mut du_i,
                );
                // Cached path: u from compute_u, du from the cached
                // recursion.
                let mut cu_r = vec![0.0; idx.u_len];
                let mut cu_i = vec![0.0; idx.u_len];
                compute_u(&idx, &rootpq, &ckd.ck, &mut cu_r, &mut cu_i);
                let mut cdu_r = vec![1.0; idx.u_len * 3];
                let mut cdu_i = vec![1.0; idx.u_len * 3];
                compute_du_cached(&idx, &rootpq, &ckd, &cu_r, &cu_i, &mut cdu_r, &mut cdu_i);
                for k in 0..idx.u_len * 3 {
                    assert_eq!(du_r[k].to_bits(), cdu_r[k].to_bits(), "du_r[{k}]");
                    assert_eq!(du_i[k].to_bits(), cdu_i[k].to_bits(), "du_i[{k}]");
                }
            }
        }
    }
}
