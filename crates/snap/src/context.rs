//! The four SNAP kernels (§4.3), per atom.
//!
//! * [`SnapContext::compute_ui`] — **ComputeUi**: per-(atom, neighbor)
//!   Wigner u-matrices accumulated into the per-atom `U` (eq. 2), with
//!   the neighbor work-batching variant of §4.3.4 (each work item sums
//!   `batch` neighbors locally before the accumulation, cutting the
//!   atomic-add count and exposing ILP).
//! * [`SnapContext::compute_bi`] — the `Z`/`B` triple products
//!   (eq. 3): `B_{j1,j2,j} = Z^j_{j1,j2} : U_j*`.
//! * [`SnapContext::compute_yi`] — **ComputeYi**: the adjoint matrices
//!   `Y = ∂E/∂U` (eq. 5). We build `Y` by exact reverse-mode
//!   differentiation of the implemented energy expression, which makes
//!   `F = −dE/dx` hold to round-off by construction.
//! * [`SnapContext::compute_deidrj`] — **ComputeDuidrj** +
//!   **ComputeDeidrj**, optionally *fused* over the three Cartesian
//!   directions (§4.3.4's ComputeFusedDeidrj: the unfused variant
//!   recomputes `u`/`du` once per direction).

use crate::cg::CgBlock;
use crate::hyper::{HyperParams, MapCore};
use crate::indices::SnapIndices;
use crate::tables::{z_from_pairs, ContractionTables};
use crate::wigner::{compute_du_cached, compute_u, compute_u_du, RootPq};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone id distinguishing `SnapContext` instances (and therefore
/// their contraction tables); thread-local scratch keys on it.
static GENERATION: AtomicU64 = AtomicU64::new(1);

/// Kernel-strategy knobs (Table 2's experiment axes).
#[derive(Debug, Clone, Copy)]
pub struct SnapKernelConfig {
    /// Neighbors handled per ComputeUi work item (1 = unbatched).
    pub ui_batch: usize,
    /// Atom tile width for the ComputeYi traversal (the `v` of §4.3.2).
    pub yi_tile: usize,
    /// Atoms handled per ComputeYi work item (§4.3.4: amortizes the
    /// warp-uniform coupling-table loads; the arithmetic is identical).
    pub yi_batch: usize,
    /// Fuse the three force directions in ComputeDeidrj.
    pub fuse_deidrj: bool,
    /// Round every force contribution scattered in ComputeDeidrj to a
    /// multiple of 2⁻³² before adding it. On that grid, f64 additions
    /// of physically-sized forces are *exact*, so the scattered sums
    /// become independent of accumulation order — the knob that makes
    /// SNAP trajectories bitwise identical across decompositions (see
    /// `docs/comm.md`, balancer determinism). Off by default: it costs
    /// ~2⁻³² absolute per contribution and the committed baselines pin
    /// the unquantized bits.
    pub quantize_scatter: bool,
}

impl Default for SnapKernelConfig {
    fn default() -> Self {
        SnapKernelConfig {
            ui_batch: 1,
            yi_tile: 32,
            yi_batch: 1,
            fuse_deidrj: true,
            quantize_scatter: false,
        }
    }
}

/// Per-atom working storage, reusable across atoms (§4.3: the serial
/// implementation reused these; parallel execution gives each worker
/// its own copy).
#[derive(Debug, Clone)]
pub struct SnapScratch {
    /// Per-neighbor u (and batch accumulator).
    u_r: Vec<f64>,
    u_i: Vec<f64>,
    acc_r: Vec<f64>,
    acc_i: Vec<f64>,
    du_r: Vec<f64>,
    du_i: Vec<f64>,
    /// Per-item Z values (one per contraction-table work item), shared
    /// by the energy contraction and the adjoint's term 1.
    z_r: Vec<f64>,
    z_i: Vec<f64>,
    /// Per-atom accumulated U.
    pub utot_r: Vec<f64>,
    pub utot_i: Vec<f64>,
    /// Per-atom adjoint Y.
    pub y_r: Vec<f64>,
    pub y_i: Vec<f64>,
}

/// Per-neighbor `(geometry, u)` cache filled by ComputeUi so the
/// Deidrj pass stops re-deriving the hypersphere map and re-running the
/// `u` recursion (it only needs the `du` half; see
/// [`crate::wigner::compute_du_cached`]).
#[derive(Debug, Clone, Default)]
pub struct NeighborCache {
    /// Hypersphere map of each in-cutoff neighbor.
    pub geom: Vec<MapCore>,
    u_r: Vec<f64>,
    u_i: Vec<f64>,
}

impl NeighborCache {
    /// Grow (never shrink) to hold `nn` neighbors.
    fn ensure(&mut self, nn: usize, u_len: usize) {
        if self.geom.len() < nn {
            self.geom.resize(nn, MapCore::default());
        }
        let need = nn * u_len;
        if self.u_r.len() < need {
            self.u_r.resize(need, 0.0);
            self.u_i.resize(need, 0.0);
        }
    }

    fn slice_mut(&mut self, k: usize, u_len: usize) -> (&mut [f64], &mut [f64]) {
        (
            &mut self.u_r[k * u_len..(k + 1) * u_len],
            &mut self.u_i[k * u_len..(k + 1) * u_len],
        )
    }

    /// Cached `u` of neighbor `k`.
    pub fn u(&self, k: usize, u_len: usize) -> (&[f64], &[f64]) {
        (
            &self.u_r[k * u_len..(k + 1) * u_len],
            &self.u_i[k * u_len..(k + 1) * u_len],
        )
    }
}

/// Immutable SNAP machinery: indices, tables, and the trained β.
#[derive(Debug, Clone)]
pub struct SnapContext {
    pub idx: SnapIndices,
    pub rootpq: RootPq,
    pub hyper: HyperParams,
    /// CG block per bispectrum triple.
    pub cg: Vec<CgBlock>,
    /// Linear-SNAP coefficients, one per triple (eq. 4).
    pub beta: Vec<f64>,
    /// Self-contribution weight on the U diagonal.
    pub wself: f64,
    /// Flattened sparse contraction tables, built once here and
    /// immutable for the context's lifetime.
    pub tables: ContractionTables,
    /// How many times the tables were constructed (the
    /// construction-once invariant pins this at 1).
    pub table_builds: u64,
    /// Unique context id; thread-local scratch keys on it.
    pub generation: u64,
}

impl SnapContext {
    pub fn new(twojmax: usize, hyper: HyperParams, beta: Vec<f64>) -> Self {
        let idx = SnapIndices::new(twojmax);
        assert_eq!(
            beta.len(),
            idx.n_bispectrum(),
            "need one beta per bispectrum component"
        );
        let cg: Vec<CgBlock> = idx
            .triples
            .iter()
            .map(|&(j1, j2, j)| CgBlock::new(j1, j2, j))
            .collect();
        let tables = ContractionTables::build(&idx, &cg, &beta);
        SnapContext {
            rootpq: RootPq::new(twojmax),
            idx,
            hyper,
            cg,
            beta,
            wself: 1.0,
            tables,
            table_builds: 1,
            generation: GENERATION.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Deterministic synthetic coefficients (DESIGN.md §2: trained
    /// values are proprietary-ish per material; performance and
    /// force-consistency are independent of them).
    pub fn synthetic_beta(twojmax: usize, seed: u64) -> Vec<f64> {
        let n = SnapIndices::new(twojmax).n_bispectrum();
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Small magnitudes keep forces O(1) in metal-ish units.
                ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2e-3
            })
            .collect()
    }

    pub fn alloc_scratch(&self) -> SnapScratch {
        let n = self.idx.u_len;
        let nz = self.tables.items.len();
        SnapScratch {
            u_r: vec![0.0; n],
            u_i: vec![0.0; n],
            acc_r: vec![0.0; n],
            acc_i: vec![0.0; n],
            du_r: vec![0.0; n * 3],
            du_i: vec![0.0; n * 3],
            z_r: vec![0.0; nz],
            z_i: vec![0.0; nz],
            utot_r: vec![0.0; n],
            utot_i: vec![0.0; n],
            y_r: vec![0.0; n],
            y_i: vec![0.0; n],
        }
    }

    /// ComputeUi: accumulate `U_j(i) = w_self·δ + Σ_k fc(r_k)·w_k·u_j(k)`
    /// over this atom's neighbors (relative positions `neigh`),
    /// `batch` neighbors per local accumulation. All neighbors carry
    /// the context's default weight; multi-element systems use
    /// [`SnapContext::compute_ui_weighted`].
    pub fn compute_ui(&self, neigh: &[[f64; 3]], s: &mut SnapScratch, batch: usize) {
        self.compute_ui_weighted(neigh, None, s, batch)
    }

    /// ComputeUi with an explicit per-neighbor element weight `w_k`
    /// (the `w_j` of eq. 2; per-element in multi-component SNAP).
    pub fn compute_ui_weighted(
        &self,
        neigh: &[[f64; 3]],
        weights: Option<&[f64]>,
        s: &mut SnapScratch,
        batch: usize,
    ) {
        let SnapScratch {
            u_r,
            u_i,
            acc_r,
            acc_i,
            utot_r,
            utot_i,
            ..
        } = s;
        self.ui_core(
            neigh, weights, batch, None, utot_r, utot_i, u_r, u_i, acc_r, acc_i,
        );
    }

    /// [`SnapContext::compute_ui_weighted`] that additionally fills a
    /// per-neighbor [`NeighborCache`] (geometry + `u`) for the staged
    /// Deidrj pass, writing the accumulated `U` into caller-owned
    /// slices (the per-atom pool of the fissioned pipeline).
    #[allow(clippy::too_many_arguments)]
    pub fn compute_ui_into(
        &self,
        neigh: &[[f64; 3]],
        weights: Option<&[f64]>,
        batch: usize,
        cache: &mut NeighborCache,
        utot_r: &mut [f64],
        utot_i: &mut [f64],
        s: &mut SnapScratch,
    ) {
        let SnapScratch {
            u_r,
            u_i,
            acc_r,
            acc_i,
            ..
        } = s;
        self.ui_core(
            neigh,
            weights,
            batch,
            Some(cache),
            utot_r,
            utot_i,
            u_r,
            u_i,
            acc_r,
            acc_i,
        );
    }

    /// The shared ComputeUi body. With `batch == 1` the per-chunk local
    /// accumulator is skipped and `U` is accumulated directly — bitwise
    /// identical, since `acc = 0.0 + sfac·u` can only differ from
    /// `sfac·u` in the sign of zero, and `utot` (seeded from `+0.0` and
    /// `wself`) can never be `-0.0`, which makes `utot + (±0.0)`
    /// sign-insensitive.
    #[allow(clippy::too_many_arguments)]
    fn ui_core(
        &self,
        neigh: &[[f64; 3]],
        weights: Option<&[f64]>,
        batch: usize,
        mut cache: Option<&mut NeighborCache>,
        utot_r: &mut [f64],
        utot_i: &mut [f64],
        u_r: &mut [f64],
        u_i: &mut [f64],
        acc_r: &mut [f64],
        acc_i: &mut [f64],
    ) {
        if let Some(w) = weights {
            assert_eq!(w.len(), neigh.len());
        }
        let n_u = self.idx.u_len;
        let batch = batch.max(1);
        utot_r[..n_u].fill(0.0);
        utot_i[..n_u].fill(0.0);
        // Self term on the diagonals.
        for j in 0..=self.idx.twojmax {
            for ma in 0..=j {
                utot_r[self.idx.u_index(j, ma, ma)] = self.wself;
            }
        }
        if let Some(c) = cache.as_deref_mut() {
            c.ensure(neigh.len(), n_u);
        }
        if batch == 1 {
            for (k, d) in neigh.iter().enumerate() {
                let core = self.hyper.map_core(*d);
                let w = weights.map_or(1.0, |ws| ws[k]);
                let sfac = core.ck.sfac * w;
                let (ur, ui) = match cache.as_deref_mut() {
                    Some(c) => {
                        c.geom[k] = core;
                        c.slice_mut(k, n_u)
                    }
                    None => (&mut u_r[..], &mut u_i[..]),
                };
                compute_u(&self.idx, &self.rootpq, &core.ck, ur, ui);
                for iu in 0..n_u {
                    utot_r[iu] += sfac * ur[iu];
                    utot_i[iu] += sfac * ui[iu];
                }
            }
            return;
        }
        for (c_idx, chunk) in neigh.chunks(batch).enumerate() {
            // Local (register-like) accumulation over the batch —
            // exactly the "sum over neighbors locally before performing
            // the atomic addition" optimization of §4.3.4. The chunk's
            // weight slice is hoisted out of the neighbor loop.
            acc_r[..n_u].fill(0.0);
            acc_i[..n_u].fill(0.0);
            let wchunk = weights.map(|ws| &ws[c_idx * batch..]);
            for (k_in, d) in chunk.iter().enumerate() {
                let core = self.hyper.map_core(*d);
                let w = wchunk.map_or(1.0, |ws| ws[k_in]);
                let sfac = core.ck.sfac * w;
                let (ur, ui) = match cache.as_deref_mut() {
                    Some(c) => {
                        let k = c_idx * batch + k_in;
                        c.geom[k] = core;
                        c.slice_mut(k, n_u)
                    }
                    None => (&mut u_r[..], &mut u_i[..]),
                };
                compute_u(&self.idx, &self.rootpq, &core.ck, ur, ui);
                for iu in 0..n_u {
                    acc_r[iu] += sfac * ur[iu];
                    acc_i[iu] += sfac * ui[iu];
                }
            }
            for iu in 0..n_u {
                utot_r[iu] += acc_r[iu];
                utot_i[iu] += acc_i[iu];
            }
        }
    }

    /// One element of `Z^j_{j1,j2}(mb, ma)` from the accumulated U
    /// (the eq. 3 coupled product, both CG contractions).
    #[inline]
    fn z_element(
        &self,
        t: usize,
        ma: usize,
        mb: usize,
        utot_r: &[f64],
        utot_i: &[f64],
    ) -> (f64, f64) {
        let (j1, j2, j) = self.idx.triples[t];
        let cgb = &self.cg[t];
        let shift = (j1 + j2 - j) / 2;
        let mut zr = 0.0;
        let mut zi = 0.0;
        let ma1_lo = (ma + shift).saturating_sub(j2);
        let ma1_hi = (ma + shift).min(j1);
        let mb1_lo = (mb + shift).saturating_sub(j2);
        let mb1_hi = (mb + shift).min(j1);
        for ma1 in ma1_lo..=ma1_hi {
            let ma2 = ma + shift - ma1;
            let ca = cgb.get(ma1, ma2);
            if ca == 0.0 {
                continue;
            }
            for mb1 in mb1_lo..=mb1_hi {
                let mb2 = mb + shift - mb1;
                let cb = cgb.get(mb1, mb2);
                if cb == 0.0 {
                    continue;
                }
                let i1 = self.idx.u_index(j1, mb1, ma1);
                let i2 = self.idx.u_index(j2, mb2, ma2);
                let pr = utot_r[i1] * utot_r[i2] - utot_i[i1] * utot_i[i2];
                let pi = utot_r[i1] * utot_i[i2] + utot_i[i1] * utot_r[i2];
                zr += ca * cb * pr;
                zi += ca * cb * pi;
            }
        }
        (zr, zi)
    }

    /// The bispectrum components `B_{j1,j2,j} = Z : U*` for the current
    /// `utot` (eq. 3), via the flattened contraction tables.
    pub fn compute_bi(&self, s: &SnapScratch) -> Vec<f64> {
        self.compute_bi_from_u(&s.utot_r, &s.utot_i)
    }

    /// Table-driven `B` on caller-owned `U` slices. Sums in exactly the
    /// direct-loop order (items are stored in that order), so the
    /// result is bit-identical to [`SnapContext::compute_bi_direct`].
    pub fn compute_bi_from_u(&self, utot_r: &[f64], utot_i: &[f64]) -> Vec<f64> {
        let tbl = &self.tables;
        (0..self.idx.n_bispectrum())
            .map(|t| {
                let mut b = 0.0;
                for item in &tbl.items[tbl.triple_range(t)] {
                    let (zr, zi) = z_from_pairs(
                        &tbl.pairs[item.pair_lo as usize..item.pair_hi as usize],
                        utot_r,
                        utot_i,
                    );
                    let iu = item.iu as usize;
                    // Re(z · conj(U)).
                    b += zr * utot_r[iu] + zi * utot_i[iu];
                }
                b
            })
            .collect()
    }

    /// The direct (pre-table) quadruple-loop `B` evaluation, retained
    /// as the bit-identity reference for the equivalence tests.
    pub fn compute_bi_direct(&self, s: &SnapScratch) -> Vec<f64> {
        self.idx
            .triples
            .iter()
            .enumerate()
            .map(|(t, &(_, _, j))| {
                let mut b = 0.0;
                for mb in 0..=j {
                    for ma in 0..=j {
                        let (zr, zi) = self.z_element(t, ma, mb, &s.utot_r, &s.utot_i);
                        let iu = self.idx.u_index(j, mb, ma);
                        // Re(z · conj(U)).
                        b += zr * s.utot_r[iu] + zi * s.utot_i[iu];
                    }
                }
                b
            })
            .collect()
    }

    /// Per-atom energy `E_i = Σ β·B` (eq. 4).
    pub fn energy(&self, s: &SnapScratch) -> f64 {
        self.compute_bi(s)
            .iter()
            .zip(&self.beta)
            .map(|(b, beta)| b * beta)
            .sum()
    }

    /// ComputeZi: evaluate every work item's `z` once into the per-item
    /// scratch, to be shared by the energy contraction and the
    /// adjoint's term 1 (the direct path evaluated each `z` twice).
    pub fn compute_zi_into(
        &self,
        utot_r: &[f64],
        utot_i: &[f64],
        z_r: &mut [f64],
        z_i: &mut [f64],
    ) {
        let tbl = &self.tables;
        for (k, item) in tbl.items.iter().enumerate() {
            let (zr, zi) = z_from_pairs(
                &tbl.pairs[item.pair_lo as usize..item.pair_hi as usize],
                utot_r,
                utot_i,
            );
            z_r[k] = zr;
            z_i[k] = zi;
        }
    }

    /// `E_i = Σ β·B` from precomputed per-item `z` — bit-identical to
    /// [`SnapContext::energy`] (same item order, same association).
    pub fn energy_from_z(&self, utot_r: &[f64], utot_i: &[f64], z_r: &[f64], z_i: &[f64]) -> f64 {
        let tbl = &self.tables;
        let mut e = 0.0;
        for (t, beta) in self.beta.iter().enumerate() {
            let mut b = 0.0;
            for k in tbl.triple_range(t) {
                let iu = tbl.items[k].iu as usize;
                b += z_r[k] * utot_r[iu] + z_i[k] * utot_i[iu];
            }
            e += b * beta;
        }
        e
    }

    /// ComputeYi from precomputed per-item `z`: term 1 reads the shared
    /// `z`, term 2 walks the prefiltered scatter table. Work items are
    /// stored in the direct loop's exact order, so the aliased `y`
    /// accumulations replay bit-identically.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_yi_from_z(
        &self,
        utot_r: &[f64],
        utot_i: &[f64],
        z_r: &[f64],
        z_i: &[f64],
        y_r: &mut [f64],
        y_i: &mut [f64],
    ) {
        let n_u = self.idx.u_len;
        y_r[..n_u].fill(0.0);
        y_i[..n_u].fill(0.0);
        let tbl = &self.tables;
        for yit in &tbl.y_items {
            let k = yit.z as usize;
            let iu = tbl.items[k].iu as usize;
            let (ujr, uji) = (utot_r[iu], utot_i[iu]);
            // Term 1: B depends on conj(U_j) explicitly.
            y_r[iu] += yit.beta * z_r[k];
            y_i[iu] += yit.beta * z_i[k];
            // Term 2: B depends on U_{j1}, U_{j2} inside Z.
            for sc in &tbl.y_scatters[yit.scat_lo as usize..yit.scat_hi as usize] {
                let (i1, i2) = (sc.i1 as usize, sc.i2 as usize);
                let (u1r, u1i) = (utot_r[i1], utot_i[i1]);
                let (u2r, u2i) = (utot_r[i2], utot_i[i2]);
                y_r[i1] += sc.w * (u2r * ujr + u2i * uji);
                y_i[i1] += sc.w * (-u2i * ujr + u2r * uji);
                y_r[i2] += sc.w * (u1r * ujr + u1i * uji);
                y_i[i2] += sc.w * (-u1i * ujr + u1r * uji);
            }
        }
    }

    /// ComputeYi: the adjoint `Y = ∂E_i/∂U` by exact reverse-mode
    /// differentiation of [`SnapContext::compute_bi`]'s expression.
    /// `(y_r, y_i)` hold `∂E/∂(Re U)`, `∂E/∂(Im U)`.
    pub fn compute_yi(&self, s: &mut SnapScratch) {
        let SnapScratch {
            z_r,
            z_i,
            utot_r,
            utot_i,
            y_r,
            y_i,
            ..
        } = s;
        self.compute_zi_into(utot_r, utot_i, z_r, z_i);
        self.compute_yi_from_z(utot_r, utot_i, z_r, z_i, y_r, y_i);
    }

    /// The direct (pre-table) adjoint construction, retained as the
    /// bit-identity reference for the equivalence tests.
    pub fn compute_yi_direct(&self, s: &mut SnapScratch) {
        s.y_r.iter_mut().for_each(|x| *x = 0.0);
        s.y_i.iter_mut().for_each(|x| *x = 0.0);
        for (t, &(j1, j2, j)) in self.idx.triples.iter().enumerate() {
            let beta = self.beta[t];
            if beta == 0.0 {
                continue;
            }
            let cgb = &self.cg[t];
            let shift = (j1 + j2 - j) / 2;
            for mb in 0..=j {
                for ma in 0..=j {
                    let iu = self.idx.u_index(j, mb, ma);
                    let (ujr, uji) = (s.utot_r[iu], s.utot_i[iu]);
                    // Term 1: B depends on conj(U_j) explicitly.
                    let (zr, zi) = self.z_element(t, ma, mb, &s.utot_r, &s.utot_i);
                    s.y_r[iu] += beta * zr;
                    s.y_i[iu] += beta * zi;
                    // Term 2: B depends on U_{j1}, U_{j2} inside Z.
                    let ma1_lo = (ma + shift).saturating_sub(j2);
                    let ma1_hi = (ma + shift).min(j1);
                    let mb1_lo = (mb + shift).saturating_sub(j2);
                    let mb1_hi = (mb + shift).min(j1);
                    for ma1 in ma1_lo..=ma1_hi {
                        let ma2 = ma + shift - ma1;
                        let ca = cgb.get(ma1, ma2);
                        if ca == 0.0 {
                            continue;
                        }
                        for mb1 in mb1_lo..=mb1_hi {
                            let mb2 = mb + shift - mb1;
                            let w = beta * ca * cgb.get(mb1, mb2);
                            if w == 0.0 {
                                continue;
                            }
                            let i1 = self.idx.u_index(j1, mb1, ma1);
                            let i2 = self.idx.u_index(j2, mb2, ma2);
                            let (u1r, u1i) = (s.utot_r[i1], s.utot_i[i1]);
                            let (u2r, u2i) = (s.utot_r[i2], s.utot_i[i2]);
                            // E += w [ (u1r u2r − u1i u2i) ujr
                            //        + (u1r u2i + u1i u2r) uji ].
                            s.y_r[i1] += w * (u2r * ujr + u2i * uji);
                            s.y_i[i1] += w * (-u2i * ujr + u2r * uji);
                            s.y_r[i2] += w * (u1r * ujr + u1i * uji);
                            s.y_i[i2] += w * (-u1i * ujr + u1r * uji);
                        }
                    }
                }
            }
        }
    }

    /// ComputeDuidrj + ComputeDeidrj for one neighbor at relative
    /// position `d`: returns `∂E_i/∂x_k` (the gradient with respect to
    /// the *neighbor*'s position). With `fused`, `u`/`du` are built
    /// once and all three directions contracted in a single pass; the
    /// unfused variant reruns the recursion per direction, reproducing
    /// the pre-fusion redundancy the paper eliminated.
    pub fn compute_deidrj(&self, d: [f64; 3], s: &mut SnapScratch, fused: bool) -> [f64; 3] {
        self.compute_deidrj_weighted(d, 1.0, s, fused)
    }

    /// [`SnapContext::compute_deidrj`] with the neighbor's element
    /// weight `w_k` (must match the weight used in ComputeUi).
    pub fn compute_deidrj_weighted(
        &self,
        d: [f64; 3],
        weight: f64,
        s: &mut SnapScratch,
        fused: bool,
    ) -> [f64; 3] {
        let mut ckd = self.hyper.map_with_derivatives(d);
        ckd.ck.sfac *= weight;
        for dk in &mut ckd.dsfac {
            *dk *= weight;
        }
        let ckd = &ckd;
        let mut dedr = [0.0f64; 3];
        if fused {
            compute_u_du(
                &self.idx,
                &self.rootpq,
                ckd,
                &mut s.u_r,
                &mut s.u_i,
                &mut s.du_r,
                &mut s.du_i,
            );
            for iu in 0..self.idx.u_len {
                let (ur, ui) = (s.u_r[iu], s.u_i[iu]);
                let (yr, yi) = (s.y_r[iu], s.y_i[iu]);
                for (k, dedk) in dedr.iter_mut().enumerate() {
                    // d(sfac·u)/dx_k = dsfac_k·u + sfac·du_k.
                    let dr = ckd.dsfac[k] * ur + ckd.ck.sfac * s.du_r[iu * 3 + k];
                    let di = ckd.dsfac[k] * ui + ckd.ck.sfac * s.du_i[iu * 3 + k];
                    *dedk += yr * dr + yi * di;
                }
            }
        } else {
            for (k, dedk) in dedr.iter_mut().enumerate() {
                // Unfused: recompute the recursion for every direction.
                compute_u_du(
                    &self.idx,
                    &self.rootpq,
                    ckd,
                    &mut s.u_r,
                    &mut s.u_i,
                    &mut s.du_r,
                    &mut s.du_i,
                );
                for iu in 0..self.idx.u_len {
                    let dr = ckd.dsfac[k] * s.u_r[iu] + ckd.ck.sfac * s.du_r[iu * 3 + k];
                    let di = ckd.dsfac[k] * s.u_i[iu] + ckd.ck.sfac * s.du_i[iu * 3 + k];
                    *dedk += s.y_r[iu] * dr + s.y_i[iu] * di;
                }
            }
        }
        dedr
    }

    /// Staged ComputeZi/ComputeYi: fill the per-item `z` scratch once,
    /// contract the energy from it, and build the adjoint `Y` into the
    /// caller-owned slices. Returns `E_i`. Bit-identical to running
    /// `energy` + `compute_yi` (which evaluate each `z` twice).
    pub fn compute_energy_yi_into(
        &self,
        utot_r: &[f64],
        utot_i: &[f64],
        y_r: &mut [f64],
        y_i: &mut [f64],
        s: &mut SnapScratch,
    ) -> f64 {
        let SnapScratch { z_r, z_i, .. } = s;
        self.compute_zi_into(utot_r, utot_i, z_r, z_i);
        let e = self.energy_from_z(utot_r, utot_i, z_r, z_i);
        self.compute_yi_from_z(utot_r, utot_i, z_r, z_i, y_r, y_i);
        e
    }

    /// Fused Deidrj for one neighbor whose geometry and `u` were cached
    /// by ComputeUi ([`SnapContext::compute_ui_into`]): only the `du`
    /// half of the recursion runs, and the hypersphere trigonometry is
    /// not re-derived. Bit-identical to the fused
    /// [`SnapContext::compute_deidrj_weighted`].
    #[allow(clippy::too_many_arguments)]
    pub fn compute_deidrj_cached(
        &self,
        d: [f64; 3],
        weight: f64,
        core: &MapCore,
        u_r: &[f64],
        u_i: &[f64],
        y_r: &[f64],
        y_i: &[f64],
        s: &mut SnapScratch,
    ) -> [f64; 3] {
        let mut ckd = self.hyper.derivatives_from(d, core);
        ckd.ck.sfac *= weight;
        for dk in &mut ckd.dsfac {
            *dk *= weight;
        }
        compute_du_cached(
            &self.idx,
            &self.rootpq,
            &ckd,
            u_r,
            u_i,
            &mut s.du_r,
            &mut s.du_i,
        );
        let mut dedr = [0.0f64; 3];
        for iu in 0..self.idx.u_len {
            let (ur, ui) = (u_r[iu], u_i[iu]);
            let (yr, yi) = (y_r[iu], y_i[iu]);
            for (k, dedk) in dedr.iter_mut().enumerate() {
                // d(sfac·u)/dx_k = dsfac_k·u + sfac·du_k.
                let dr = ckd.dsfac[k] * ur + ckd.ck.sfac * s.du_r[iu * 3 + k];
                let di = ckd.dsfac[k] * ui + ckd.ck.sfac * s.du_i[iu * 3 + k];
                *dedk += yr * dr + yi * di;
            }
        }
        dedr
    }

    /// Full per-atom evaluation: energy and the gradient with respect
    /// to each neighbor position.
    pub fn atom_energy_forces(
        &self,
        neigh: &[[f64; 3]],
        s: &mut SnapScratch,
        cfg: &SnapKernelConfig,
    ) -> (f64, Vec<[f64; 3]>) {
        self.compute_ui(neigh, s, cfg.ui_batch);
        let e = self.energy(s);
        self.compute_yi(s);
        let grads = neigh
            .iter()
            .map(|&d| self.compute_deidrj(d, s, cfg.fuse_deidrj))
            .collect();
        (e, grads)
    }

    // ---- Event-count models for the device cost model (measured
    //      structural quantities; see lkk-gpusim). ----

    /// FP64 ops for ComputeUi at `nneigh` neighbors per atom.
    pub fn ui_flops_per_atom(&self, nneigh: f64) -> f64 {
        // Recursion: ~20 flops per u element per neighbor + accumulate.
        nneigh * self.idx.u_len as f64 * 22.0
    }

    /// FP64 atomic adds for ComputeUi at batch `b`: 2 per complex
    /// element per neighbor-batch group, after the warp-level
    /// aggregation the production kernel always performs (÷ warp/4).
    pub fn ui_atomics_per_atom(&self, nneigh: f64, batch: usize) -> f64 {
        (nneigh / batch.max(1) as f64).ceil() * self.idx.u_len as f64 * 2.0 / 8.0
    }

    /// Inner CG-contraction iterations of ComputeYi per atom (the
    /// quadruple loop's trip count).
    pub fn yi_inner_ops_per_atom(&self) -> f64 {
        let mut ops = 0.0;
        for &(j1, j2, j) in self.idx.triples.iter() {
            let inner = ((j1 + 1) * (j2 + 1)) as f64;
            ops += ((j + 1) * (j + 1)) as f64 * inner;
        }
        ops
    }

    /// FP64 ops for ComputeYi: ~10 per inner contraction (complex
    /// multiply-accumulate with two CG weights). The byte:flop ratio is
    /// what makes Yi "limited by L1 cache throughput" (§4.3.4).
    pub fn yi_flops_per_atom(&self) -> f64 {
        self.yi_inner_ops_per_atom() * 10.0
    }

    /// Bytes of U data ComputeYi reads per atom (the L1-resident
    /// working set of §4.3.2).
    pub fn u_bytes_per_atom(&self) -> f64 {
        (self.idx.u_len * 16) as f64
    }

    /// FP64 ops for one Deidrj evaluation per neighbor. The fused
    /// variant computes `u` once for all three directions (§4.3.4:
    /// "the redundant work was re-computing U_j and re-loading Y_j");
    /// the unfused variant re-runs the `u` recursion per direction.
    pub fn deidrj_flops_per_neighbor(&self, fused: bool) -> f64 {
        let u = self.idx.u_len as f64 * 22.0;
        let du_all = self.idx.u_len as f64 * 60.0;
        let contract = self.idx.u_len as f64 * 12.0;
        if fused {
            u + du_all + contract
        } else {
            // Per-direction launches partially reuse u rows in
            // registers; ~2.5 of the 3 recursion passes are redundant.
            2.5 * u + du_all + contract
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(twojmax: usize) -> SnapContext {
        SnapContext::new(
            twojmax,
            HyperParams::default(),
            SnapContext::synthetic_beta(twojmax, 42),
        )
    }

    fn cluster() -> Vec<[f64; 3]> {
        vec![
            [1.2, 0.3, -0.4],
            [-0.9, 1.5, 0.8],
            [0.4, -1.1, 1.9],
            [2.2, 1.0, 0.5],
            [-1.5, -1.2, -0.7],
        ]
    }

    #[test]
    fn bispectrum_is_rotation_invariant() {
        let c = ctx(6);
        let mut s = c.alloc_scratch();
        let neigh = cluster();
        c.compute_ui(&neigh, &mut s, 1);
        let b0 = c.compute_bi(&s);
        // Rotate all neighbors by a non-trivial rotation (ZYX Euler).
        let (a, b, g) = (0.7, -1.1, 2.3);
        let (ca, sa) = (f64::cos(a), f64::sin(a));
        let (cb, sb) = (f64::cos(b), f64::sin(b));
        let (cc, sc) = (f64::cos(g), f64::sin(g));
        let rot = |v: [f64; 3]| -> [f64; 3] {
            // Rz(a) then Ry(b) then Rx(g).
            let v1 = [ca * v[0] - sa * v[1], sa * v[0] + ca * v[1], v[2]];
            let v2 = [cb * v1[0] + sb * v1[2], v1[1], -sb * v1[0] + cb * v1[2]];
            [v2[0], cc * v2[1] - sc * v2[2], sc * v2[1] + cc * v2[2]]
        };
        let rotated: Vec<[f64; 3]> = neigh.iter().map(|&v| rot(v)).collect();
        c.compute_ui(&rotated, &mut s, 1);
        let b1 = c.compute_bi(&s);
        for (x, y) in b0.iter().zip(&b1) {
            assert!(
                (x - y).abs() < 1e-9 * x.abs().max(1.0),
                "B not invariant: {x} vs {y}"
            );
        }
        // ... and not all zero.
        assert!(b0.iter().any(|x| x.abs() > 1e-6));
    }

    #[test]
    fn bispectrum_invariant_under_neighbor_permutation() {
        let c = ctx(4);
        let mut s = c.alloc_scratch();
        let neigh = cluster();
        c.compute_ui(&neigh, &mut s, 1);
        let b0 = c.compute_bi(&s);
        let mut perm = neigh.clone();
        perm.reverse();
        c.compute_ui(&perm, &mut s, 1);
        let b1 = c.compute_bi(&s);
        for (x, y) in b0.iter().zip(&b1) {
            assert!((x - y).abs() < 1e-10 * x.abs().max(1.0));
        }
    }

    #[test]
    fn ui_batching_is_exact() {
        let c = ctx(6);
        let mut s = c.alloc_scratch();
        let neigh = cluster();
        c.compute_ui(&neigh, &mut s, 1);
        let u1: Vec<f64> = s.utot_r.clone();
        for batch in [2usize, 3, 4, 8] {
            c.compute_ui(&neigh, &mut s, batch);
            for (a, b) in u1.iter().zip(&s.utot_r) {
                assert!((a - b).abs() < 1e-12, "batch {batch}");
            }
        }
    }

    #[test]
    fn forces_match_finite_difference_of_energy() {
        let c = ctx(6);
        let mut s = c.alloc_scratch();
        let neigh = cluster();
        let cfg = SnapKernelConfig::default();
        let (_, grads) = c.atom_energy_forces(&neigh, &mut s, &cfg);
        let h = 1e-6;
        for (k_n, _) in neigh.iter().enumerate() {
            for dir in 0..3 {
                let mut np = neigh.clone();
                let mut nm = neigh.clone();
                np[k_n][dir] += h;
                nm[k_n][dir] -= h;
                c.compute_ui(&np, &mut s, 1);
                let ep = c.energy(&s);
                c.compute_ui(&nm, &mut s, 1);
                let em = c.energy(&s);
                let fd = (ep - em) / (2.0 * h);
                let an = grads[k_n][dir];
                assert!(
                    (an - fd).abs() < 1e-8 * fd.abs().max(1e-4),
                    "neighbor {k_n} dir {dir}: analytic {an} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn fused_and_unfused_deidrj_agree() {
        let c = ctx(8);
        let mut s = c.alloc_scratch();
        let neigh = cluster();
        c.compute_ui(&neigh, &mut s, 1);
        c.compute_yi(&mut s);
        for &d in &neigh {
            let fused = c.compute_deidrj(d, &mut s, true);
            let unfused = c.compute_deidrj(d, &mut s, false);
            for k in 0..3 {
                assert!((fused[k] - unfused[k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn isolated_atom_has_constant_energy() {
        // With no neighbors, only the self term contributes: energy is
        // a constant offset with zero gradient.
        let c = ctx(4);
        let mut s = c.alloc_scratch();
        let cfg = SnapKernelConfig::default();
        let (e0, grads) = c.atom_energy_forces(&[], &mut s, &cfg);
        assert!(e0.is_finite());
        assert!(grads.is_empty());
    }

    #[test]
    fn neighbor_beyond_cutoff_contributes_nothing() {
        let c = ctx(4);
        let mut s = c.alloc_scratch();
        let near = vec![[1.0, 0.5, -0.2]];
        c.compute_ui(&near, &mut s, 1);
        let e_near = c.energy(&s);
        let with_far = vec![[1.0, 0.5, -0.2], [c.hyper.rcut + 0.5, 0.0, 0.0]];
        c.compute_ui(&with_far, &mut s, 1);
        let e_far = c.energy(&s);
        assert!((e_near - e_far).abs() < 1e-12);
    }

    #[test]
    fn flop_models_scale_sensibly() {
        let c4 = ctx(4);
        let c8 = ctx(8);
        assert!(c8.ui_flops_per_atom(20.0) > 4.0 * c4.ui_flops_per_atom(20.0));
        assert!(c8.yi_flops_per_atom() > c4.yi_flops_per_atom());
        assert!(c8.ui_atomics_per_atom(20.0, 4) < c8.ui_atomics_per_atom(20.0, 1));
        assert!(c8.deidrj_flops_per_neighbor(false) > 1.3 * c8.deidrj_flops_per_neighbor(true));
    }

    /// The flattened tables reproduce the direct quadruple loops bit
    /// for bit, for B, for Y, and with β zero patterns in play.
    #[test]
    fn tables_are_bitwise_identical_to_direct_loops() {
        for twojmax in [2usize, 4, 6, 8] {
            let n = SnapIndices::new(twojmax).n_bispectrum();
            let mut beta = SnapContext::synthetic_beta(twojmax, 11);
            // Zero out a pattern of triples to exercise prefiltering.
            for (t, b) in beta.iter_mut().enumerate() {
                if t % 3 == 0 {
                    *b = 0.0;
                }
            }
            assert_eq!(beta.len(), n);
            let c = SnapContext::new(twojmax, HyperParams::default(), beta);
            let mut s = c.alloc_scratch();
            c.compute_ui(&cluster(), &mut s, 1);
            let b_table = c.compute_bi(&s);
            let b_direct = c.compute_bi_direct(&s);
            for (a, b) in b_table.iter().zip(&b_direct) {
                assert_eq!(a.to_bits(), b.to_bits(), "twojmax {twojmax}");
            }
            c.compute_yi(&mut s);
            let (y_r, y_i) = (s.y_r.clone(), s.y_i.clone());
            c.compute_yi_direct(&mut s);
            for iu in 0..c.idx.u_len {
                assert_eq!(y_r[iu].to_bits(), s.y_r[iu].to_bits(), "y_r[{iu}]");
                assert_eq!(y_i[iu].to_bits(), s.y_i[iu].to_bits(), "y_i[{iu}]");
            }
        }
    }

    /// The staged pipeline (Ui-with-cache → shared-Z energy+Yi →
    /// cached Deidrj) reproduces the scratch-based public entry points
    /// bit for bit.
    #[test]
    fn staged_pipeline_is_bitwise_identical() {
        let c = ctx(6);
        let neigh = cluster();
        let wts = [1.0, 0.7, 1.0, 0.3, 1.0];
        for batch in [1usize, 2, 4] {
            // Reference path.
            let mut s = c.alloc_scratch();
            c.compute_ui_weighted(&neigh, Some(&wts), &mut s, batch);
            let e_ref = c.energy(&s);
            c.compute_yi(&mut s);
            let g_ref: Vec<[f64; 3]> = neigh
                .iter()
                .zip(&wts)
                .map(|(&d, &w)| c.compute_deidrj_weighted(d, w, &mut s, true))
                .collect();
            // Staged path on external slices.
            let mut s2 = c.alloc_scratch();
            let mut cache = NeighborCache::default();
            let n_u = c.idx.u_len;
            let mut utot_r = vec![0.0; n_u];
            let mut utot_i = vec![0.0; n_u];
            let mut y_r = vec![0.0; n_u];
            let mut y_i = vec![0.0; n_u];
            c.compute_ui_into(
                &neigh,
                Some(&wts),
                batch,
                &mut cache,
                &mut utot_r,
                &mut utot_i,
                &mut s2,
            );
            for iu in 0..n_u {
                assert_eq!(utot_r[iu].to_bits(), s.utot_r[iu].to_bits());
                assert_eq!(utot_i[iu].to_bits(), s.utot_i[iu].to_bits());
            }
            let e = c.compute_energy_yi_into(&utot_r, &utot_i, &mut y_r, &mut y_i, &mut s2);
            assert_eq!(e.to_bits(), e_ref.to_bits(), "batch {batch}");
            for iu in 0..n_u {
                assert_eq!(y_r[iu].to_bits(), s.y_r[iu].to_bits());
                assert_eq!(y_i[iu].to_bits(), s.y_i[iu].to_bits());
            }
            for (k, (&d, &w)) in neigh.iter().zip(&wts).enumerate() {
                let (cu_r, cu_i) = cache.u(k, n_u);
                let g =
                    c.compute_deidrj_cached(d, w, &cache.geom[k], cu_r, cu_i, &y_r, &y_i, &mut s2);
                for dir in 0..3 {
                    assert_eq!(
                        g[dir].to_bits(),
                        g_ref[k][dir].to_bits(),
                        "neighbor {k} dir {dir} batch {batch}"
                    );
                }
            }
        }
    }

    /// Tables are built exactly once, in the constructor.
    #[test]
    fn tables_built_once_per_context() {
        let c = ctx(4);
        assert_eq!(c.table_builds, 1);
        assert!(!c.tables.pairs.is_empty());
        assert!(!c.tables.y_items.is_empty());
        // Distinct contexts get distinct generations (scratch keys).
        let c2 = ctx(4);
        assert_ne!(c.generation, c2.generation);
    }
}
