//! `pair_style snap`: SNAP wired into the `lkk-core` engine.
//!
//! Uses a full neighbor list (the GPU-style choice: §4.3 notes two
//! kernels "benefited from the high arithmetic intensity permitted by
//! GPUs" the way full lists do for LJ) and a `ScatterView` for the
//! neighbor-force scatter.
//!
//! The per-atom computation is *fissioned* into three staged kernels
//! (the TestSNAP restructuring):
//!
//! 1. **ComputeUi** — gather in-cutoff neighbors and accumulate the
//!    per-atom `U`, caching each neighbor's hypersphere geometry and
//!    `u` blocks in the atom's pool slot;
//! 2. **ComputeYi** — one shared Z evaluation per work item feeding
//!    both the energy contraction and the adjoint `Y`;
//! 3. **ComputeDeidrj** — the direction-fused force contraction,
//!    reusing the stage-1 `(fc, u)` cache so only the `du` half of the
//!    recursion runs.
//!
//! Each stage runs in its own profile region and emits FLOP/byte
//! instants, so traces and the device cost model attribute time per
//! stage instead of one opaque `pair/snap` blob. Device executions
//! additionally log the rich per-kernel event counts
//! (ComputeUi / ComputeYi / ComputeFusedDeidrj) for `lkk-gpusim`.

use crate::context::{NeighborCache, SnapContext, SnapKernelConfig, SnapScratch};
use crate::hyper::HyperParams;
use lkk_core::neighbor::NeighborList;
use lkk_core::pair::{PairResults, PairStyle};
use lkk_core::sim::System;
use lkk_core::style::{PairSpec, StyleRegistry};
use lkk_gpusim::KernelStats;
use lkk_kokkos::{profile, ScatterView, Space};
use std::cell::RefCell;

/// User-facing SNAP parameters.
#[derive(Debug, Clone)]
pub struct SnapParams {
    pub twojmax: usize,
    pub rcut: f64,
    pub rfac0: f64,
    pub rmin0: f64,
    /// Seed for the synthetic β coefficients.
    pub beta_seed: u64,
}

impl Default for SnapParams {
    fn default() -> Self {
        SnapParams {
            twojmax: 8,
            rcut: 4.7,
            rfac0: 0.99363,
            rmin0: 0.0,
            beta_seed: 2025,
        }
    }
}

/// The SNAP pair style.
pub struct PairSnap {
    pub ctx: SnapContext,
    pub config: SnapKernelConfig,
    /// Per-element neighbor weights `w_j` (eq. 2); index by atom type.
    /// Defaults to `[1.0]` (single element, the paper's benchmarks).
    pub type_weights: Vec<f64>,
    name: String,
    scatter: Option<ScatterView>,
    /// Per-atom intermediates persisting across the fissioned stages
    /// (and across steps: capacities reach steady state after warmup).
    pool: Vec<AtomWork>,
}

/// One atom's staged intermediates: the stage-1 neighbor gather and
/// `(fc, u)` cache, the accumulated `U`, and the stage-2 adjoint `Y`.
#[derive(Default)]
struct AtomWork {
    rel: Vec<[f64; 3]>,
    ids: Vec<usize>,
    wts: Vec<f64>,
    cache: NeighborCache,
    utot_r: Vec<f64>,
    utot_i: Vec<f64>,
    y_r: Vec<f64>,
    y_i: Vec<f64>,
}

impl AtomWork {
    fn ensure(&mut self, u_len: usize) {
        if self.utot_r.len() != u_len {
            self.utot_r.resize(u_len, 0.0);
            self.utot_i.resize(u_len, 0.0);
            self.y_r.resize(u_len, 0.0);
            self.y_i.resize(u_len, 0.0);
        }
    }
}

/// Raw-pointer handle giving each parallel worker exclusive `&mut`
/// access to its own atom's pool slot (the `ParWrite` idiom of
/// `lkk-kokkos`): within a stage, slot `i` is touched only by the
/// worker processing atom `i`.
struct PoolRef {
    ptr: *mut AtomWork,
    len: usize,
}

unsafe impl Send for PoolRef {}
unsafe impl Sync for PoolRef {}

/// Round to the nearest multiple of 2⁻³² (exact for any physically
/// sized force: |v|·2³² stays far below 2⁵³, and scaling by a power of
/// two is lossless). Sums of such multiples are themselves exact, so
/// scatter accumulation order stops mattering.
#[inline]
fn quantize_2p32(v: f64) -> f64 {
    const SCALE: f64 = 4294967296.0; // 2^32
    (v * SCALE).round() * (1.0 / SCALE)
}

impl PoolRef {
    /// # Safety
    /// No other thread may access slot `i` concurrently.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slot(&self, i: usize) -> &mut AtomWork {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

/// Thread-local scratch keyed on `(u_len, twojmax, generation)` so two
/// SNAP styles with different truncation orders (or freshly rebuilt
/// contraction tables) on one thread can never alias stale scratch.
struct ScratchSlot {
    key: (usize, usize, u64),
    scratch: SnapScratch,
}

thread_local! {
    static SCRATCH: RefCell<Option<ScratchSlot>> = const { RefCell::new(None) };
}

/// Run `f` with this thread's scratch for `ctx`, (re)allocating if the
/// context key changed.
fn with_scratch<R>(ctx: &SnapContext, f: impl FnOnce(&mut SnapScratch) -> R) -> R {
    let key = (ctx.idx.u_len, ctx.idx.twojmax, ctx.generation);
    SCRATCH.with(|cell| {
        let mut borrow = cell.borrow_mut();
        let slot = match borrow.as_mut() {
            Some(slot) if slot.key == key => slot,
            _ => {
                *borrow = Some(ScratchSlot {
                    key,
                    scratch: ctx.alloc_scratch(),
                });
                borrow.as_mut().unwrap()
            }
        };
        f(&mut slot.scratch)
    })
}

impl PairSnap {
    pub fn new(params: SnapParams, _space: &Space) -> Self {
        let hyper = HyperParams {
            rcut: params.rcut,
            rmin0: params.rmin0,
            rfac0: params.rfac0,
            weight: 1.0,
        };
        let beta = SnapContext::synthetic_beta(params.twojmax, params.beta_seed);
        PairSnap {
            ctx: SnapContext::new(params.twojmax, hyper, beta),
            config: SnapKernelConfig::default(),
            type_weights: vec![1.0],
            name: "snap".into(),
            scatter: None,
            pool: Vec::new(),
        }
    }

    /// Set per-element neighbor weights (multi-component SNAP).
    pub fn with_type_weights(mut self, weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty());
        self.type_weights = weights;
        self
    }

    pub fn with_config(mut self, config: SnapKernelConfig) -> Self {
        self.config = config;
        self
    }

    /// Register `snap` (and `snap/kk`) in a style registry.
    /// `pair_style snap <twojmax> <rcut>`.
    pub fn register(registry: &mut StyleRegistry) {
        registry.register_pair("snap", |spec: &PairSpec, space: &Space| {
            let twojmax = spec
                .style_args
                .first()
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| format!("bad twojmax: {e}"))?
                .unwrap_or(8);
            let rcut = spec.arg_f64(1).unwrap_or(4.7);
            let params = SnapParams {
                twojmax,
                rcut,
                ..Default::default()
            };
            Ok(Box::new(PairSnap::new(params, space)))
        });
    }

    fn note_stats(&self, space: &Space, nlocal: f64, avg_neigh: f64, list: &NeighborList) {
        if !space.is_device() {
            return;
        }
        let ctx = &self.ctx;
        let u_bytes = ctx.u_bytes_per_atom();

        let mut ui = KernelStats::new("ComputeUi");
        // Parallelism over atoms × neighbor-batches.
        ui.work_items = nlocal * (avg_neigh / self.config.ui_batch.max(1) as f64).max(1.0);
        ui.flops = nlocal * ctx.ui_flops_per_atom(avg_neigh);
        ui.atomic_f64_ops = nlocal * ctx.ui_atomics_per_atom(avg_neigh, self.config.ui_batch);
        ui.dram_bytes = nlocal * (u_bytes + avg_neigh * 28.0);
        ui.working_set_bytes = u_bytes * 32.0; // a tile of atoms' U in flight
                                               // Scratch stages one row of u per thread plus the batch
                                               // accumulator (§4.3.3: "explicitly cached intermediate values
                                               // in Kokkos scratchpad memory") — the team's footprint is what
                                               // bounds occupancy in Fig. 3.
        ui.scratch_bytes_per_team = (ctx.idx.twojmax as f64 + 1.0) * 16.0 * 128.0;
        ui.threads_per_team = 128;
        ui.ilp = self.config.ui_batch as f64;
        space.note_kernel(ui);

        let mut yi = KernelStats::new("ComputeYi");
        yi.work_items = nlocal * ctx.idx.n_bispectrum() as f64;
        yi.flops = nlocal * ctx.yi_flops_per_atom();
        yi.dram_bytes = nlocal * 2.0 * u_bytes;
        // Each inner contraction touches ~48 bytes: U_j1/U_j2/Y loads
        // (subject to working-set spill) plus the warp-uniform
        // coupling-table loads, which are always cache-resident and are
        // the only part atom-batching amortizes (§4.3.4: "reduce the
        // number of accesses to these look-up tables relative to loads
        // of U_j. ... This batching does not change the limiter, L1
        // cache throughput").
        let l1_per_atom = ctx.yi_inner_ops_per_atom() * 48.0;
        let batch = self.config.yi_batch.max(1) as f64;
        yi.reused_bytes = nlocal * l1_per_atom * 0.5;
        yi.l1_only_bytes = nlocal * l1_per_atom * 0.5 / batch;
        // The Yi working set is the per-tile set of U matrices
        // (yi_tile atoms × the full U) — the §4.3.2 tiling knob.
        yi.working_set_bytes = u_bytes * self.config.yi_tile as f64;
        space.note_kernel(yi);

        let mut dei = KernelStats::new(if self.config.fuse_deidrj {
            "ComputeFusedDeidrj"
        } else {
            "ComputeDeidrj"
        });
        dei.work_items = nlocal * avg_neigh;
        dei.flops = nlocal * avg_neigh * ctx.deidrj_flops_per_neighbor(self.config.fuse_deidrj);
        dei.dram_bytes = nlocal * (avg_neigh * 28.0 + u_bytes);
        dei.atomic_f64_ops = nlocal * avg_neigh * 6.0;
        dei.working_set_bytes = u_bytes * 16.0;
        dei.scratch_bytes_per_team = (ctx.idx.twojmax as f64 + 1.0) * 16.0 * 128.0;
        dei.threads_per_team = 128;
        // The unfused kernel already interleaves u/du work (ILP ~2);
        // fusion adds the third stream (§4.3.4).
        dei.ilp = if self.config.fuse_deidrj { 3.0 } else { 2.0 };
        space.note_kernel(dei);
        let _ = list;
    }
}

impl PairStyle for PairSnap {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    fn cutoff(&self) -> f64 {
        self.ctx.hyper.rcut
    }

    fn wants_half_list(&self) -> bool {
        false
    }

    fn needs_reverse_comm(&self) -> bool {
        // Forces are scattered onto ghost neighbors.
        true
    }

    fn compute(&mut self, system: &mut System, list: &NeighborList, _eflag: bool) -> PairResults {
        // All SNAP launches and stats records are tagged under this
        // region (e.g. "step/pair/snap" inside the timestep loop).
        let _snap_region = profile::begin_region("snap");
        let space = system.space.clone();
        system
            .atoms
            .sync(&space, lkk_core::atom::Mask::X | lkk_core::atom::Mask::TYPE);
        let nlocal = system.atoms.nlocal;
        let nall = system.atoms.nall();
        let scatter = match &mut self.scatter {
            Some(s) if s.target_len() == nall * 3 => s,
            _ => {
                self.scatter = Some(ScatterView::for_space(nall, 3, &space));
                self.scatter.as_mut().unwrap()
            }
        };
        if self.pool.len() < nlocal {
            self.pool.resize_with(nlocal, AtomWork::default);
        }
        let pool = PoolRef {
            ptr: self.pool.as_mut_ptr(),
            len: self.pool.len(),
        };
        let ctx = &self.ctx;
        let config = &self.config;
        let type_weights = &self.type_weights;
        let atoms_ref = &system.atoms;
        let x = atoms_ref.x.view_for(&space);
        let typ = atoms_ref.typ.view_for(&space);
        let sref: &ScatterView = scatter;
        let cutsq = ctx.hyper.rcut * ctx.hyper.rcut;
        let u_len = ctx.idx.u_len;
        let avg_neigh = if nlocal > 0 {
            list.total_pairs as f64 / nlocal as f64
        } else {
            0.0
        };
        let nlocal_f = nlocal as f64;

        // Stage 1 — ComputeUi: gather in-cutoff neighbors (the
        // divergence pre-filtering: the expensive kernels then run
        // fully convergent), accumulate U, and fill the per-neighbor
        // `(fc, u)` cache for stage 3.
        {
            let _stage = profile::begin_region("ComputeUi");
            space.parallel_for("PairSnapUi", nlocal, |i| {
                // SAFETY: slot `i` is touched only by this iteration.
                let aw = unsafe { pool.slot(i) };
                aw.ensure(u_len);
                let xi = [x.at([i, 0]), x.at([i, 1]), x.at([i, 2])];
                let nn = list.numneigh.at([i]) as usize;
                aw.rel.clear();
                aw.ids.clear();
                aw.wts.clear();
                for s in 0..nn {
                    let j = list.neighbors.at([i, s]) as usize;
                    let d = [
                        x.at([j, 0]) - xi[0],
                        x.at([j, 1]) - xi[1],
                        x.at([j, 2]) - xi[2],
                    ];
                    if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] < cutsq {
                        aw.rel.push(d);
                        aw.ids.push(j);
                        let t = typ.at([j]) as usize;
                        aw.wts.push(*type_weights.get(t).unwrap_or(&1.0));
                    }
                }
                with_scratch(ctx, |scratch| {
                    ctx.compute_ui_into(
                        &aw.rel,
                        Some(&aw.wts),
                        config.ui_batch,
                        &mut aw.cache,
                        &mut aw.utot_r,
                        &mut aw.utot_i,
                        scratch,
                    );
                });
            });
            if profile::has_subscribers() {
                profile::note_instant("snap.ui.flops", nlocal_f * ctx.ui_flops_per_atom(avg_neigh));
                profile::note_instant(
                    "snap.ui.bytes",
                    nlocal_f * (ctx.u_bytes_per_atom() + avg_neigh * 28.0),
                );
            }
        }

        // Stage 2 — ComputeYi: one shared Z per work item feeds both
        // the energy contraction and the adjoint Y.
        let energy = {
            let _stage = profile::begin_region("ComputeYi");
            let e = space.parallel_reduce(
                "PairSnapYi",
                nlocal,
                0.0f64,
                |i| {
                    // SAFETY: slot `i` is touched only by this iteration.
                    let aw = unsafe { pool.slot(i) };
                    with_scratch(ctx, |scratch| {
                        ctx.compute_energy_yi_into(
                            &aw.utot_r,
                            &aw.utot_i,
                            &mut aw.y_r,
                            &mut aw.y_i,
                            scratch,
                        )
                    })
                },
                |a, b| a + b,
            );
            if profile::has_subscribers() {
                profile::note_instant("snap.yi.flops", nlocal_f * ctx.yi_flops_per_atom());
                profile::note_instant("snap.yi.bytes", nlocal_f * 2.0 * ctx.u_bytes_per_atom());
            }
            e
        };

        // Stage 3 — ComputeDeidrj: the direction-fused contraction,
        // reading the stage-1 geometry/`u` cache so only the `du` half
        // of the recursion runs per neighbor.
        let virial = {
            let _stage = profile::begin_region("ComputeDeidrj");
            let v = space.parallel_reduce(
                "PairSnapDeidrj",
                nlocal,
                [0.0f64; 6],
                |i| {
                    // SAFETY: slot `i` is touched only by this iteration.
                    let aw = unsafe { pool.slot(i) };
                    let mut w = [0.0f64; 6];
                    with_scratch(ctx, |scratch| {
                        for (k, &j) in aw.ids.iter().enumerate() {
                            let (u_r, u_i) = aw.cache.u(k, u_len);
                            let g = ctx.compute_deidrj_cached(
                                aw.rel[k],
                                aw.wts[k],
                                &aw.cache.geom[k],
                                u_r,
                                u_i,
                                &aw.y_r,
                                &aw.y_i,
                                scratch,
                            );
                            // Force on neighbor j: −∂E_i/∂x_j; reaction on i.
                            let f = if config.quantize_scatter {
                                [
                                    quantize_2p32(-g[0]),
                                    quantize_2p32(-g[1]),
                                    quantize_2p32(-g[2]),
                                ]
                            } else {
                                [-g[0], -g[1], -g[2]]
                            };
                            for (dir, &fd) in f.iter().enumerate() {
                                sref.add(j, dir, fd);
                                sref.add(i, dir, -fd);
                            }
                            // Virial tensor: Σ d ⊗ f_j (symmetrized),
                            // d = x_j − x_i.
                            let d = aw.rel[k];
                            w[0] += d[0] * f[0];
                            w[1] += d[1] * f[1];
                            w[2] += d[2] * f[2];
                            w[3] += 0.5 * (d[0] * f[1] + d[1] * f[0]);
                            w[4] += 0.5 * (d[0] * f[2] + d[2] * f[0]);
                            w[5] += 0.5 * (d[1] * f[2] + d[2] * f[1]);
                        }
                    });
                    w
                },
                |a, b| {
                    let mut w = a;
                    for (wk, bk) in w.iter_mut().zip(b) {
                        *wk += bk;
                    }
                    w
                },
            );
            if profile::has_subscribers() {
                profile::note_instant(
                    "snap.deidrj.flops",
                    nlocal_f * avg_neigh * ctx.deidrj_flops_per_neighbor(config.fuse_deidrj),
                );
                profile::note_instant(
                    "snap.deidrj.bytes",
                    nlocal_f * (avg_neigh * 28.0 + ctx.u_bytes_per_atom()),
                );
            }
            v
        };

        // Contraction-table shape counters: pinned at zero tolerance in
        // the perf baseline (construction-once invariant — `builds`
        // must stay 1).
        if profile::has_subscribers() {
            let t = &ctx.tables;
            profile::note_counter("snap.table.items", t.items.len() as f64);
            profile::note_counter("snap.table.pairs", t.pairs.len() as f64);
            profile::note_counter("snap.table.y_items", t.y_items.len() as f64);
            profile::note_counter("snap.table.y_scatters", t.y_scatters.len() as f64);
            profile::note_counter("snap.table.builds", ctx.table_builds as f64);
        }

        let f = system.atoms.f.view_for_mut(&space);
        f.fill(0.0);
        scatter.contribute_into_view(f);
        system.atoms.modified(&space, lkk_core::atom::Mask::F);
        self.note_stats(&space, nlocal_f, avg_neigh, list);
        PairResults::with_tensor(energy, virial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkk_core::atom::AtomData;
    use lkk_core::comm::build_ghosts;
    use lkk_core::lattice::{create_velocities, Lattice, LatticeKind};
    use lkk_core::neighbor::{NeighborList, NeighborSettings};
    use lkk_core::sim::Simulation;
    use lkk_core::units::Units;

    fn tungsten_like(n: usize, twojmax: usize, space: Space) -> (System, PairSnap) {
        // bcc lattice, a = 3.16 Å (tungsten), metal-ish units. A short
        // 3.5 Å cutoff (first + second neighbor shells) keeps the test
        // boxes above the 2×cutghost minimum-image limit at n = 3.
        let lat = Lattice::new(LatticeKind::Bcc, 3.16);
        let atoms = AtomData::from_positions(&lat.positions(n, n, n));
        let system =
            System::new(atoms, lat.domain(n, n, n), space.clone()).with_units(Units::metal());
        let params = SnapParams {
            twojmax,
            rcut: 3.5,
            ..Default::default()
        };
        (system, PairSnap::new(params, &space))
    }

    fn compute_forces(system: &mut System, pair: &mut PairSnap) -> (Vec<[f64; 3]>, PairResults) {
        let settings = NeighborSettings::new(pair.cutoff(), 0.3, false);
        let space = system.space.clone();
        // Perturbed tests may bump atoms past the box faces; ghosts
        // require wrapped owners (PBC makes the wrap force-invariant).
        system.atoms.wrap_positions(&system.domain);
        system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
        let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
        let res = pair.compute(system, &list, true);
        system.atoms.sync(&Space::Serial, lkk_core::atom::Mask::F);
        lkk_core::comm::reverse_forces(&mut system.atoms, &system.ghosts);
        let fh = system.atoms.f.h_view();
        let forces = (0..system.atoms.nlocal)
            .map(|i| [fh.at([i, 0]), fh.at([i, 1]), fh.at([i, 2])])
            .collect();
        (forces, res)
    }

    #[test]
    fn perfect_bcc_has_zero_force_by_symmetry() {
        let (mut system, mut pair) = tungsten_like(3, 4, Space::Threads);
        let (forces, res) = compute_forces(&mut system, &mut pair);
        for f in &forces {
            for k in 0..3 {
                assert!(f[k].abs() < 1e-9, "residual {}", f[k]);
            }
        }
        assert!(res.energy.is_finite());
    }

    #[test]
    fn total_force_is_zero_on_perturbed_lattice() {
        let (mut system, mut pair) = tungsten_like(3, 6, Space::Threads);
        // Deterministic perturbation.
        {
            let n = system.atoms.nlocal;
            let xh = system.atoms.x.h_view_mut();
            for i in 0..n {
                for k in 0..3 {
                    let bump = 0.08 * (((i * 13 + k * 7) % 23) as f64 / 23.0 - 0.5);
                    let v = xh.at([i, k]) + bump;
                    xh.set([i, k], v);
                }
            }
        }
        let (forces, _) = compute_forces(&mut system, &mut pair);
        for k in 0..3 {
            let total: f64 = forces.iter().map(|f| f[k]).sum();
            assert!(total.abs() < 1e-8, "net force {total}");
        }
        // Some atoms actually feel force.
        assert!(forces.iter().any(|f| f[0].abs() > 1e-8));
    }

    #[test]
    fn forces_match_finite_difference_of_total_energy() {
        let (mut system, mut pair) = tungsten_like(3, 4, Space::Serial);
        {
            let n = system.atoms.nlocal;
            let xh = system.atoms.x.h_view_mut();
            for i in 0..n {
                for k in 0..3 {
                    let bump = 0.1 * (((i * 19 + k * 5) % 17) as f64 / 17.0 - 0.5);
                    let v = xh.at([i, k]) + bump;
                    xh.set([i, k], v);
                }
            }
        }
        let (forces, _) = compute_forces(&mut system, &mut pair);
        // FD on atom 3, all directions. Rebuild ghosts from scratch at
        // each displacement (positions feed ghosts).
        let h = 1e-5;
        for dir in 0..3 {
            let mut es = [0.0f64; 2];
            for (s, sign) in [(0usize, 1.0f64), (1, -1.0)] {
                let (mut sys2, mut pair2) = tungsten_like(3, 4, Space::Serial);
                {
                    let n = sys2.atoms.nlocal;
                    let xh = sys2.atoms.x.h_view_mut();
                    for i in 0..n {
                        for k in 0..3 {
                            let bump = 0.1 * (((i * 19 + k * 5) % 17) as f64 / 17.0 - 0.5);
                            let v = xh.at([i, k]) + bump;
                            xh.set([i, k], v);
                        }
                    }
                    let v = xh.at([3, dir]) + sign * h;
                    xh.set([3, dir], v);
                }
                let (_, res) = compute_forces(&mut sys2, &mut pair2);
                es[s] = res.energy;
            }
            let fd = -(es[0] - es[1]) / (2.0 * h);
            assert!(
                (forces[3][dir] - fd).abs() < 1e-6 * fd.abs().max(1e-3),
                "dir {dir}: analytic {} vs fd {fd}",
                forces[3][dir]
            );
        }
    }

    #[test]
    fn spaces_agree() {
        let configs = [
            Space::Serial,
            Space::Threads,
            Space::device(lkk_gpusim::GpuArch::h100()),
        ];
        let mut reference: Option<(Vec<[f64; 3]>, f64)> = None;
        for space in configs {
            let (mut system, mut pair) = tungsten_like(3, 4, space);
            {
                let n = system.atoms.nlocal;
                let xh = system.atoms.x.h_view_mut();
                for i in 0..n {
                    let bump = 0.05 * ((i % 7) as f64 / 7.0 - 0.5);
                    let v = xh.at([i, 0]) + bump;
                    xh.set([i, 0], v);
                }
            }
            let (forces, res) = compute_forces(&mut system, &mut pair);
            match &reference {
                None => reference = Some((forces, res.energy)),
                Some((rf, re)) => {
                    assert!((res.energy - re).abs() < 1e-9 * re.abs().max(1.0));
                    for (a, b) in forces.iter().zip(rf) {
                        for k in 0..3 {
                            assert!(
                                (a[k] - b[k]).abs() < 1e-9,
                                "{} vs {} (diff {:.3e})",
                                a[k],
                                b[k],
                                (a[k] - b[k]).abs()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn device_logs_snap_kernels() {
        let space = Space::device(lkk_gpusim::GpuArch::h100());
        let ctx = space.device_ctx().unwrap().clone();
        let (mut system, mut pair) = tungsten_like(3, 4, space);
        let _ = compute_forces(&mut system, &mut pair);
        let agg = ctx.log.aggregate();
        for name in ["ComputeUi", "ComputeYi", "ComputeFusedDeidrj"] {
            let k = agg
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert!(k.flops > 0.0, "{name} has no flops");
        }
    }

    #[test]
    fn nve_with_snap_conserves_energy() {
        let space = Space::Threads;
        let (mut system, pair) = tungsten_like(3, 4, space);
        create_velocities(&mut system.atoms, &Units::metal(), 300.0, 999);
        let mut sim = Simulation::new(system, Box::new(pair));
        sim.dt = 0.001;
        sim.setup();
        let e0 = sim.total_energy();
        sim.run(20);
        let e1 = sim.total_energy();
        let drift = ((e1 - e0) / sim.system.atoms.nlocal as f64).abs();
        assert!(drift < 5e-6, "per-atom drift {drift} eV");
    }

    #[test]
    fn registry_integration() {
        let mut reg = StyleRegistry::core();
        PairSnap::register(&mut reg);
        let spec = PairSpec {
            style_args: vec!["6".into(), "4.2".into()],
            coeffs: vec![],
            ntypes: 1,
        };
        let p = reg
            .create_pair("snap", &spec, &Space::Threads, Some("kk"))
            .unwrap();
        assert_eq!(p.name(), "snap/kk");
        assert_eq!(p.cutoff(), 4.2);
        assert!(!p.wants_half_list());
    }

    #[test]
    fn all_zero_weights_leave_only_self_terms() {
        // With every neighbor weight zero, U reduces to the self term:
        // E = N × E_isolated and all forces vanish identically.
        use lkk_core::domain::Domain;
        let params = SnapParams {
            twojmax: 4,
            rcut: 3.5,
            ..Default::default()
        };
        let positions = vec![
            [8.0, 8.0, 8.0],
            [9.6, 8.2, 7.9],
            [7.4, 9.3, 8.4],
            [8.3, 7.1, 9.2],
        ];
        let mut atoms = AtomData::from_positions(&positions);
        atoms.mass = vec![1.0];
        let space = Space::Serial;
        let mut system = System::new(atoms, Domain::cubic(16.0), space.clone());
        let mut pair = PairSnap::new(params.clone(), &space).with_type_weights(vec![0.0]);
        let settings = NeighborSettings::new(pair.cutoff(), 0.3, false);
        system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
        let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
        let res = pair.compute(&mut system, &list, true);
        // Isolated-atom energy via an empty neighborhood.
        let mut scratch = pair.ctx.alloc_scratch();
        pair.ctx.compute_ui(&[], &mut scratch, 1);
        let e_iso = pair.ctx.energy(&scratch);
        assert!(
            (res.energy - 4.0 * e_iso).abs() < 1e-12,
            "{} vs {}",
            res.energy,
            4.0 * e_iso
        );
        let fh = system.atoms.f.h_view();
        for i in 0..4 {
            for k in 0..3 {
                assert!(fh.at([i, k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_forces_match_finite_difference() {
        use lkk_core::domain::Domain;
        let params = SnapParams {
            twojmax: 4,
            rcut: 3.5,
            ..Default::default()
        };
        let positions = vec![
            [8.0, 8.0, 8.0],
            [9.6, 8.2, 7.9],
            [7.4, 9.3, 8.4],
            [9.0, 9.4, 9.1],
        ];
        let types = [0i32, 1, 0, 1];
        let weights = vec![1.0, 0.6];
        let energy_and_forces = |pos: &[[f64; 3]]| -> (f64, Vec<[f64; 3]>) {
            let mut atoms = AtomData::from_positions(pos);
            atoms.mass = vec![1.0, 1.0];
            for (i, &t) in types.iter().enumerate() {
                atoms.typ.h_view_mut().set([i], t);
            }
            let space = Space::Serial;
            let mut system = System::new(atoms, Domain::cubic(16.0), space.clone());
            let mut pair = PairSnap::new(params.clone(), &space).with_type_weights(weights.clone());
            let settings = NeighborSettings::new(pair.cutoff(), 0.3, false);
            system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
            let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
            let res = pair.compute(&mut system, &list, true);
            system.atoms.sync(&Space::Serial, lkk_core::atom::Mask::F);
            lkk_core::comm::reverse_forces(&mut system.atoms, &system.ghosts);
            let fh = system.atoms.f.h_view();
            let forces = (0..pos.len())
                .map(|i| [fh.at([i, 0]), fh.at([i, 1]), fh.at([i, 2])])
                .collect();
            (res.energy, forces)
        };
        let (_, forces) = energy_and_forces(&positions);
        let h = 1e-6;
        for a in 0..positions.len() {
            for dir in 0..3 {
                let mut pp = positions.clone();
                let mut pm = positions.clone();
                pp[a][dir] += h;
                pm[a][dir] -= h;
                let fd = -(energy_and_forces(&pp).0 - energy_and_forces(&pm).0) / (2.0 * h);
                assert!(
                    (forces[a][dir] - fd).abs() < 1e-7 * fd.abs().max(1e-4),
                    "atom {a} dir {dir}: {} vs {fd}",
                    forces[a][dir]
                );
            }
        }
    }
}
