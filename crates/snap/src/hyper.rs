//! The mapping from a relative neighbor position onto the 3-sphere.
//!
//! §4.3: "the relative distances between atoms are mapped onto a
//! hypersphere". The point `(x, y, z, z0)` on the 3-sphere is encoded
//! in the Cayley-Klein parameters
//!
//! ```text
//! a = r0⁻¹ (z0 − i·z),   b = r0⁻¹ (y − i·x),   r0² = r² + z0²,
//! z0 = r / tan(θ0),      θ0 = rfac0·π·(r − rmin0)/(rcut − rmin0),
//! ```
//!
//! together with the smooth switching function `fc(r)` that takes each
//! neighbor's weight to zero at the cutoff. This module also provides
//! the Cartesian derivatives `da/dx_k`, `db/dx_k`, `dfc/dx_k` that feed
//! ComputeDuidrj.

/// Cayley-Klein parameters of one neighbor, plus the cutoff weight.
#[derive(Debug, Clone, Copy, Default)]
pub struct CayleyKlein {
    pub a_r: f64,
    pub a_i: f64,
    pub b_r: f64,
    pub b_i: f64,
    /// fc(r) · w (the neighbor's accumulated weight).
    pub sfac: f64,
}

/// `CayleyKlein` plus every Cartesian derivative needed by the
/// derivative recursion.
#[derive(Debug, Clone, Copy)]
pub struct CayleyKleinDeriv {
    pub ck: CayleyKlein,
    pub da_r: [f64; 3],
    pub da_i: [f64; 3],
    pub db_r: [f64; 3],
    pub db_i: [f64; 3],
    /// d(fc·w)/dx_k.
    pub dsfac: [f64; 3],
}

/// The reusable geometry of one neighbor's hypersphere map: the
/// Cayley-Klein parameters plus the scalar intermediates (`r`, `z0`,
/// `r0⁻¹`) the derivative formulas need. ComputeUi caches one of these
/// per neighbor so ComputeDeidrj can derive `da/db/dsfac` without
/// re-running the trigonometry.
#[derive(Debug, Clone, Copy, Default)]
pub struct MapCore {
    pub ck: CayleyKlein,
    pub r: f64,
    pub rsq: f64,
    pub z0: f64,
    pub r0inv: f64,
}

/// Geometry parameters of the hypersphere map.
#[derive(Debug, Clone, Copy)]
pub struct HyperParams {
    pub rcut: f64,
    pub rmin0: f64,
    pub rfac0: f64,
    /// Neighbor weight `w_j` (element-dependent in general).
    pub weight: f64,
}

impl Default for HyperParams {
    fn default() -> Self {
        // The standard LAMMPS SNAP defaults.
        HyperParams {
            rcut: 4.7,
            rmin0: 0.0,
            rfac0: 0.99363,
            weight: 1.0,
        }
    }
}

impl HyperParams {
    /// Switching function `fc(r)`: 1 at `rmin0`, 0 at `rcut`.
    pub fn fc(&self, r: f64) -> f64 {
        if r >= self.rcut {
            return 0.0;
        }
        if r <= self.rmin0 {
            return 1.0;
        }
        let t = (r - self.rmin0) / (self.rcut - self.rmin0);
        0.5 * ((std::f64::consts::PI * t).cos() + 1.0)
    }

    /// d fc / dr.
    pub fn dfc_dr(&self, r: f64) -> f64 {
        if r >= self.rcut || r <= self.rmin0 {
            return 0.0;
        }
        let w = std::f64::consts::PI / (self.rcut - self.rmin0);
        -0.5 * w * (w * (r - self.rmin0)).sin()
    }

    /// Map one relative position onto the 3-sphere, keeping the scalar
    /// intermediates so the derivative pass can reuse them. This is the
    /// single source of truth for `θ0`/`z0`/`r0⁻¹`: the energy and
    /// force paths see exactly the same Cayley-Klein bits.
    pub fn map_core(&self, d: [f64; 3]) -> MapCore {
        let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
        let r = rsq.sqrt();
        let theta0 =
            self.rfac0 * std::f64::consts::PI * (r - self.rmin0) / (self.rcut - self.rmin0);
        let z0 = r / theta0.tan();
        let r0inv = 1.0 / (rsq + z0 * z0).sqrt();
        MapCore {
            ck: CayleyKlein {
                a_r: r0inv * z0,
                a_i: -r0inv * d[2],
                b_r: r0inv * d[1],
                b_i: -r0inv * d[0],
                sfac: self.fc(r) * self.weight,
            },
            r,
            rsq,
            z0,
            r0inv,
        }
    }

    /// Map one relative position to Cayley-Klein parameters.
    pub fn map(&self, d: [f64; 3]) -> CayleyKlein {
        self.map_core(d).ck
    }

    /// The Cartesian derivatives for a neighbor whose [`MapCore`] was
    /// already computed (by ComputeUi). Pure arithmetic on the cached
    /// scalars — no `sqrt`/`tan` re-evaluation.
    pub fn derivatives_from(&self, d: [f64; 3], core: &MapCore) -> CayleyKleinDeriv {
        let (r, rsq, z0, r0inv) = (core.r, core.rsq, core.z0, core.r0inv);
        let rinv = 1.0 / r;
        let uhat = [d[0] * rinv, d[1] * rinv, d[2] * rinv];
        let rscale0 = self.rfac0 * std::f64::consts::PI / (self.rcut - self.rmin0);
        let dz0dr = z0 / r - r * rscale0 * (rsq + z0 * z0) / rsq;
        let dr0invdr = -r0inv.powi(3) * (r + z0 * dz0dr);

        let mut out = CayleyKleinDeriv {
            ck: core.ck,
            da_r: [0.0; 3],
            da_i: [0.0; 3],
            db_r: [0.0; 3],
            db_i: [0.0; 3],
            dsfac: [0.0; 3],
        };
        let dsfac_dr = self.dfc_dr(r) * self.weight;
        for (k, &uk) in uhat.iter().enumerate() {
            let dr0inv = dr0invdr * uk;
            let dz0 = dz0dr * uk;
            out.da_r[k] = dz0 * r0inv + z0 * dr0inv;
            out.da_i[k] = -d[2] * dr0inv;
            out.db_r[k] = d[1] * dr0inv;
            out.db_i[k] = -d[0] * dr0inv;
            out.dsfac[k] = dsfac_dr * uk;
        }
        out.da_i[2] -= r0inv;
        out.db_r[1] += r0inv;
        out.db_i[0] -= r0inv;
        out
    }

    /// Map with full Cartesian derivatives.
    pub fn map_with_derivatives(&self, d: [f64; 3]) -> CayleyKleinDeriv {
        self.derivatives_from(d, &self.map_core(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cayley_klein_is_unit_quaternion() {
        let p = HyperParams::default();
        for d in [[1.0, 0.5, -0.3], [2.0, -1.0, 1.5], [0.1, 0.0, 0.0]] {
            let ck = p.map(d);
            let norm = ck.a_r * ck.a_r + ck.a_i * ck.a_i + ck.b_r * ck.b_r + ck.b_i * ck.b_i;
            assert!((norm - 1.0).abs() < 1e-12, "|a|²+|b|² = {norm}");
        }
    }

    #[test]
    fn cutoff_function_limits() {
        let p = HyperParams {
            rcut: 4.0,
            rmin0: 1.0,
            ..Default::default()
        };
        assert_eq!(p.fc(0.5), 1.0);
        assert_eq!(p.fc(4.0), 0.0);
        assert_eq!(p.fc(5.0), 0.0);
        assert!((p.fc(2.5) - 0.5).abs() < 1e-12); // midpoint
                                                  // Monotone decreasing.
        let mut prev = 1.0;
        let mut r = 1.0;
        while r < 4.0 {
            let v = p.fc(r);
            assert!(v <= prev + 1e-15);
            prev = v;
            r += 0.05;
        }
    }

    #[test]
    fn dfc_matches_finite_difference() {
        let p = HyperParams::default();
        for &r in &[0.5f64, 1.7, 3.3, 4.5] {
            let h = 1e-6;
            let fd = (p.fc(r + h) - p.fc(r - h)) / (2.0 * h);
            assert!((p.dfc_dr(r) - fd).abs() < 1e-8, "r = {r}");
        }
    }

    #[test]
    fn cayley_klein_derivatives_match_finite_difference() {
        let p = HyperParams::default();
        let d0 = [1.3, -0.7, 2.1];
        let full = p.map_with_derivatives(d0);
        let h = 1e-6;
        for k in 0..3 {
            let mut dp = d0;
            let mut dm = d0;
            dp[k] += h;
            dm[k] -= h;
            let cp = p.map(dp);
            let cm = p.map(dm);
            let checks = [
                (full.da_r[k], (cp.a_r - cm.a_r) / (2.0 * h), "da_r"),
                (full.da_i[k], (cp.a_i - cm.a_i) / (2.0 * h), "da_i"),
                (full.db_r[k], (cp.b_r - cm.b_r) / (2.0 * h), "db_r"),
                (full.db_i[k], (cp.b_i - cm.b_i) / (2.0 * h), "db_i"),
                (full.dsfac[k], (cp.sfac - cm.sfac) / (2.0 * h), "dsfac"),
            ];
            for (analytic, fd, name) in checks {
                assert!(
                    (analytic - fd).abs() < 1e-7,
                    "{name}[{k}]: analytic {analytic} vs fd {fd}"
                );
            }
        }
    }
}
