//! `lkk-snap`: the Spectral Neighbor Analysis Potential (SNAP),
//! case study 3 of the paper (§4.3).
//!
//! SNAP encodes each atom's neighborhood by mapping relative neighbor
//! positions onto the 3-sphere and expanding the resulting density in
//! hyperspherical harmonics (Wigner U-matrices, eq. 2), then forming
//! rotation-invariant triple products (bispectrum components `B`,
//! eq. 3). The energy is a learned linear combination of the `B`
//! (eq. 4), and forces contract the adjoint `Y` matrices with the
//! U-matrix derivatives (eq. 5).
//!
//! Module map (one-to-one with the paper's four kernels):
//!
//! * [`indices`] — the flattened `(j, ma, mb)` quantum-number indexing
//!   (§4.3.1: "j slowest, m' fastest ... rows and columns stay
//!   together").
//! * [`cg`] — Clebsch-Gordan coupling coefficients.
//! * [`hyper`] — the r → 3-sphere map (Cayley-Klein parameters a, b),
//!   the smooth cutoff function, and their Cartesian derivatives.
//! * [`wigner`] — the recursive Wigner-U evaluation (**ComputeUi**'s
//!   inner recursion) and its derivative (**ComputeDuidrj**).
//! * [`tables`] — the flattened sparse contraction tables (TestSNAP's
//!   `idxz` recipe): per-`(triple, ma, mb)` work items with fused
//!   `ca·cb` coefficients and zero entries stripped at construction,
//!   shared by the energy and adjoint paths.
//! * [`context`] — the four per-atom kernels: `compute_ui` (with the
//!   §4.3.4 neighbor work-batching variants), `compute_zi`/`compute_bi`,
//!   `compute_yi` (adjoint construction), and `compute_fused_deidrj`
//!   (the direction-fused force contraction).
//! * [`pair_snap`] — the `pair_style snap` integration with `lkk-core`,
//!   fissioned into staged ComputeUi / ComputeYi / ComputeDeidrj
//!   kernels with per-stage profile regions.
//!
//! Correctness is anchored by finite-difference force checks and
//! rotation-invariance tests of `B` (see `context::tests`).

pub mod cg;
pub mod context;
pub mod hyper;
pub mod indices;
pub mod pair_snap;
pub mod tables;
pub mod wigner;

pub use context::{NeighborCache, SnapContext, SnapKernelConfig};
pub use pair_snap::{PairSnap, SnapParams};
pub use tables::ContractionTables;
