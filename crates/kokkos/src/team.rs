//! The per-team execution handle for hierarchical parallelism.
//!
//! On host execution spaces a team maps to a single thread, so the
//! nested `team_range` / `vector_range` loops run sequentially — the
//! same collapse Kokkos performs for its host backends. The value of
//! the abstraction is that kernels written against it also express the
//! concurrency structure the simulated device space accounts for
//! (team/vector work items, scratch footprint).

use crate::policy::TeamPolicy;

/// Handle given to each league member of a
/// [`parallel_for_team`](crate::Space::parallel_for_team) dispatch.
pub struct Team<'a> {
    league_rank: usize,
    league_size: usize,
    team_size: usize,
    vector_len: usize,
    scratch: &'a mut [f64],
}

impl<'a> Team<'a> {
    pub(crate) fn new(league_rank: usize, policy: &TeamPolicy, scratch: &'a mut [f64]) -> Self {
        Team {
            league_rank,
            league_size: policy.league_size,
            team_size: policy.team_size,
            vector_len: policy.vector_len,
            scratch,
        }
    }

    pub fn league_rank(&self) -> usize {
        self.league_rank
    }

    pub fn league_size(&self) -> usize {
        self.league_size
    }

    pub fn team_size(&self) -> usize {
        self.team_size
    }

    pub fn vector_len(&self) -> usize {
        self.vector_len
    }

    /// Per-team scratch memory (f64-typed; §3.3's scratch pads).
    pub fn scratch(&mut self) -> &mut [f64] {
        self.scratch
    }

    /// `TeamThreadRange`: distribute `0..n` over the team's threads.
    pub fn team_range<F: FnMut(usize)>(&mut self, n: usize, mut f: F) {
        for i in 0..n {
            f(i);
        }
    }

    /// `ThreadVectorRange`: distribute `0..n` over vector lanes.
    pub fn vector_range<F: FnMut(usize)>(&mut self, n: usize, mut f: F) {
        for i in 0..n {
            f(i);
        }
    }

    /// `TeamThreadRange` + sum reduction.
    pub fn team_reduce_sum<F: FnMut(usize) -> f64>(&mut self, n: usize, mut f: F) -> f64 {
        let mut acc = 0.0;
        for i in 0..n {
            acc += f(i);
        }
        acc
    }

    /// `ThreadVectorRange` + sum reduction.
    pub fn vector_reduce_sum<F: FnMut(usize) -> f64>(&mut self, n: usize, mut f: F) -> f64 {
        let mut acc = 0.0;
        for i in 0..n {
            acc += f(i);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn team_handle_reports_policy() {
        let policy = TeamPolicy::new(4, 32).with_vector(8).with_scratch(64);
        let mut scratch = vec![0.0; 8];
        let mut t = Team::new(2, &policy, &mut scratch);
        assert_eq!(t.league_rank(), 2);
        assert_eq!(t.league_size(), 4);
        assert_eq!(t.team_size(), 32);
        assert_eq!(t.vector_len(), 8);
        assert_eq!(t.scratch().len(), 8);
    }

    #[test]
    fn nested_reductions() {
        let policy = TeamPolicy::new(1, 4);
        let mut scratch = [];
        let mut t = Team::new(0, &policy, &mut scratch);
        let outer = t.team_reduce_sum(3, |_| 1.0);
        assert_eq!(outer, 3.0);
        let inner = t.vector_reduce_sum(5, |i| i as f64);
        assert_eq!(inner, 10.0);
    }
}
