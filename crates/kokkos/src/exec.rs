//! Execution spaces and parallel dispatch patterns.
//!
//! The three spaces mirror the paper's §3.3:
//!
//! * [`Space::Serial`] — sequential host execution.
//! * [`Space::Threads`] — multi-threaded host execution (rayon), the
//!   analogue of the Kokkos OpenMP/Threads backend, selected by the
//!   `/kk/host` style suffix.
//! * [`Space::Device`] — the *simulated* GPU: kernels execute
//!   functionally on host threads, while every launch is logged with
//!   its event counts so `lkk-gpusim` can predict device time. Selected
//!   by the `/kk` or `/kk/device` suffix.
//!
//! The dispatch patterns are `parallel_for`, `parallel_reduce`,
//! `parallel_scan` (exclusive prefix sum) over a flat `RangePolicy`,
//! `parallel_for_2d` over a tiled `MDRangePolicy`, and
//! `parallel_for_team` over a hierarchical `TeamPolicy` (see
//! [`crate::team`]).

use crate::policy::{MDRangePolicy, TeamPolicy};
use crate::profile::{self, KernelLog};
use crate::team::Team;
use lkk_gpusim::{GpuArch, KernelStats};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// When set, every dispatch pattern executes its sequential path even
/// on `Threads`/`Device` spaces (launch logging is unaffected). The
/// `perf-smoke` harness enables this so floating-point accumulation
/// order — and therefore every derived counter — is bit-identical
/// across machines regardless of core count.
static FORCE_SEQUENTIAL: AtomicBool = AtomicBool::new(false);

/// Force all dispatches onto their sequential execution paths.
pub fn set_force_sequential(on: bool) {
    FORCE_SEQUENTIAL.store(on, Ordering::Release);
}

/// Is force-sequential mode active?
pub fn force_sequential() -> bool {
    FORCE_SEQUENTIAL.load(Ordering::Acquire)
}

/// Context of a simulated device: which architecture it models, the
/// launch/event log, and an optional forced shared-memory carveout
/// (Figure 3 overrides the runtime heuristic this way).
#[derive(Debug, Clone)]
pub struct DeviceCtx {
    pub arch: Arc<GpuArch>,
    pub log: Arc<KernelLog>,
    pub carveout: Option<f64>,
}

impl DeviceCtx {
    pub fn new(arch: GpuArch) -> Self {
        DeviceCtx {
            arch: Arc::new(arch),
            log: KernelLog::new(),
            carveout: None,
        }
    }

    /// Force the shared-memory carveout fraction (NVIDIA only).
    pub fn with_carveout(mut self, c: f64) -> Self {
        self.carveout = Some(c);
        self
    }
}

/// An execution space: where parallel kernels run.
///
/// ```
/// use lkk_kokkos::Space;
/// let space = Space::Threads;
/// let sum = space.parallel_reduce_sum("sum", 1000, |i| i as f64);
/// assert_eq!(sum, 499_500.0);
///
/// // The simulated device logs every launch for the cost model.
/// let dev = Space::device(lkk_gpusim::GpuArch::h100());
/// dev.parallel_for("touch", 10, |_| {});
/// assert_eq!(dev.device_ctx().unwrap().log.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub enum Space {
    Serial,
    #[default]
    Threads,
    Device(DeviceCtx),
}

/// Below this trip count, a threaded dispatch is not worth the fork-join
/// overhead and falls back to the sequential loop.
const PAR_THRESHOLD: usize = 2048;

impl Space {
    /// A simulated device space for `arch`.
    pub fn device(arch: GpuArch) -> Space {
        Space::Device(DeviceCtx::new(arch))
    }

    pub fn is_device(&self) -> bool {
        matches!(self, Space::Device(_))
    }

    /// The device context, if this is a device space.
    pub fn device_ctx(&self) -> Option<&DeviceCtx> {
        match self {
            Space::Device(ctx) => Some(ctx),
            _ => None,
        }
    }

    /// Available hardware concurrency for work partitioning decisions.
    pub fn concurrency(&self) -> usize {
        match self {
            Space::Serial => 1,
            Space::Threads => rayon::current_num_threads(),
            Space::Device(ctx) => ctx.arch.max_resident_threads as usize,
        }
    }

    /// Record kernel event counts against this space's launch log
    /// (no-op on host spaces).
    pub fn note_kernel(&self, stats: KernelStats) {
        if let Space::Device(ctx) = self {
            ctx.log.push(stats);
        }
    }

    /// Should a `Threads`/`Device` dispatch of `n` items actually fork?
    fn fork(n: usize) -> bool {
        n >= PAR_THRESHOLD && !force_sequential()
    }

    /// `parallel_for` over `0..n`.
    pub fn parallel_for<F>(&self, label: &str, n: usize, f: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        profile::note_kernel_launch(label, n);
        match self {
            Space::Serial => {
                for i in 0..n {
                    f(i);
                }
            }
            Space::Threads | Space::Device(_) => {
                if let Space::Device(ctx) = self {
                    ctx.log.push_launch(label, n);
                }
                if Self::fork(n) {
                    (0..n).into_par_iter().for_each(f);
                } else {
                    for i in 0..n {
                        f(i);
                    }
                }
            }
        }
    }

    /// `parallel_reduce` with a custom identity and join.
    pub fn parallel_reduce<T, F, J>(&self, label: &str, n: usize, identity: T, f: F, join: J) -> T
    where
        T: Send + Sync + Copy,
        F: Fn(usize) -> T + Sync + Send,
        J: Fn(T, T) -> T + Sync + Send,
    {
        profile::note_kernel_launch(label, n);
        match self {
            Space::Serial => (0..n).fold(identity, |acc, i| join(acc, f(i))),
            Space::Threads | Space::Device(_) => {
                if let Space::Device(ctx) = self {
                    ctx.log.push_launch(label, n);
                }
                if Self::fork(n) {
                    (0..n)
                        .into_par_iter()
                        .fold(|| identity, |acc, i| join(acc, f(i)))
                        .reduce(|| identity, &join)
                } else {
                    (0..n).fold(identity, |acc, i| join(acc, f(i)))
                }
            }
        }
    }

    /// Sum-reduction convenience.
    pub fn parallel_reduce_sum<F>(&self, label: &str, n: usize, f: F) -> f64
    where
        F: Fn(usize) -> f64 + Sync + Send,
    {
        self.parallel_reduce(label, n, 0.0, f, |a, b| a + b)
    }

    /// Exclusive prefix sum of `counts` into `offsets`
    /// (`offsets.len() == counts.len() + 1`); returns the total.
    /// This is the `parallel_scan` pattern used e.g. to build the QEq
    /// sparse-matrix row offsets (§4.2.2).
    pub fn parallel_scan(&self, label: &str, counts: &[usize], offsets: &mut [usize]) -> usize {
        assert_eq!(offsets.len(), counts.len() + 1);
        let n = counts.len();
        profile::note_kernel_launch(label, n);
        if let Space::Device(ctx) = self {
            ctx.log.push_launch(label, n);
        }
        let parallel = !matches!(self, Space::Serial) && Self::fork(n);
        if !parallel {
            let mut acc = 0usize;
            for i in 0..n {
                offsets[i] = acc;
                acc += counts[i];
            }
            offsets[n] = acc;
            return acc;
        }
        // Two-pass chunked scan. Target ~4 chunks per thread so the
        // work-stealing scheduler can balance, with a floor of 64
        // elements so per-task overhead stays amortized. The floor used
        // to be a hardcoded 1024, which capped an n just above the fork
        // threshold (2048) at two chunks no matter how many threads were
        // available; a floor that is small relative to the threshold
        // lets the chunk count scale with `n` across the whole parallel
        // range.
        let chunk = n.div_ceil(rayon::current_num_threads() * 4).max(64);
        let sums: Vec<usize> = counts.par_chunks(chunk).map(|c| c.iter().sum()).collect();
        let mut bases = Vec::with_capacity(sums.len() + 1);
        let mut acc = 0usize;
        for s in &sums {
            bases.push(acc);
            acc += s;
        }
        let total = acc;
        offsets[n] = total;
        let out_chunks: Vec<&mut [usize]> = offsets[..n].chunks_mut(chunk).collect();
        out_chunks
            .into_par_iter()
            .zip(counts.par_chunks(chunk))
            .zip(bases)
            .for_each(|((out, cnt), mut base)| {
                for (o, c) in out.iter_mut().zip(cnt) {
                    *o = base;
                    base += c;
                }
            });
        total
    }

    /// Tiled two-dimensional dispatch (`MDRangePolicy`): iterate the
    /// full `n0 × n1` index space in cache-friendly tiles, parallel over
    /// tiles. Tiling "can be beneficial to achieve better cache locality
    /// in multi-dimensional loop patterns" (§3.3) and implements the
    /// 3-d tiled traversal of SNAP's ComputeYi (§4.3.2).
    pub fn parallel_for_2d<F>(&self, label: &str, policy: MDRangePolicy, f: F)
    where
        F: Fn(usize, usize) + Sync + Send,
    {
        let MDRangePolicy {
            n0,
            n1,
            tile0,
            tile1,
        } = policy;
        profile::note_kernel_launch(label, n0 * n1);
        let t0 = tile0.max(1);
        let t1 = tile1.max(1);
        let tiles0 = n0.div_ceil(t0);
        let tiles1 = n1.div_ceil(t1);
        let run_tile = |tid: usize| {
            let b0 = (tid / tiles1) * t0;
            let b1 = (tid % tiles1) * t1;
            for i in b0..(b0 + t0).min(n0) {
                for j in b1..(b1 + t1).min(n1) {
                    f(i, j);
                }
            }
        };
        match self {
            Space::Serial => {
                for tid in 0..tiles0 * tiles1 {
                    run_tile(tid);
                }
            }
            Space::Threads | Space::Device(_) => {
                if let Space::Device(ctx) = self {
                    ctx.log.push_launch(label, n0 * n1);
                }
                if force_sequential() {
                    for tid in 0..tiles0 * tiles1 {
                        run_tile(tid);
                    }
                } else {
                    (0..tiles0 * tiles1).into_par_iter().for_each(run_tile);
                }
            }
        }
    }

    /// Hierarchical dispatch (`TeamPolicy`): one [`Team`] per league
    /// member, with per-team scratch memory. On host spaces a team is a
    /// single thread executing team-nested ranges sequentially, which is
    /// exactly Kokkos' host mapping.
    pub fn parallel_for_team<F>(&self, label: &str, policy: TeamPolicy, f: F)
    where
        F: Fn(&mut Team) + Sync + Send,
    {
        let scratch_len = policy.scratch_bytes.div_ceil(8);
        profile::note_kernel_launch(label, policy.league_size * policy.team_size.max(1));
        let run_serial = |policy: &TeamPolicy| {
            let mut scratch = vec![0.0f64; scratch_len];
            for rank in 0..policy.league_size {
                let mut team = Team::new(rank, policy, &mut scratch);
                f(&mut team);
            }
        };
        match self {
            Space::Serial => run_serial(&policy),
            Space::Threads | Space::Device(_) => {
                if let Space::Device(ctx) = self {
                    // Team launches record their occupancy-relevant
                    // configuration (scratch request, team size) so the
                    // cost model sees it even for kernels that never
                    // push full stats of their own.
                    let mut s = KernelStats::new(label);
                    s.work_items = (policy.league_size * policy.team_size.max(1)) as f64;
                    s.scratch_bytes_per_team = policy.scratch_bytes as f64;
                    s.threads_per_team = policy.team_size.max(1) as u32;
                    ctx.log.push(s);
                }
                if force_sequential() {
                    run_serial(&policy);
                } else {
                    (0..policy.league_size).into_par_iter().for_each_init(
                        || vec![0.0f64; scratch_len],
                        |scratch, rank| {
                            let mut team = Team::new(rank, &policy, scratch);
                            f(&mut team);
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn spaces() -> Vec<Space> {
        vec![
            Space::Serial,
            Space::Threads,
            Space::device(GpuArch::h100()),
        ]
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        for space in spaces() {
            let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
            space.parallel_for("t", hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn reduce_sum_matches_closed_form() {
        for space in spaces() {
            let n = 100_000usize;
            let s = space.parallel_reduce_sum("sum", n, |i| i as f64);
            assert_eq!(s, (n * (n - 1) / 2) as f64);
        }
    }

    #[test]
    fn reduce_max_custom_join() {
        for space in spaces() {
            let m = space.parallel_reduce(
                "max",
                10_000,
                f64::NEG_INFINITY,
                |i| ((i * 37) % 9973) as f64,
                f64::max,
            );
            assert_eq!(m, 9972.0);
        }
    }

    #[test]
    fn scan_small_and_large() {
        for space in spaces() {
            for n in [0usize, 1, 7, 5000] {
                let counts: Vec<usize> = (0..n).map(|i| i % 5).collect();
                let mut offsets = vec![0usize; n + 1];
                let total = space.parallel_scan("scan", &counts, &mut offsets);
                let mut acc = 0;
                for i in 0..n {
                    assert_eq!(offsets[i], acc, "n={n} i={i}");
                    acc += counts[i];
                }
                assert_eq!(offsets[n], acc);
                assert_eq!(total, acc);
            }
        }
    }

    #[test]
    fn md_range_covers_rectangle() {
        for space in spaces() {
            let n0 = 37;
            let n1 = 53;
            let hits: Vec<AtomicUsize> = (0..n0 * n1).map(|_| AtomicUsize::new(0)).collect();
            space.parallel_for_2d(
                "tile",
                MDRangePolicy::new(n0, n1).with_tiles(8, 16),
                |i, j| {
                    hits[i * n1 + j].fetch_add(1, Ordering::Relaxed);
                },
            );
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn team_policy_runs_league_with_scratch() {
        for space in spaces() {
            let sums: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
            let policy = TeamPolicy::new(64, 8).with_scratch(256);
            space.parallel_for_team("team", policy, |team| {
                let rank = team.league_rank();
                {
                    let scratch = team.scratch();
                    assert!(scratch.len() >= 32);
                    scratch[0] = rank as f64;
                }
                let mut local = 0usize;
                team.team_range(10, |i| local += i);
                assert_eq!(team.scratch()[0], rank as f64);
                sums[rank].store(local, Ordering::Relaxed);
            });
            assert!(sums.iter().all(|s| s.load(Ordering::Relaxed) == 45));
        }
    }

    #[test]
    fn device_logs_launches() {
        let space = Space::device(GpuArch::h100());
        space.parallel_for("k", 10, |_| {});
        space.parallel_reduce_sum("r", 10, |_| 0.0);
        let ctx = space.device_ctx().unwrap();
        assert_eq!(ctx.log.len(), 2);
    }

    #[test]
    fn host_spaces_do_not_log() {
        let space = Space::Threads;
        space.parallel_for("k", 10, |_| {});
        assert!(space.device_ctx().is_none());
    }

    #[test]
    fn force_sequential_paths_match_parallel_results() {
        // Same dispatches, forced serial: identical results, and with a
        // deterministic accumulation order on top. (The flag is global;
        // concurrently running tests only lose parallelism, never
        // correctness, while it is set.)
        let n = 100_000usize;
        let space = Space::Threads;
        let par = space.parallel_reduce_sum("sum", n, |i| (i as f64).sqrt());
        set_force_sequential(true);
        let seq1 = space.parallel_reduce_sum("sum", n, |i| (i as f64).sqrt());
        let seq2 = space.parallel_reduce_sum("sum", n, |i| (i as f64).sqrt());
        let counts: Vec<usize> = (0..5000).map(|i| i % 7).collect();
        let mut offsets = vec![0usize; counts.len() + 1];
        let total = space.parallel_scan("scan", &counts, &mut offsets);
        set_force_sequential(false);
        assert!(!force_sequential());
        // Bitwise identical between forced-sequential runs…
        assert_eq!(seq1.to_bits(), seq2.to_bits());
        // …and numerically equal to the parallel reduction.
        assert!((par - seq1).abs() < 1e-6 * par.abs());
        assert_eq!(total, counts.iter().sum::<usize>());
    }

    #[test]
    fn every_dispatch_fires_the_launch_hook_on_all_spaces() {
        use lkk_gpusim::StatsAccumulator;
        let acc = std::sync::Arc::new(StatsAccumulator::new());
        let id = crate::profile::register_subscriber(acc.clone());
        for space in spaces() {
            space.parallel_for("hook-for", 4, |_| {});
            space.parallel_reduce_sum("hook-reduce", 4, |_| 0.0);
            let mut offsets = [0usize; 3];
            space.parallel_scan("hook-scan", &[1, 2], &mut offsets);
            space.parallel_for_2d("hook-2d", MDRangePolicy::new(2, 2), |_, _| {});
            space.parallel_for_team("hook-team", TeamPolicy::new(2, 2), |_| {});
        }
        crate::profile::unregister_subscriber(id);
        let snap = acc.snapshot();
        for name in [
            "hook-for",
            "hook-reduce",
            "hook-scan",
            "hook-2d",
            "hook-team",
        ] {
            // Hooks fire for Serial, Threads, and Device alike. Other
            // concurrently running tests use different labels, so >= is
            // only about our own three spaces.
            assert!(
                snap.launches.get(name).copied().unwrap_or(0) >= 3,
                "missing launches for {name}"
            );
        }
    }

    #[test]
    fn team_launch_records_scratch_and_team_size() {
        let space = Space::device(GpuArch::h100());
        let policy = TeamPolicy::new(16, 32).with_scratch(4096);
        space.parallel_for_team("scratchy", policy, |_| {});
        let recs = space.device_ctx().unwrap().log.drain();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].scratch_bytes_per_team, 4096.0);
        assert_eq!(recs[0].threads_per_team, 32);
        assert_eq!(recs[0].work_items, 512.0);
    }
}
