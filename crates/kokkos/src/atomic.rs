//! Atomic double-precision accumulation.
//!
//! GPUs provide hardware FP64 atomic adds; on the host we emulate one
//! with a compare-and-swap loop over the IEEE-754 bit pattern, the same
//! strategy Kokkos uses on architectures without native FP64 atomics.

use std::sync::atomic::{AtomicU64, Ordering};

/// An `f64` supporting lock-free atomic add / load / store.
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    #[inline]
    pub fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed)
    }

    /// Atomically add `v`, returning the previous value.
    #[inline]
    pub fn fetch_add(&self, v: f64) -> f64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Atomically add `v` to the `f64` behind `slot`.
///
/// # Safety
/// `slot` must point to a valid, aligned `f64` that is only accessed
/// through atomic operations for the duration of the concurrent phase.
#[inline]
pub unsafe fn atomic_add_f64(slot: *mut f64, v: f64) {
    let a = &*(slot as *const AtomicU64);
    let mut cur = a.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + v).to_bits();
        match a.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn basic_ops() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-2.0);
        assert_eq!(a.load(), -2.0);
        let prev = a.fetch_add(0.5);
        assert_eq!(prev, -2.0);
        assert_eq!(a.load(), -1.5);
    }

    #[test]
    fn concurrent_adds_are_exact_with_equal_addends() {
        let a = AtomicF64::new(0.0);
        (0..10_000).into_par_iter().for_each(|_| {
            a.fetch_add(1.0);
        });
        assert_eq!(a.load(), 10_000.0);
    }

    #[test]
    fn raw_atomic_add() {
        let mut xs = vec![0.0f64; 4];
        let ptr = xs.as_mut_ptr();
        // Concurrent adds to all slots from many tasks.
        let addr = ptr as usize;
        (0..4000usize).into_par_iter().for_each(|i| unsafe {
            atomic_add_f64((addr as *mut f64).add(i % 4), 0.25);
        });
        for &x in &xs {
            assert_eq!(x, 250.0);
        }
    }
}
