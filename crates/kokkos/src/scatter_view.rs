//! Write-conflict deconfliction: `ScatterView`.
//!
//! §3.2 of the paper: "ScatterView ... was designed to handle
//! unstructured accumulation of data from multiple threads in a way
//! that write conflicts are avoided. It can transparently swap between
//! using atomic operations, a data duplication strategy, or even simple
//! sequential accumulation... On CPUs, data duplication with a
//! subsequent combining step is often the most effective way to deal
//! with write conflicts, while on GPUs data duplication is infeasible
//! due to the large number of active threads and thus atomic operations
//! need to be used."
//!
//! The flat target is an `n × ncols` array (e.g. forces: `n_atoms × 3`).

use crate::atomic::AtomicF64;
use crate::exec::Space;
use std::cell::UnsafeCell;

/// Dynamic write-conflict detection for the unsynchronised storage
/// modes, compiled in only under `debug_assertions` or the
/// `conflict-detect` feature (release builds carry zero detector code
/// or state — see `docs/static-analysis.md` for the cost model).
///
/// The invariant being checked is *epoch ownership*: between two epoch
/// boundaries (`contribute_into`, `reset`, `ensure`), each duplicated
/// copy — and a `Sequential` view as a whole — may be written by at
/// most one claimant. A claimant is either *the worker pool* (any
/// rayon worker thread writing its own copy; disjoint by construction)
/// or one specific *foreign* thread (no worker index, mapped to copy
/// 0 by the `unwrap_or(0)` fallback in [`ScatterView::add`]). Two
/// distinct claimants inside one epoch are reported even when their
/// writes did not overlap in time: the pattern is one scheduler
/// reshuffle away from silent corruption, so it is treated as a
/// deterministic failure rather than a latent race.
///
/// `Atomic` mode is race-free for accumulation by construction, so
/// overlapping writers there are *recorded* (per-index owner words,
/// [`ScatterView::conflict_overlaps`]) but never fatal.
#[cfg(any(debug_assertions, feature = "conflict-detect"))]
mod conflict {
    use super::ScatterMode;
    use std::panic::Location;
    use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

    /// Claimant word: 0 = unclaimed this epoch, `POOL` = some rayon
    /// worker writing its own copy, >= 2 = a specific foreign thread.
    const POOL: u64 = 1;

    static NEXT_FP: AtomicU64 = AtomicU64::new(2);
    thread_local! {
        static THREAD_FP: u64 = NEXT_FP.fetch_add(1, Ordering::Relaxed);
    }

    fn describe(claimant: u64) -> String {
        if claimant == POOL {
            "the worker pool".to_string()
        } else {
            format!("foreign thread #{claimant}")
        }
    }

    struct Slot {
        owner: AtomicU64,
        site: AtomicPtr<Location<'static>>,
        index: AtomicUsize,
    }

    impl Slot {
        fn new() -> Slot {
            Slot {
                owner: AtomicU64::new(0),
                site: AtomicPtr::new(std::ptr::null_mut()),
                index: AtomicUsize::new(0),
            }
        }
    }

    /// Per-view detector state. One `Slot` per duplicated copy (one
    /// total in `Sequential` mode); one owner word per flat index in
    /// `Atomic` mode.
    pub(super) struct Tracker {
        copies: Vec<Slot>,
        cells: Vec<AtomicU64>,
        overlaps: AtomicU64,
    }

    impl Tracker {
        pub(super) fn for_shape(mode: ScatterMode, ncopies: usize, len: usize) -> Tracker {
            let (nslots, ncells) = match mode {
                ScatterMode::Atomic => (0, len),
                ScatterMode::Duplicated => (ncopies, 0),
                ScatterMode::Sequential => (1, 0),
            };
            Tracker {
                copies: (0..nslots).map(|_| Slot::new()).collect(),
                cells: (0..ncells).map(|_| AtomicU64::new(0)).collect(),
                overlaps: AtomicU64::new(0),
            }
        }

        /// Claim `copy` for the calling context. `foreign` marks a
        /// caller with no rayon worker index (the copy-0 fallback in
        /// duplicated mode) or any `Sequential`-mode caller. Panics —
        /// naming both access sites — when a different claimant
        /// already owns the copy this epoch.
        #[inline]
        pub(super) fn claim(
            &self,
            copy: usize,
            idx: usize,
            foreign: bool,
            site: &'static Location<'static>,
        ) {
            let claimant = if foreign {
                THREAD_FP.with(|fp| *fp)
            } else {
                POOL
            };
            let slot = &self.copies[copy];
            match slot
                .owner
                .compare_exchange(0, claimant, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    slot.index.store(idx, Ordering::Relaxed);
                    slot.site.store(
                        site as *const _ as *mut Location<'static>,
                        Ordering::Release,
                    );
                }
                Err(prev) if prev == claimant => {}
                Err(prev) => {
                    // Give the first claimant a beat to publish its
                    // site pointer (it stores the site right after the
                    // winning CAS).
                    let mut first = slot.site.load(Ordering::Acquire);
                    for _ in 0..64 {
                        if !first.is_null() {
                            break;
                        }
                        std::hint::spin_loop();
                        first = slot.site.load(Ordering::Acquire);
                    }
                    let first_site = if first.is_null() {
                        "<site not yet published>".to_string()
                    } else {
                        // SAFETY: non-null pointers in `site` only ever
                        // come from `&'static Location` above.
                        unsafe { (*first).to_string() }
                    };
                    let first_idx = slot.index.load(Ordering::Relaxed);
                    panic!(
                        "ScatterView write conflict on copy {copy}: claimed by {} at {first_site} \
                         (flat index {first_idx}) and now written by {} at {site} (flat index {idx}) \
                         within one accumulation epoch; separate the writers with contribute_into()/reset(), \
                         or use Atomic mode (see docs/static-analysis.md)",
                        describe(prev),
                        describe(claimant),
                    );
                }
            }
        }

        /// Record a writer on flat index `idx` in `Atomic` mode.
        /// Overlapping distinct writers are legal there (adds are
        /// element-atomic); they are only counted.
        #[inline]
        pub(super) fn record_atomic(&self, idx: usize) {
            let fp = THREAD_FP.with(|fp| *fp);
            let cell = &self.cells[idx];
            let prev = cell.load(Ordering::Relaxed);
            if prev == fp {
                return;
            }
            if prev != 0 {
                self.overlaps.fetch_add(1, Ordering::Relaxed);
            }
            cell.store(fp, Ordering::Relaxed);
        }

        /// Epoch boundary: release every ownership claim.
        pub(super) fn clear(&self) {
            for s in &self.copies {
                s.owner.store(0, Ordering::Release);
                s.site.store(std::ptr::null_mut(), Ordering::Release);
            }
            for c in &self.cells {
                c.store(0, Ordering::Relaxed);
            }
        }

        pub(super) fn overlaps(&self) -> u64 {
            self.overlaps.load(Ordering::Relaxed)
        }
    }
}

/// Contribution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScatterMode {
    /// Thread-atomic adds into a single copy (GPU default).
    Atomic,
    /// One private copy per thread, combined afterwards (CPU-threads
    /// default).
    Duplicated,
    /// Single copy, no synchronisation (serial default).
    Sequential,
}

impl ScatterMode {
    /// The default strategy for an execution space, mirroring Kokkos'
    /// `Experimental::ScatterDuplicated`/`ScatterAtomic` defaults.
    pub fn default_for(space: &Space) -> ScatterMode {
        match space {
            Space::Serial => ScatterMode::Sequential,
            Space::Threads => ScatterMode::Duplicated,
            Space::Device(_) => ScatterMode::Atomic,
        }
    }
}

/// Cache-line-aligned wrapper to prevent false sharing between
/// per-thread duplicates.
#[repr(align(64))]
struct Pad<T>(T);

enum Storage {
    Atomic(Vec<AtomicF64>),
    Duplicated(Vec<Pad<UnsafeCell<Vec<f64>>>>),
    Sequential(UnsafeCell<Vec<f64>>),
}

/// A scatter-add accumulation buffer over an `n × ncols` target.
///
/// ```
/// use lkk_kokkos::{ScatterMode, ScatterView};
/// let mut forces = ScatterView::new(4, 3, ScatterMode::Atomic);
/// forces.add(1, 0, 2.0);
/// forces.add(1, 0, 0.5);
/// let mut out = vec![0.0; 12];
/// forces.contribute_into(&mut out);
/// assert_eq!(out[3], 2.5);
/// ```
pub struct ScatterView {
    n: usize,
    ncols: usize,
    storage: Storage,
    /// Reused flat buffer for layout-transposing contributions
    /// (see [`ScatterView::contribute_into_view`]).
    scratch: Vec<f64>,
    /// Number of heap growths after construction (via [`ScatterView::ensure`]
    /// or the transpose scratch). Stable in steady state — the
    /// zero-per-step-allocation tests assert on this.
    grow_count: u64,
    /// Write-conflict detector state (debug/`conflict-detect` builds
    /// only; release builds carry no field and no per-add code).
    #[cfg(any(debug_assertions, feature = "conflict-detect"))]
    conflict: conflict::Tracker,
}

// Duplicated storage is only written through per-thread indices;
// Sequential storage is only used without concurrency (see `add`).
unsafe impl Sync for ScatterView {}
unsafe impl Send for ScatterView {}

impl ScatterView {
    pub fn new(n: usize, ncols: usize, mode: ScatterMode) -> Self {
        let len = n * ncols;
        let storage = match mode {
            ScatterMode::Atomic => Storage::Atomic((0..len).map(|_| AtomicF64::new(0.0)).collect()),
            ScatterMode::Duplicated => {
                let copies = rayon::current_num_threads().max(1);
                Storage::Duplicated(
                    (0..copies)
                        .map(|_| Pad(UnsafeCell::new(vec![0.0; len])))
                        .collect(),
                )
            }
            ScatterMode::Sequential => Storage::Sequential(UnsafeCell::new(vec![0.0; len])),
        };
        #[cfg(any(debug_assertions, feature = "conflict-detect"))]
        let ncopies = match &storage {
            Storage::Duplicated(c) => c.len(),
            _ => 0,
        };
        ScatterView {
            n,
            ncols,
            storage,
            scratch: Vec::new(),
            grow_count: 0,
            #[cfg(any(debug_assertions, feature = "conflict-detect"))]
            conflict: conflict::Tracker::for_shape(mode, ncopies, len),
        }
    }

    /// Build with the default mode for `space`.
    pub fn for_space(n: usize, ncols: usize, space: &Space) -> Self {
        Self::new(n, ncols, ScatterMode::default_for(space))
    }

    /// Reshape in place to an `n × ncols` target in `mode`, reusing the
    /// existing buffers' capacity. This is the pooled path pair styles
    /// use across neighbor rebuilds (the ghost count — and therefore
    /// the target size — changes, the capacity does not, once it has
    /// peaked). All buffers are zeroed whenever the shape or mode
    /// changes; a no-op when shape and mode already match (buffers are
    /// already zero between uses — `contribute_into` and `reset`
    /// restore zeros). Returns `true` if any heap growth occurred.
    pub fn ensure(&mut self, n: usize, ncols: usize, mode: ScatterMode) -> bool {
        if self.mode() == mode && self.n == n && self.ncols == ncols {
            // Still an epoch boundary: the caller is about to start a
            // fresh accumulation pass over the same target.
            #[cfg(any(debug_assertions, feature = "conflict-detect"))]
            self.conflict.clear();
            return false;
        }
        let len = n * ncols;
        let mut grew = false;
        if self.mode() == mode {
            match &mut self.storage {
                Storage::Atomic(a) => {
                    grew |= len > a.capacity();
                    a.resize_with(len, || AtomicF64::new(0.0));
                    a.iter().for_each(|x| x.store(0.0));
                }
                Storage::Duplicated(copies) => {
                    let want = rayon::current_num_threads().max(1);
                    grew |= want > copies.capacity();
                    copies.resize_with(want, || Pad(UnsafeCell::new(Vec::new())));
                    for c in copies.iter_mut() {
                        let buf = c.0.get_mut();
                        grew |= len > buf.capacity();
                        buf.clear();
                        buf.resize(len, 0.0);
                    }
                }
                Storage::Sequential(buf) => {
                    let buf = buf.get_mut();
                    grew |= len > buf.capacity();
                    buf.clear();
                    buf.resize(len, 0.0);
                }
            }
        } else {
            // Mode switch: storage representations differ, so capacity
            // cannot carry over. Rare (a space change), and counted.
            let fresh = Self::new(n, ncols, mode);
            self.storage = fresh.storage;
            grew = len > 0;
        }
        self.n = n;
        self.ncols = ncols;
        #[cfg(any(debug_assertions, feature = "conflict-detect"))]
        {
            let ncopies = match &self.storage {
                Storage::Duplicated(c) => c.len(),
                _ => 0,
            };
            self.conflict = conflict::Tracker::for_shape(mode, ncopies, len);
        }
        if grew {
            self.grow_count += 1;
        }
        grew
    }

    /// Heap growths since construction (0 in steady state).
    pub fn grow_count(&self) -> u64 {
        self.grow_count
    }

    pub fn mode(&self) -> ScatterMode {
        match self.storage {
            Storage::Atomic(_) => ScatterMode::Atomic,
            Storage::Duplicated(_) => ScatterMode::Duplicated,
            Storage::Sequential(_) => ScatterMode::Sequential,
        }
    }

    pub fn target_len(&self) -> usize {
        self.n * self.ncols
    }

    /// Accumulate `v` into element `(i, col)`.
    ///
    /// Safe under each mode's contract: `Atomic` is race-free by
    /// construction; `Duplicated` writes only this rayon worker's
    /// private copy; `Sequential` must only be used from a single
    /// thread (its constructor is only chosen for serial spaces).
    #[inline]
    #[cfg_attr(any(debug_assertions, feature = "conflict-detect"), track_caller)]
    pub fn add(&self, i: usize, col: usize, v: f64) {
        let idx = i * self.ncols + col;
        match &self.storage {
            Storage::Atomic(a) => {
                #[cfg(any(debug_assertions, feature = "conflict-detect"))]
                self.conflict.record_atomic(idx);
                a[idx].fetch_add(v);
            }
            Storage::Duplicated(copies) => {
                let worker = rayon::current_thread_index();
                let t = worker.unwrap_or(0);
                #[cfg(any(debug_assertions, feature = "conflict-detect"))]
                self.conflict
                    .claim(t, idx, worker.is_none(), std::panic::Location::caller());
                // Each rayon worker has a private copy; index `t` is
                // stable for the duration of the closure.
                let buf = unsafe { &mut *copies[t].0.get() };
                buf[idx] += v;
            }
            Storage::Sequential(buf) => {
                #[cfg(any(debug_assertions, feature = "conflict-detect"))]
                self.conflict
                    .claim(0, idx, true, std::panic::Location::caller());
                let buf = unsafe { &mut *buf.get() };
                buf[idx] += v;
            }
        }
    }

    /// Combine all contributions into `out` (added on top of existing
    /// contents), then reset the internal buffers to zero.
    pub fn contribute_into(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.target_len());
        // Epoch boundary: combining releases every ownership claim.
        #[cfg(any(debug_assertions, feature = "conflict-detect"))]
        self.conflict.clear();
        match &mut self.storage {
            Storage::Atomic(a) => {
                for (o, x) in out.iter_mut().zip(a.iter()) {
                    *o += x.load();
                    x.store(0.0);
                }
            }
            Storage::Duplicated(copies) => {
                for c in copies.iter_mut() {
                    let buf = c.0.get_mut();
                    for (o, x) in out.iter_mut().zip(buf.iter_mut()) {
                        *o += *x;
                        *x = 0.0;
                    }
                }
            }
            Storage::Sequential(buf) => {
                let buf = buf.get_mut();
                for (o, x) in out.iter_mut().zip(buf.iter_mut()) {
                    *o += *x;
                    *x = 0.0;
                }
            }
        }
    }

    /// Combine all contributions into a rank-2 view of shape
    /// `[n, ncols]`, respecting the view's layout (a device view is
    /// column-major). Adds on top of existing contents and resets.
    pub fn contribute_into_view(&mut self, out: &mut crate::view::View<f64, 2>) {
        assert_eq!(out.dims(), [self.n, self.ncols]);
        if out.layout() == crate::view::Layout::Right {
            self.contribute_into(out.as_mut_slice());
            return;
        }
        // Layout::Left target: combine into the persistent flat scratch
        // (row-major), then transpose-add. The scratch is reused across
        // calls so steady-state steps touch no allocator.
        let len = self.target_len();
        if len > self.scratch.capacity() {
            self.grow_count += 1;
        }
        let mut flat = std::mem::take(&mut self.scratch);
        flat.clear();
        flat.resize(len, 0.0);
        self.contribute_into(&mut flat);
        for i in 0..self.n {
            for c in 0..self.ncols {
                let v = *out.get([i, c]) + flat[i * self.ncols + c];
                out.set([i, c], v);
            }
        }
        self.scratch = flat;
    }

    /// Distinct-writer overlaps recorded in `Atomic` mode this
    /// process (atomic adds commute, so overlap is legal there — the
    /// count is a contention diagnostic, not an error). Only present
    /// in debug/`conflict-detect` builds; release builds compile the
    /// detector out entirely.
    #[cfg(any(debug_assertions, feature = "conflict-detect"))]
    pub fn conflict_overlaps(&self) -> u64 {
        self.conflict.overlaps()
    }

    /// Zero all internal buffers without contributing.
    pub fn reset(&mut self) {
        // Epoch boundary, like `contribute_into`.
        #[cfg(any(debug_assertions, feature = "conflict-detect"))]
        self.conflict.clear();
        match &mut self.storage {
            Storage::Atomic(a) => a.iter().for_each(|x| x.store(0.0)),
            Storage::Duplicated(copies) => copies
                .iter_mut()
                .for_each(|c| c.0.get_mut().iter_mut().for_each(|x| *x = 0.0)),
            Storage::Sequential(buf) => buf.get_mut().iter_mut().for_each(|x| *x = 0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    // Interpreted execution (the Miri sanitizer lane) is orders of
    // magnitude slower than native; the shrunk counts keep the same
    // CRT structure (multiples of 24) over the same unsafe paths.
    const HAMMER_ITERS: usize = if cfg!(miri) { 2_400 } else { 24_000 };

    fn hammer(mode: ScatterMode) -> Vec<f64> {
        let sv = ScatterView::new(8, 3, mode);
        let run = || {
            (0..HAMMER_ITERS).into_par_iter().for_each(|k| {
                sv.add(k % 8, k % 3, 1.0);
            });
        };
        match mode {
            ScatterMode::Sequential => {
                // Sequential mode: single-threaded contract.
                for k in 0..HAMMER_ITERS {
                    sv.add(k % 8, k % 3, 1.0);
                }
            }
            _ => run(),
        }
        let mut sv = sv;
        let mut out = vec![0.0; 24];
        sv.contribute_into(&mut out);
        out
    }

    #[test]
    fn all_modes_agree() {
        let a = hammer(ScatterMode::Atomic);
        let d = hammer(ScatterMode::Duplicated);
        let s = hammer(ScatterMode::Sequential);
        assert_eq!(a, d);
        assert_eq!(a, s);
        // (i, col) is hit when k ≡ i (mod 8) and k ≡ col (mod 3); by CRT
        // exactly ITERS/24 times for each of the 24 cells.
        assert!(a.iter().all(|&x| x == (HAMMER_ITERS / 24) as f64));
    }

    #[test]
    fn contribute_adds_and_resets() {
        let mut sv = ScatterView::new(2, 1, ScatterMode::Sequential);
        sv.add(0, 0, 2.0);
        sv.add(1, 0, 3.0);
        let mut out = vec![1.0, 1.0];
        sv.contribute_into(&mut out);
        assert_eq!(out, vec![3.0, 4.0]);
        // Buffers were reset: a second contribute adds nothing.
        sv.contribute_into(&mut out);
        assert_eq!(out, vec![3.0, 4.0]);
    }

    #[test]
    fn default_mode_per_space() {
        assert_eq!(
            ScatterMode::default_for(&Space::Serial),
            ScatterMode::Sequential
        );
        assert_eq!(
            ScatterMode::default_for(&Space::Threads),
            ScatterMode::Duplicated
        );
        assert_eq!(
            ScatterMode::default_for(&Space::device(lkk_gpusim::GpuArch::h100())),
            ScatterMode::Atomic
        );
    }

    #[test]
    fn ensure_reshapes_in_place_and_reuses_capacity() {
        for mode in [
            ScatterMode::Atomic,
            ScatterMode::Duplicated,
            ScatterMode::Sequential,
        ] {
            let mut sv = ScatterView::new(8, 3, mode);
            assert_eq!(sv.grow_count(), 0);
            assert!(!sv.ensure(8, 3, mode), "{mode:?}: same shape is a no-op");
            assert!(!sv.ensure(4, 3, mode), "{mode:?}: shrink reuses capacity");
            assert!(!sv.ensure(8, 3, mode), "{mode:?}: regrow within capacity");
            assert_eq!(sv.grow_count(), 0);
            assert!(sv.ensure(32, 3, mode), "{mode:?}: growth reported");
            assert_eq!(sv.grow_count(), 1);
            assert!(!sv.ensure(32, 3, mode), "{mode:?}: steady state reuses");

            // The reshaped target is fully usable and starts zeroed.
            sv.add(31, 2, 1.5);
            let mut out = vec![0.0; 96];
            sv.contribute_into(&mut out);
            assert_eq!(out[95], 1.5);
            assert!(out[..95].iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn contribute_into_left_view_reuses_scratch() {
        use crate::view::{Layout, View2};
        let mut sv = ScatterView::new(4, 3, ScatterMode::Atomic);
        let mut out = View2::<f64>::with_layout("f", [4, 3], Layout::Left);
        sv.add(2, 1, 1.0);
        sv.contribute_into_view(&mut out);
        assert_eq!(sv.grow_count(), 1, "first transpose allocates the scratch");
        for _ in 0..10 {
            sv.add(2, 1, 1.0);
            sv.contribute_into_view(&mut out);
        }
        assert_eq!(
            sv.grow_count(),
            1,
            "steady-state transposes must not allocate"
        );
        assert_eq!(out.at([2, 1]), 11.0);
    }

    /// Stress: many rayon threads hammering *overlapping* rows in
    /// duplicated mode must combine to bit-identical results vs plain
    /// sequential accumulation, across repeated runs. Contributions are
    /// dyadic (multiples of 0.25) so every partial sum is exact and the
    /// result is independent of combine order — any drift here is a
    /// real race, not float noise.
    #[test]
    fn duplicated_stress_bit_identical_vs_sequential() {
        const N: usize = 16;
        // Shrunk under Miri (see HAMMER_ITERS); the aliasing pattern is
        // identical, only the hammer duration differs.
        const ITERS: usize = if cfg!(miri) { 2_400 } else { 120_000 };
        const RUNS: usize = if cfg!(miri) { 2 } else { 5 };
        let row = |k: usize| k % N;
        let col = |k: usize| (k / N) % 3;
        let val = |k: usize| ((k % 13) as f64) * 0.25;

        let mut seq = ScatterView::new(N, 3, ScatterMode::Sequential);
        for k in 0..ITERS {
            seq.add(row(k), col(k), val(k));
        }
        let mut reference = vec![0.0; N * 3];
        seq.contribute_into(&mut reference);
        assert!(reference.iter().any(|&x| x > 0.0));

        for run in 0..RUNS {
            let sv = ScatterView::new(N, 3, ScatterMode::Duplicated);
            (0..ITERS).into_par_iter().for_each(|k| {
                sv.add(row(k), col(k), val(k));
            });
            let mut sv = sv;
            let mut out = vec![0.0; N * 3];
            sv.contribute_into(&mut out);
            for (i, (&a, &b)) in out.iter().zip(reference.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "run {run}, cell {i}: duplicated {a} != sequential {b}"
                );
            }
        }
    }

    #[test]
    fn reset_clears_pending() {
        let mut sv = ScatterView::new(1, 1, ScatterMode::Atomic);
        sv.add(0, 0, 5.0);
        sv.reset();
        let mut out = vec![0.0];
        sv.contribute_into(&mut out);
        assert_eq!(out[0], 0.0);
    }

    // ------------------------------------------------------------------
    // Write-conflict detector (debug / `conflict-detect` builds only;
    // release builds compile the detector — and these tests — out).
    // ------------------------------------------------------------------

    /// Run `f`, which must panic, and return the panic payload text.
    #[cfg(any(debug_assertions, feature = "conflict-detect"))]
    fn must_panic(f: impl FnOnce()) -> String {
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
            .expect_err("expected a detector panic");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    /// Distinct `scatter_view.rs:<line>` access sites named in `msg`.
    #[cfg(any(debug_assertions, feature = "conflict-detect"))]
    fn named_sites(msg: &str) -> std::collections::BTreeSet<String> {
        let mut sites = std::collections::BTreeSet::new();
        let mut rest = msg;
        while let Some(pos) = rest.find("scatter_view.rs:") {
            let tail = &rest[pos..];
            let end = tail
                .find(|c: char| c.is_whitespace() || c == ')' || c == ',')
                .unwrap_or(tail.len());
            sites.insert(tail[..end].to_string());
            rest = &tail[end..];
        }
        sites
    }

    /// Seeded race: two plain OS threads (no rayon worker index) both
    /// fall back to duplicated copy 0. The writes are temporally
    /// disjoint — the detector still fires deterministically, naming
    /// both access sites, because two distinct claimants inside one
    /// accumulation epoch are one scheduler reshuffle away from silent
    /// corruption.
    #[test]
    #[cfg(any(debug_assertions, feature = "conflict-detect"))]
    fn conflict_detector_names_both_sites_on_foreign_overlap() {
        let sv = ScatterView::new(4, 3, ScatterMode::Duplicated);
        let msg = std::thread::scope(|scope| {
            scope
                .spawn(|| sv.add(1, 0, 1.0)) // first access site
                .join()
                .expect("first foreign writer must not panic");
            scope
                .spawn(|| must_panic(|| sv.add(2, 1, 1.0))) // second access site
                .join()
                .unwrap()
        });
        assert!(
            msg.contains("ScatterView write conflict"),
            "unexpected panic message: {msg}"
        );
        let sites = named_sites(&msg);
        assert!(
            sites.len() >= 2,
            "panic must name both access sites, got {sites:?} in: {msg}"
        );
    }

    /// A foreign thread joining an epoch whose copy 0 was already
    /// claimed by the worker pool is flagged on the foreign side.
    #[test]
    #[cfg(any(debug_assertions, feature = "conflict-detect"))]
    fn conflict_detector_flags_foreign_write_into_pool_epoch() {
        let sv = ScatterView::new(4, 3, ScatterMode::Duplicated);
        (0..64usize).into_par_iter().for_each(|k| {
            sv.add(k % 4, k % 3, 1.0); // pool claims every copy
        });
        let msg = std::thread::scope(|scope| {
            scope
                .spawn(|| must_panic(|| sv.add(0, 0, 1.0)))
                .join()
                .unwrap()
        });
        assert!(msg.contains("write conflict"), "got: {msg}");
        assert!(msg.contains("worker pool"), "got: {msg}");
    }

    /// Sequential mode: a second thread writing in the same epoch is a
    /// contract violation even without temporal overlap.
    #[test]
    #[cfg(any(debug_assertions, feature = "conflict-detect"))]
    fn conflict_detector_flags_cross_thread_sequential_use() {
        let sv = ScatterView::new(2, 1, ScatterMode::Sequential);
        std::thread::scope(|scope| {
            scope.spawn(|| sv.add(0, 0, 1.0)).join().unwrap();
        });
        let msg = must_panic(|| sv.add(1, 0, 1.0));
        assert!(msg.contains("write conflict"), "got: {msg}");
        assert!(named_sites(&msg).len() >= 2, "got: {msg}");
    }

    /// Epoch boundaries (contribute/reset) release every claim: the
    /// same cross-thread handoff that panics above is legal once a
    /// boundary separates the writers.
    #[test]
    #[cfg(any(debug_assertions, feature = "conflict-detect"))]
    fn conflict_detector_epoch_boundary_releases_claims() {
        let mut sv = ScatterView::new(2, 1, ScatterMode::Sequential);
        std::thread::scope(|scope| {
            let svr = &sv;
            scope.spawn(move || svr.add(0, 0, 1.0)).join().unwrap();
        });
        sv.reset();
        sv.add(1, 0, 2.0); // different thread, new epoch: fine
        let mut out = vec![0.0; 2];
        sv.contribute_into(&mut out);
        assert_eq!(out, vec![0.0, 2.0]);
    }

    /// Atomic mode: overlapping distinct writers are legal (adds are
    /// element-atomic) — recorded, never fatal.
    #[test]
    #[cfg(any(debug_assertions, feature = "conflict-detect"))]
    fn atomic_mode_counts_overlaps_without_panicking() {
        let sv = ScatterView::new(1, 1, ScatterMode::Atomic);
        std::thread::scope(|scope| {
            scope.spawn(|| sv.add(0, 0, 1.0)).join().unwrap();
            scope.spawn(|| sv.add(0, 0, 1.0)).join().unwrap();
        });
        let mut sv = sv;
        assert_eq!(sv.conflict_overlaps(), 1);
        let mut out = vec![0.0];
        sv.contribute_into(&mut out);
        assert_eq!(out[0], 2.0);
    }
}
