//! Write-conflict deconfliction: `ScatterView`.
//!
//! §3.2 of the paper: "ScatterView ... was designed to handle
//! unstructured accumulation of data from multiple threads in a way
//! that write conflicts are avoided. It can transparently swap between
//! using atomic operations, a data duplication strategy, or even simple
//! sequential accumulation... On CPUs, data duplication with a
//! subsequent combining step is often the most effective way to deal
//! with write conflicts, while on GPUs data duplication is infeasible
//! due to the large number of active threads and thus atomic operations
//! need to be used."
//!
//! The flat target is an `n × ncols` array (e.g. forces: `n_atoms × 3`).

use crate::atomic::AtomicF64;
use crate::exec::Space;
use std::cell::UnsafeCell;

/// Contribution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScatterMode {
    /// Thread-atomic adds into a single copy (GPU default).
    Atomic,
    /// One private copy per thread, combined afterwards (CPU-threads
    /// default).
    Duplicated,
    /// Single copy, no synchronisation (serial default).
    Sequential,
}

impl ScatterMode {
    /// The default strategy for an execution space, mirroring Kokkos'
    /// `Experimental::ScatterDuplicated`/`ScatterAtomic` defaults.
    pub fn default_for(space: &Space) -> ScatterMode {
        match space {
            Space::Serial => ScatterMode::Sequential,
            Space::Threads => ScatterMode::Duplicated,
            Space::Device(_) => ScatterMode::Atomic,
        }
    }
}

/// Cache-line-aligned wrapper to prevent false sharing between
/// per-thread duplicates.
#[repr(align(64))]
struct Pad<T>(T);

enum Storage {
    Atomic(Vec<AtomicF64>),
    Duplicated(Vec<Pad<UnsafeCell<Vec<f64>>>>),
    Sequential(UnsafeCell<Vec<f64>>),
}

/// A scatter-add accumulation buffer over an `n × ncols` target.
///
/// ```
/// use lkk_kokkos::{ScatterMode, ScatterView};
/// let mut forces = ScatterView::new(4, 3, ScatterMode::Atomic);
/// forces.add(1, 0, 2.0);
/// forces.add(1, 0, 0.5);
/// let mut out = vec![0.0; 12];
/// forces.contribute_into(&mut out);
/// assert_eq!(out[3], 2.5);
/// ```
pub struct ScatterView {
    n: usize,
    ncols: usize,
    storage: Storage,
    /// Reused flat buffer for layout-transposing contributions
    /// (see [`ScatterView::contribute_into_view`]).
    scratch: Vec<f64>,
    /// Number of heap growths after construction (via [`ScatterView::ensure`]
    /// or the transpose scratch). Stable in steady state — the
    /// zero-per-step-allocation tests assert on this.
    grow_count: u64,
}

// Duplicated storage is only written through per-thread indices;
// Sequential storage is only used without concurrency (see `add`).
unsafe impl Sync for ScatterView {}
unsafe impl Send for ScatterView {}

impl ScatterView {
    pub fn new(n: usize, ncols: usize, mode: ScatterMode) -> Self {
        let len = n * ncols;
        let storage = match mode {
            ScatterMode::Atomic => Storage::Atomic((0..len).map(|_| AtomicF64::new(0.0)).collect()),
            ScatterMode::Duplicated => {
                let copies = rayon::current_num_threads().max(1);
                Storage::Duplicated(
                    (0..copies)
                        .map(|_| Pad(UnsafeCell::new(vec![0.0; len])))
                        .collect(),
                )
            }
            ScatterMode::Sequential => Storage::Sequential(UnsafeCell::new(vec![0.0; len])),
        };
        ScatterView {
            n,
            ncols,
            storage,
            scratch: Vec::new(),
            grow_count: 0,
        }
    }

    /// Build with the default mode for `space`.
    pub fn for_space(n: usize, ncols: usize, space: &Space) -> Self {
        Self::new(n, ncols, ScatterMode::default_for(space))
    }

    /// Reshape in place to an `n × ncols` target in `mode`, reusing the
    /// existing buffers' capacity. This is the pooled path pair styles
    /// use across neighbor rebuilds (the ghost count — and therefore
    /// the target size — changes, the capacity does not, once it has
    /// peaked). All buffers are zeroed whenever the shape or mode
    /// changes; a no-op when shape and mode already match (buffers are
    /// already zero between uses — `contribute_into` and `reset`
    /// restore zeros). Returns `true` if any heap growth occurred.
    pub fn ensure(&mut self, n: usize, ncols: usize, mode: ScatterMode) -> bool {
        if self.mode() == mode && self.n == n && self.ncols == ncols {
            return false;
        }
        let len = n * ncols;
        let mut grew = false;
        if self.mode() == mode {
            match &mut self.storage {
                Storage::Atomic(a) => {
                    grew |= len > a.capacity();
                    a.resize_with(len, || AtomicF64::new(0.0));
                    a.iter().for_each(|x| x.store(0.0));
                }
                Storage::Duplicated(copies) => {
                    let want = rayon::current_num_threads().max(1);
                    grew |= want > copies.capacity();
                    copies.resize_with(want, || Pad(UnsafeCell::new(Vec::new())));
                    for c in copies.iter_mut() {
                        let buf = c.0.get_mut();
                        grew |= len > buf.capacity();
                        buf.clear();
                        buf.resize(len, 0.0);
                    }
                }
                Storage::Sequential(buf) => {
                    let buf = buf.get_mut();
                    grew |= len > buf.capacity();
                    buf.clear();
                    buf.resize(len, 0.0);
                }
            }
        } else {
            // Mode switch: storage representations differ, so capacity
            // cannot carry over. Rare (a space change), and counted.
            let fresh = Self::new(n, ncols, mode);
            self.storage = fresh.storage;
            grew = len > 0;
        }
        self.n = n;
        self.ncols = ncols;
        if grew {
            self.grow_count += 1;
        }
        grew
    }

    /// Heap growths since construction (0 in steady state).
    pub fn grow_count(&self) -> u64 {
        self.grow_count
    }

    pub fn mode(&self) -> ScatterMode {
        match self.storage {
            Storage::Atomic(_) => ScatterMode::Atomic,
            Storage::Duplicated(_) => ScatterMode::Duplicated,
            Storage::Sequential(_) => ScatterMode::Sequential,
        }
    }

    pub fn target_len(&self) -> usize {
        self.n * self.ncols
    }

    /// Accumulate `v` into element `(i, col)`.
    ///
    /// Safe under each mode's contract: `Atomic` is race-free by
    /// construction; `Duplicated` writes only this rayon worker's
    /// private copy; `Sequential` must only be used from a single
    /// thread (its constructor is only chosen for serial spaces).
    #[inline]
    pub fn add(&self, i: usize, col: usize, v: f64) {
        let idx = i * self.ncols + col;
        match &self.storage {
            Storage::Atomic(a) => {
                a[idx].fetch_add(v);
            }
            Storage::Duplicated(copies) => {
                let t = rayon::current_thread_index().unwrap_or(0);
                // Each rayon worker has a private copy; index `t` is
                // stable for the duration of the closure.
                let buf = unsafe { &mut *copies[t].0.get() };
                buf[idx] += v;
            }
            Storage::Sequential(buf) => {
                let buf = unsafe { &mut *buf.get() };
                buf[idx] += v;
            }
        }
    }

    /// Combine all contributions into `out` (added on top of existing
    /// contents), then reset the internal buffers to zero.
    pub fn contribute_into(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.target_len());
        match &mut self.storage {
            Storage::Atomic(a) => {
                for (o, x) in out.iter_mut().zip(a.iter()) {
                    *o += x.load();
                    x.store(0.0);
                }
            }
            Storage::Duplicated(copies) => {
                for c in copies.iter_mut() {
                    let buf = c.0.get_mut();
                    for (o, x) in out.iter_mut().zip(buf.iter_mut()) {
                        *o += *x;
                        *x = 0.0;
                    }
                }
            }
            Storage::Sequential(buf) => {
                let buf = buf.get_mut();
                for (o, x) in out.iter_mut().zip(buf.iter_mut()) {
                    *o += *x;
                    *x = 0.0;
                }
            }
        }
    }

    /// Combine all contributions into a rank-2 view of shape
    /// `[n, ncols]`, respecting the view's layout (a device view is
    /// column-major). Adds on top of existing contents and resets.
    pub fn contribute_into_view(&mut self, out: &mut crate::view::View<f64, 2>) {
        assert_eq!(out.dims(), [self.n, self.ncols]);
        if out.layout() == crate::view::Layout::Right {
            self.contribute_into(out.as_mut_slice());
            return;
        }
        // Layout::Left target: combine into the persistent flat scratch
        // (row-major), then transpose-add. The scratch is reused across
        // calls so steady-state steps touch no allocator.
        let len = self.target_len();
        if len > self.scratch.capacity() {
            self.grow_count += 1;
        }
        let mut flat = std::mem::take(&mut self.scratch);
        flat.clear();
        flat.resize(len, 0.0);
        self.contribute_into(&mut flat);
        for i in 0..self.n {
            for c in 0..self.ncols {
                let v = *out.get([i, c]) + flat[i * self.ncols + c];
                out.set([i, c], v);
            }
        }
        self.scratch = flat;
    }

    /// Zero all internal buffers without contributing.
    pub fn reset(&mut self) {
        match &mut self.storage {
            Storage::Atomic(a) => a.iter().for_each(|x| x.store(0.0)),
            Storage::Duplicated(copies) => copies
                .iter_mut()
                .for_each(|c| c.0.get_mut().iter_mut().for_each(|x| *x = 0.0)),
            Storage::Sequential(buf) => buf.get_mut().iter_mut().for_each(|x| *x = 0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    fn hammer(mode: ScatterMode) -> Vec<f64> {
        let sv = ScatterView::new(8, 3, mode);
        let run = || {
            (0..24_000usize).into_par_iter().for_each(|k| {
                sv.add(k % 8, k % 3, 1.0);
            });
        };
        match mode {
            ScatterMode::Sequential => {
                // Sequential mode: single-threaded contract.
                for k in 0..24_000usize {
                    sv.add(k % 8, k % 3, 1.0);
                }
            }
            _ => run(),
        }
        let mut sv = sv;
        let mut out = vec![0.0; 24];
        sv.contribute_into(&mut out);
        out
    }

    #[test]
    fn all_modes_agree() {
        let a = hammer(ScatterMode::Atomic);
        let d = hammer(ScatterMode::Duplicated);
        let s = hammer(ScatterMode::Sequential);
        assert_eq!(a, d);
        assert_eq!(a, s);
        // (i, col) is hit when k ≡ i (mod 8) and k ≡ col (mod 3); by CRT
        // exactly 24000/24 = 1000 times for each of the 24 cells.
        assert!(a.iter().all(|&x| x == 1000.0));
    }

    #[test]
    fn contribute_adds_and_resets() {
        let mut sv = ScatterView::new(2, 1, ScatterMode::Sequential);
        sv.add(0, 0, 2.0);
        sv.add(1, 0, 3.0);
        let mut out = vec![1.0, 1.0];
        sv.contribute_into(&mut out);
        assert_eq!(out, vec![3.0, 4.0]);
        // Buffers were reset: a second contribute adds nothing.
        sv.contribute_into(&mut out);
        assert_eq!(out, vec![3.0, 4.0]);
    }

    #[test]
    fn default_mode_per_space() {
        assert_eq!(
            ScatterMode::default_for(&Space::Serial),
            ScatterMode::Sequential
        );
        assert_eq!(
            ScatterMode::default_for(&Space::Threads),
            ScatterMode::Duplicated
        );
        assert_eq!(
            ScatterMode::default_for(&Space::device(lkk_gpusim::GpuArch::h100())),
            ScatterMode::Atomic
        );
    }

    #[test]
    fn ensure_reshapes_in_place_and_reuses_capacity() {
        for mode in [
            ScatterMode::Atomic,
            ScatterMode::Duplicated,
            ScatterMode::Sequential,
        ] {
            let mut sv = ScatterView::new(8, 3, mode);
            assert_eq!(sv.grow_count(), 0);
            assert!(!sv.ensure(8, 3, mode), "{mode:?}: same shape is a no-op");
            assert!(!sv.ensure(4, 3, mode), "{mode:?}: shrink reuses capacity");
            assert!(!sv.ensure(8, 3, mode), "{mode:?}: regrow within capacity");
            assert_eq!(sv.grow_count(), 0);
            assert!(sv.ensure(32, 3, mode), "{mode:?}: growth reported");
            assert_eq!(sv.grow_count(), 1);
            assert!(!sv.ensure(32, 3, mode), "{mode:?}: steady state reuses");

            // The reshaped target is fully usable and starts zeroed.
            sv.add(31, 2, 1.5);
            let mut out = vec![0.0; 96];
            sv.contribute_into(&mut out);
            assert_eq!(out[95], 1.5);
            assert!(out[..95].iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn contribute_into_left_view_reuses_scratch() {
        use crate::view::{Layout, View2};
        let mut sv = ScatterView::new(4, 3, ScatterMode::Atomic);
        let mut out = View2::<f64>::with_layout("f", [4, 3], Layout::Left);
        sv.add(2, 1, 1.0);
        sv.contribute_into_view(&mut out);
        assert_eq!(sv.grow_count(), 1, "first transpose allocates the scratch");
        for _ in 0..10 {
            sv.add(2, 1, 1.0);
            sv.contribute_into_view(&mut out);
        }
        assert_eq!(
            sv.grow_count(),
            1,
            "steady-state transposes must not allocate"
        );
        assert_eq!(out.at([2, 1]), 11.0);
    }

    /// Stress: many rayon threads hammering *overlapping* rows in
    /// duplicated mode must combine to bit-identical results vs plain
    /// sequential accumulation, across repeated runs. Contributions are
    /// dyadic (multiples of 0.25) so every partial sum is exact and the
    /// result is independent of combine order — any drift here is a
    /// real race, not float noise.
    #[test]
    fn duplicated_stress_bit_identical_vs_sequential() {
        const N: usize = 16;
        const ITERS: usize = 120_000;
        let row = |k: usize| k % N;
        let col = |k: usize| (k / N) % 3;
        let val = |k: usize| ((k % 13) as f64) * 0.25;

        let mut seq = ScatterView::new(N, 3, ScatterMode::Sequential);
        for k in 0..ITERS {
            seq.add(row(k), col(k), val(k));
        }
        let mut reference = vec![0.0; N * 3];
        seq.contribute_into(&mut reference);
        assert!(reference.iter().any(|&x| x > 0.0));

        for run in 0..5 {
            let sv = ScatterView::new(N, 3, ScatterMode::Duplicated);
            (0..ITERS).into_par_iter().for_each(|k| {
                sv.add(row(k), col(k), val(k));
            });
            let mut sv = sv;
            let mut out = vec![0.0; N * 3];
            sv.contribute_into(&mut out);
            for (i, (&a, &b)) in out.iter().zip(reference.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "run {run}, cell {i}: duplicated {a} != sequential {b}"
                );
            }
        }
    }

    #[test]
    fn reset_clears_pending() {
        let mut sv = ScatterView::new(1, 1, ScatterMode::Atomic);
        sv.add(0, 0, 5.0);
        sv.reset();
        let mut out = vec![0.0];
        sv.contribute_into(&mut out);
        assert_eq!(out[0], 0.0);
    }
}
