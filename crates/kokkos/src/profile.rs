//! Kernel launch logging and transfer accounting.
//!
//! When kernels run on the simulated device space, the launches and
//! their measured event counts are recorded here; figure harnesses drain
//! the log and feed it to the `lkk-gpusim` cost model. Host↔device
//! transfer volumes from [`crate::DualView`] synchronisation are
//! tallied globally, which is what the device-resident vs.
//! offload-every-step ablation measures.

use lkk_gpusim::KernelStats;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A log of kernel launches on a simulated device.
#[derive(Debug, Default)]
pub struct KernelLog {
    records: Mutex<Vec<KernelStats>>,
}

impl KernelLog {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record the event counts of one kernel execution.
    pub fn push(&self, stats: KernelStats) {
        self.records.lock().push(stats);
    }

    /// Record a bare launch with only a name and work-item count (used
    /// by generic `parallel_for` dispatches that carry no cost model of
    /// their own; they still pay launch latency).
    pub fn push_launch(&self, name: &str, work_items: usize) {
        let mut s = KernelStats::new(name);
        s.work_items = work_items as f64;
        self.push(s);
    }

    /// Drain all records.
    pub fn drain(&self) -> Vec<KernelStats> {
        std::mem::take(&mut *self.records.lock())
    }

    /// Total launches currently logged.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge all records with the same kernel name, summing counts.
    /// Returns (name-ordered) aggregated stats.
    pub fn aggregate(&self) -> Vec<KernelStats> {
        let records = self.records.lock();
        let mut by_name: Vec<KernelStats> = Vec::new();
        for r in records.iter() {
            if let Some(existing) = by_name.iter_mut().find(|s| s.name == r.name) {
                existing.accumulate(r);
            } else {
                by_name.push(r.clone());
            }
        }
        by_name
    }
}

static H2D_BYTES: AtomicU64 = AtomicU64::new(0);
static D2H_BYTES: AtomicU64 = AtomicU64::new(0);
static H2D_COUNT: AtomicU64 = AtomicU64::new(0);
static D2H_COUNT: AtomicU64 = AtomicU64::new(0);

/// Record a host→device transfer.
pub fn note_h2d(bytes: usize) {
    H2D_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    H2D_COUNT.fetch_add(1, Ordering::Relaxed);
}

/// Record a device→host transfer.
pub fn note_d2h(bytes: usize) {
    D2H_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    D2H_COUNT.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of global transfer counters:
/// `(h2d_bytes, d2h_bytes, h2d_transfers, d2h_transfers)`.
pub fn transfer_totals() -> (u64, u64, u64, u64) {
    (
        H2D_BYTES.load(Ordering::Relaxed),
        D2H_BYTES.load(Ordering::Relaxed),
        H2D_COUNT.load(Ordering::Relaxed),
        D2H_COUNT.load(Ordering::Relaxed),
    )
}

/// Reset the global transfer counters (benchmark harness use).
pub fn reset_transfer_totals() {
    H2D_BYTES.store(0, Ordering::Relaxed);
    D2H_BYTES.store(0, Ordering::Relaxed);
    H2D_COUNT.store(0, Ordering::Relaxed);
    D2H_COUNT.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_push_and_aggregate() {
        let log = KernelLog::new();
        log.push_launch("k1", 100);
        log.push_launch("k1", 200);
        log.push_launch("k2", 50);
        assert_eq!(log.len(), 3);
        let agg = log.aggregate();
        assert_eq!(agg.len(), 2);
        let k1 = agg.iter().find(|s| s.name == "k1").unwrap();
        assert_eq!(k1.work_items, 300.0);
        assert_eq!(k1.launches, 2.0);
        let drained = log.drain();
        assert_eq!(drained.len(), 3);
        assert!(log.is_empty());
    }
}
