//! The profiling layer: regions, kernel hooks, transfer accounting, and
//! subscriber dispatch.
//!
//! This is the stack's analogue of the Kokkos Tools interface. It has
//! three ingredients:
//!
//! * **Named regions** — nested, `/`-joined paths maintained on a
//!   per-thread stack (`kokkosp_push_profile_region`). Open one with
//!   [`begin_region`], which returns an RAII [`RegionGuard`]; the region
//!   closes when the guard drops (or [`RegionGuard::finish`] is called
//!   to also read the elapsed wall time).
//! * **Kernel hooks and logs** — every dispatch in [`crate::exec`]
//!   fires [`note_kernel_launch`] (`kokkosp_begin_parallel_for`), and
//!   instrumented kernels push full [`KernelStats`] records into the
//!   per-device [`KernelLog`], which tags each record with the region
//!   path active at record time.
//! * **Transfers** — [`crate::DualView`] synchronisation reports
//!   host↔device copies ([`note_h2d_labeled`]/[`note_d2h_labeled`]),
//!   tallied in global counters (`kokkosp_begin_deep_copy`).
//!
//! All three event classes are mirrored to any registered
//! [`ProfileSubscriber`]s (see [`lkk_gpusim::subscriber`]) so the cost
//! model, the text reports, and the `perf-smoke` regression harness all
//! consume one event stream.

use lkk_gpusim::{KernelStats, ProfileSubscriber, TransferDir};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------
// Subscriber registry
// ---------------------------------------------------------------------

/// Handle returned by [`register_subscriber`]; pass to
/// [`unregister_subscriber`] to detach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberId(u64);

static SUBSCRIBERS: Mutex<Vec<(u64, Arc<dyn ProfileSubscriber>)>> = Mutex::new(Vec::new());
static NEXT_SUBSCRIBER_ID: AtomicU64 = AtomicU64::new(1);
/// Mirror of `SUBSCRIBERS.len()` so the hot dispatch path can skip the
/// lock entirely when nobody is listening (the common case).
static SUBSCRIBER_COUNT: AtomicUsize = AtomicUsize::new(0);

/// Attach a subscriber to the global event stream. Events fire from
/// whatever thread dispatches kernels, so the subscriber must do its
/// own locking (see [`lkk_gpusim::StatsAccumulator`]).
pub fn register_subscriber(sub: Arc<dyn ProfileSubscriber>) -> SubscriberId {
    let id = NEXT_SUBSCRIBER_ID.fetch_add(1, Ordering::Relaxed);
    let mut subs = SUBSCRIBERS.lock().unwrap();
    subs.push((id, sub));
    SUBSCRIBER_COUNT.store(subs.len(), Ordering::Release);
    SubscriberId(id)
}

/// Detach a subscriber. Unknown ids are ignored.
pub fn unregister_subscriber(id: SubscriberId) {
    let mut subs = SUBSCRIBERS.lock().unwrap();
    subs.retain(|(sid, _)| *sid != id.0);
    SUBSCRIBER_COUNT.store(subs.len(), Ordering::Release);
}

/// Is anyone listening? Callers that must *build* an event payload
/// (format a label, walk a table) should gate that work on this — the
/// hooks themselves already early-out, but only after the payload has
/// been constructed.
pub fn has_subscribers() -> bool {
    SUBSCRIBER_COUNT.load(Ordering::Acquire) > 0
}

/// Run `f` on every registered subscriber. Arcs are cloned out of the
/// registry first so subscriber callbacks never run under the registry
/// lock (a subscriber may itself trigger profiled work).
fn for_each_subscriber(f: impl Fn(&dyn ProfileSubscriber)) {
    if SUBSCRIBER_COUNT.load(Ordering::Acquire) == 0 {
        return;
    }
    let subs: Vec<Arc<dyn ProfileSubscriber>> = {
        let guard = SUBSCRIBERS.lock().unwrap();
        guard.iter().map(|(_, s)| Arc::clone(s)).collect()
    };
    for s in &subs {
        f(s.as_ref());
    }
}

// ---------------------------------------------------------------------
// Regions
// ---------------------------------------------------------------------

thread_local! {
    /// Stack of open region names on this thread. Kernels are tagged
    /// with the `/`-joined path at dispatch time; dispatch always
    /// happens on the thread that owns the enclosing regions, so a
    /// thread-local stack is exact.
    static REGION_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// The `/`-joined path of open regions on this thread (`""` if none).
pub fn current_region() -> String {
    REGION_STACK.with(|s| s.borrow().join("/"))
}

/// Current region nesting depth on this thread.
pub fn region_depth() -> usize {
    REGION_STACK.with(|s| s.borrow().len())
}

/// RAII guard for a named profiling region. Dropping it pops the region
/// and fires `region_end`; [`RegionGuard::finish`] does the same but
/// returns the elapsed wall time, which is how `lkk-core` implements
/// its phase timers.
///
/// ```
/// use lkk_kokkos::profile;
/// let step = profile::begin_region("step");
/// {
///     let _pair = profile::begin_region("pair");
///     assert_eq!(profile::current_region(), "step/pair");
/// }
/// assert_eq!(profile::current_region(), "step");
/// let seconds = step.finish();
/// assert!(seconds >= 0.0);
/// ```
#[must_use = "dropping the guard immediately closes the region"]
pub struct RegionGuard {
    path: String,
    depth: usize,
    start: Instant,
    open: bool,
}

/// Open a nested named region on this thread.
///
/// `name` must not contain `/` (it would corrupt the path encoding);
/// nesting is expressed by holding multiple guards, not by composite
/// names.
// Audited wall-clock site: lint_allow.toml LKK001 (advisory span time).
#[allow(clippy::disallowed_methods)]
pub fn begin_region(name: impl Into<String>) -> RegionGuard {
    let name = name.into();
    debug_assert!(!name.contains('/'), "region name {name:?} contains '/'");
    let (path, depth) = REGION_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.push(name);
        (stack.join("/"), stack.len())
    });
    for_each_subscriber(|sub| sub.region_begin(&path, depth));
    RegionGuard {
        path,
        depth,
        start: Instant::now(),
        open: true,
    }
}

impl RegionGuard {
    /// The full `/`-joined path of this region.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Close the region now and return the elapsed wall time in
    /// seconds. Wall time is advisory — it never enters the
    /// deterministic counter set.
    pub fn finish(mut self) -> f64 {
        self.close()
    }

    fn close(&mut self) -> f64 {
        if !self.open {
            return 0.0;
        }
        self.open = false;
        let seconds = self.start.elapsed().as_secs_f64();
        REGION_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Regions normally close innermost-first (guards are
            // lexically scoped), but drops can reorder — a panic
            // unwinding past sibling guards, or guards stored in a
            // struct dropping in field order. Asserting here would turn
            // an unwind into an abort, so recover instead: truncate
            // every region at or above this guard's depth (the inner
            // guards' own closes then find their slot already gone and
            // no-op), and treat a stack that is already shorter as
            // closed-by-an-outer-guard.
            if stack.len() >= self.depth {
                stack.truncate(self.depth - 1);
            }
        });
        for_each_subscriber(|sub| sub.region_end(&self.path, self.depth, seconds));
        seconds
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        self.close();
    }
}

// ---------------------------------------------------------------------
// Kernel hooks
// ---------------------------------------------------------------------

/// Kernel-dispatch hook: fired by every [`crate::Space`] dispatch (all
/// spaces, host included), before the kernel body runs — the analogue
/// of `kokkosp_begin_parallel_for`. Forwards to subscribers with the
/// dispatching thread's region path.
pub fn note_kernel_launch(name: &str, work_items: usize) {
    if SUBSCRIBER_COUNT.load(Ordering::Acquire) == 0 {
        return;
    }
    let region = current_region();
    for_each_subscriber(|sub| sub.kernel_launch(name, &region, work_items));
}

/// Fire a point-in-time event (no duration) to subscribers, tagged with
/// the calling thread's region path. `value` is an event-specific
/// payload (pass 0.0 when there is nothing to attach).
pub fn note_instant(name: &str, value: f64) {
    if SUBSCRIBER_COUNT.load(Ordering::Acquire) == 0 {
        return;
    }
    let region = current_region();
    for_each_subscriber(|sub| sub.instant(name, &region, value));
}

/// Fire a counter sample (`name` = `value` as of now) to subscribers,
/// tagged with the calling thread's region path. Timeline consumers
/// render these as counter tracks; see
/// [`lkk_gpusim::ProfileSubscriber::counter`].
pub fn note_counter(name: &str, value: f64) {
    if SUBSCRIBER_COUNT.load(Ordering::Acquire) == 0 {
        return;
    }
    let region = current_region();
    for_each_subscriber(|sub| sub.counter(name, &region, value));
}

/// Fire a cross-lane flow *begin* to subscribers: the calling thread
/// just emitted the message identified by `id` (see
/// `lkk_core::comm::fault::flow_id`). `name` is the phase tag
/// (`"forward"`, `"border"`, ...). Tagged with the calling thread's
/// region path so timeline consumers can bind the flow to the
/// enclosing span.
pub fn note_flow_begin(name: &str, id: u64) {
    if SUBSCRIBER_COUNT.load(Ordering::Acquire) == 0 {
        return;
    }
    let region = current_region();
    for_each_subscriber(|sub| sub.flow_begin(name, &region, id));
}

/// Fire the matching cross-lane flow *end*: the calling thread just
/// accepted the message identified by `id`.
pub fn note_flow_end(name: &str, id: u64) {
    if SUBSCRIBER_COUNT.load(Ordering::Acquire) == 0 {
        return;
    }
    let region = current_region();
    for_each_subscriber(|sub| sub.flow_end(name, &region, id));
}

/// A log of kernel launches on a simulated device.
#[derive(Debug, Default)]
pub struct KernelLog {
    records: Mutex<Vec<KernelStats>>,
}

impl KernelLog {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record the event counts of one kernel execution. The record is
    /// tagged with the dispatching thread's current region path (unless
    /// the caller already set one) and mirrored to subscribers.
    pub fn push(&self, mut stats: KernelStats) {
        if stats.region.is_empty() {
            stats.region = current_region();
        }
        for_each_subscriber(|sub| sub.kernel_stats(&stats));
        self.records.lock().unwrap().push(stats);
    }

    /// Record a bare launch with only a name and work-item count (used
    /// by generic `parallel_for` dispatches that carry no cost model of
    /// their own; they still pay launch latency).
    pub fn push_launch(&self, name: &str, work_items: usize) {
        let mut s = KernelStats::new(name);
        s.work_items = work_items as f64;
        self.push(s);
    }

    /// Drain all records.
    pub fn drain(&self) -> Vec<KernelStats> {
        std::mem::take(&mut *self.records.lock().unwrap())
    }

    /// Total launches currently logged.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge all records with the same kernel name, summing counts.
    /// Returns (name-ordered) aggregated stats.
    pub fn aggregate(&self) -> Vec<KernelStats> {
        let records = self.records.lock().unwrap();
        let mut by_name: Vec<KernelStats> = Vec::new();
        for r in records.iter() {
            if let Some(existing) = by_name.iter_mut().find(|s| s.name == r.name) {
                existing.accumulate(r);
            } else {
                by_name.push(r.clone());
            }
        }
        by_name
    }
}

// ---------------------------------------------------------------------
// Transfers
// ---------------------------------------------------------------------

static H2D_BYTES: AtomicU64 = AtomicU64::new(0);
static D2H_BYTES: AtomicU64 = AtomicU64::new(0);
static H2D_COUNT: AtomicU64 = AtomicU64::new(0);
static D2H_COUNT: AtomicU64 = AtomicU64::new(0);

/// Record a host→device transfer with the View's label (the analogue
/// of `kokkosp_begin_deep_copy`, which names both views).
pub fn note_h2d_labeled(label: &str, bytes: usize) {
    H2D_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    H2D_COUNT.fetch_add(1, Ordering::Relaxed);
    for_each_subscriber(|sub| sub.transfer(TransferDir::HostToDevice, label, bytes as u64));
}

/// Record a device→host transfer with the View's label.
pub fn note_d2h_labeled(label: &str, bytes: usize) {
    D2H_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    D2H_COUNT.fetch_add(1, Ordering::Relaxed);
    for_each_subscriber(|sub| sub.transfer(TransferDir::DeviceToHost, label, bytes as u64));
}

/// Record an unlabeled host→device transfer.
pub fn note_h2d(bytes: usize) {
    note_h2d_labeled("", bytes);
}

/// Record an unlabeled device→host transfer.
pub fn note_d2h(bytes: usize) {
    note_d2h_labeled("", bytes);
}

/// Snapshot of global transfer counters:
/// `(h2d_bytes, d2h_bytes, h2d_transfers, d2h_transfers)`.
pub fn transfer_totals() -> (u64, u64, u64, u64) {
    (
        H2D_BYTES.load(Ordering::Relaxed),
        D2H_BYTES.load(Ordering::Relaxed),
        H2D_COUNT.load(Ordering::Relaxed),
        D2H_COUNT.load(Ordering::Relaxed),
    )
}

/// Reset the global transfer counters (benchmark harness use).
pub fn reset_transfer_totals() {
    H2D_BYTES.store(0, Ordering::Relaxed);
    D2H_BYTES.store(0, Ordering::Relaxed);
    H2D_COUNT.store(0, Ordering::Relaxed);
    D2H_COUNT.store(0, Ordering::Relaxed);
}

/// Serializes tests that reset/assert the global transfer counters
/// against tests that merely bump them (the test harness runs tests
/// concurrently in one process).
#[cfg(test)]
pub(crate) static TRANSFER_TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use lkk_gpusim::StatsAccumulator;

    #[test]
    fn log_push_and_aggregate() {
        let log = KernelLog::new();
        log.push_launch("k1", 100);
        log.push_launch("k1", 200);
        log.push_launch("k2", 50);
        assert_eq!(log.len(), 3);
        let agg = log.aggregate();
        assert_eq!(agg.len(), 2);
        let k1 = agg.iter().find(|s| s.name == "k1").unwrap();
        assert_eq!(k1.work_items, 300.0);
        assert_eq!(k1.launches, 2.0);
        let drained = log.drain();
        assert_eq!(drained.len(), 3);
        assert!(log.is_empty());
    }

    #[test]
    fn regions_nest_and_unwind() {
        assert_eq!(current_region(), "");
        let outer = begin_region("step");
        assert_eq!(current_region(), "step");
        assert_eq!(region_depth(), 1);
        {
            let _inner = begin_region("pair");
            assert_eq!(current_region(), "step/pair");
            assert_eq!(region_depth(), 2);
        }
        // Inner guard dropped: back to the outer region.
        assert_eq!(current_region(), "step");
        let secs = outer.finish();
        assert!(secs >= 0.0);
        assert_eq!(current_region(), "");
        assert_eq!(region_depth(), 0);
    }

    #[test]
    fn kernel_records_are_region_tagged() {
        let log = KernelLog::new();
        log.push_launch("outside", 1);
        {
            let _r = begin_region("force");
            log.push_launch("inside", 1);
            // A caller-set region is preserved.
            let mut pre = KernelStats::new("preset");
            pre.region = "custom".into();
            log.push(pre);
        }
        let recs = log.drain();
        assert_eq!(recs[0].region, "");
        assert_eq!(recs[1].region, "force");
        assert_eq!(recs[2].region, "custom");
    }

    #[test]
    fn subscriber_sees_regions_kernels_and_transfers() {
        let _serialize = TRANSFER_TEST_LOCK.lock().unwrap();
        let acc = Arc::new(StatsAccumulator::new());
        let id = register_subscriber(acc.clone());
        {
            let _r = begin_region("sub-test-step");
            note_kernel_launch("sub-test-kernel", 42);
            let log = KernelLog::new();
            let mut s = KernelStats::new("sub-test-kernel");
            s.flops = 7.0;
            log.push(s);
            note_h2d_labeled("sub-test-view", 64);
        }
        unregister_subscriber(id);
        // Events after unregistration are not seen.
        note_h2d_labeled("sub-test-view", 64);

        let snap = acc.snapshot();
        assert_eq!(snap.regions["sub-test-step"], 1);
        assert_eq!(snap.launches["sub-test-kernel"], 1);
        let k = snap
            .kernels
            .iter()
            .find(|k| k.name == "sub-test-kernel")
            .unwrap();
        assert_eq!(k.region, "sub-test-step");
        assert_eq!(k.flops, 7.0);
        // Transfer totals may include traffic from concurrently running
        // tests (the counter is global), but this accumulator only saw
        // one labeled transfer while registered.
        assert_eq!(snap.h2d.count, 1);
        assert_eq!(snap.h2d.bytes, 64);
    }

    #[test]
    fn panic_inside_region_recovers_the_stack() {
        // A panic while regions are open must unwind cleanly (no abort
        // from the old out-of-order assert) and leave the thread's
        // region stack exactly where it was before the panicked scope.
        let outer = begin_region("panic-outer");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _inner = begin_region("panic-inner");
            let _deeper = begin_region("panic-deeper");
            panic!("boom");
        }));
        assert!(result.is_err());
        assert_eq!(current_region(), "panic-outer");
        // The layer still works after recovery.
        {
            let _next = begin_region("panic-after");
            assert_eq!(current_region(), "panic-outer/panic-after");
        }
        drop(outer);
        assert_eq!(region_depth(), 0);
    }

    #[test]
    fn out_of_order_close_truncates_instead_of_leaking() {
        // Dropping an outer guard before an inner one (possible when
        // guards are stored in structs) closes everything at or above
        // the outer depth; the inner guard's own close then no-ops.
        let outer = begin_region("ooo-outer");
        let inner = begin_region("ooo-inner");
        drop(outer);
        assert_eq!(region_depth(), 0);
        drop(inner);
        assert_eq!(region_depth(), 0);
        assert_eq!(current_region(), "");
    }

    #[test]
    fn instants_and_counters_reach_subscribers_with_region() {
        use std::sync::Mutex as StdMutex;
        #[derive(Default)]
        struct Sink {
            events: StdMutex<Vec<(String, String, String, f64)>>,
        }
        impl ProfileSubscriber for Sink {
            fn instant(&self, name: &str, region: &str, value: f64) {
                self.events
                    .lock()
                    .unwrap()
                    .push(("i".into(), name.into(), region.into(), value));
            }
            fn counter(&self, name: &str, region: &str, value: f64) {
                self.events
                    .lock()
                    .unwrap()
                    .push(("c".into(), name.into(), region.into(), value));
            }
        }
        let sink = Arc::new(Sink::default());
        let id = register_subscriber(sink.clone());
        {
            let _r = begin_region("evt-test");
            note_instant("tick", 7.0);
            note_counter("bytes", 128.0);
        }
        unregister_subscriber(id);
        note_instant("tick", 8.0); // after detach: unseen
        let events = sink.events.lock().unwrap();
        assert!(events.contains(&("i".into(), "tick".into(), "evt-test".into(), 7.0)));
        assert!(events.contains(&("c".into(), "bytes".into(), "evt-test".into(), 128.0)));
        assert!(!events.iter().any(|e| e.3 == 8.0));
    }

    #[test]
    fn flows_reach_subscribers_with_region() {
        use std::sync::Mutex as StdMutex;
        #[derive(Default)]
        struct Sink {
            flows: StdMutex<Vec<(String, String, String, u64)>>,
        }
        impl ProfileSubscriber for Sink {
            fn flow_begin(&self, name: &str, region: &str, id: u64) {
                self.flows
                    .lock()
                    .unwrap()
                    .push(("s".into(), name.into(), region.into(), id));
            }
            fn flow_end(&self, name: &str, region: &str, id: u64) {
                self.flows
                    .lock()
                    .unwrap()
                    .push(("f".into(), name.into(), region.into(), id));
            }
        }
        let sink = Arc::new(Sink::default());
        let id = register_subscriber(sink.clone());
        {
            let _r = begin_region("flow-test");
            note_flow_begin("forward", 0xabcd);
            note_flow_end("forward", 0xabcd);
        }
        unregister_subscriber(id);
        note_flow_begin("forward", 0xffff); // after detach: unseen
        let flows = sink.flows.lock().unwrap();
        assert!(flows.contains(&("s".into(), "forward".into(), "flow-test".into(), 0xabcd)));
        assert!(flows.contains(&("f".into(), "forward".into(), "flow-test".into(), 0xabcd)));
        assert!(!flows.iter().any(|f| f.3 == 0xffff));
    }

    #[test]
    fn transfer_counters_accumulate_and_reset() {
        let _serialize = TRANSFER_TEST_LOCK.lock().unwrap();
        reset_transfer_totals();
        note_h2d(100);
        note_h2d(28);
        note_d2h(8);
        assert_eq!(transfer_totals(), (128, 8, 2, 1));
        reset_transfer_totals();
        assert_eq!(transfer_totals(), (0, 0, 0, 0));
    }
}
