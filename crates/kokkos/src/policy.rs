//! Execution policies: the shapes of parallel iteration spaces.
//!
//! `RangePolicy` is implicit (a plain `n`); this module holds the two
//! richer policies of §3.3: [`MDRangePolicy`] (multi-dimensional,
//! tiled) and [`TeamPolicy`] (hierarchical league/team/vector with
//! scratch memory).

/// A tiled two-dimensional iteration space.
#[derive(Debug, Clone, Copy)]
pub struct MDRangePolicy {
    pub n0: usize,
    pub n1: usize,
    pub tile0: usize,
    pub tile1: usize,
}

impl MDRangePolicy {
    /// Default tiling: 32×32.
    pub fn new(n0: usize, n1: usize) -> Self {
        MDRangePolicy {
            n0,
            n1,
            tile0: 32,
            tile1: 32,
        }
    }

    pub fn with_tiles(mut self, tile0: usize, tile1: usize) -> Self {
        self.tile0 = tile0;
        self.tile1 = tile1;
        self
    }
}

/// A hierarchical iteration space: `league_size` teams of `team_size`
/// threads, each thread with `vector_len` vector lanes, and
/// `scratch_bytes` of software-managed scratch per team (§3.3: scratch
/// "on GPUs can be mapped to software-managed caches such as NVIDIA's
/// shared memory").
#[derive(Debug, Clone, Copy)]
pub struct TeamPolicy {
    pub league_size: usize,
    pub team_size: usize,
    pub vector_len: usize,
    pub scratch_bytes: usize,
}

impl TeamPolicy {
    pub fn new(league_size: usize, team_size: usize) -> Self {
        TeamPolicy {
            league_size,
            team_size,
            vector_len: 1,
            scratch_bytes: 0,
        }
    }

    pub fn with_vector(mut self, vector_len: usize) -> Self {
        self.vector_len = vector_len;
        self
    }

    pub fn with_scratch(mut self, bytes: usize) -> Self {
        self.scratch_bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let p = MDRangePolicy::new(10, 20).with_tiles(4, 5);
        assert_eq!((p.n0, p.n1, p.tile0, p.tile1), (10, 20, 4, 5));
        let t = TeamPolicy::new(100, 64).with_vector(8).with_scratch(1024);
        assert_eq!(t.league_size, 100);
        assert_eq!(t.team_size, 64);
        assert_eq!(t.vector_len, 8);
        assert_eq!(t.scratch_bytes, 1024);
    }
}
