//! Multi-dimensional arrays with run-time data layout.
//!
//! [`View<T, R>`] is the Rust analogue of `Kokkos::View`: a dense
//! `R`-dimensional array whose *layout* — which index is
//! fastest-varying in memory — is chosen at construction.
//!
//! * [`Layout::Right`] (row-major, last index fastest) is the natural
//!   host layout: one atom's neighbor list is contiguous, enabling
//!   caching on CPUs.
//! * [`Layout::Left`] (column-major, first index fastest) interleaves
//!   consecutive atoms' entries, giving coalesced accesses on GPUs.
//!
//! §4.1 of the paper: "the neighbor list for each atom must be
//! contiguous in memory to enable caching [on CPUs], while the neighbor
//! lists of consecutive atoms must be interleaved to achieve performance
//! on GPU architectures. Using 2D Views ... achieves this data layout
//! adjustment by default."

use crate::exec::Space;

/// Memory layout of a [`View`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Row-major / C order: last index fastest. Host default.
    Right,
    /// Column-major / Fortran order: first index fastest. Device default.
    Left,
}

impl Layout {
    /// The default layout for an execution space, mirroring Kokkos'
    /// `ExecutionSpace::array_layout`.
    pub fn for_space(space: &Space) -> Layout {
        if space.is_device() {
            Layout::Left
        } else {
            Layout::Right
        }
    }
}

fn strides_for<const R: usize>(dims: [usize; R], layout: Layout) -> [usize; R] {
    let mut strides = [0usize; R];
    match layout {
        Layout::Right => {
            let mut s = 1;
            for k in (0..R).rev() {
                strides[k] = s;
                s *= dims[k].max(1);
            }
        }
        Layout::Left => {
            let mut s = 1;
            for k in 0..R {
                strides[k] = s;
                s *= dims[k].max(1);
            }
        }
    }
    strides
}

/// A dense `R`-dimensional array of `T` with run-time layout.
///
/// ```
/// use lkk_kokkos::{Layout, View2};
/// let mut neigh = View2::<u32>::with_layout("neighbors", [4, 8], Layout::Left);
/// neigh.set([2, 3], 7);
/// assert_eq!(neigh.at([2, 3]), 7);
/// // LayoutLeft interleaves rows: element (2,3) sits at column-major
/// // offset 3*4 + 2.
/// assert_eq!(neigh.as_slice()[3 * 4 + 2], 7);
/// ```
#[derive(Debug, Clone)]
pub struct View<T, const R: usize> {
    label: String,
    dims: [usize; R],
    strides: [usize; R],
    layout: Layout,
    data: Vec<T>,
}

/// Rank-1 view.
pub type View1<T> = View<T, 1>;
/// Rank-2 view.
pub type View2<T> = View<T, 2>;
/// Rank-3 view.
pub type View3<T> = View<T, 3>;

impl<T: Clone + Default, const R: usize> View<T, R> {
    /// Allocate a zero/default-initialized view in [`Layout::Right`].
    pub fn new(label: impl Into<String>, dims: [usize; R]) -> Self {
        Self::with_layout(label, dims, Layout::Right)
    }

    /// Allocate with an explicit layout.
    pub fn with_layout(label: impl Into<String>, dims: [usize; R], layout: Layout) -> Self {
        let len = dims.iter().product::<usize>();
        View {
            label: label.into(),
            dims,
            strides: strides_for(dims, layout),
            layout,
            data: vec![T::default(); len],
        }
    }

    /// Allocate with the layout preferred by `space` (§4.1's transparent
    /// layout adjustment).
    pub fn for_space(label: impl Into<String>, dims: [usize; R], space: &Space) -> Self {
        Self::with_layout(label, dims, Layout::for_space(space))
    }

    /// Resize, discarding contents (Kokkos `realloc`). Layout is kept.
    ///
    /// The backing `Vec`'s capacity is reused: any resize within
    /// previously reached capacity touches no allocator, which is what
    /// makes persistent neighbor/scatter buffers allocation-free in
    /// steady state (see `docs/performance.md`). Returns `true` when
    /// the resize had to grow the heap allocation (a pool miss),
    /// `false` when existing capacity was reused (a pool hit).
    pub fn realloc(&mut self, dims: [usize; R]) -> bool {
        let len = dims.iter().product::<usize>();
        self.dims = dims;
        self.strides = strides_for(dims, self.layout);
        let grew = len > self.data.capacity();
        self.data.clear();
        self.data.resize(len, T::default());
        grew
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: T) {
        for x in &mut self.data {
            *x = v.clone();
        }
    }
}

impl<T, const R: usize> View<T, R> {
    #[inline(always)]
    pub fn offset(&self, idx: [usize; R]) -> usize {
        debug_assert!(
            idx.iter().zip(&self.dims).all(|(i, d)| i < d),
            "view '{}' index {:?} out of bounds {:?}",
            self.label,
            idx,
            self.dims
        );
        let mut o = 0;
        for (ik, sk) in idx.iter().zip(&self.strides) {
            o += ik * sk;
        }
        o
    }

    #[inline(always)]
    pub fn get(&self, idx: [usize; R]) -> &T {
        &self.data[self.offset(idx)]
    }

    #[inline(always)]
    pub fn get_mut(&mut self, idx: [usize; R]) -> &mut T {
        let o = self.offset(idx);
        &mut self.data[o]
    }

    #[inline(always)]
    pub fn set(&mut self, idx: [usize; R], v: T) {
        let o = self.offset(idx);
        self.data[o] = v;
    }

    pub fn label(&self) -> &str {
        &self.label
    }

    pub fn dims(&self) -> [usize; R] {
        self.dims
    }

    pub fn extent(&self, k: usize) -> usize {
        self.dims[k]
    }

    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Stride of dimension `k` in elements (layout-dependent).
    #[inline(always)]
    pub fn stride(&self, k: usize) -> usize {
        self.strides[k]
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat backing storage (layout-ordered).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Size of the backing storage in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// A shared handle permitting concurrent writes to *disjoint*
    /// elements from a parallel kernel. Takes `&mut self`, so the
    /// borrow checker guarantees exclusivity for the handle's lifetime.
    pub fn par_write(&mut self) -> ParWrite<'_, T, R> {
        ParWrite {
            ptr: self.data.as_mut_ptr(),
            dims: self.dims,
            strides: self.strides,
            _life: std::marker::PhantomData,
        }
    }
}

impl<T: Copy, const R: usize> View<T, R> {
    /// Copy element-wise from a view of identical dimensions (layouts
    /// may differ; this performs the transpose). This is the "deep copy"
    /// used by [`crate::DualView`] host↔device synchronisation.
    pub fn copy_from(&mut self, src: &View<T, R>) {
        assert_eq!(self.dims, src.dims, "deep_copy dims mismatch");
        if self.layout == src.layout {
            self.data.copy_from_slice(&src.data);
        } else {
            // Different layouts: walk logical indices.
            let dims = self.dims;
            let total: usize = dims.iter().product();
            let mut idx = [0usize; R];
            for _ in 0..total {
                let o_dst = self.offset(idx);
                let o_src = src.offset(idx);
                self.data[o_dst] = src.data[o_src];
                // Increment logical index, last dim fastest.
                for k in (0..R).rev() {
                    idx[k] += 1;
                    if idx[k] < dims[k] {
                        break;
                    }
                    idx[k] = 0;
                }
            }
        }
    }

    #[inline(always)]
    pub fn at(&self, idx: [usize; R]) -> T {
        self.data[self.offset(idx)]
    }

    /// Unchecked read for hot loops.
    ///
    /// # Safety
    /// `idx` must be in bounds.
    #[inline(always)]
    pub unsafe fn uget(&self, idx: [usize; R]) -> T {
        let mut o = 0;
        for (ik, sk) in idx.iter().zip(&self.strides) {
            o += ik * sk;
        }
        *self.data.get_unchecked(o)
    }
}

impl<T> View<T, 2> {
    /// Whether each logical row `[i, :]` is one contiguous run of the
    /// backing storage. True exactly for [`Layout::Right`]; under
    /// [`Layout::Left`] rows are strided by `dims[0]`.
    #[inline(always)]
    pub fn rows_contiguous(&self) -> bool {
        self.layout == Layout::Right
    }

    /// Row `i` as a contiguous slice, or `None` under [`Layout::Left`].
    ///
    /// This is the flat-slice fast path: the caller bounds-checks once
    /// (the slice construction) and then iterates `&[T]` directly, so
    /// the per-element `offset()` math and bounds checks of
    /// [`View::at`] vanish from inner loops.
    #[inline(always)]
    pub fn try_row(&self, i: usize) -> Option<&[T]> {
        if self.layout != Layout::Right {
            return None;
        }
        debug_assert!(
            i < self.dims[0],
            "view '{}' row {} out of bounds",
            self.label,
            i
        );
        let w = self.dims[1];
        let start = i * w; // Layout::Right strides are [dims[1], 1].
        Some(&self.data[start..start + w])
    }

    /// Row `i` as a contiguous slice; panics under [`Layout::Left`]
    /// (use [`View::try_row`] or [`View::get3`] for layout-generic code).
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        self.try_row(i).unwrap_or_else(|| {
            panic!(
                "view '{}': row() requires Layout::Right (rows are strided under Layout::Left)",
                self.label
            )
        })
    }
}

impl<T: Copy> View<T, 2> {
    /// Gather row `i` of an `[n, 3]` view with a single bounds check,
    /// valid for both layouts (contiguous under [`Layout::Right`],
    /// strided by `n` under [`Layout::Left`]). The hot-loop accessor
    /// for position/force triples: one check, three unchecked reads.
    #[inline(always)]
    pub fn get3(&self, i: usize) -> [T; 3] {
        debug_assert_eq!(self.dims[1], 3, "view '{}': get3 needs [n, 3]", self.label);
        let s1 = self.strides[1];
        let o = i * self.strides[0];
        let last = o + 2 * s1;
        // For [n, 3] in either layout, `last < len` iff `i < n`.
        assert!(
            last < self.data.len(),
            "view '{}': get3({}) out of bounds {:?}",
            self.label,
            i,
            self.dims
        );
        unsafe {
            [
                *self.data.get_unchecked(o),
                *self.data.get_unchecked(o + s1),
                *self.data.get_unchecked(last),
            ]
        }
    }
}

impl<T, const R: usize> std::ops::Index<[usize; R]> for View<T, R> {
    type Output = T;
    #[inline(always)]
    fn index(&self, idx: [usize; R]) -> &T {
        self.get(idx)
    }
}

impl<T, const R: usize> std::ops::IndexMut<[usize; R]> for View<T, R> {
    #[inline(always)]
    fn index_mut(&mut self, idx: [usize; R]) -> &mut T {
        self.get_mut(idx)
    }
}

/// A `Send + Sync` write handle into a [`View`] for use inside parallel
/// kernels where each work item writes a *disjoint* set of elements
/// (e.g. a force kernel with one work item per atom writing only that
/// atom's row).
///
/// Reads are safe; writes are `unsafe` with the documented contract.
/// For *conflicting* writes use [`crate::ScatterView`] instead.
pub struct ParWrite<'a, T, const R: usize> {
    ptr: *mut T,
    dims: [usize; R],
    strides: [usize; R],
    _life: std::marker::PhantomData<&'a mut T>,
}

unsafe impl<T: Send, const R: usize> Send for ParWrite<'_, T, R> {}
unsafe impl<T: Send, const R: usize> Sync for ParWrite<'_, T, R> {}

impl<T: Copy, const R: usize> ParWrite<'_, T, R> {
    #[inline(always)]
    fn offset(&self, idx: [usize; R]) -> usize {
        debug_assert!(idx.iter().zip(&self.dims).all(|(i, d)| i < d));
        let mut o = 0;
        for (ik, sk) in idx.iter().zip(&self.strides) {
            o += ik * sk;
        }
        o
    }

    #[inline(always)]
    pub fn get(&self, idx: [usize; R]) -> T {
        unsafe { *self.ptr.add(self.offset(idx)) }
    }

    /// Write an element.
    ///
    /// # Safety
    /// No other thread may read or write this element concurrently.
    #[inline(always)]
    pub unsafe fn write(&self, idx: [usize; R], v: T) {
        *self.ptr.add(self.offset(idx)) = v;
    }
}

impl<const R: usize> ParWrite<'_, f64, R> {
    /// Accumulate into an element.
    ///
    /// # Safety
    /// No other thread may read or write this element concurrently.
    #[inline(always)]
    pub unsafe fn add(&self, idx: [usize; R], v: f64) {
        let p = self.ptr.add(self.offset(idx));
        *p += v;
    }

    /// Thread-atomic accumulation (safe with respect to data races on
    /// the element, at CAS-loop cost).
    #[inline(always)]
    pub fn atomic_add(&self, idx: [usize; R], v: f64) {
        unsafe { crate::atomic::atomic_add_f64(self.ptr.add(self.offset(idx)), v) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_right_is_row_major() {
        let mut v = View2::<f64>::new("a", [2, 3]);
        v.set([0, 0], 1.0);
        v.set([0, 2], 3.0);
        v.set([1, 0], 4.0);
        assert_eq!(v.as_slice(), &[1.0, 0.0, 3.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn layout_left_is_col_major() {
        let mut v = View2::<f64>::with_layout("a", [2, 3], Layout::Left);
        v.set([0, 0], 1.0);
        v.set([0, 2], 3.0);
        v.set([1, 0], 4.0);
        assert_eq!(v.as_slice(), &[1.0, 4.0, 0.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn copy_across_layouts_transposes() {
        let mut right = View2::<f64>::new("r", [3, 4]);
        for i in 0..3 {
            for j in 0..4 {
                right.set([i, j], (10 * i + j) as f64);
            }
        }
        let mut left = View2::<f64>::with_layout("l", [3, 4], Layout::Left);
        left.copy_from(&right);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(left.at([i, j]), (10 * i + j) as f64);
            }
        }
        // And back.
        let mut right2 = View2::<f64>::new("r2", [3, 4]);
        right2.copy_from(&left);
        assert_eq!(right2.as_slice(), right.as_slice());
    }

    #[test]
    fn rank3_indexing_round_trip() {
        let mut v = View3::<i64>::new("t", [2, 3, 4]);
        let mut c = 0;
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    v.set([i, j, k], c);
                    c += 1;
                }
            }
        }
        let mut c = 0;
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(v.at([i, j, k]), c);
                    c += 1;
                }
            }
        }
    }

    #[test]
    fn realloc_keeps_layout_and_zeroes() {
        let mut v = View1::<f64>::with_layout("x", [4], Layout::Left);
        v.fill(7.0);
        v.realloc([8]);
        assert_eq!(v.len(), 8);
        assert_eq!(v.layout(), Layout::Left);
        assert!(v.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn par_write_disjoint_rows() {
        use rayon::prelude::*;
        let mut f = View2::<f64>::new("f", [100, 3]);
        {
            let w = f.par_write();
            (0..100usize).into_par_iter().for_each(|i| unsafe {
                for k in 0..3 {
                    w.write([i, k], i as f64 + k as f64);
                }
            });
        }
        for i in 0..100 {
            for k in 0..3 {
                assert_eq!(f.at([i, k]), (i + k) as f64);
            }
        }
    }

    #[test]
    fn par_write_atomic_add_conflicting() {
        use rayon::prelude::*;
        let mut f = View1::<f64>::new("f", [4]);
        {
            let w = f.par_write();
            (0..4000usize).into_par_iter().for_each(|i| {
                w.atomic_add([i % 4], 1.0);
            });
        }
        for i in 0..4 {
            assert_eq!(f.at([i]), 1000.0);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_checked_in_debug() {
        let v = View1::<f64>::new("x", [3]);
        let _ = v.at([3]);
    }

    #[test]
    fn realloc_reports_capacity_reuse() {
        let mut v = View2::<u32>::with_layout("n", [8, 16], Layout::Left);
        // Shrinking and re-growing within reached capacity is a hit.
        assert!(!v.realloc([4, 16]), "shrink must reuse capacity");
        assert!(
            !v.realloc([8, 16]),
            "regrow to old size must reuse capacity"
        );
        // Growing beyond every previous size must report a fresh alloc.
        assert!(v.realloc([8, 64]), "growth past capacity must report miss");
        assert!(!v.realloc([8, 64]), "steady state must reuse capacity");
    }

    #[test]
    fn row_is_contiguous_only_for_layout_right() {
        let mut r = View2::<u32>::new("r", [3, 4]);
        for i in 0..3 {
            for j in 0..4 {
                r.set([i, j], (10 * i + j) as u32);
            }
        }
        assert!(r.rows_contiguous());
        assert_eq!(r.row(1), &[10, 11, 12, 13]);
        assert_eq!(r.try_row(2), Some(&[20u32, 21, 22, 23][..]));

        let mut l = View2::<u32>::with_layout("l", [3, 4], Layout::Left);
        l.copy_from(&r);
        assert!(!l.rows_contiguous());
        assert_eq!(l.try_row(1), None);
    }

    #[test]
    #[should_panic]
    fn row_panics_for_layout_left() {
        let l = View2::<u32>::with_layout("l", [3, 4], Layout::Left);
        let _ = l.row(0);
    }

    #[test]
    fn get3_matches_at_for_both_layouts() {
        for layout in [Layout::Right, Layout::Left] {
            let mut v = View2::<f64>::with_layout("x", [5, 3], layout);
            for i in 0..5 {
                for k in 0..3 {
                    v.set([i, k], (100 * i + k) as f64);
                }
            }
            for i in 0..5 {
                let [a, b, c] = v.get3(i);
                assert_eq!([a, b, c], [v.at([i, 0]), v.at([i, 1]), v.at([i, 2])]);
            }
        }
    }

    #[test]
    #[should_panic]
    fn get3_bounds_checked_in_release() {
        let v = View2::<f64>::with_layout("x", [4, 3], Layout::Left);
        let _ = v.get3(4);
    }

    #[test]
    fn bytes_accounting() {
        let v = View2::<f64>::new("x", [10, 3]);
        assert_eq!(v.bytes(), 240);
    }
}
