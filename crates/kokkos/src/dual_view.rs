//! `DualView`: paired host/device storage with modify/sync tracking.
//!
//! §3.2 of the paper: "The Kokkos variants of styles in LAMMPS
//! generally contain host and device variants of data encapsulated in a
//! Kokkos::DualView... it has functionality to keep track of when data
//! was modified, and thus when data has to be synced... simply calling
//! sync inside a LAMMPS style when it needs to access a data field will
//! only incur the overhead of actual memory transfer between host and
//! device if the data was last modified in the other (non-accessible)
//! memory space. Thus, no global knowledge of the required data
//! transfer patterns is necessary."
//!
//! The device mirror is allocated lazily on first device access, so "if
//! LAMMPS is configured for a pure host build, DualView's
//! synchronization mechanisms effectively become inactive" — a
//! host-only simulation never allocates or copies device storage.
//!
//! Transfer volumes are reported to [`crate::profile`] so the
//! offload-per-step ablation can account for PCIe/NVLink traffic.

use crate::exec::Space;
use crate::profile;
use crate::view::{Layout, View};

/// Which mirror was modified most recently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SyncState {
    InSync,
    HostModified,
    DeviceModified,
}

/// A host/device pair of views of identical logical shape. The host
/// mirror uses [`Layout::Right`], the device mirror [`Layout::Left`].
///
/// ```
/// use lkk_kokkos::DualView;
/// let mut x = DualView::<f64, 1>::new("x", [3]);
/// x.h_view_mut().set([0], 1.5);   // marks host modified
/// x.sync_device();                // one H2D copy
/// assert_eq!(x.d_view().at([0]), 1.5);
/// x.sync_device();                // no-op: nothing modified since
/// ```
#[derive(Debug)]
pub struct DualView<T: Copy + Clone + Default, const R: usize> {
    host: View<T, R>,
    device: Option<View<T, R>>,
    state: SyncState,
    label: String,
}

impl<T: Copy + Clone + Default, const R: usize> DualView<T, R> {
    pub fn new(label: impl Into<String>, dims: [usize; R]) -> Self {
        let label = label.into();
        DualView {
            host: View::with_layout(label.clone(), dims, Layout::Right),
            device: None,
            state: SyncState::InSync,
            label,
        }
    }

    pub fn label(&self) -> &str {
        &self.label
    }

    pub fn dims(&self) -> [usize; R] {
        self.host.dims()
    }

    /// Resize both mirrors, discarding contents and clearing flags.
    pub fn realloc(&mut self, dims: [usize; R]) {
        self.host.realloc(dims);
        if let Some(d) = &mut self.device {
            d.realloc(dims);
        }
        self.state = SyncState::InSync;
    }

    /// Read-only host view. Callers must `sync_host()` first if the
    /// device may have modified the data.
    pub fn h_view(&self) -> &View<T, R> {
        &self.host
    }

    /// Mutable host view + mark host modified (shorthand for the Kokkos
    /// `modify<HostSpace>()` discipline).
    pub fn h_view_mut(&mut self) -> &mut View<T, R> {
        self.state = SyncState::HostModified;
        &mut self.host
    }

    /// Read-only device view. Callers must `sync_device()` first.
    /// Panics if the device mirror has never been materialized.
    pub fn d_view(&self) -> &View<T, R> {
        self.device
            .as_ref()
            .expect("device mirror not materialized; call sync_device() first")
    }

    /// Mutable device view + mark device modified.
    pub fn d_view_mut(&mut self) -> &mut View<T, R> {
        self.ensure_device();
        self.state = SyncState::DeviceModified;
        self.device.as_mut().unwrap()
    }

    /// Has the device mirror been allocated? (False for pure-host runs.)
    pub fn device_materialized(&self) -> bool {
        self.device.is_some()
    }

    pub fn modify_host(&mut self) {
        self.state = SyncState::HostModified;
    }

    pub fn modify_device(&mut self) {
        self.ensure_device();
        self.state = SyncState::DeviceModified;
    }

    fn ensure_device(&mut self) {
        if self.device.is_none() {
            let mut d = View::with_layout(
                format!("{}_dev", self.label),
                self.host.dims(),
                Layout::Left,
            );
            d.copy_from(&self.host);
            self.device = Some(d);
        }
    }

    /// Make the device mirror current. Copies (and counts an H2D
    /// transfer) only if the host modified the data since the last sync.
    pub fn sync_device(&mut self) {
        self.ensure_device();
        if self.state == SyncState::HostModified {
            let d = self.device.as_mut().unwrap();
            d.copy_from(&self.host);
            profile::note_h2d_labeled(&self.label, self.host.bytes());
            self.state = SyncState::InSync;
        }
    }

    /// Make the host mirror current. Copies (and counts a D2H transfer)
    /// only if the device modified the data since the last sync.
    pub fn sync_host(&mut self) {
        if self.state == SyncState::DeviceModified {
            let d = self.device.as_ref().unwrap();
            self.host.copy_from(d);
            profile::note_d2h_labeled(&self.label, self.host.bytes());
            self.state = SyncState::InSync;
        }
    }

    /// Sync toward the memory space of `space` and return that view —
    /// the "call sync when you need the field" discipline of §3.2.
    pub fn sync_to(&mut self, space: &Space) {
        if space.is_device() {
            self.sync_device();
        } else {
            self.sync_host();
        }
    }

    /// The current view for `space` (after an appropriate sync).
    pub fn view_for(&self, space: &Space) -> &View<T, R> {
        if space.is_device() {
            self.d_view()
        } else {
            self.h_view()
        }
    }

    /// Mutable view for `space`, marking it modified.
    pub fn view_for_mut(&mut self, space: &Space) -> &mut View<T, R> {
        if space.is_device() {
            self.d_view_mut()
        } else {
            self.h_view_mut()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_host_use_never_allocates_device() {
        let mut dv = DualView::<f64, 1>::new("x", [100]);
        dv.h_view_mut().fill(3.0);
        dv.sync_host(); // no-op
        assert!(!dv.device_materialized());
        assert_eq!(dv.h_view().at([5]), 3.0);
    }

    #[test]
    fn host_to_device_round_trip() {
        let _serialize = profile::TRANSFER_TEST_LOCK.lock().unwrap();
        let mut dv = DualView::<f64, 2>::new("x", [4, 3]);
        for i in 0..4 {
            for k in 0..3 {
                dv.h_view_mut().set([i, k], (i * 3 + k) as f64);
            }
        }
        dv.sync_device();
        // Device mirror has Left layout but identical logical content.
        assert_eq!(dv.d_view().layout(), Layout::Left);
        assert_eq!(dv.d_view().at([2, 1]), 7.0);
        // Modify on device, sync back.
        dv.d_view_mut().set([2, 1], -1.0);
        dv.sync_host();
        assert_eq!(dv.h_view().at([2, 1]), -1.0);
    }

    #[test]
    fn sync_is_lazy() {
        let _serialize = profile::TRANSFER_TEST_LOCK.lock().unwrap();
        profile::reset_transfer_totals();
        let mut dv = DualView::<f64, 1>::new("x", [1000]);
        dv.modify_host();
        dv.sync_device();
        let (h2d1, _, n1, _) = profile::transfer_totals();
        assert_eq!(h2d1, 8000);
        assert_eq!(n1, 1);
        // No modification: repeated syncs move nothing.
        dv.sync_device();
        dv.sync_device();
        let (h2d2, _, n2, _) = profile::transfer_totals();
        assert_eq!(h2d2, h2d1);
        assert_eq!(n2, n1);
    }

    #[test]
    fn sync_to_space_selects_direction() {
        let _serialize = profile::TRANSFER_TEST_LOCK.lock().unwrap();
        let dev = Space::device(lkk_gpusim::GpuArch::h100());
        let mut dv = DualView::<f64, 1>::new("x", [10]);
        dv.h_view_mut().set([0], 42.0);
        dv.sync_to(&dev);
        assert_eq!(dv.view_for(&dev).at([0]), 42.0);
        dv.view_for_mut(&dev).set([0], 7.0);
        dv.sync_to(&Space::Threads);
        assert_eq!(dv.view_for(&Space::Threads).at([0]), 7.0);
    }

    #[test]
    fn realloc_resets_both() {
        let _serialize = profile::TRANSFER_TEST_LOCK.lock().unwrap();
        let mut dv = DualView::<f64, 1>::new("x", [10]);
        dv.h_view_mut().fill(1.0);
        dv.sync_device();
        dv.realloc([20]);
        assert_eq!(dv.dims(), [20]);
        assert!(dv.h_view().as_slice().iter().all(|&x| x == 0.0));
    }
}
