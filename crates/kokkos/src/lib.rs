//! `lkk-kokkos`: a Kokkos-like performance-portability layer in Rust.
//!
//! This crate reproduces, in safe-by-default Rust, the abstractions the
//! paper's §3 describes as the foundation of the LAMMPS KOKKOS package:
//!
//! * [`view`] — multi-dimensional arrays ([`View`]) with run-time
//!   selectable data layout ([`Layout::Right`] for hosts,
//!   [`Layout::Left`] for devices), the "transparent data layout
//!   adjustment" that §4.1 credits for portable neighbor-list access
//!   patterns.
//! * [`dual_view`] — [`DualView`]: a host/device mirror pair with
//!   modify/sync tracking, so `sync()` only moves data when the other
//!   space actually changed it (§3.2). Transfer volumes are recorded so
//!   the GPU-package-style offload ablation can account for them.
//! * [`scatter_view`] — [`ScatterView`]: write-conflict deconfliction by
//!   thread-atomic operations, data duplication, or plain sequential
//!   accumulation (§3.2), selectable per execution space.
//! * [`exec`] — execution spaces: [`Space::Serial`], [`Space::Threads`]
//!   (rayon), and the *simulated* GPU space that executes functionally
//!   on host threads while logging kernel launches and event counts for
//!   the `lkk-gpusim` performance model.
//! * [`policy`] / [`team`] — `RangePolicy` (flat), `MDRangePolicy`
//!   (tiled multi-dimensional iteration) and `TeamPolicy` (hierarchical
//!   league/team/vector parallelism with per-team scratch memory, §3.3).
//! * [`atomic`] — an [`AtomicF64`] built on `AtomicU64` CAS, the
//!   building block for thread-atomic force accumulation.
//! * [`profile`] — the Kokkos-Tools-style profiling layer: nested named
//!   regions with RAII guards, kernel launch/stats hooks fired from the
//!   dispatch layer, host↔device transfer accounting, and a subscriber
//!   registry mirroring the whole event stream to any registered
//!   [`lkk_gpusim::ProfileSubscriber`].

pub mod atomic;
pub mod dual_view;
pub mod exec;
pub mod policy;
pub mod profile;
pub mod scatter_view;
pub mod team;
pub mod view;

pub use atomic::AtomicF64;
pub use dual_view::DualView;
pub use exec::{force_sequential, set_force_sequential, DeviceCtx, Space};
pub use policy::{MDRangePolicy, TeamPolicy};
pub use profile::{
    begin_region, current_region, register_subscriber, unregister_subscriber, KernelLog,
    RegionGuard, SubscriberId,
};
pub use scatter_view::{ScatterMode, ScatterView};
pub use team::Team;
pub use view::{Layout, ParWrite, View, View1, View2, View3};
