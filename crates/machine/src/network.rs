//! Interconnect models.

/// A network interface + fabric model. Bandwidth is per NIC; the
/// machines of the paper all run 1 NIC per GPU (Appendix C: "a 1:1 GPU
/// to NIC ratio"), except Frontier's 4 NICs : 8 GCDs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Network {
    pub name: &'static str,
    /// Injection bandwidth per NIC, GB/s.
    pub nic_bw_gbs: f64,
    /// End-to-end small-message latency, microseconds.
    pub latency_us: f64,
}

impl Network {
    /// HPE Slingshot-11 (Frontier, El Capitan, Aurora, Alps): 200 Gb/s
    /// NICs = 25 GB/s, ~2 µs put latency.
    pub fn slingshot11() -> Self {
        Network {
            name: "Slingshot-11",
            nic_bw_gbs: 25.0,
            latency_us: 2.0,
        }
    }

    /// NVIDIA Quantum-2 NDR 400 InfiniBand (Eos): 400 Gb/s = 50 GB/s,
    /// ~1.5 µs. Appendix C: "comparable network bandwidths between NDR
    /// 400 and Slingshot-11" per GPU given Eos's 1:1 ratio at 4 GPUs.
    pub fn ndr400() -> Self {
        Network {
            name: "NDR400",
            nic_bw_gbs: 50.0,
            latency_us: 1.5,
        }
    }

    /// Time to move `bytes` through one NIC share in seconds.
    pub fn transfer_time(&self, bytes: f64, nic_share: f64) -> f64 {
        bytes / (self.nic_bw_gbs * 1e9 * nic_share.max(1e-9))
    }

    /// Latency-dominated allreduce over `ranks` participants
    /// (recursive-doubling: 2·log2(P) hops).
    pub fn allreduce_time(&self, ranks: f64) -> f64 {
        if ranks <= 1.0 {
            return 0.0;
        }
        2.0 * ranks.log2().ceil() * self.latency_us * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn networks_have_expected_rates() {
        let ss = Network::slingshot11();
        assert_eq!(ss.nic_bw_gbs, 25.0);
        let ndr = Network::ndr400();
        assert_eq!(ndr.nic_bw_gbs, 50.0);
        assert!(ndr.latency_us < ss.latency_us);
    }

    #[test]
    fn transfer_and_allreduce_scaling() {
        let n = Network::slingshot11();
        assert!((n.transfer_time(25e9, 1.0) - 1.0).abs() < 1e-12);
        // Half a NIC per rank doubles time.
        assert!((n.transfer_time(25e9, 0.5) - 2.0).abs() < 1e-12);
        assert_eq!(n.allreduce_time(1.0), 0.0);
        let t1k = n.allreduce_time(1024.0);
        let t1m = n.allreduce_time(1024.0 * 1024.0);
        assert!((t1m / t1k - 2.0).abs() < 1e-12); // log scaling
    }
}
