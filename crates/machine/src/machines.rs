//! The five machines of the paper's §5.2 / Appendix C.

use crate::network::Network;
use lkk_gpusim::GpuArch;

/// One node: how many logical GPUs (GCDs / stacks / full parts — one
/// MPI rank each, per the paper's footnote 5) and how many NICs.
#[derive(Debug, Clone)]
pub struct Node {
    pub gpu: GpuArch,
    pub gpus_per_node: u32,
    pub nics_per_node: u32,
}

/// A named machine.
#[derive(Debug, Clone)]
pub struct Machine {
    pub name: &'static str,
    pub node: Node,
    pub network: Network,
    /// Largest node count the paper scales to on this machine.
    pub max_nodes: u32,
}

impl Machine {
    /// OLCF Frontier: 4 × MI250X per node = 8 GCDs (8 ranks), 4 NICs,
    /// Slingshot-11, scaled to 8192 nodes.
    pub fn frontier() -> Self {
        Machine {
            name: "Frontier",
            node: Node {
                gpu: GpuArch::mi250x_gcd(),
                gpus_per_node: 8,
                nics_per_node: 4,
            },
            network: Network::slingshot11(),
            max_nodes: 8192,
        }
    }

    /// NNSA El Capitan: 4 × MI300A, Slingshot-11, scaled to 8192 nodes.
    pub fn el_capitan() -> Self {
        Machine {
            name: "El Capitan",
            node: Node {
                gpu: GpuArch::mi300a(),
                gpus_per_node: 4,
                nics_per_node: 4,
            },
            network: Network::slingshot11(),
            max_nodes: 8192,
        }
    }

    /// ALCF Aurora: 6 × PVC per node = 12 stacks (12 ranks), 8 NICs,
    /// Slingshot-11, scaled to 2048 nodes.
    pub fn aurora() -> Self {
        Machine {
            name: "Aurora",
            node: Node {
                gpu: GpuArch::pvc_stack(),
                gpus_per_node: 12,
                nics_per_node: 8,
            },
            network: Network::slingshot11(),
            max_nodes: 2048,
        }
    }

    /// CSCS Alps: 4 × GH200 per node, 1:1 NICs, Slingshot-11, scaled to
    /// 2048 nodes.
    pub fn alps() -> Self {
        Machine {
            name: "Alps",
            node: Node {
                gpu: GpuArch::gh200(),
                gpus_per_node: 4,
                nics_per_node: 4,
            },
            network: Network::slingshot11(),
            max_nodes: 2048,
        }
    }

    /// NVIDIA Eos DGX H100 SuperPod, *as used in the paper*: only 4 of
    /// the 8 GPUs (and 4 NICs) per node "to mimic the configurations of
    /// the largest NVIDIA-based supercomputers", NDR400, 256 nodes.
    pub fn eos() -> Self {
        Machine {
            name: "Eos",
            node: Node {
                gpu: GpuArch::h100(),
                gpus_per_node: 4,
                nics_per_node: 4,
            },
            network: Network::ndr400(),
            max_nodes: 256,
        }
    }

    /// Eos with all 8 GPUs + 8 NICs per node (the hardware's native
    /// configuration; the paper intentionally used 4 to mimic
    /// GH200-class nodes).
    pub fn eos_full() -> Self {
        Machine {
            name: "Eos(8gpu)",
            node: Node {
                gpu: GpuArch::h100(),
                gpus_per_node: 8,
                nics_per_node: 8,
            },
            network: Network::ndr400(),
            max_nodes: 256,
        }
    }

    /// All five, Figure-6/7 order.
    pub fn all() -> Vec<Machine> {
        vec![
            Self::frontier(),
            Self::aurora(),
            Self::el_capitan(),
            Self::alps(),
            Self::eos(),
        ]
    }

    /// Total ranks (one per logical GPU) at a node count.
    pub fn ranks(&self, nodes: u32) -> u32 {
        nodes * self.node.gpus_per_node
    }

    /// NIC share per rank.
    pub fn nic_share(&self) -> f64 {
        self.node.nics_per_node as f64 / self.node.gpus_per_node as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations() {
        let f = Machine::frontier();
        assert_eq!(f.ranks(8192), 65536);
        assert_eq!(f.nic_share(), 0.5);
        let a = Machine::alps();
        assert_eq!(a.nic_share(), 1.0);
        assert_eq!(a.node.gpu.name, "NVIDIA GH200");
        let e = Machine::eos();
        assert_eq!(e.node.gpus_per_node, 4, "paper intentionally used 4 of 8");
        assert_eq!(e.network.name, "NDR400");
        assert_eq!(Machine::aurora().ranks(1), 12);
        assert_eq!(Machine::all().len(), 5);
    }

    #[test]
    fn eos_full_node_doubles_ranks_at_same_per_gpu_resources() {
        let four = Machine::eos();
        let eight = Machine::eos_full();
        assert_eq!(eight.ranks(10), 2 * four.ranks(10));
        assert_eq!(four.nic_share(), eight.nic_share());
    }
}
