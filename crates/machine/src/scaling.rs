//! The strong-scaling timing model (Figure 6/7).
//!
//! Per-step wall time of one rank owning `n` atoms:
//!
//! ```text
//! t_step = Σ_kernels t(kernel scaled to n)      (lkk-gpusim cost model)
//!        + halo_bytes(n) / nic_bw               (forward/reverse comm)
//!        + n_halo_msgs · latency
//!        + n_allreduce · allreduce(log P)       (QEq CG dot products)
//! ```
//!
//! The kernel event counts are *per-atom* values measured from real
//! executions of the potentials on the functional device space, scaled
//! linearly with atoms-per-rank (short-range MD is linear in N at fixed
//! density); the cost model then reapplies its occupancy / launch-
//! latency effects at each size, which is what produces the saturation
//! roll-off as strong scaling shrinks the per-rank problem.

use crate::machines::Machine;
use lkk_gpusim::{CacheConfig, KernelStats};

/// Communication profile of a workload.
#[derive(Debug, Clone, Copy)]
pub struct CommProfile {
    /// Ghost shell thickness (force/neighbor cutoff), in the length
    /// unit of `number_density`.
    pub cut_ghost: f64,
    /// Atom number density.
    pub number_density: f64,
    /// Bytes exchanged per halo atom per step (positions forward +
    /// optionally forces back).
    pub bytes_per_halo_atom: f64,
    /// Halo messages per step (neighbor count in the brick stencil,
    /// times comm phases).
    pub messages_per_step: f64,
    /// Latency-bound allreduces per step (ReaxFF: ~3 per CG iteration).
    pub allreduces_per_step: f64,
}

impl CommProfile {
    /// Analytic per-rank halo traffic for a rank owning `n` atoms:
    /// `(bytes_per_step, messages_per_step)`. The byte estimate is the
    /// surface-to-volume argument the scaling model is built on — six
    /// faces of the rank's brick, one ghost cutoff thick, at the bulk
    /// number density.
    pub fn analytic_halo(&self, n: f64) -> (f64, f64) {
        let volume = n / self.number_density;
        let side = volume.cbrt();
        let halo_atoms = 6.0 * side * side * self.cut_ghost * self.number_density;
        (
            halo_atoms * self.bytes_per_halo_atom,
            self.messages_per_step,
        )
    }

    /// Compare these analytic values against traffic measured from a
    /// functional multi-rank run.
    pub fn compare_measured(&self, measured: &MeasuredComm) -> HaloComparison {
        let (analytic_bytes, analytic_msgs) = self.analytic_halo(measured.atoms_per_rank);
        HaloComparison {
            measured_bytes: measured.halo_bytes_per_rank_step,
            analytic_bytes,
            bytes_ratio: measured.halo_bytes_per_rank_step / analytic_bytes,
            measured_msgs: measured.halo_msgs_per_rank_step,
            analytic_msgs,
            msgs_ratio: measured.halo_msgs_per_rank_step / analytic_msgs,
        }
    }
}

/// Per-rank halo traffic measured from a functional multi-rank run
/// (`lkk-core`'s brick comm layer counts exchange bytes and messages;
/// see `CommStats`). Plain numbers so this crate stays decoupled from
/// the simulation crate — callers average the run's counters:
/// `halo_bytes_per_rank_step = (forward + reverse bytes) / ranks / steps`.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredComm {
    pub ranks: f64,
    pub atoms_per_rank: f64,
    pub halo_bytes_per_rank_step: f64,
    pub halo_msgs_per_rank_step: f64,
}

/// Measured-vs-analytic halo traffic for one rank count — the
/// validation column of the scaling report. Ratios near 1 mean the
/// surface-to-volume model predicts what the functional comm layer
/// actually sends.
#[derive(Debug, Clone, Copy)]
pub struct HaloComparison {
    pub measured_bytes: f64,
    pub analytic_bytes: f64,
    pub bytes_ratio: f64,
    pub measured_msgs: f64,
    pub analytic_msgs: f64,
    pub msgs_ratio: f64,
}

/// A workload: per-atom kernel event counts + communication profile.
#[derive(Debug, Clone)]
pub struct Workload {
    pub name: String,
    /// Event counts normalized per atom (`launches` kept per-step).
    pub per_atom: Vec<KernelStats>,
    pub comm: CommProfile,
}

impl Workload {
    /// Normalize measured per-step kernel stats (from a run with
    /// `natoms` atoms) to per-atom counts.
    pub fn from_measured(
        name: impl Into<String>,
        stats: Vec<KernelStats>,
        natoms: f64,
        comm: CommProfile,
    ) -> Workload {
        let per_atom = stats
            .into_iter()
            .map(|mut s| {
                s.work_items /= natoms;
                s.flops /= natoms;
                s.dram_bytes /= natoms;
                s.reused_bytes /= natoms;
                s.l1_only_bytes /= natoms;
                s.atomic_f64_ops /= natoms;
                // working_set, scratch, team size, ilp, convergence and
                // launches are size-independent.
                s
            })
            .collect();
        Workload {
            name: name.into(),
            per_atom,
            comm,
        }
    }

    /// Per-step kernel time for one rank owning `n` atoms on `arch`.
    pub fn kernel_time(&self, n: f64, arch: &lkk_gpusim::GpuArch) -> f64 {
        self.per_atom
            .iter()
            .map(|s| {
                let mut k = s.clone();
                k.work_items *= n;
                k.flops *= n;
                k.dram_bytes *= n;
                k.reused_bytes *= n;
                k.l1_only_bytes *= n;
                k.atomic_f64_ops *= n;
                let cfg = CacheConfig::default_for_kernel(
                    arch,
                    k.scratch_bytes_per_team,
                    k.threads_per_team.max(arch.warp_width),
                );
                k.time_on(arch, &cfg).seconds
            })
            .sum()
    }

    /// Resident memory footprint per rank (rough: 1 KB/atom covers
    /// positions, velocities, forces, neighbor lists).
    pub fn footprint_bytes(&self, n: f64) -> f64 {
        n * 1024.0
    }
}

/// Strong-scaling evaluation of one workload on one machine.
///
/// ```
/// use lkk_machine::{scaling::presets, Machine, StrongScaling};
/// let s = StrongScaling {
///     machine: Machine::frontier(),
///     workload: presets::lj(),
///     total_atoms: 16_000_000.0,
/// };
/// // More nodes never slow an LJ run down in the scaling model.
/// assert!(s.steps_per_second(64) > s.steps_per_second(1));
/// ```
#[derive(Debug, Clone)]
pub struct StrongScaling {
    pub machine: Machine,
    pub workload: Workload,
    pub total_atoms: f64,
}

impl StrongScaling {
    /// Predicted wall time of one timestep at `nodes` nodes.
    pub fn step_time(&self, nodes: u32) -> f64 {
        let ranks = self.machine.ranks(nodes) as f64;
        let n = self.total_atoms / ranks;
        let arch = &self.machine.node.gpu;
        let t_kernel = self.workload.kernel_time(n, arch);

        // Halo volume: 6 faces of the rank's brick, one cutoff thick.
        let comm = &self.workload.comm;
        let (halo_bytes, halo_msgs) = comm.analytic_halo(n);
        let net = &self.machine.network;
        let t_halo = if ranks > 1.0 {
            net.transfer_time(halo_bytes, self.machine.nic_share())
                + halo_msgs * net.latency_us * 1e-6
        } else {
            0.0
        };
        let t_allreduce = comm.allreduces_per_step * net.allreduce_time(ranks);
        t_kernel + t_halo + t_allreduce
    }

    /// Timesteps per second at `nodes`.
    pub fn steps_per_second(&self, nodes: u32) -> f64 {
        1.0 / self.step_time(nodes)
    }

    /// Smallest node count whose per-rank footprint fits in HBM.
    pub fn min_nodes(&self) -> u32 {
        let per_gpu = 0.9 * self.machine.node.gpu.hbm_capacity_bytes();
        let mut nodes = 1u32;
        while self
            .workload
            .footprint_bytes(self.total_atoms / self.machine.ranks(nodes) as f64)
            > per_gpu
        {
            nodes *= 2;
            if nodes >= self.machine.max_nodes {
                return self.machine.max_nodes;
            }
        }
        nodes
    }
}

/// Representative built-in workloads (per-atom numbers in the ballpark
/// of the measured ones; the figure harnesses use measured values).
pub mod presets {
    use super::*;

    pub fn lj() -> Workload {
        let mut k = KernelStats::new("PairComputeLJCut");
        k.work_items = 1.0;
        k.flops = 37.0 * 2.0 * 23.0; // full list, ~74 listed pairs
        k.dram_bytes = 48.0 + 74.0 * 4.0;
        k.reused_bytes = 74.0 * 24.0;
        k.working_set_bytes = 180.0 * 1024.0;
        let mut nve = KernelStats::new("Integrate");
        nve.work_items = 1.0;
        nve.flops = 18.0;
        nve.dram_bytes = 96.0;
        nve.launches = 2.0;
        Workload {
            name: "LJ".into(),
            per_atom: vec![k, nve],
            comm: CommProfile {
                cut_ghost: 2.8,
                number_density: 0.8442,
                bytes_per_halo_atom: 24.0,
                messages_per_step: 12.0,
                allreduces_per_step: 0.0,
            },
        }
    }

    pub fn reaxff() -> Workload {
        let cg_iters = 30.0;
        let nnz_per_atom = 300.0;
        let mut spmv = KernelStats::new("QEqSpmvFused");
        spmv.work_items = 1.0;
        spmv.flops = cg_iters * nnz_per_atom * 4.0;
        spmv.dram_bytes = cg_iters * nnz_per_atom * 12.0;
        spmv.launches = cg_iters;
        spmv.ilp = 2.0;
        let mut bonded = KernelStats::new("BondedForces");
        bonded.work_items = 1.0;
        bonded.flops = 6000.0;
        bonded.dram_bytes = 1500.0;
        bonded.convergence = 0.3;
        bonded.launches = 8.0;
        Workload {
            name: "ReaxFF".into(),
            per_atom: vec![spmv, bonded],
            comm: CommProfile {
                cut_ghost: 8.0,
                number_density: 0.11,
                bytes_per_halo_atom: 32.0,
                messages_per_step: 12.0 + 2.0 * cg_iters, // halo per CG iteration
                allreduces_per_step: 3.0 * cg_iters,      // dot products
            },
        }
    }

    pub fn snap() -> Workload {
        let mut ui = KernelStats::new("ComputeUi");
        ui.work_items = 26.0; // per-atom neighbor parallelism
        ui.flops = 26.0 * 285.0 * 22.0;
        ui.dram_bytes = 5000.0;
        ui.atomic_f64_ops = 26.0 * 285.0 / 4.0;
        ui.ilp = 4.0;
        let mut yi = KernelStats::new("ComputeYi");
        yi.work_items = 55.0;
        yi.flops = 2.0e5;
        yi.reused_bytes = 1.5e5;
        yi.working_set_bytes = 150.0 * 1024.0;
        let mut dei = KernelStats::new("ComputeFusedDeidrj");
        dei.work_items = 26.0;
        dei.flops = 26.0 * 285.0 * 92.0;
        dei.dram_bytes = 5000.0;
        dei.ilp = 3.0;
        Workload {
            name: "SNAP".into(),
            per_atom: vec![ui, yi, dei],
            comm: CommProfile {
                cut_ghost: 4.7,
                number_density: 0.063, // bcc tungsten, atoms/Å³
                bytes_per_halo_atom: 48.0,
                messages_per_step: 12.0,
                allreduces_per_step: 0.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::presets;
    use super::*;

    fn scaling(workload: Workload, machine: Machine, atoms: f64) -> StrongScaling {
        StrongScaling {
            machine,
            workload,
            total_atoms: atoms,
        }
    }

    #[test]
    fn lj_scales_monotonically_and_sublinearly() {
        let s = scaling(presets::lj(), Machine::frontier(), 16_000_000.0);
        let mut prev = 0.0;
        for k in 0..=12 {
            let rate = s.steps_per_second(1 << k);
            assert!(rate > prev, "rate dropped at {} nodes", 1 << k);
            prev = rate;
        }
        // Strong scaling is sublinear (saturation roll-off, Fig. 4).
        let speedup = s.steps_per_second(4096) / s.steps_per_second(1);
        assert!(speedup > 2.0 && speedup < 4096.0 * 0.8, "speedup {speedup}");
    }

    #[test]
    fn bigger_problems_scale_closer_to_linear() {
        // 16M atoms: per-rank sizes fall off the saturation plateau
        // quickly; 1B atoms stay saturated much longer, so the 64-node
        // speedup is much closer to ideal.
        let small = scaling(presets::lj(), Machine::frontier(), 16_000_000.0);
        let big = scaling(presets::lj(), Machine::frontier(), 1_000_000_000.0);
        let su_small = small.steps_per_second(64) / small.steps_per_second(1);
        let su_big = big.steps_per_second(64) / big.steps_per_second(1);
        assert!(su_big > 3.0 * su_small, "small {su_small}, big {su_big}");
        assert!(su_big > 40.0, "big-problem speedup {su_big} of ideal 64");
    }

    #[test]
    fn reaxff_is_latency_bound_at_scale() {
        // §5.2: "no machine is able to exceed 100 timesteps/s for any
        // system size" for ReaxFF.
        for m in Machine::all() {
            let s = scaling(presets::reaxff(), m, 500_000.0);
            for nodes in [1u32, 16, 256, 2048] {
                let rate = s.steps_per_second(nodes);
                assert!(
                    rate < 120.0,
                    "{}: {rate} steps/s at {nodes} nodes",
                    s.machine.name
                );
            }
        }
    }

    #[test]
    fn lj_and_snap_reach_about_1000_steps_per_second() {
        // §5.2: "LAMMPS achieves approximately 1000 timesteps/s for any
        // problem size for LJ and SNAP provided enough nodes".
        for w in [presets::lj(), presets::snap()] {
            let s = scaling(w, Machine::frontier(), 4_000_000.0);
            let best = (0..14)
                .map(|k| s.steps_per_second(1 << k))
                .fold(0.0f64, f64::max);
            assert!(
                (300.0..8000.0).contains(&best),
                "{}: best {best} steps/s",
                s.workload.name
            );
        }
    }

    #[test]
    fn min_nodes_respects_hbm() {
        let s = scaling(presets::lj(), Machine::eos(), 20e9);
        // 20 G atoms × 1 KB = 20 TB; Eos node = 4×80 GB = 320 GB.
        assert!(s.min_nodes() >= 64);
        let small = scaling(presets::lj(), Machine::eos(), 1e6);
        assert_eq!(small.min_nodes(), 1);
    }

    #[test]
    fn analytic_halo_shrinks_with_the_surface() {
        // Strong scaling: halving atoms-per-rank must cut halo bytes by
        // the surface factor 2^(2/3), not 2 — comm becomes the larger
        // *fraction* even as absolute bytes shrink.
        let comm = presets::lj().comm;
        let (b1, m1) = comm.analytic_halo(1_000_000.0);
        let (b2, m2) = comm.analytic_halo(500_000.0);
        assert!((b1 / b2 - 2f64.powf(2.0 / 3.0)).abs() < 1e-12);
        assert_eq!(m1, m2, "message count is per-stencil, not per-atom");
    }

    #[test]
    fn measured_comparison_reports_ratios() {
        let comm = presets::lj().comm;
        let n = 64.0;
        let (bytes, msgs) = comm.analytic_halo(n);
        let cmp = comm.compare_measured(&MeasuredComm {
            ranks: 4.0,
            atoms_per_rank: n,
            halo_bytes_per_rank_step: 2.0 * bytes,
            halo_msgs_per_rank_step: msgs,
        });
        assert!((cmp.bytes_ratio - 2.0).abs() < 1e-12);
        assert!((cmp.msgs_ratio - 1.0).abs() < 1e-12);
        assert_eq!(cmp.analytic_bytes, bytes);
    }

    #[test]
    fn normalization_round_trip() {
        let mut k = KernelStats::new("k");
        k.flops = 1000.0;
        k.work_items = 100.0;
        let w = Workload::from_measured("t", vec![k], 100.0, presets::lj().comm);
        assert_eq!(w.per_atom[0].flops, 10.0);
        assert_eq!(w.per_atom[0].work_items, 1.0);
    }

    #[test]
    fn eos_full_node_equals_two_paper_nodes() {
        // With a 1:1 GPU:NIC ratio maintained, per-GPU resources are
        // identical: N nodes of Eos(8gpu) must perform like 2N nodes of
        // the paper's 4-GPU Eos configuration.
        let four = scaling(presets::lj(), Machine::eos(), 16_000_000.0);
        let eight = scaling(presets::lj(), Machine::eos_full(), 16_000_000.0);
        for nodes in [2u32, 8, 32] {
            let a = eight.steps_per_second(nodes);
            let b = four.steps_per_second(2 * nodes);
            assert!((a - b).abs() < 1e-9 * b, "{a} vs {b}");
        }
    }
}
