//! `lkk-machine`: exascale machine descriptors and the strong-scaling
//! performance model (Figures 6-7 of the paper).
//!
//! A [`Machine`] composes a node (GPUs per node + one architecture
//! descriptor from `lkk-gpusim`) with a [`Network`]. The
//! [`scaling`] model predicts per-timestep wall time of a workload
//! decomposed over the machine: per-rank kernel time from the
//! `lkk-gpusim` cost model applied to per-atom event counts, plus
//! halo-exchange time (surface-to-volume), plus log-P allreduce latency
//! (which is what denies ReaxFF scaling past ~100 steps/s — §5.2).

pub mod machines;
pub mod network;
pub mod scaling;

pub use machines::{Machine, Node};
pub use network::Network;
pub use scaling::{CommProfile, HaloComparison, MeasuredComm, StrongScaling, Workload};
