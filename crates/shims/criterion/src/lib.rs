//! Minimal vendored stand-in for the `criterion` crate.
//!
//! Supports the subset this workspace's wall-clock microbenchmarks use:
//! `Criterion::benchmark_group`, `group.sample_size(..)`,
//! `group.bench_function(name, |b| b.iter(..))`, `group.finish()`, and
//! the `criterion_group!` / `criterion_main!` macros. Each benchmark
//! runs a short warm-up, then `sample_size` timed samples, and prints
//! the median per-iteration time. No statistics beyond that — this shim
//! exists so benches compile and run offline; the CI perf gate uses
//! deterministic counters (`perf-smoke`), not these timings.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
        }
    }
}

pub struct BenchmarkGroup {
    #[allow(dead_code)]
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        };
        // Warm-up/calibration pass: pick an iteration count so one
        // sample takes ≳1 ms, bounding total time for fast closures.
        f(&mut b);
        let warm = b
            .samples
            .last()
            .copied()
            .unwrap_or(Duration::from_millis(1));
        if warm < Duration::from_millis(1) {
            let per_iter = warm.as_secs_f64().max(1e-9);
            b.iters_per_sample = ((1e-3 / per_iter) as usize).clamp(1, 1_000_000);
        }
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mut per_iter: Vec<f64> = b
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = per_iter[per_iter.len() / 2];
        println!(
            "  {id:<28} {:>12}/iter ({} samples)",
            format_time(median),
            per_iter.len()
        );
        self
    }

    pub fn finish(&mut self) {}
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: usize,
}

impl Bencher {
    // Bench harness: measuring wall time is the whole point (LKK001
    // exempts shims by path; this mirrors that for clippy).
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(start.elapsed());
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 3, "closure ran {count} times");
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" us"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
