//! Minimal vendored stand-in for the `rayon` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the rayon API it actually uses:
//! `into_par_iter()` over ranges and vectors, `par_chunks` on slices,
//! `for_each` / `for_each_init` / `map` / `fold` / `reduce` / `zip` /
//! `collect`, plus `current_num_threads` / `current_thread_index`.
//!
//! Execution model: each parallel call splits its items into at most
//! `current_num_threads()` contiguous chunks and runs one chunk per
//! scoped OS thread (`std::thread::scope`). Chunk boundaries are a pure
//! function of item count and thread count, and per-chunk iteration is
//! in index order, so fold/reduce results are deterministic for a fixed
//! thread count. Setting `LKK_SEQUENTIAL=1` at process start collapses
//! the pool to one worker for bit-stable runs (the perf-smoke harness
//! additionally forces sequential dispatch inside `lkk-kokkos`).

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParRange, ParallelSlice};
}

static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel calls may use.
pub fn current_num_threads() -> usize {
    let cached = NUM_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = if std::env::var_os("LKK_SEQUENTIAL").is_some_and(|v| v == "1") {
        1
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    NUM_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Index of the current worker inside a parallel call, if any.
pub fn current_thread_index() -> Option<usize> {
    THREAD_INDEX.with(|t| t.get())
}

fn chunk_len(n: usize) -> (usize, usize) {
    let workers = current_num_threads().min(n).max(1);
    (workers, n.div_ceil(workers))
}

/// Run `run(worker, start..end)` for disjoint chunks covering `0..n`.
fn run_chunked<F: Fn(usize, Range<usize>) + Sync>(n: usize, run: F) {
    if n == 0 {
        return;
    }
    let (workers, chunk) = chunk_len(n);
    if workers == 1 {
        let prev = THREAD_INDEX.with(|t| t.replace(Some(0)));
        run(0, 0..n);
        THREAD_INDEX.with(|t| t.set(prev));
        return;
    }
    std::thread::scope(|scope| {
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let run = &run;
            scope.spawn(move || {
                THREAD_INDEX.with(|t| t.set(Some(w)));
                run(w, lo..hi);
            });
        }
    });
}

/// Run a closure per (worker, input chunk) over a consumed `Vec`,
/// distributing disjoint `&mut [Option<T>]` chunks to scoped threads.
fn consume_chunked<T: Send, F: Fn(usize, &mut [Option<T>]) + Sync>(items: Vec<T>, f: F) {
    let n = items.len();
    if n == 0 {
        return;
    }
    let (workers, chunk) = chunk_len(n);
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    if workers == 1 {
        let prev = THREAD_INDEX.with(|t| t.replace(Some(0)));
        f(0, &mut slots);
        THREAD_INDEX.with(|t| t.set(prev));
        return;
    }
    std::thread::scope(|scope| {
        for (w, s) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                THREAD_INDEX.with(|t| t.set(Some(w)));
                f(w, s);
            });
        }
    });
}

/// A materialized parallel iterator: items are distributed over worker
/// threads by contiguous chunks.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

/// A lazy parallel iterator over a `usize` range (no index
/// materialization).
pub struct ParRange {
    range: Range<usize>,
}

pub trait IntoParallelIterator {
    type Item: Send;
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

/// `par_chunks` on slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync + Send> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

impl ParRange {
    pub fn for_each<F: Fn(usize) + Sync + Send>(self, f: F) {
        let base = self.range.start;
        run_chunked(self.range.len(), |_, r| {
            for i in r {
                f(base + i);
            }
        });
    }

    pub fn for_each_init<S, I, F>(self, init: I, f: F)
    where
        I: Fn() -> S + Sync + Send,
        F: Fn(&mut S, usize) + Sync + Send,
    {
        let base = self.range.start;
        run_chunked(self.range.len(), |_, r| {
            let mut state = init();
            for i in r {
                f(&mut state, base + i);
            }
        });
    }

    /// Per-chunk fold; the partial accumulators form a new (small)
    /// parallel iterator, exactly like rayon's `fold`.
    pub fn fold<Acc, ID, F>(self, identity: ID, fold: F) -> ParIter<Acc>
    where
        Acc: Send,
        ID: Fn() -> Acc + Sync + Send,
        F: Fn(Acc, usize) -> Acc + Sync + Send,
    {
        let base = self.range.start;
        let n = self.range.len();
        let (workers, _) = chunk_len(n);
        let partials =
            std::sync::Mutex::new((0..workers).map(|_| None).collect::<Vec<Option<Acc>>>());
        run_chunked(n, |w, r| {
            let mut acc = identity();
            for i in r {
                acc = fold(acc, base + i);
            }
            partials.lock().unwrap()[w] = Some(acc);
        });
        ParIter {
            items: partials
                .into_inner()
                .unwrap()
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    pub fn map<U: Send, F: Fn(usize) -> U + Sync + Send>(self, f: F) -> ParIter<U> {
        let base = self.range.start;
        let n = self.range.len();
        let (_, chunk) = chunk_len(n);
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        {
            let out_chunks =
                std::sync::Mutex::new(out.chunks_mut(chunk.max(1)).map(Some).collect::<Vec<_>>());
            run_chunked(n, |w, r| {
                let slot = out_chunks.lock().unwrap()[w].take().expect("chunk reused");
                for (o, i) in slot.iter_mut().zip(r) {
                    *o = Some(f(base + i));
                }
            });
        }
        ParIter {
            items: out
                .into_iter()
                .map(|x| x.expect("map slot unfilled"))
                .collect(),
        }
    }

    pub fn zip<I>(self, other: I) -> ParIter<(usize, <I as IntoParallelIterator>::Item)>
    where
        I: IntoParallelIterator,
        <I as IntoParallelIterator>::Iter: IntoItems<Item = <I as IntoParallelIterator>::Item>,
    {
        let rhs = other.into_par_iter().into_items();
        ParIter {
            items: self.range.zip(rhs).collect(),
        }
    }

    pub fn collect<B: FromIterator<usize>>(self) -> B {
        self.range.collect()
    }
}

impl<T: Send> ParIter<T> {
    pub fn for_each<F: Fn(T) + Sync + Send>(self, f: F) {
        consume_chunked(self.items, |_, slots| {
            for s in slots {
                f(s.take().expect("item consumed twice"));
            }
        });
    }

    pub fn for_each_init<S, I, F>(self, init: I, f: F)
    where
        I: Fn() -> S + Sync + Send,
        F: Fn(&mut S, T) + Sync + Send,
    {
        consume_chunked(self.items, |_, slots| {
            let mut state = init();
            for s in slots {
                f(&mut state, s.take().expect("item consumed twice"));
            }
        });
    }

    pub fn map<U: Send, F: Fn(T) -> U + Sync + Send>(self, f: F) -> ParIter<U> {
        let n = self.items.len();
        let (_, chunk) = chunk_len(n);
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        {
            let out_chunks =
                std::sync::Mutex::new(out.chunks_mut(chunk.max(1)).map(Some).collect::<Vec<_>>());
            consume_chunked(self.items, |w, slots| {
                let dest = out_chunks.lock().unwrap()[w].take().expect("chunk reused");
                for (o, s) in dest.iter_mut().zip(slots) {
                    *o = Some(f(s.take().expect("item consumed twice")));
                }
            });
        }
        ParIter {
            items: out
                .into_iter()
                .map(|x| x.expect("map slot unfilled"))
                .collect(),
        }
    }

    pub fn fold<Acc, ID, F>(self, identity: ID, fold: F) -> ParIter<Acc>
    where
        Acc: Send,
        ID: Fn() -> Acc + Sync + Send,
        F: Fn(Acc, T) -> Acc + Sync + Send,
    {
        let n = self.items.len();
        let (workers, _) = chunk_len(n);
        let partials =
            std::sync::Mutex::new((0..workers).map(|_| None).collect::<Vec<Option<Acc>>>());
        consume_chunked(self.items, |w, slots| {
            let mut acc = identity();
            for s in slots {
                acc = fold(acc, s.take().expect("item consumed twice"));
            }
            partials.lock().unwrap()[w] = Some(acc);
        });
        ParIter {
            items: partials
                .into_inner()
                .unwrap()
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    pub fn zip<I>(self, other: I) -> ParIter<(T, <I as IntoParallelIterator>::Item)>
    where
        I: IntoParallelIterator,
        <I as IntoParallelIterator>::Iter: IntoItems<Item = <I as IntoParallelIterator>::Item>,
    {
        let rhs = other.into_par_iter().into_items();
        ParIter {
            items: self.items.into_iter().zip(rhs).collect(),
        }
    }

    pub fn collect<B: FromIterator<T>>(self) -> B {
        self.items.into_iter().collect()
    }
}

/// Internal: extract the materialized items of an iterator type (used
/// by `zip`).
pub trait IntoItems {
    type Item: Send;
    fn into_items(self) -> Vec<Self::Item>;
}

impl<T: Send> IntoItems for ParIter<T> {
    type Item = T;
    fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl IntoItems for ParRange {
    type Item = usize;
    fn into_items(self) -> Vec<usize> {
        self.range.collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_for_each_visits_all() {
        let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
        (0..hits.len()).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn fold_reduce_deterministic_sum() {
        let a = (0..100_000usize)
            .into_par_iter()
            .fold(|| 0u64, |acc, i| acc + i as u64)
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(a, 100_000 * 99_999 / 2);
    }

    #[test]
    fn par_chunks_map_collect_preserves_order() {
        let data: Vec<usize> = (0..1000).collect();
        let sums: Vec<usize> = data.par_chunks(100).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 10);
        assert_eq!(sums[0], (0..100).sum::<usize>());
        assert_eq!(sums[9], (900..1000).sum::<usize>());
    }

    #[test]
    fn vec_map_preserves_order() {
        let data: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = data.into_par_iter().map(|x| 2 * x).collect();
        assert!(doubled.iter().enumerate().all(|(i, &v)| v == 2 * i));
    }

    #[test]
    fn zip_pairs_in_order() {
        let a: Vec<usize> = (0..50).collect();
        let b: Vec<usize> = (100..150).collect();
        let pairs: Vec<(usize, usize)> = a.into_par_iter().zip(b).collect();
        assert_eq!(pairs.len(), 50);
        assert!(pairs.iter().all(|(x, y)| y - x == 100));
    }

    #[test]
    fn thread_index_in_bounds() {
        let max = std::sync::Mutex::new(0usize);
        (0..10_000usize).into_par_iter().for_each(|_| {
            let idx = crate::current_thread_index().unwrap_or(0);
            let mut m = max.lock().unwrap();
            *m = (*m).max(idx);
        });
        assert!(*max.lock().unwrap() < crate::current_num_threads());
    }

    #[test]
    fn for_each_init_reuses_state_per_chunk() {
        let inits = AtomicUsize::new(0);
        (0..10_000usize).into_par_iter().for_each_init(
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                vec![0u8; 16]
            },
            |s, _| {
                s[0] = s[0].wrapping_add(1);
            },
        );
        assert!(inits.load(Ordering::Relaxed) <= crate::current_num_threads());
    }
}
