//! Minimal vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over primitive ranges — the full surface this
//! workspace uses. The generator is xoshiro256++ seeded via SplitMix64
//! (deterministic, high-quality, and stable across platforms); it does
//! not match upstream `StdRng`'s stream, which is fine because every
//! consumer in this repo seeds explicitly and only relies on
//! reproducibility within the repo.

pub mod rngs {
    /// Deterministic 64-bit generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding interface (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// A range from which a uniform sample can be drawn.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u64, usize, u32);

/// Generation interface (subset: `next_u64`, `gen_range`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_range_in_bounds_and_covers() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        let mut lo_half = 0;
        for _ in 0..1000 {
            let x = rng.gen_range(2.0f64..4.0);
            assert!((2.0..4.0).contains(&x));
            if x < 3.0 {
                lo_half += 1;
            }
        }
        assert!(
            (300..700).contains(&lo_half),
            "biased: {lo_half}/1000 below midpoint"
        );
    }

    #[test]
    fn int_range_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(5usize..15);
            assert!((5..15).contains(&x));
        }
    }
}
