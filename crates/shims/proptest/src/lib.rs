//! Minimal vendored stand-in for the `proptest` crate.
//!
//! Supports the subset used by this workspace's property tests: the
//! `proptest!` macro (with optional `#![proptest_config(..)]`),
//! strategies over primitive ranges, `prop::array::uniform3`,
//! `prop::collection::vec`, `prop::sample::select`, tuple strategies,
//! and `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike upstream proptest there is no shrinking: a failing case
//! panics immediately with the case number, and the per-test RNG seed
//! is derived deterministically from the test name, so failures
//! reproduce exactly on re-run.

use std::ops::Range;

/// Deterministic RNG driving value generation (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runner configuration (subset: number of cases per test).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value-generation strategy.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty strategy range");
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod prop {
    pub mod array {
        use crate::{Strategy, TestRng};

        pub struct Uniform3<S>(S);

        /// `[S::Value; 3]` with i.i.d. components.
        pub fn uniform3<S: Strategy>(inner: S) -> Uniform3<S> {
            Uniform3(inner)
        }

        impl<S: Strategy> Strategy for Uniform3<S> {
            type Value = [S::Value; 3];
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                [self.0.sample(rng), self.0.sample(rng), self.0.sample(rng)]
            }
        }
    }

    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        pub struct VecStrategy<S> {
            inner: S,
            len: Range<usize>,
        }

        /// `Vec<S::Value>` with a length drawn from `len`.
        pub fn vec<S: Strategy>(inner: S, len: Range<usize>) -> VecStrategy<S> {
            vec_strategy_assert(&len);
            VecStrategy { inner, len }
        }

        fn vec_strategy_assert(len: &Range<usize>) {
            assert!(len.start < len.end, "empty length range");
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.sample(rng);
                (0..n).map(|_| self.inner.sample(rng)).collect()
            }
        }
    }

    pub mod sample {
        use crate::{Strategy, TestRng};

        pub struct Select<T>(Vec<T>);

        /// Pick one element of `options` uniformly.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select over empty options");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.0[(rng.next_u64() % self.0.len() as u64) as usize].clone()
            }
        }
    }
}

pub mod prelude {
    pub use crate::{prop, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn arrays_and_vecs_compose(
            v in prop::array::uniform3(0f64..1.0),
            xs in prop::collection::vec((0usize..4, -1f64..1.0), 1..20),
            pick in prop::sample::select(vec![2usize, 4, 6]),
        ) {
            prop_assert!(v.iter().all(|c| (0.0..1.0).contains(c)));
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for (i, x) in &xs {
                prop_assert!(*i < 4);
                prop_assert!((-1.0..1.0).contains(x));
            }
            prop_assert!(pick % 2 == 0);
        }
    }

    #[test]
    fn seeds_are_deterministic_per_name() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("u");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
