//! The synthetic HNS-like molecular crystal (the paper's ReaxFF
//! benchmark workload is "a short simulation of the molecular crystal
//! Hexanitrostilbene").
//!
//! We generate a trinitrobenzene-like motif — an aromatic C₆ ring with
//! alternating H and NO₂ substituents (C₆H₃N₃O₆, 18 atoms) — replicated
//! on a cubic molecular lattice at a molecular-crystal-like density.
//! The real HNS molecule (C₁₄H₆N₆O₁₂) is two such rings bridged by a
//! stilbene backbone; the reduced motif preserves the things the
//! kernels care about: CHNO stoichiometry, ring bond networks (angle
//! and torsion tables), nitro groups (strong QEq charge separation),
//! and intermolecular contacts (non-bonded + taper).

use lkk_core::domain::Domain;

/// Type indices into [`crate::params::ReaxParams::hns_like`]:
/// 0 = C, 1 = H, 2 = N, 3 = O.
pub const TYPE_C: i32 = 0;
pub const TYPE_H: i32 = 1;
pub const TYPE_N: i32 = 2;
pub const TYPE_O: i32 = 3;

/// One C₆H₃N₃O₆ motif centred at the origin, in Å.
pub fn motif() -> Vec<([f64; 3], i32)> {
    let mut atoms = Vec::with_capacity(18);
    let r_ring = 1.40; // aromatic C-C
    for k in 0..6 {
        let ang = std::f64::consts::TAU * k as f64 / 6.0;
        let (s, c) = ang.sin_cos();
        atoms.push(([r_ring * c, r_ring * s, 0.0], TYPE_C));
        if k % 2 == 0 {
            // Hydrogen straight out from the ring.
            let rh = r_ring + 1.0;
            atoms.push(([rh * c, rh * s, 0.0], TYPE_H));
        } else {
            // Nitro group: N out from the ring, two O fanning out of
            // plane.
            let rn = r_ring + 1.35;
            atoms.push(([rn * c, rn * s, 0.0], TYPE_N));
            let ro = rn + 0.75;
            for (dz, side) in [(0.95, 1.0), (-0.95, -1.0)] {
                let spread = 0.45 * side;
                atoms.push((
                    [ro * c - spread * s, ro * s + spread * c, dz * 0.55],
                    TYPE_O,
                ));
            }
        }
    }
    atoms
}

/// Build an `nx × ny × nz` molecular crystal. Returns positions, type
/// indices, and the periodic domain. `spacing` is the molecular
/// lattice constant in Å (7.5 Å gives a density typical of CHNO
/// molecular crystals, ~0.1 atoms/Å3 × 18/molecule).
pub fn crystal(nx: usize, ny: usize, nz: usize, spacing: f64) -> (Vec<[f64; 3]>, Vec<i32>, Domain) {
    let base = motif();
    let mut positions = Vec::with_capacity(nx * ny * nz * base.len());
    let mut types = Vec::with_capacity(positions.capacity());
    for ix in 0..nx {
        for iy in 0..ny {
            for iz in 0..nz {
                let center = [
                    (ix as f64 + 0.5) * spacing,
                    (iy as f64 + 0.5) * spacing,
                    (iz as f64 + 0.5) * spacing,
                ];
                // Alternate ring orientation between sites so stacked
                // molecules do not sit in a single plane.
                let flip = (ix + iy + iz) % 2 == 1;
                for &(p, t) in &base {
                    let p = if flip { [p[0], p[2], p[1]] } else { p };
                    positions.push([center[0] + p[0], center[1] + p[1], center[2] + p[2]]);
                    types.push(t);
                }
            }
        }
    }
    let domain = Domain::new(
        [0.0; 3],
        [
            nx as f64 * spacing,
            ny as f64 * spacing,
            nz as f64 * spacing,
        ],
    );
    (positions, types, domain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motif_stoichiometry_is_c6h3n3o6() {
        let m = motif();
        assert_eq!(m.len(), 18);
        let count = |t: i32| m.iter().filter(|(_, ty)| *ty == t).count();
        assert_eq!(count(TYPE_C), 6);
        assert_eq!(count(TYPE_H), 3);
        assert_eq!(count(TYPE_N), 3);
        assert_eq!(count(TYPE_O), 6);
    }

    #[test]
    fn ring_bond_lengths_are_aromatic() {
        let m = motif();
        let carbons: Vec<[f64; 3]> = m
            .iter()
            .filter(|(_, t)| *t == TYPE_C)
            .map(|(p, _)| *p)
            .collect();
        for k in 0..6 {
            let a = carbons[k];
            let b = carbons[(k + 1) % 6];
            let d = ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt();
            assert!((d - 1.40).abs() < 0.01, "ring bond {d}");
        }
    }

    #[test]
    fn crystal_counts_and_domain() {
        let (pos, types, dom) = crystal(2, 3, 2, 7.5);
        assert_eq!(pos.len(), 2 * 3 * 2 * 18);
        assert_eq!(types.len(), pos.len());
        assert_eq!(dom.lengths(), [15.0, 22.5, 15.0]);
        assert!(pos.iter().all(|p| dom.contains(p)));
        // Atom density in the molecular-crystal ballpark.
        let rho = pos.len() as f64 / dom.volume();
        assert!(rho > 0.02 && rho < 0.2, "density {rho}");
    }
}
