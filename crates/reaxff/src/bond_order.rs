//! Bond tables, bond orders, and the `∂E/∂BO` force chains.
//!
//! The *bond order neighbor list* kernel of §4.2: a divergent
//! pre-processing pass scans the (much longer) non-bonded neighbor list
//! and compresses the pairs with `BO' > bo_cut` into a dense 2-D bond
//! table — 2-D rather than a flat offset-indexed 1-D view, which is the
//! Appendix-B refactor that removed 32-bit offset overflow ("replace
//! the flat 1-d Views with more natural 2-d neighbor tables. Here no
//! index exceeded a 32-bit integer").
//!
//! Bond-order model (reduced; DESIGN.md §2):
//!
//! ```text
//! BO'_ij = exp(pbo1 · (r/r0)^pbo2) · switch(r)
//! Δ'_i   = Σ_j BO'_ij − valence_i
//! BO_ij  = BO'_ij · f(Δ'_i + Δ'_j),   f = logistic over-coordination
//! Δ_i    = Σ_j BO_ij − valence_i
//! ```
//!
//! Energy terms produce `∂E/∂BO_ij` and `∂E/∂Δ_i` coefficients
//! (`Cdbo`/`CdDelta` in LAMMPS' ReaxFF); [`BondState::accumulate_forces`]
//! propagates them through the correction chain to atom forces.

use crate::params::ReaxParams;
use lkk_core::atom::AtomData;
use lkk_core::comm::GhostMap;
use lkk_core::neighbor::NeighborList;
use lkk_kokkos::Space;

/// Over-coordination correction `f(s)` and derivative: a logistic that
/// is ≈1 for under-coordination and decays as `s = Δ'_i + Δ'_j` grows.
#[inline]
fn over_corr(s: f64, p: f64) -> (f64, f64) {
    // Centered so a perfectly coordinated pair (s ≈ 0) keeps ~92% of
    // its raw bond order.
    let shift = 1.0;
    let e = (p * (s - shift)).exp();
    let f = 1.0 / (1.0 + e);
    let df = -p * e * f * f;
    (f, df)
}

/// One atom's bonds, stored row-major `[nlocal × max_bonds]`.
#[derive(Debug)]
pub struct BondTable {
    pub nlocal: usize,
    pub max_bonds: usize,
    pub count: Vec<u32>,
    /// Neighbor row index in the atom arrays (possibly a ghost).
    pub partner: Vec<u32>,
    /// The partner's *owner* (local index; == partner for local atoms).
    pub owner: Vec<u32>,
    /// Displacement x_j − x_i and distance.
    pub dx: Vec<f64>,
    pub dy: Vec<f64>,
    pub dz: Vec<f64>,
    pub r: Vec<f64>,
    /// Uncorrected bond order and its radial derivative.
    pub bo_p: Vec<f64>,
    pub dbo_p: Vec<f64>,
}

impl BondTable {
    #[inline(always)]
    pub fn slot(&self, i: usize, b: usize) -> usize {
        i * self.max_bonds + b
    }

    /// Total bond slots in use.
    pub fn total_bonds(&self) -> u64 {
        self.count.iter().map(|&c| c as u64).sum()
    }

    /// Build from a full neighbor list. Divergent pre-processing: most
    /// listed pairs fail the `r < r_bond` / `BO' > bo_cut` tests.
    pub fn build(
        atoms: &AtomData,
        list: &NeighborList,
        ghosts: &GhostMap,
        params: &ReaxParams,
        space: &Space,
    ) -> BondTable {
        assert!(!list.half, "ReaxFF bond table needs a full neighbor list");
        let nlocal = atoms.nlocal;
        let mut max_bonds = 12usize;
        let xh = atoms.x.h_view();
        let typ = atoms.typ.h_view();
        loop {
            let mut table = BondTable {
                nlocal,
                max_bonds,
                count: vec![0; nlocal],
                partner: vec![0; nlocal * max_bonds],
                owner: vec![0; nlocal * max_bonds],
                dx: vec![0.0; nlocal * max_bonds],
                dy: vec![0.0; nlocal * max_bonds],
                dz: vec![0.0; nlocal * max_bonds],
                r: vec![0.0; nlocal * max_bonds],
                bo_p: vec![0.0; nlocal * max_bonds],
                dbo_p: vec![0.0; nlocal * max_bonds],
            };
            // Row-disjoint parallel fill through raw row pointers (the
            // same contract as `ParWrite`: every work item writes only
            // its own row).
            struct Raw {
                count: *mut u32,
                partner: *mut u32,
                owner: *mut u32,
                dx: *mut f64,
                dy: *mut f64,
                dz: *mut f64,
                r: *mut f64,
                bo_p: *mut f64,
                dbo_p: *mut f64,
            }
            unsafe impl Sync for Raw {}
            let raw = Raw {
                count: table.count.as_mut_ptr(),
                partner: table.partner.as_mut_ptr(),
                owner: table.owner.as_mut_ptr(),
                dx: table.dx.as_mut_ptr(),
                dy: table.dy.as_mut_ptr(),
                dz: table.dz.as_mut_ptr(),
                r: table.r.as_mut_ptr(),
                bo_p: table.bo_p.as_mut_ptr(),
                dbo_p: table.dbo_p.as_mut_ptr(),
            };
            let needed = space.parallel_reduce(
                "BondOrderBuild",
                nlocal,
                0usize,
                |i| {
                    let t = &raw;
                    let xi = [xh.at([i, 0]), xh.at([i, 1]), xh.at([i, 2])];
                    let ti = typ.at([i]) as usize;
                    let nn = list.numneigh.at([i]) as usize;
                    let mut count = 0usize;
                    for s in 0..nn {
                        let j = list.neighbors.at([i, s]) as usize;
                        let d = [
                            xh.at([j, 0]) - xi[0],
                            xh.at([j, 1]) - xi[1],
                            xh.at([j, 2]) - xi[2],
                        ];
                        let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                        if rsq >= params.r_bond * params.r_bond {
                            continue;
                        }
                        let r = rsq.sqrt();
                        let tj = typ.at([j]) as usize;
                        // Store BO' − bo_cut (the standard ReaxFF shift)
                        // so bond quantities go to zero continuously as
                        // a pair enters or leaves the table.
                        let (bo_raw, dbo_p) = params.bond_order_prime(r, ti, tj);
                        let bo_p = bo_raw - params.bo_cut;
                        if bo_p <= 0.0 {
                            continue;
                        }
                        if count < max_bonds {
                            let sl = i * max_bonds + count;
                            unsafe {
                                *t.partner.add(sl) = j as u32;
                                *t.owner.add(sl) = if j < nlocal {
                                    j as u32
                                } else {
                                    ghosts.owner[j - nlocal] as u32
                                };
                                *t.dx.add(sl) = d[0];
                                *t.dy.add(sl) = d[1];
                                *t.dz.add(sl) = d[2];
                                *t.r.add(sl) = r;
                                *t.bo_p.add(sl) = bo_p;
                                *t.dbo_p.add(sl) = dbo_p;
                            }
                        }
                        count += 1;
                    }
                    unsafe { *t.count.add(i) = count.min(max_bonds) as u32 };
                    count
                },
                usize::max,
            );
            if needed > max_bonds {
                max_bonds = needed + 4;
                continue;
            }
            return table;
        }
    }
}

/// Bond orders plus the reverse-mode coefficient buffers.
#[derive(Debug)]
pub struct BondState {
    pub table: BondTable,
    /// Uncorrected coordination deficit Δ'.
    pub delta_p: Vec<f64>,
    /// Corrected bond order per slot.
    pub bo: Vec<f64>,
    /// Correction factor f and f' per slot.
    pub f: Vec<f64>,
    pub df: Vec<f64>,
    /// Corrected coordination Δ.
    pub delta: Vec<f64>,
    /// ∂E/∂BO per slot (accumulated by energy terms).
    pub c_bo: Vec<f64>,
    /// ∂E/∂Δ per atom.
    pub c_delta: Vec<f64>,
}

impl BondState {
    /// Compute Δ', the corrected BO, and Δ from a bond table.
    pub fn compute(table: BondTable, params: &ReaxParams, atoms: &AtomData) -> BondState {
        let nlocal = table.nlocal;
        let typ = atoms.typ.h_view();
        let mut delta_p = vec![0.0; nlocal];
        for (i, dp) in delta_p.iter_mut().enumerate() {
            let mut sum = 0.0;
            for b in 0..table.count[i] as usize {
                sum += table.bo_p[table.slot(i, b)];
            }
            *dp = sum - params.elements[typ.at([i]) as usize].valence;
        }
        let nslots = nlocal * table.max_bonds;
        let mut bo = vec![0.0; nslots];
        let mut f = vec![0.0; nslots];
        let mut df = vec![0.0; nslots];
        let mut delta = vec![0.0; nlocal];
        for i in 0..nlocal {
            let mut sum = 0.0;
            for b in 0..table.count[i] as usize {
                let sl = table.slot(i, b);
                let jo = table.owner[sl] as usize;
                let s = delta_p[i] + delta_p[jo];
                let (fv, dfv) = over_corr(s, params.p_corr);
                f[sl] = fv;
                df[sl] = dfv;
                bo[sl] = table.bo_p[sl] * fv;
                sum += bo[sl];
            }
            delta[i] = sum - params.elements[typ.at([i]) as usize].valence;
        }
        BondState {
            delta_p,
            bo,
            f,
            df,
            delta,
            c_bo: vec![0.0; nslots],
            c_delta: vec![0.0; nlocal],
            table,
        }
    }

    /// Bond energy `E = Σ_{i<j} −De·BO·exp(pbe1(1−BO))` plus the
    /// over-coordination penalty `Σ_i p_over·Δ_i²` (counted on σ(Δ)>0
    /// smoothly via softplus square). Accumulates `c_bo` / `c_delta`.
    pub fn bonded_energy(&mut self, params: &ReaxParams, atoms: &AtomData) -> f64 {
        let typ = atoms.typ.h_view();
        let mut energy = 0.0;
        let nlocal = self.table.nlocal;
        for i in 0..nlocal {
            for b in 0..self.table.count[i] as usize {
                let sl = self.table.slot(i, b);
                let jo = self.table.owner[sl] as usize;
                // Count each physical bond once (robust for ghost
                // partners because owner indices are local).
                if jo < i {
                    continue;
                }
                if jo == i {
                    // Self-image bond: impossible for boxes larger than
                    // 2·r_bond, which `build_ghosts` already enforces.
                    continue;
                }
                let bo = self.bo[sl];
                let ti = typ.at([i]) as usize;
                let tj = typ.at([self.table.partner[sl] as usize]) as usize;
                let de = params.de(ti, tj);
                let ex = (params.pbe1 * (1.0 - bo)).exp();
                // g(BO) = BO/(BO + w) softens the attachment so both E
                // and dE/dBO vanish as a bond leaves the table (keeps
                // forces continuous across table rebuilds).
                let w = 0.02;
                let g = bo / (bo + w);
                let dg = w / ((bo + w) * (bo + w));
                energy += -de * bo * g * ex;
                let dedbo = -de * ex * (g + bo * dg - params.pbe1 * bo * g);
                // The i-row slot and the mirrored j-row slot hold the
                // same BO; assign the whole derivative to this slot.
                self.c_bo[sl] += dedbo;
            }
        }
        // Over-coordination: smooth one-sided penalty
        // E = p_over · softplus(Δ)² with softplus(x) = ln(1+eˣ)/1 scaled.
        for i in 0..nlocal {
            let d = self.delta[i];
            let sp = (1.0 + d.exp()).ln();
            let dsp = 1.0 / (1.0 + (-d).exp());
            energy += params.p_over * sp * sp;
            self.c_delta[i] += params.p_over * 2.0 * sp * dsp;
        }
        energy
    }

    /// Propagate the accumulated `∂E/∂BO` and `∂E/∂Δ` coefficients
    /// through the correction chain and add the resulting pair forces
    /// into `forces` (local rows; ghosts fold to owners). Returns the
    /// virial contribution.
    pub fn accumulate_forces(&mut self, forces: &mut [[f64; 3]]) -> f64 {
        let t = &self.table;
        let nlocal = t.nlocal;
        // Fold ∂E/∂Δ into each slot's ∂E/∂BO (Δ_i = Σ BO − val): the
        // bond (i,j) appears in both rows, contributing to Δ_i via the
        // i-row slot and Δ_j via the j-row slot.
        for i in 0..nlocal {
            for b in 0..t.count[i] as usize {
                let sl = t.slot(i, b);
                self.c_bo[sl] += self.c_delta[i];
            }
        }
        // Chain through BO = BO'·f(Δ'_i + Δ'_j):
        //   ∂E/∂BO'_slot (direct)   = c_bo·f
        //   ∂E/∂Δ'                  += c_bo·BO'·f'
        let mut c_dp = vec![0.0; nlocal];
        for i in 0..nlocal {
            for b in 0..t.count[i] as usize {
                let sl = t.slot(i, b);
                let jo = t.owner[sl] as usize;
                let w = self.c_bo[sl] * t.bo_p[sl] * self.df[sl];
                c_dp[i] += w;
                c_dp[jo] += w;
            }
        }
        // Final radial pass: ∂E/∂BO'_slot = c_bo·f + c_dp_i, and
        // BO'_slot depends only on r_slot.
        let mut virial = 0.0;
        for i in 0..nlocal {
            for b in 0..t.count[i] as usize {
                let sl = t.slot(i, b);
                let jo = t.owner[sl] as usize;
                let coeff = (self.c_bo[sl] * self.f[sl] + c_dp[i]) * t.dbo_p[sl];
                // dE/dr along d = x_j − x_i ⇒ force on j is −coeff·d̂.
                let rinv = 1.0 / t.r[sl];
                let fx = -coeff * t.dx[sl] * rinv;
                let fy = -coeff * t.dy[sl] * rinv;
                let fz = -coeff * t.dz[sl] * rinv;
                forces[jo][0] += fx;
                forces[jo][1] += fy;
                forces[jo][2] += fz;
                forces[i][0] -= fx;
                forces[i][1] -= fy;
                forces[i][2] -= fz;
                virial += t.dx[sl] * fx + t.dy[sl] * fy + t.dz[sl] * fz;
            }
        }
        virial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkk_core::comm::build_ghosts;
    use lkk_core::domain::Domain;
    use lkk_core::neighbor::NeighborSettings;

    fn small_system(
        positions: &[[f64; 3]],
        l: f64,
    ) -> (AtomData, Domain, NeighborList, GhostMap, ReaxParams) {
        let params = ReaxParams::single_element();
        let mut atoms = AtomData::from_positions(positions);
        let domain = Domain::cubic(l);
        atoms.wrap_positions(&domain);
        let settings = NeighborSettings::new(params.r_nonb, 0.3, false);
        let ghosts = build_ghosts(&mut atoms, &domain, settings.cutneigh());
        let list = NeighborList::build(&atoms, &domain, &settings, &Space::Serial);
        (atoms, domain, list, ghosts, params)
    }

    #[test]
    fn dimer_has_one_bond_each() {
        let (atoms, _, list, ghosts, params) =
            small_system(&[[9.0, 9.0, 9.0], [10.4, 9.0, 9.0]], 18.0);
        let table = BondTable::build(&atoms, &list, &ghosts, &params, &Space::Serial);
        assert_eq!(table.count, vec![1, 1]);
        let sl0 = table.slot(0, 0);
        assert_eq!(table.owner[sl0], 1);
        assert!((table.r[sl0] - 1.4).abs() < 1e-12);
        assert!(table.bo_p[sl0] > 0.5);
        assert_eq!(table.total_bonds(), 2);
    }

    #[test]
    fn far_pair_is_not_bonded() {
        let (atoms, _, list, ghosts, params) =
            small_system(&[[9.0, 9.0, 9.0], [13.0, 9.0, 9.0]], 18.0);
        let table = BondTable::build(&atoms, &list, &ghosts, &params, &Space::Serial);
        assert_eq!(table.total_bonds(), 0);
    }

    #[test]
    fn bond_crossing_pbc_found_via_ghost() {
        let (atoms, _, list, ghosts, params) =
            small_system(&[[0.3, 9.0, 9.0], [17.1, 9.0, 9.0]], 18.0);
        // Separation through the boundary: 0.3 + (18−17.1) = 1.2.
        let table = BondTable::build(&atoms, &list, &ghosts, &params, &Space::Serial);
        assert_eq!(table.count, vec![1, 1]);
        let sl = table.slot(0, 0);
        assert!((table.r[sl] - 1.2).abs() < 1e-12);
        // The partner row is a ghost; its owner is atom 1.
        assert!(table.partner[sl] as usize >= atoms.nlocal);
        assert_eq!(table.owner[sl], 1);
    }

    #[test]
    fn overcoordination_reduces_bond_order() {
        // A central atom with 6 close neighbors is over-coordinated
        // (valence 4): corrected BO < raw BO'.
        let mut pos = vec![[9.0, 9.0, 9.0]];
        let d = 1.4;
        for k in 0..3 {
            for s in [-1.0, 1.0] {
                let mut p = [9.0, 9.0, 9.0];
                p[k] += s * d;
                pos.push(p);
            }
        }
        let (atoms, _, list, ghosts, params) = small_system(&pos, 18.0);
        let table = BondTable::build(&atoms, &list, &ghosts, &params, &Space::Serial);
        assert_eq!(table.count[0], 6);
        let state = BondState::compute(table, &params, &atoms);
        let sl = state.table.slot(0, 0);
        assert!(state.bo[sl] < state.table.bo_p[sl]);
        assert!(state.delta_p[0] > 0.0, "Δ' = {}", state.delta_p[0]);
    }

    /// The decisive test: forces from the full BO chain (including the
    /// over-coordination correction and Δ-penalty) match the finite
    /// difference of the bonded energy.
    #[test]
    fn bonded_forces_match_finite_difference() {
        let base = vec![
            [9.0, 9.0, 9.0],
            [10.35, 9.1, 8.9],
            [8.1, 10.0, 9.2],
            [9.2, 8.0, 10.1],
            [10.0, 10.2, 10.0],
        ];
        let energy_of = |pos: &[[f64; 3]]| -> f64 {
            let (atoms, _, list, ghosts, params) = small_system(pos, 18.0);
            let table = BondTable::build(&atoms, &list, &ghosts, &params, &Space::Serial);
            let mut state = BondState::compute(table, &params, &atoms);
            state.bonded_energy(&params, &atoms)
        };
        // Analytic forces.
        let (atoms, _, list, ghosts, params) = small_system(&base, 18.0);
        let table = BondTable::build(&atoms, &list, &ghosts, &params, &Space::Serial);
        let mut state = BondState::compute(table, &params, &atoms);
        let _e = state.bonded_energy(&params, &atoms);
        let mut forces = vec![[0.0; 3]; atoms.nlocal];
        state.accumulate_forces(&mut forces);
        let h = 1e-6;
        for a in 0..base.len() {
            for k in 0..3 {
                let mut pp = base.clone();
                let mut pm = base.clone();
                pp[a][k] += h;
                pm[a][k] -= h;
                let fd = -(energy_of(&pp) - energy_of(&pm)) / (2.0 * h);
                assert!(
                    (forces[a][k] - fd).abs() < 1e-5 * fd.abs().max(1.0),
                    "atom {a} dir {k}: analytic {} vs fd {fd}",
                    forces[a][k]
                );
            }
        }
    }

    #[test]
    fn over_corr_derivative_matches_fd() {
        for &s in &[-2.0f64, -0.5, 0.0, 0.8, 1.5, 3.0] {
            let h = 1e-7;
            let fd = (over_corr(s + h, 2.5).0 - over_corr(s - h, 2.5).0) / (2.0 * h);
            let (_, df) = over_corr(s, 2.5);
            assert!((df - fd).abs() < 1e-6);
        }
    }
}
