//! The four-body torsion term — the flagship divergence case of §4.2.1.
//!
//! "The four-body force considers potentially bonded quads of atoms
//! i, j, k, l. ... The quad of atoms contributes to the torsion force
//! if (i, j) are bonded, (i, k) are bonded, and (j, l) are bonded.
//! There is also a constraint on the product of the bond orders. For
//! HNS, in practice fewer than 5% of possible quads satisfy each
//! constraint, which leads to a high degree of divergence. ... The
//! solution here is to split the kernel into two divergent but
//! relatively inexpensive pre-processing kernels and a fully convergent
//! computation kernel. The first pre-processing kernel counts the total
//! number of quads ..., the second stores the quads. ... all quads for
//! an atom i are guaranteed to be contiguous."
//!
//! Reduced torsional form around the dihedral chain `k–i–j–l`:
//!
//! ```text
//! E = k_tors · fb(BO_ik) fb(BO_ij) fb(BO_jl) · (1 + cos 3φ),
//! cos 3φ = 4 cos³φ − 3 cos φ,
//! ```
//!
//! with `fb` supported only above `tors_bo_min`, so the hard
//! pre-processing filter coincides exactly with the support of the
//! energy (forces stay continuous when quads enter/leave the table).

use crate::angles::fb;
use crate::bond_order::BondState;
use crate::params::ReaxParams;
use lkk_kokkos::atomic::atomic_add_f64;
use lkk_kokkos::Space;

/// A compressed quad: center atom `i`, bond slots for (i,k), (i,j) in
/// `i`'s row, and the slot for (j,l) in `owner(j)`'s row.
#[derive(Debug, Clone, Copy)]
pub struct Quad {
    pub i: u32,
    pub b_ik: u32,
    pub b_ij: u32,
    pub b_jl: u32,
}

/// Pre-processing statistics: candidates examined vs. quads kept
/// (the paper's <5% selectivity).
#[derive(Debug, Clone, Copy, Default)]
pub struct QuadStats {
    pub candidates: u64,
    pub kept: u64,
}

#[inline]
fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

#[inline]
fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// Is the quad eligible? (All three bond orders in the `fb` support,
/// `l` distinct from `i` and `k`, one direction per center bond.)
#[inline]
#[allow(clippy::too_many_arguments)]
fn eligible(
    state: &BondState,
    params: &ReaxParams,
    i: usize,
    s_ik: usize,
    s_ij: usize,
    s_jl: usize,
) -> bool {
    let t = &state.table;
    let bo_min = params.tors_bo_min;
    if state.bo[s_ik] <= bo_min || state.bo[s_ij] <= bo_min || state.bo[s_jl] <= bo_min {
        return false;
    }
    let lo = t.owner[s_jl] as usize;
    let ko = t.owner[s_ik] as usize;
    // Exclude l == i (the bond (j,l) pointing straight back at i).
    if lo == i {
        let back = [
            t.dx[s_jl] + t.dx[s_ij],
            t.dy[s_jl] + t.dy[s_ij],
            t.dz[s_jl] + t.dz[s_ij],
        ];
        if dot(back, back) < 1e-16 {
            return false;
        }
    }
    // Exclude l == k (a 3-ring closing on the same atom image).
    if lo == ko {
        let diff = [
            t.dx[s_jl] - (t.dx[s_ik] - t.dx[s_ij]),
            t.dy[s_jl] - (t.dy[s_ik] - t.dy[s_ij]),
            t.dz[s_jl] - (t.dz[s_ik] - t.dz[s_ij]),
        ];
        if dot(diff, diff) < 1e-16 {
            return false;
        }
    }
    true
}

/// Count + fill the compressed quad table. Each physical dihedral is
/// generated once per *directed* center bond; we keep only the
/// direction with `i < owner(j)` (ties cannot occur for boxes larger
/// than twice the bond cutoff).
pub fn build_quads(
    state: &BondState,
    params: &ReaxParams,
    space: &Space,
) -> (Vec<Quad>, QuadStats) {
    let t = &state.table;
    let nlocal = t.nlocal;
    let mut counts = vec![0usize; nlocal];
    let mut cands = vec![0u64; nlocal];
    {
        let cw = counts.as_mut_ptr() as usize;
        let aw = cands.as_mut_ptr() as usize;
        space.parallel_for("TorsionCount", nlocal, |i| {
            let nb = t.count[i] as usize;
            let mut c = 0usize;
            let mut cand = 0u64;
            for b_ij in 0..nb {
                let s_ij = t.slot(i, b_ij);
                let jo = t.owner[s_ij] as usize;
                if jo <= i {
                    continue;
                }
                let nbj = t.count[jo] as usize;
                for b_ik in 0..nb {
                    if b_ik == b_ij {
                        continue;
                    }
                    for b_jl in 0..nbj {
                        cand += 1;
                        let s_ik = t.slot(i, b_ik);
                        let s_jl = t.slot(jo, b_jl);
                        // Skip the bond (j, i) itself.
                        if t.owner[s_jl] as usize == i {
                            let back = [
                                t.dx[s_jl] + t.dx[s_ij],
                                t.dy[s_jl] + t.dy[s_ij],
                                t.dz[s_jl] + t.dz[s_ij],
                            ];
                            if dot(back, back) < 1e-16 {
                                continue;
                            }
                        }
                        if eligible(state, params, i, s_ik, s_ij, s_jl) {
                            c += 1;
                        }
                    }
                }
            }
            unsafe {
                *(cw as *mut usize).add(i) = c;
                *(aw as *mut u64).add(i) = cand;
            }
        });
    }
    let mut offsets = vec![0usize; nlocal + 1];
    let total = space.parallel_scan("TorsionScan", &counts, &mut offsets);
    let mut quads = vec![
        Quad {
            i: 0,
            b_ik: 0,
            b_ij: 0,
            b_jl: 0
        };
        total
    ];
    {
        let qw = quads.as_mut_ptr() as usize;
        space.parallel_for("TorsionFill", nlocal, |i| {
            let nb = t.count[i] as usize;
            let mut at = offsets[i];
            for b_ij in 0..nb {
                let s_ij = t.slot(i, b_ij);
                let jo = t.owner[s_ij] as usize;
                if jo <= i {
                    continue;
                }
                let nbj = t.count[jo] as usize;
                for b_ik in 0..nb {
                    if b_ik == b_ij {
                        continue;
                    }
                    for b_jl in 0..nbj {
                        let s_ik = t.slot(i, b_ik);
                        let s_jl = t.slot(jo, b_jl);
                        if t.owner[s_jl] as usize == i {
                            let back = [
                                t.dx[s_jl] + t.dx[s_ij],
                                t.dy[s_jl] + t.dy[s_ij],
                                t.dz[s_jl] + t.dz[s_ij],
                            ];
                            if dot(back, back) < 1e-16 {
                                continue;
                            }
                        }
                        if eligible(state, params, i, s_ik, s_ij, s_jl) {
                            unsafe {
                                *(qw as *mut Quad).add(at) = Quad {
                                    i: i as u32,
                                    b_ik: b_ik as u32,
                                    b_ij: b_ij as u32,
                                    b_jl: b_jl as u32,
                                };
                            }
                            at += 1;
                        }
                    }
                }
            }
        });
    }
    let stats = QuadStats {
        candidates: cands.iter().sum(),
        kept: total as u64,
    };
    (quads, stats)
}

/// Fully convergent torsion kernel over the compressed quad table.
/// Adds forces to owner rows, `∂E/∂BO` into `state.c_bo` (atomics),
/// and returns `(energy, virial)`.
pub fn compute_torsions(
    quads: &[Quad],
    state: &mut BondState,
    params: &ReaxParams,
    forces: &mut [[f64; 3]],
    space: &Space,
) -> (f64, f64) {
    let c_bo_ptr = state.c_bo.as_mut_ptr() as usize;
    let f_ptr = forces.as_mut_ptr() as usize;
    let t = &state.table;
    let bo = &state.bo;
    let bo_min = params.tors_bo_min;
    space.parallel_reduce(
        "TorsionCompute",
        quads.len(),
        (0.0f64, 0.0f64),
        |q| {
            let quad = quads[q];
            let i = quad.i as usize;
            let s_ik = t.slot(i, quad.b_ik as usize);
            let s_ij = t.slot(i, quad.b_ij as usize);
            let jo = t.owner[s_ij] as usize;
            let s_jl = t.slot(jo, quad.b_jl as usize);
            let ko = t.owner[s_ik] as usize;
            let lo = t.owner[s_jl] as usize;
            // Chain vectors: b1 = x_i−x_k, b2 = x_j−x_i, b3 = x_l−x_j.
            let b1 = [-t.dx[s_ik], -t.dy[s_ik], -t.dz[s_ik]];
            let b2 = [t.dx[s_ij], t.dy[s_ij], t.dz[s_ij]];
            let b3 = [t.dx[s_jl], t.dy[s_jl], t.dz[s_jl]];
            let n1 = cross(b1, b2);
            let n2 = cross(b2, b3);
            let n1sq = dot(n1, n1);
            let n2sq = dot(n2, n2);
            if n1sq < 1e-12 || n2sq < 1e-12 {
                return (0.0, 0.0); // collinear chain: no defined dihedral
            }
            let inv = 1.0 / (n1sq * n2sq).sqrt();
            let c = (dot(n1, n2) * inv).clamp(-1.0, 1.0);
            let (fb1, dfb1) = fb(bo[s_ik], bo_min, params.p_ang_bo);
            let (fb2, dfb2) = fb(bo[s_ij], bo_min, params.p_ang_bo);
            let (fb3, dfb3) = fb(bo[s_jl], bo_min, params.p_ang_bo);
            // 1 + cos3φ = 1 + 4c³ − 3c.
            let shape = 1.0 + 4.0 * c * c * c - 3.0 * c;
            let e = params.k_tors * fb1 * fb2 * fb3 * shape;
            unsafe {
                let p = c_bo_ptr as *mut f64;
                atomic_add_f64(p.add(s_ik), params.k_tors * dfb1 * fb2 * fb3 * shape);
                atomic_add_f64(p.add(s_ij), params.k_tors * fb1 * dfb2 * fb3 * shape);
                atomic_add_f64(p.add(s_jl), params.k_tors * fb1 * fb2 * dfb3 * shape);
            }
            // Geometric force through cosφ.
            let dedc = params.k_tors * fb1 * fb2 * fb3 * (12.0 * c * c - 3.0);
            // v1 = ∂c/∂n1, v2 = ∂c/∂n2.
            let mut v1 = [0.0f64; 3];
            let mut v2 = [0.0f64; 3];
            for k in 0..3 {
                v1[k] = n2[k] * inv - c * n1[k] / n1sq;
                v2[k] = n1[k] * inv - c * n2[k] / n2sq;
            }
            let g_b1 = cross(b2, v1);
            let g_b2 = [
                cross(v1, b1)[0] + cross(b3, v2)[0],
                cross(v1, b1)[1] + cross(b3, v2)[1],
                cross(v1, b1)[2] + cross(b3, v2)[2],
            ];
            let g_b3 = cross(v2, b2);
            // Position gradients (b1 = x_i−x_k etc.).
            let mut w = 0.0;
            unsafe {
                let fp = f_ptr as *mut [f64; 3];
                for k in 0..3 {
                    let f_k = dedc * g_b1[k]; // −∂E/∂x_k = +dedc·g_b1
                    let f_i = -dedc * (g_b1[k] - g_b2[k]);
                    let f_j = -dedc * (g_b2[k] - g_b3[k]);
                    let f_l = -dedc * g_b3[k];
                    atomic_add_f64((*fp.add(ko)).as_mut_ptr().add(k), f_k);
                    atomic_add_f64((*fp.add(i)).as_mut_ptr().add(k), f_i);
                    atomic_add_f64((*fp.add(jo)).as_mut_ptr().add(k), f_j);
                    atomic_add_f64((*fp.add(lo)).as_mut_ptr().add(k), f_l);
                    // Virial from the three chain vectors: Σ b·f over
                    // the bond-relative force decomposition.
                    w += b1[k] * (-f_k) + b3[k] * f_l + b2[k] * (f_j + f_l);
                }
            }
            (e, w)
        },
        |a, b| (a.0 + b.0, a.1 + b.1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bond_order::{BondState, BondTable};
    use lkk_core::atom::AtomData;
    use lkk_core::comm::build_ghosts;
    use lkk_core::domain::Domain;
    use lkk_core::neighbor::{NeighborList, NeighborSettings};
    use lkk_kokkos::Space;

    #[test]
    fn cross_and_dot() {
        let x = [1.0, 0.0, 0.0];
        let y = [0.0, 1.0, 0.0];
        assert_eq!(cross(x, y), [0.0, 0.0, 1.0]);
        assert_eq!(dot(x, y), 0.0);
    }

    fn state_for(positions: &[[f64; 3]]) -> (BondState, crate::params::ReaxParams, AtomData) {
        let params = crate::params::ReaxParams::single_element();
        let mut atoms = AtomData::from_positions(positions);
        let domain = Domain::cubic(18.0);
        atoms.wrap_positions(&domain);
        let settings = NeighborSettings::new(params.r_nonb, 0.3, false);
        let ghosts = build_ghosts(&mut atoms, &domain, settings.cutneigh());
        let list = NeighborList::build(&atoms, &domain, &settings, &Space::Serial);
        let table = BondTable::build(&atoms, &list, &ghosts, &params, &Space::Serial);
        let state = BondState::compute(table, &params, &atoms);
        (state, params, atoms)
    }

    #[test]
    fn butane_like_chain_has_exactly_one_quad() {
        // A 4-atom zig-zag chain k–i–j–l: one dihedral.
        let (state, params, _atoms) = state_for(&[
            [6.0, 6.0, 6.0],
            [7.4, 6.2, 6.0],
            [8.0, 7.4, 6.4],
            [9.4, 7.5, 6.7],
        ]);
        let (quads, stats) = build_quads(&state, &params, &Space::Serial);
        assert_eq!(quads.len(), 1, "stats {stats:?}");
        assert_eq!(stats.kept, 1);
        // And the paper's selectivity statistic is meaningful:
        assert!(stats.candidates >= stats.kept);
    }

    #[test]
    fn dimer_has_no_quads() {
        let (state, params, _): (BondState, _, _) = state_for(&[[6.0, 6.0, 6.0], [7.4, 6.0, 6.0]]);
        let (quads, stats) = build_quads(&state, &params, &Space::Serial);
        assert!(quads.is_empty());
        assert_eq!(stats.kept, 0);
    }

    #[test]
    fn quad_table_is_deterministic_across_spaces() {
        // The scan+fill construction ("all quads for an atom i are
        // guaranteed to be contiguous") produces identical tables under
        // serial and threaded execution.
        let mut positions = Vec::new();
        for m in 0..3 {
            let base = [5.0 + 3.5 * m as f64, 6.0, 6.0];
            positions.push(base);
            positions.push([base[0] + 1.4, base[1] + 0.2, base[2]]);
            positions.push([base[0] + 2.0, base[1] + 1.4, base[2] + 0.4]);
        }
        let (mut state, params, _) = state_for(&positions);
        let (q1, s1) = build_quads(&state, &params, &Space::Serial);
        let (q2, s2) = build_quads(&state, &params, &Space::Threads);
        assert_eq!(s1.kept, s2.kept);
        for (a, b) in q1.iter().zip(&q2) {
            assert_eq!((a.i, a.b_ik, a.b_ij, a.b_jl), (b.i, b.b_ik, b.b_ij, b.b_jl));
        }
        // Torsion energy is identical too.
        let mut f1 = vec![[0.0; 3]; state.table.nlocal];
        let (e1, _) = compute_torsions(&q1, &mut state, &params, &mut f1, &Space::Serial);
        state.c_bo.iter_mut().for_each(|x| *x = 0.0);
        let mut f2 = vec![[0.0; 3]; state.table.nlocal];
        let (e2, _) = compute_torsions(&q2, &mut state, &params, &mut f2, &Space::Threads);
        assert!((e1 - e2).abs() < 1e-12 * e1.abs().max(1.0));
    }
}
