//! Charge equilibration (QEq), §4.2.2-§4.2.3.
//!
//! Minimize `E(q) = Σ χᵢqᵢ + Σ ηᵢqᵢ² + Σ_{i<j} H_ij qᵢqⱼ` subject to
//! `Σ qᵢ = 0`. With `A = H_offdiag + diag(2η)`, the constrained
//! minimizer is obtained from **two Krylov solves** sharing the matrix:
//!
//! ```text
//! A s = −χ,   A t = −1,   q = s − (Σs / Σt)·t.
//! ```
//!
//! The sparse matrix uses the paper's *over-allocated CSR*: row storage
//! is sized by the neighbor-list capacity, "described by four data
//! structures: a flat array of non-zero values, the column offsets for
//! each value, the offset array, and an additional array that specifies
//! the number of non-zero elements per row". Following Appendix B, the
//! row-offset array is 64-bit (`i64`) while column indices and row
//! lengths stay 32-bit.
//!
//! The two CG solves run *fused* (§4.2.3): each iteration performs one
//! dual SpMV that loads the matrix once and applies it to both
//! right-hand sides — the work-batching/ILP pattern of §4.3.4.

use crate::nonbonded::{coulomb_hij, gamma_ij};
use crate::params::ReaxParams;
use lkk_core::atom::AtomData;
use lkk_core::comm::GhostMap;
use lkk_core::neighbor::NeighborList;
use lkk_kokkos::Space;

/// Over-allocated CSR matrix for QEq (symmetric by construction).
#[derive(Debug)]
pub struct QeqMatrix {
    pub n: usize,
    /// Allocated slots per row (the neighbor-list capacity).
    pub max_row: usize,
    /// 64-bit row offsets into `vals`/`cols` (Appendix B).
    pub offsets: Vec<i64>,
    /// Actual non-zeros per row (32-bit suffices: bounded by `max_row`).
    pub nnz: Vec<i32>,
    /// Column indices (32-bit; bounded by the matrix rank).
    pub cols: Vec<i32>,
    /// Matrix values (off-diagonal `H_ij`).
    pub vals: Vec<f64>,
    /// Diagonal `2ηᵢ`.
    pub diag: Vec<f64>,
}

impl QeqMatrix {
    /// Build from the full neighbor list: a scan over the row
    /// capacities fixes the (over-allocated) offsets, then a fill
    /// kernel computes values/columns/row-lengths (§4.2.2's
    /// scan + fill structure; on real devices the fill uses
    /// hierarchical row parallelism).
    pub fn build(
        atoms: &AtomData,
        list: &NeighborList,
        ghosts: &GhostMap,
        params: &ReaxParams,
        space: &Space,
    ) -> QeqMatrix {
        assert!(!list.half, "QEq needs a full neighbor list");
        let n = atoms.nlocal;
        let max_row = list.maxneigh;
        // Over-allocated offsets: capacity-based, i64 per Appendix B.
        let offsets: Vec<i64> = (0..=n).map(|i| i as i64 * max_row as i64).collect();
        let mut m = QeqMatrix {
            n,
            max_row,
            offsets,
            nnz: vec![0; n],
            cols: vec![0; n * max_row],
            vals: vec![0.0; n * max_row],
            diag: vec![0.0; n],
        };
        let xh = atoms.x.h_view();
        let typ = atoms.typ.h_view();
        let cutsq = params.r_nonb * params.r_nonb;
        struct Raw {
            nnz: *mut i32,
            cols: *mut i32,
            vals: *mut f64,
            diag: *mut f64,
        }
        unsafe impl Sync for Raw {}
        let raw = Raw {
            nnz: m.nnz.as_mut_ptr(),
            cols: m.cols.as_mut_ptr(),
            vals: m.vals.as_mut_ptr(),
            diag: m.diag.as_mut_ptr(),
        };
        let offsets_ref = &m.offsets;
        space.parallel_for("QEqMatrixBuild", n, |i| {
            let raw = &raw; // capture the Sync wrapper, not raw fields
            let xi = [xh.at([i, 0]), xh.at([i, 1]), xh.at([i, 2])];
            let ti = typ.at([i]) as usize;
            let nn = list.numneigh.at([i]) as usize;
            let base = offsets_ref[i] as usize;
            let mut count = 0usize;
            for s in 0..nn {
                let j = list.neighbors.at([i, s]) as usize;
                let d = [
                    xi[0] - xh.at([j, 0]),
                    xi[1] - xh.at([j, 1]),
                    xi[2] - xh.at([j, 2]),
                ];
                let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if rsq >= cutsq {
                    continue;
                }
                let r = rsq.sqrt();
                let tj = typ.at([j]) as usize;
                let jo = if j < atoms.nlocal {
                    j
                } else {
                    ghosts.owner[j - atoms.nlocal]
                };
                let (h, _) = coulomb_hij(r, gamma_ij(params, ti, tj), params);
                unsafe {
                    *raw.cols.add(base + count) = jo as i32;
                    *raw.vals.add(base + count) = h;
                }
                count += 1;
            }
            unsafe {
                *raw.nnz.add(i) = count as i32;
                *raw.diag.add(i) = 2.0 * params.elements[ti].eta;
            }
        });
        m
    }

    /// Total stored non-zeros (excluding the diagonal).
    pub fn total_nnz(&self) -> u64 {
        self.nnz.iter().map(|&c| c as u64).sum()
    }

    /// Fused dual sparse matrix-vector product:
    /// `y1 = A·x1`, `y2 = A·x2` with one pass over the matrix (§4.2.3).
    pub fn spmv_fused(
        &self,
        x1: &[f64],
        x2: &[f64],
        y1: &mut [f64],
        y2: &mut [f64],
        space: &Space,
    ) {
        let y1p = y1.as_mut_ptr() as usize;
        let y2p = y2.as_mut_ptr() as usize;
        space.parallel_for("QEqSpmvFused", self.n, |i| {
            let base = self.offsets[i] as usize;
            let nnz = self.nnz[i] as usize;
            let mut a1 = self.diag[i] * x1[i];
            let mut a2 = self.diag[i] * x2[i];
            for s in 0..nnz {
                // One matrix-element load feeds both accumulators —
                // the fused-solve reuse the paper describes.
                let v = self.vals[base + s];
                let c = self.cols[base + s] as usize;
                a1 += v * x1[c];
                a2 += v * x2[c];
            }
            unsafe {
                *(y1p as *mut f64).add(i) = a1;
                *(y2p as *mut f64).add(i) = a2;
            }
        });
    }
}

/// Result of the dual-CG charge solve.
#[derive(Debug, Clone)]
pub struct QeqSolution {
    /// Equilibrated charges (sum exactly constrained to 0).
    pub q: Vec<f64>,
    /// CG iterations used (both systems share iterations: fused).
    pub iterations: usize,
    /// The self + interaction electrostatic energy
    /// `Σχq + Σηq² + Σ_{i<j} H q q` = `χ·q + ½ qᵀAq`.
    pub energy: f64,
}

/// Solve the QEq system with fused dual Jacobi-preconditioned CG.
pub fn solve(matrix: &QeqMatrix, chi: &[f64], params: &ReaxParams, space: &Space) -> QeqSolution {
    let n = matrix.n;
    let tol = params.qeq_tol;
    let b1: Vec<f64> = chi.iter().map(|&c| -c).collect();
    let b2: Vec<f64> = vec![-1.0; n];
    let minv: Vec<f64> = matrix.diag.iter().map(|&d| 1.0 / d).collect();

    let mut s = vec![0.0; n];
    let mut t = vec![0.0; n];
    let mut r1 = b1.clone();
    let mut r2 = b2.clone();
    let mut z1: Vec<f64> = r1.iter().zip(&minv).map(|(r, m)| r * m).collect();
    let mut z2: Vec<f64> = r2.iter().zip(&minv).map(|(r, m)| r * m).collect();
    let mut p1 = z1.clone();
    let mut p2 = z2.clone();
    let dotp = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
    let mut rz1 = dotp(&r1, &z1);
    let mut rz2 = dotp(&r2, &z2);
    let b1norm = dotp(&b1, &b1).sqrt().max(1e-300);
    let b2norm = dotp(&b2, &b2).sqrt();
    let mut ap1 = vec![0.0; n];
    let mut ap2 = vec![0.0; n];
    let mut iterations = 0;
    for _ in 0..(4 * n + 64) {
        let c1 = dotp(&r1, &r1).sqrt() / b1norm < tol;
        let c2 = dotp(&r2, &r2).sqrt() / b2norm < tol;
        if c1 && c2 {
            break;
        }
        iterations += 1;
        matrix.spmv_fused(&p1, &p2, &mut ap1, &mut ap2, space);
        let alpha1 = if c1 { 0.0 } else { rz1 / dotp(&p1, &ap1) };
        let alpha2 = if c2 { 0.0 } else { rz2 / dotp(&p2, &ap2) };
        for i in 0..n {
            s[i] += alpha1 * p1[i];
            t[i] += alpha2 * p2[i];
            r1[i] -= alpha1 * ap1[i];
            r2[i] -= alpha2 * ap2[i];
            z1[i] = r1[i] * minv[i];
            z2[i] = r2[i] * minv[i];
        }
        let rz1_new = dotp(&r1, &z1);
        let rz2_new = dotp(&r2, &z2);
        let beta1 = if c1 || rz1 == 0.0 { 0.0 } else { rz1_new / rz1 };
        let beta2 = if c2 || rz2 == 0.0 { 0.0 } else { rz2_new / rz2 };
        for i in 0..n {
            p1[i] = z1[i] + beta1 * p1[i];
            p2[i] = z2[i] + beta2 * p2[i];
        }
        rz1 = rz1_new;
        rz2 = rz2_new;
    }
    // Constrained combination: q = s − (Σs/Σt)·t.
    let mu = s.iter().sum::<f64>() / t.iter().sum::<f64>();
    let q: Vec<f64> = s.iter().zip(&t).map(|(si, ti)| si - mu * ti).collect();
    // Energy = χ·q + ½ qᵀAq.
    let mut aq1 = vec![0.0; n];
    let mut aq2 = vec![0.0; n];
    matrix.spmv_fused(&q, &q, &mut aq1, &mut aq2, space);
    let energy = dotp(chi, &q) + 0.5 * dotp(&q, &aq1);
    QeqSolution {
        q,
        iterations,
        energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkk_core::comm::build_ghosts;
    use lkk_core::domain::Domain;
    use lkk_core::neighbor::NeighborSettings;

    fn setup(positions: &[[f64; 3]], types: &[i32], l: f64) -> (AtomData, QeqMatrix, ReaxParams) {
        let params = ReaxParams::hns_like();
        let mut atoms = AtomData::from_positions(positions);
        for (i, &t) in types.iter().enumerate() {
            atoms.typ.h_view_mut().set([i], t);
        }
        atoms.mass = vec![1.0; 4];
        let domain = Domain::cubic(l);
        atoms.wrap_positions(&domain);
        let settings = NeighborSettings::new(params.r_nonb, 0.3, false);
        let ghosts = build_ghosts(&mut atoms, &domain, settings.cutneigh());
        let list = NeighborList::build(&atoms, &domain, &settings, &Space::Serial);
        let m = QeqMatrix::build(&atoms, &list, &ghosts, &params, &Space::Serial);
        (atoms, m, params)
    }

    #[test]
    fn matrix_is_symmetric_with_i64_offsets() {
        let (_atoms, m, _) = setup(
            &[[9.0, 9.0, 9.0], [11.0, 9.0, 9.0], [9.0, 11.5, 9.0]],
            &[0, 3, 1],
            18.0,
        );
        // Offsets are capacity-based i64.
        assert_eq!(m.offsets.len(), 4);
        assert_eq!(m.offsets[2] - m.offsets[1], m.max_row as i64);
        // Symmetry: H[i][j] == H[j][i].
        let get = |i: usize, j: usize| -> f64 {
            let base = m.offsets[i] as usize;
            for s in 0..m.nnz[i] as usize {
                if m.cols[base + s] as usize == j {
                    return m.vals[base + s];
                }
            }
            0.0
        };
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert!((get(i, j) - get(j, i)).abs() < 1e-12);
                    assert!(get(i, j) > 0.0, "H[{i}][{j}] missing");
                }
            }
        }
    }

    #[test]
    fn spmv_fused_matches_dense() {
        let (_a, m, _) = setup(
            &[
                [9.0, 9.0, 9.0],
                [11.0, 9.0, 9.0],
                [9.0, 11.5, 9.0],
                [12.0, 12.0, 12.0],
            ],
            &[0, 1, 2, 3],
            20.0,
        );
        let n = m.n;
        // Dense reference.
        let mut dense = vec![vec![0.0; n]; n];
        for (i, row) in dense.iter_mut().enumerate() {
            row[i] = m.diag[i];
            let base = m.offsets[i] as usize;
            for s in 0..m.nnz[i] as usize {
                row[m.cols[base + s] as usize] += m.vals[base + s];
            }
        }
        let x1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let x2: Vec<f64> = (0..n).map(|i| 1.0 - i as f64 * 0.2).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        m.spmv_fused(&x1, &x2, &mut y1, &mut y2, &Space::Serial);
        for i in 0..n {
            let d1: f64 = (0..n).map(|j| dense[i][j] * x1[j]).sum();
            let d2: f64 = (0..n).map(|j| dense[i][j] * x2[j]).sum();
            assert!((y1[i] - d1).abs() < 1e-12);
            assert!((y2[i] - d2).abs() < 1e-12);
        }
    }

    #[test]
    fn charges_are_neutral_and_follow_electronegativity() {
        // C (χ 5.7) and O (χ 8.5): oxygen pulls negative charge.
        let (atoms, m, params) = setup(&[[9.0, 9.0, 9.0], [10.4, 9.0, 9.0]], &[0, 3], 18.0);
        let typ = atoms.typ.h_view();
        let chi: Vec<f64> = (0..m.n)
            .map(|i| params.elements[typ.at([i]) as usize].chi)
            .collect();
        let sol = solve(&m, &chi, &params, &Space::Serial);
        assert!(sol.q.iter().sum::<f64>().abs() < 1e-10, "not neutral");
        assert!(sol.q[1] < 0.0, "O charge {}", sol.q[1]);
        assert!(sol.q[0] > 0.0);
        assert!(sol.iterations > 0);
    }

    #[test]
    fn solution_satisfies_stationarity() {
        // At the constrained minimum, ∇E = χ + Aq is a constant vector.
        let (atoms, m, params) = setup(
            &[
                [9.0, 9.0, 9.0],
                [10.4, 9.2, 8.8],
                [8.0, 10.0, 9.5],
                [11.0, 11.0, 11.0],
                [7.5, 7.5, 8.0],
            ],
            &[0, 1, 2, 3, 0],
            18.0,
        );
        let typ = atoms.typ.h_view();
        let chi: Vec<f64> = (0..m.n)
            .map(|i| params.elements[typ.at([i]) as usize].chi)
            .collect();
        let sol = solve(&m, &chi, &params, &Space::Serial);
        let mut aq = vec![0.0; m.n];
        let mut dummy = vec![0.0; m.n];
        m.spmv_fused(&sol.q, &sol.q, &mut aq, &mut dummy, &Space::Serial);
        let grad: Vec<f64> = (0..m.n).map(|i| chi[i] + aq[i]).collect();
        let mean = grad.iter().sum::<f64>() / m.n as f64;
        for g in &grad {
            assert!(
                (g - mean).abs() < 1e-6,
                "gradient not uniform: {g} vs {mean}"
            );
        }
        // Energy is below the q = 0 energy (0).
        assert!(sol.energy < 0.0);
    }

    #[test]
    fn identical_atoms_share_charge_zero() {
        let (_a, m, params) = setup(&[[9.0, 9.0, 9.0], [10.5, 9.0, 9.0]], &[0, 0], 18.0);
        let chi = vec![params.elements[0].chi; 2];
        let sol = solve(&m, &chi, &params, &Space::Serial);
        assert!(sol.q[0].abs() < 1e-10);
        assert!(sol.q[1].abs() < 1e-10);
    }
}
