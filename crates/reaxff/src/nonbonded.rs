//! Tapered non-bonded interactions: Morse-style van der Waals and
//! shielded Coulomb.
//!
//! The Coulomb pair coefficient `H_ij(r)` here is *the same function*
//! that fills the QEq matrix (§4.2.2) — that identity is what makes the
//! Hellmann-Feynman force (differentiate at fixed equilibrated charges)
//! exact for the total electrostatic energy.

use crate::params::ReaxParams;
use crate::taper::taper;
use lkk_core::atom::AtomData;
use lkk_core::comm::GhostMap;
use lkk_core::neighbor::NeighborList;
use lkk_kokkos::Space;

/// Shielded Coulomb kernel `H(r) = k·Tap(r)·(r³ + γ⁻³)^{−1/3}` and its
/// radial derivative. `gamma_ij` is the pair shielding parameter.
#[inline]
pub fn coulomb_hij(r: f64, gamma_ij: f64, params: &ReaxParams) -> (f64, f64) {
    if r >= params.r_nonb {
        return (0.0, 0.0);
    }
    let (tap, dtap) = taper(r, params.r_nonb);
    let g3 = 1.0 / (gamma_ij * gamma_ij * gamma_ij);
    let denom = r * r * r + g3;
    let shield = denom.powf(-1.0 / 3.0);
    let dshield = -(r * r) * denom.powf(-4.0 / 3.0);
    let k = params.coulomb_k;
    (k * tap * shield, k * (dtap * shield + tap * dshield))
}

/// Pair shielding parameter for two types.
#[inline]
pub fn gamma_ij(params: &ReaxParams, ti: usize, tj: usize) -> f64 {
    (params.elements[ti].gamma * params.elements[tj].gamma).sqrt()
}

/// Tapered, inner-shielded Morse van der Waals: `(E, dE/dr)`.
///
/// The Morse form is evaluated at the shielded distance
/// `f13(r) = (r⁷ + s⁷)^{1/7}` (ReaxFF's inner shielding), which
/// saturates at the core radius `s` so covalently bonded pairs do not
/// climb the dispersion repulsion wall.
#[inline]
pub fn vdw(r: f64, ti: usize, tj: usize, params: &ReaxParams) -> (f64, f64) {
    if r >= params.r_nonb {
        return (0.0, 0.0);
    }
    let ei = &params.elements[ti];
    let ej = &params.elements[tj];
    let d = (ei.vdw_d * ej.vdw_d).sqrt();
    let alpha = 0.5 * (ei.vdw_alpha + ej.vdw_alpha);
    let rv = 0.5 * (ei.vdw_r + ej.vdw_r);
    let s7 = params.vdw_shield.powi(7);
    let r7 = r.powi(7);
    let f13 = (r7 + s7).powf(1.0 / 7.0);
    let df13 = r.powi(6) * (r7 + s7).powf(1.0 / 7.0 - 1.0);
    let e1 = (-alpha * (f13 - rv)).exp();
    let morse = d * (e1 * e1 - 2.0 * e1);
    let dmorse = d * (-2.0 * alpha * e1 * e1 + 2.0 * alpha * e1) * df13;
    let (tap, dtap) = taper(r, params.r_nonb);
    (morse * tap, dmorse * tap + morse * dtap)
}

/// Compute van der Waals + Coulomb energies and forces over the full
/// neighbor list, one-sided (each atom writes only its own force row —
/// the newton-off strategy of §4.1, so no reverse communication is
/// needed). `q` holds the equilibrated charges of *local* atoms.
/// Returns `(e_vdw, e_coulomb_pairs, virial)`.
pub fn compute_nonbonded(
    atoms: &AtomData,
    list: &NeighborList,
    ghosts: &GhostMap,
    q: &[f64],
    params: &ReaxParams,
    forces: &mut [[f64; 3]],
    space: &Space,
) -> (f64, f64, f64) {
    let nlocal = atoms.nlocal;
    let xh = atoms.x.h_view();
    let typ = atoms.typ.h_view();
    let f_ptr = forces.as_mut_ptr() as usize;
    let cutsq = params.r_nonb * params.r_nonb;
    space.parallel_reduce(
        "NonbondedCompute",
        nlocal,
        (0.0f64, 0.0f64, 0.0f64),
        |i| {
            let xi = [xh.at([i, 0]), xh.at([i, 1]), xh.at([i, 2])];
            let ti = typ.at([i]) as usize;
            let qi = q[i];
            let nn = list.numneigh.at([i]) as usize;
            let mut fi = [0.0f64; 3];
            let mut ev = 0.0;
            let mut ec = 0.0;
            let mut w = 0.0;
            for s in 0..nn {
                let j = list.neighbors.at([i, s]) as usize;
                let d = [
                    xi[0] - xh.at([j, 0]),
                    xi[1] - xh.at([j, 1]),
                    xi[2] - xh.at([j, 2]),
                ];
                let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if rsq >= cutsq {
                    continue;
                }
                let r = rsq.sqrt();
                let tj = typ.at([j]) as usize;
                let jo = if j < nlocal {
                    j
                } else {
                    ghosts.owner[j - nlocal]
                };
                let qj = q[jo];
                let (e_v, de_v) = vdw(r, ti, tj, params);
                let (h, dh) = coulomb_hij(r, gamma_ij(params, ti, tj), params);
                let e_c = h * qi * qj;
                let de = de_v + dh * qi * qj;
                // One-sided: each pair visited twice, half the energy,
                // full force on own row.
                ev += 0.5 * e_v;
                ec += 0.5 * e_c;
                let fpair = -de / r; // force on i along +d
                for k in 0..3 {
                    fi[k] += fpair * d[k];
                    w += 0.5 * fpair * d[k] * d[k];
                }
            }
            unsafe {
                let fp = (f_ptr as *mut [f64; 3]).add(i);
                for (k, &fik) in fi.iter().enumerate() {
                    (*fp)[k] += fik;
                }
            }
            (ev, ec, w)
        },
        |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coulomb_is_shielded_at_short_range() {
        let p = ReaxParams::hns_like();
        // At r → 0 the shielded kernel stays finite: k·γ.
        let (h0, _) = coulomb_hij(1e-9, 0.7, &p);
        assert!((h0 - p.coulomb_k * 0.7).abs() < 1e-3);
        // At long range (inside taper) it approaches k/r.
        let (h5, _) = coulomb_hij(5.0, 0.7, &p);
        let bare = p.coulomb_k / 5.0 * taper(5.0, p.r_nonb).0;
        assert!((h5 - bare).abs() / bare < 0.01);
    }

    #[test]
    fn coulomb_derivative_matches_fd() {
        let p = ReaxParams::hns_like();
        for &r in &[0.8f64, 2.0, 4.5, 7.0] {
            let h = 1e-6;
            let fd = (coulomb_hij(r + h, 0.75, &p).0 - coulomb_hij(r - h, 0.75, &p).0) / (2.0 * h);
            let (_, an) = coulomb_hij(r, 0.75, &p);
            assert!((an - fd).abs() < 1e-6 * fd.abs().max(1e-6), "r={r}");
        }
    }

    #[test]
    fn vdw_has_minimum_near_rv_and_shielded_core() {
        let p = ReaxParams::hns_like();
        let rv = p.elements[0].vdw_r;
        let (e_min, _) = vdw(rv, 0, 0, &p);
        assert!(e_min < 0.0);
        // Repulsive inside the minimum but *bounded* at bonding
        // distances thanks to the inner shielding.
        let (e_in, _) = vdw(rv - 1.2, 0, 0, &p);
        assert!(e_in > e_min);
        let (e_core, _) = vdw(1.0, 0, 0, &p);
        let (e_zero, _) = vdw(1e-6, 0, 0, &p);
        assert!(e_core < 1.0, "core repulsion {e_core} eV");
        assert!(
            (e_zero - vdw(0.5, 0, 0, &p).0).abs() < 0.05,
            "core not flat"
        );
    }

    #[test]
    fn vdw_derivative_matches_fd() {
        let p = ReaxParams::hns_like();
        for &r in &[2.5f64, 3.5, 5.0, 7.5] {
            let h = 1e-6;
            let fd = (vdw(r + h, 0, 1, &p).0 - vdw(r - h, 0, 1, &p).0) / (2.0 * h);
            let (_, an) = vdw(r, 0, 1, &p);
            assert!((an - fd).abs() < 1e-7, "r={r}: {an} vs {fd}");
        }
    }
}
