//! The reduced ReaxFF parameter set.
//!
//! Per-element parameters follow the roles of the Reax force field
//! (van Duin 2001): covalent radius and valence drive the bond order;
//! χ/η/γ drive charge equilibration; D/α/r_vdW the dispersion term.
//! Values below are *plausible-magnitude synthetics* for a C/H/N/O
//! system (DESIGN.md §2: the published HNS parameterization's chemistry
//! is irrelevant to kernel structure and performance).

/// Per-element parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElementParams {
    pub name: &'static str,
    /// σ covalent radius r0 (Å).
    pub r0: f64,
    /// Valence (target coordination).
    pub valence: f64,
    /// Bond dissociation energy scale (eV; metal units throughout).
    pub de: f64,
    /// Electronegativity χ (QEq), eV/e — consistent with `coulomb_k`
    /// in eV·Å/e².
    pub chi: f64,
    /// Hardness η (QEq diagonal), eV/e².
    pub eta: f64,
    /// Coulomb shielding γ.
    pub gamma: f64,
    /// van der Waals well depth.
    pub vdw_d: f64,
    /// van der Waals steepness α.
    pub vdw_alpha: f64,
    /// van der Waals minimum location.
    pub vdw_r: f64,
}

/// The global force-field parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ReaxParams {
    pub elements: Vec<ElementParams>,
    /// Bond-order exponent parameters: BO' = exp(pbo1·(r/r0)^pbo2).
    pub pbo1: f64,
    pub pbo2: f64,
    /// Bond energy shape: E = −De·BO·exp(pbe1·(1−BO)).
    pub pbe1: f64,
    /// Over-coordination penalty strength.
    pub p_over: f64,
    /// Over-coordination BO-correction sharpness (logistic slope).
    pub p_corr: f64,
    /// Bond-order cutoff below which a pair is not bonded.
    pub bo_cut: f64,
    /// Bond-distance search cutoff (Å).
    pub r_bond: f64,
    /// Non-bonded / taper cutoff (Å).
    pub r_nonb: f64,
    /// Valence-angle force constant and shape.
    pub k_angle: f64,
    pub cos_theta0: f64,
    /// Angle/torsion bond-order coupling steepness: f(BO)=1−exp(−p·BO).
    pub p_ang_bo: f64,
    /// Torsion barrier height.
    pub k_tors: f64,
    /// Minimum BO product for a quad to contribute (§4.2.1's <5%
    /// selectivity constraint).
    pub tors_bo_min: f64,
    /// van der Waals inner-shielding core radius (Å): the effective
    /// distance saturates at this value at short range, the standard
    /// ReaxFF device that keeps bonded pairs off the repulsive wall.
    pub vdw_shield: f64,
    /// Coulomb constant (eV·Å/e² in metal units ≈ 14.4).
    pub coulomb_k: f64,
    /// QEq convergence tolerance (relative residual).
    pub qeq_tol: f64,
}

impl ReaxParams {
    /// Four-element C/H/N/O set for the synthetic HNS-like crystal.
    pub fn hns_like() -> Self {
        let elements = vec![
            ElementParams {
                name: "C",
                r0: 1.40,
                valence: 4.0,
                de: 5.2,
                chi: 5.7,
                eta: 7.0,
                gamma: 0.7,
                vdw_d: 0.004,
                vdw_alpha: 1.7,
                vdw_r: 3.6,
            },
            ElementParams {
                name: "H",
                r0: 0.85,
                valence: 1.0,
                de: 4.3,
                chi: 3.8,
                eta: 9.0,
                gamma: 0.8,
                vdw_d: 0.001,
                vdw_alpha: 1.9,
                vdw_r: 2.8,
            },
            ElementParams {
                name: "N",
                r0: 1.30,
                valence: 3.0,
                de: 5.6,
                chi: 6.8,
                eta: 7.5,
                gamma: 0.72,
                vdw_d: 0.004,
                vdw_alpha: 1.8,
                vdw_r: 3.5,
            },
            ElementParams {
                name: "O",
                r0: 1.25,
                valence: 2.0,
                de: 6.1,
                chi: 8.5,
                eta: 8.0,
                gamma: 0.75,
                vdw_d: 0.005,
                vdw_alpha: 1.85,
                vdw_r: 3.4,
            },
        ];
        ReaxParams {
            elements,
            pbo1: -0.15,
            pbo2: 8.0,
            pbe1: 0.4,
            p_over: 0.9,
            p_corr: 2.5,
            bo_cut: 0.01,
            r_bond: 3.0,
            r_nonb: 8.0,
            k_angle: 1.3,
            cos_theta0: -0.4,
            p_ang_bo: 4.0,
            k_tors: 0.11,
            tors_bo_min: 0.3,
            vdw_shield: 2.0,
            coulomb_k: 14.399645,
            qeq_tol: 1e-8,
        }
    }

    /// A single-element set, convenient for unit tests.
    pub fn single_element() -> Self {
        let mut p = Self::hns_like();
        p.elements.truncate(1);
        p
    }

    pub fn ntypes(&self) -> usize {
        self.elements.len()
    }

    /// Uncorrected σ bond order `BO'(r)` for a type pair, and its
    /// radial derivative. Zero at/after `r_bond` via a smooth taper to
    /// keep forces continuous.
    pub fn bond_order_prime(&self, r: f64, ti: usize, tj: usize) -> (f64, f64) {
        if r >= self.r_bond {
            return (0.0, 0.0);
        }
        // Pair reference length: average of the per-element bond lengths.
        let r0 = 0.5 * (self.elements[ti].r0 + self.elements[tj].r0);
        let t = (r / r0).powf(self.pbo2);
        let raw = (self.pbo1 * t).exp();
        let draw = raw * self.pbo1 * self.pbo2 * t / r;
        // Smooth cut: multiply by the cubic switch s(r) with s(r_bond)=0.
        let (s, ds) = cubic_switch(r, 0.75 * self.r_bond, self.r_bond);
        (raw * s, draw * s + raw * ds)
    }

    /// Bond dissociation energy scale for a type pair.
    pub fn de(&self, ti: usize, tj: usize) -> f64 {
        (self.elements[ti].de * self.elements[tj].de).sqrt()
    }
}

/// Cubic switching function: 1 below `on`, 0 above `off`, C¹ smooth.
/// Returns `(s, ds/dr)`.
pub fn cubic_switch(r: f64, on: f64, off: f64) -> (f64, f64) {
    if r <= on {
        (1.0, 0.0)
    } else if r >= off {
        (0.0, 0.0)
    } else {
        let t = (r - on) / (off - on);
        let s = 1.0 - t * t * (3.0 - 2.0 * t);
        let ds = -6.0 * t * (1.0 - t) / (off - on);
        (s, ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hns_has_four_elements() {
        let p = ReaxParams::hns_like();
        assert_eq!(p.ntypes(), 4);
        assert_eq!(p.elements[1].name, "H");
        assert_eq!(p.elements[1].valence, 1.0);
        // Oxygen is the most electronegative.
        assert!(p.elements[3].chi > p.elements[0].chi);
    }

    #[test]
    fn bond_order_decays_and_vanishes_at_cutoff() {
        let p = ReaxParams::hns_like();
        let (bo_close, _) = p.bond_order_prime(1.4, 0, 0);
        let (bo_mid, _) = p.bond_order_prime(2.0, 0, 0);
        let (bo_cut, d_cut) = p.bond_order_prime(3.0, 0, 0);
        assert!(bo_close > bo_mid);
        assert!(bo_mid > 0.0);
        assert_eq!(bo_cut, 0.0);
        assert_eq!(d_cut, 0.0);
        // Near unity at the covalent radius.
        assert!(bo_close > 0.5, "BO at r0 = {bo_close}");
    }

    #[test]
    fn bond_order_derivative_matches_fd() {
        let p = ReaxParams::hns_like();
        for &r in &[1.0f64, 1.5, 2.1, 2.5, 2.9] {
            let h = 1e-7;
            let (bp, _) = p.bond_order_prime(r + h, 0, 1);
            let (bm, _) = p.bond_order_prime(r - h, 0, 1);
            let fd = (bp - bm) / (2.0 * h);
            let (_, an) = p.bond_order_prime(r, 0, 1);
            assert!(
                (an - fd).abs() < 1e-6 * fd.abs().max(1e-8),
                "r={r}: {an} vs {fd}"
            );
        }
    }

    #[test]
    fn cubic_switch_is_smooth() {
        let (s_on, d_on) = cubic_switch(1.0, 1.0, 2.0);
        assert_eq!((s_on, d_on), (1.0, 0.0));
        let (s_off, d_off) = cubic_switch(2.0, 1.0, 2.0);
        assert_eq!((s_off, d_off), (0.0, 0.0));
        let (s_mid, _) = cubic_switch(1.5, 1.0, 2.0);
        assert!((s_mid - 0.5).abs() < 1e-12);
        for &r in &[1.1f64, 1.5, 1.9] {
            let h = 1e-7;
            let fd =
                (cubic_switch(r + h, 1.0, 2.0).0 - cubic_switch(r - h, 1.0, 2.0).0) / (2.0 * h);
            assert!((cubic_switch(r, 1.0, 2.0).1 - fd).abs() < 1e-6);
        }
    }
}
