//! The ReaxFF 7th-order taper.
//!
//! All non-bonded interactions (van der Waals, Coulomb, and the QEq
//! matrix elements) are multiplied by `Tap(r)`, a polynomial that is 1
//! at r = 0 and goes to 0 at `r_cut` with three vanishing derivatives
//! at both ends — the standard ReaxFF choice (van Duin 2001):
//!
//! ```text
//! Tap(x) = 20x⁷ − 70x⁶ + 84x⁵ − 35x⁴ + 1,   x = r / r_cut.
//! ```

/// Taper value and radial derivative at distance `r` with cutoff `rc`.
pub fn taper(r: f64, rc: f64) -> (f64, f64) {
    if r >= rc {
        return (0.0, 0.0);
    }
    let x = r / rc;
    let x2 = x * x;
    let x3 = x2 * x;
    let x4 = x2 * x2;
    let tap = 20.0 * x4 * x3 - 70.0 * x3 * x3 + 84.0 * x4 * x - 35.0 * x4 + 1.0;
    let dtap = (140.0 * x3 * x3 - 420.0 * x4 * x + 420.0 * x4 - 140.0 * x3) / rc;
    (tap, dtap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values() {
        let rc = 8.0;
        let (t0, d0) = taper(0.0, rc);
        assert_eq!(t0, 1.0);
        assert_eq!(d0, 0.0);
        let (t1, d1) = taper(rc * (1.0 - 1e-9), rc);
        assert!(t1.abs() < 1e-7);
        assert!(d1.abs() < 1e-6);
        assert_eq!(taper(rc + 1.0, rc), (0.0, 0.0));
    }

    #[test]
    fn monotone_decreasing_inside() {
        let rc = 8.0;
        let mut prev = 1.0;
        let mut r = 0.0;
        while r < rc {
            let (t, d) = taper(r, rc);
            assert!(t <= prev + 1e-14);
            assert!(d <= 1e-14, "taper increasing at r={r}");
            prev = t;
            r += 0.05;
        }
    }

    #[test]
    fn derivative_matches_fd() {
        let rc = 8.0;
        for &r in &[0.5f64, 2.0, 4.0, 6.5, 7.9] {
            let h = 1e-6;
            let fd = (taper(r + h, rc).0 - taper(r - h, rc).0) / (2.0 * h);
            let (_, an) = taper(r, rc);
            assert!((an - fd).abs() < 1e-8, "r={r}: {an} vs {fd}");
        }
    }
}
