//! `lkk-reaxff`: a reduced Reactive Force Field (ReaxFF), case study 2
//! of the paper (§4.2).
//!
//! ReaxFF models *dynamic* bond formation and dissociation: every
//! timestep recomputes pairwise bond orders, corrects them for
//! over-coordination, and evaluates bonded (2-, 3-, 4-body) and
//! non-bonded (tapered van der Waals + shielded Coulomb) energies, with
//! atomic charges re-equilibrated each step by the QEq method (two
//! Krylov solves on a shared sparse matrix).
//!
//! This is a *reduced* parameterization (see DESIGN.md §2): the σ-only
//! bond order with a smooth over-coordination correction stands in for
//! the full σ/π/π² machinery, and the angular/torsional forms are
//! simplified — but the **kernel structure is the paper's**: the
//! divergent pre-processing kernels that build compressed
//! triplet/quad interaction tables (§4.2.1), the over-allocated CSR
//! QEq matrix built with scan/fill kernels and hierarchical row
//! parallelism (§4.2.2), the fused dual CG solve (§4.2.3), and the
//! 64-bit row offsets with 32-bit column indices (Appendix B).
//!
//! Modules:
//!
//! * [`params`] — the reduced force-field parameter set and the
//!   synthetic HNS-like molecular crystal parameterization.
//! * [`taper`] — the ReaxFF 7th-order taper polynomial.
//! * [`bond_order`] — bond tables (2-D Views, Appendix B), bond orders,
//!   over-coordination correction, and the reverse-mode accumulation of
//!   `∂E/∂BO` chains into forces.
//! * [`angles`] / [`torsion`] — 3- and 4-body terms with
//!   count/fill/compute pre-processing kernel splits.
//! * [`nonbonded`] — tapered Morse van der Waals + shielded Coulomb.
//! * [`qeq`] — charge equilibration: over-allocated CSR, fused dual CG.
//! * [`hns`] — the synthetic hexanitrostilbene-like benchmark crystal.
//! * [`pair_reaxff`] — the `pair_style reaxff` integration.

pub mod angles;
pub mod bond_order;
pub mod hns;
pub mod nonbonded;
pub mod pair_reaxff;
pub mod params;
pub mod qeq;
pub mod taper;
pub mod torsion;

pub use pair_reaxff::PairReaxff;
pub use params::ReaxParams;
