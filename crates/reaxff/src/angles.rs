//! Three-body valence-angle terms with count/fill pre-processing.
//!
//! §4.2.1 (applied to triplets): a divergent but cheap pre-processing
//! pass enumerates the bonded pairs `(j, i, k)` around each center `i`
//! whose bond orders can contribute, compresses them into a dense
//! triplet table (all triplets of an atom contiguous), and the
//! expensive energy/force kernel then runs fully convergent over the
//! table.
//!
//! Reduced angular form (DESIGN.md §2):
//!
//! ```text
//! E = k_angle · fb(BO_ij) · fb(BO_ik) · (cos θ − cos θ0)²
//! fb(BO) = (1 − e^{−p(BO − bo_lo)})²  for BO > bo_lo, else 0,
//! ```
//!
//! with `fb` C¹ at its support edge so forces stay continuous as bonds
//! form and break.

use crate::bond_order::BondState;
use crate::params::ReaxParams;
use lkk_kokkos::atomic::atomic_add_f64;
use lkk_kokkos::Space;

/// A compressed triplet: center atom and two bond-slot positions.
#[derive(Debug, Clone, Copy)]
pub struct Triplet {
    pub i: u32,
    pub b1: u32,
    pub b2: u32,
}

/// Bond-order coupling `fb` and derivative.
#[inline]
pub fn fb(bo: f64, bo_lo: f64, p: f64) -> (f64, f64) {
    if bo <= bo_lo {
        return (0.0, 0.0);
    }
    let e = (-p * (bo - bo_lo)).exp();
    let one = 1.0 - e;
    (one * one, 2.0 * one * p * e)
}

/// The support edge of the angular coupling.
pub fn angle_bo_lo(params: &ReaxParams) -> f64 {
    3.0 * params.bo_cut
}

/// Pre-processing: count + fill the compressed triplet table
/// (`parallel_scan` between the two passes, exactly the §4.2.2 build
/// pattern). Returns the table and the number of *candidate* pairs
/// examined (for the divergence statistics).
pub fn build_triplets(
    state: &BondState,
    params: &ReaxParams,
    space: &Space,
) -> (Vec<Triplet>, u64) {
    let t = &state.table;
    let nlocal = t.nlocal;
    let bo_lo = angle_bo_lo(params);
    // Count pass.
    let mut counts = vec![0usize; nlocal];
    {
        let cw = counts.as_mut_ptr() as usize;
        space.parallel_for("AngleCount", nlocal, |i| {
            let nb = t.count[i] as usize;
            let mut c = 0usize;
            for b1 in 0..nb {
                if state.bo[t.slot(i, b1)] <= bo_lo {
                    continue;
                }
                for b2 in (b1 + 1)..nb {
                    if state.bo[t.slot(i, b2)] > bo_lo {
                        c += 1;
                    }
                }
            }
            // Row-disjoint write.
            unsafe { *(cw as *mut usize).add(i) = c };
        });
    }
    let candidates: u64 = (0..nlocal)
        .map(|i| {
            let nb = t.count[i] as u64;
            nb * nb.saturating_sub(1) / 2
        })
        .sum();
    let mut offsets = vec![0usize; nlocal + 1];
    let total = space.parallel_scan("AngleScan", &counts, &mut offsets);
    // Fill pass (each atom writes its own contiguous range).
    let mut triplets = vec![Triplet { i: 0, b1: 0, b2: 0 }; total];
    {
        let tw = triplets.as_mut_ptr() as usize;
        space.parallel_for("AngleFill", nlocal, |i| {
            let nb = t.count[i] as usize;
            let mut at = offsets[i];
            for b1 in 0..nb {
                if state.bo[t.slot(i, b1)] <= bo_lo {
                    continue;
                }
                for b2 in (b1 + 1)..nb {
                    if state.bo[t.slot(i, b2)] > bo_lo {
                        unsafe {
                            *(tw as *mut Triplet).add(at) = Triplet {
                                i: i as u32,
                                b1: b1 as u32,
                                b2: b2 as u32,
                            };
                        }
                        at += 1;
                    }
                }
            }
        });
    }
    (triplets, candidates)
}

/// Convergent compute kernel: energy, geometric forces, and `∂E/∂BO`
/// coefficients (atomically accumulated into `state.c_bo`). Forces are
/// added to owner rows of `forces`; returns `(energy, virial)`.
pub fn compute_angles(
    triplets: &[Triplet],
    state: &mut BondState,
    params: &ReaxParams,
    forces: &mut [[f64; 3]],
    space: &Space,
) -> (f64, f64) {
    let bo_lo = angle_bo_lo(params);
    let c_bo_ptr = state.c_bo.as_mut_ptr() as usize;
    let f_ptr = forces.as_mut_ptr() as usize;
    let t = &state.table;
    let bo = &state.bo;
    space.parallel_reduce(
        "AngleCompute",
        triplets.len(),
        (0.0f64, 0.0f64),
        |q| {
            let tr = triplets[q];
            let i = tr.i as usize;
            let s1 = t.slot(i, tr.b1 as usize);
            let s2 = t.slot(i, tr.b2 as usize);
            let (fb1, dfb1) = fb(bo[s1], bo_lo, params.p_ang_bo);
            let (fb2, dfb2) = fb(bo[s2], bo_lo, params.p_ang_bo);
            let d1 = [t.dx[s1], t.dy[s1], t.dz[s1]];
            let d2 = [t.dx[s2], t.dy[s2], t.dz[s2]];
            let (r1, r2) = (t.r[s1], t.r[s2]);
            let dot = d1[0] * d2[0] + d1[1] * d2[1] + d1[2] * d2[2];
            let c = dot / (r1 * r2);
            let dc = c - params.cos_theta0;
            let e = params.k_angle * fb1 * fb2 * dc * dc;
            // ∂E/∂BO into the shared coefficient array (atomic: slots
            // are shared between triplets).
            unsafe {
                atomic_add_f64(
                    (c_bo_ptr as *mut f64).add(s1),
                    params.k_angle * dfb1 * fb2 * dc * dc,
                );
                atomic_add_f64(
                    (c_bo_ptr as *mut f64).add(s2),
                    params.k_angle * fb1 * dfb2 * dc * dc,
                );
            }
            // Geometric force: dE/dcosθ with
            // ∂cosθ/∂d1 = d2/(r1r2) − cosθ·d1/r1².
            let dedc = params.k_angle * fb1 * fb2 * 2.0 * dc;
            let inv12 = 1.0 / (r1 * r2);
            let mut g1 = [0.0f64; 3];
            let mut g2 = [0.0f64; 3];
            for k in 0..3 {
                g1[k] = d2[k] * inv12 - c * d1[k] / (r1 * r1);
                g2[k] = d1[k] * inv12 - c * d2[k] / (r2 * r2);
            }
            let o1 = t.owner[s1] as usize;
            let o2 = t.owner[s2] as usize;
            let mut w = 0.0;
            unsafe {
                let fp = f_ptr as *mut [f64; 3];
                for k in 0..3 {
                    let f1 = -dedc * g1[k];
                    let f2 = -dedc * g2[k];
                    atomic_add_f64((*fp.add(o1)).as_mut_ptr().add(k), f1);
                    atomic_add_f64((*fp.add(o2)).as_mut_ptr().add(k), f2);
                    atomic_add_f64((*fp.add(i)).as_mut_ptr().add(k), -f1 - f2);
                    w += d1[k] * f1 + d2[k] * f2;
                }
            }
            (e, w)
        },
        |a, b| (a.0 + b.0, a.1 + b.1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bond_order::{BondState, BondTable};
    use lkk_core::atom::AtomData;
    use lkk_core::comm::build_ghosts;
    use lkk_core::domain::Domain;
    use lkk_core::neighbor::{NeighborList, NeighborSettings};
    use lkk_kokkos::Space;

    #[test]
    fn water_like_trimer_has_one_angle() {
        let params = crate::params::ReaxParams::single_element();
        let mut atoms = AtomData::from_positions(&[
            [8.0, 8.0, 8.0], // center
            [9.4, 8.2, 8.0], // bonded
            [7.3, 9.2, 8.1], // bonded
        ]);
        let domain = Domain::cubic(18.0);
        atoms.wrap_positions(&domain);
        let settings = NeighborSettings::new(params.r_nonb, 0.3, false);
        let ghosts = build_ghosts(&mut atoms, &domain, settings.cutneigh());
        let list = NeighborList::build(&atoms, &domain, &settings, &Space::Serial);
        let table = BondTable::build(&atoms, &list, &ghosts, &params, &Space::Serial);
        let mut state = BondState::compute(table, &params, &atoms);
        let (triplets, candidates) = build_triplets(&state, &params, &Space::Serial);
        assert_eq!(triplets.len(), 1, "candidates {candidates}");
        assert_eq!(triplets[0].i, 0, "angle must be centered on atom 0");
        // Energy positive for a bent angle away from cos_theta0.
        let mut forces = vec![[0.0; 3]; 3];
        let (e, _) = compute_angles(&triplets, &mut state, &params, &mut forces, &Space::Serial);
        assert!(e >= 0.0);
    }

    #[test]
    fn fb_is_c1_at_support_edge() {
        let (v, d) = fb(0.03, 0.03, 4.0);
        assert_eq!((v, d), (0.0, 0.0));
        let (v2, d2) = fb(0.03 + 1e-9, 0.03, 4.0);
        assert!(v2 < 1e-15);
        assert!(d2 < 1e-7);
        // FD check inside the support.
        for &b in &[0.1f64, 0.5, 0.9] {
            let h = 1e-7;
            let fd = (fb(b + h, 0.03, 4.0).0 - fb(b - h, 0.03, 4.0).0) / (2.0 * h);
            assert!((fb(b, 0.03, 4.0).1 - fd).abs() < 1e-6);
        }
    }
}
