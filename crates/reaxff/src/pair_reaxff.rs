//! `pair_style reaxff`: the assembled reactive force field.
//!
//! Per-timestep pipeline (the §4.2 kernel inventory):
//!
//! 1. **BondOrderBuild** — divergent pre-processing of the long
//!    non-bonded list into the compressed 2-D bond table.
//! 2. **QEqMatrixBuild** + fused dual-CG **QEqSpmvFused** solves → q.
//! 3. Bond + over-coordination energies (fills `∂E/∂BO`, `∂E/∂Δ`).
//! 4. **Angle/Torsion count → scan → fill → compute** — the compressed
//!    triplet/quad tables and their fully convergent kernels.
//! 5. **BondForces** — propagate the `∂E/∂BO` chains to atom forces.
//! 6. **NonbondedCompute** — tapered vdW + shielded Coulomb with the
//!    equilibrated charges.
//!
//! All forces accumulate onto *owner* rows, so no reverse ghost
//! communication is needed.

use crate::angles::{build_triplets, compute_angles};
use crate::bond_order::{BondState, BondTable};
use crate::nonbonded::compute_nonbonded;
use crate::params::ReaxParams;
use crate::qeq::{self, QeqMatrix};
use crate::torsion::{build_quads, compute_torsions, QuadStats};
use lkk_core::atom::Mask;
use lkk_core::neighbor::NeighborList;
use lkk_core::pair::{PairResults, PairStyle};
use lkk_core::sim::System;
use lkk_core::style::{PairSpec, StyleRegistry};
use lkk_gpusim::KernelStats;
use lkk_kokkos::{profile, Space};

/// Join the active region path with a ReaxFF pipeline phase name, for
/// tagging stats records that are pushed after the phase region closed.
fn phase_region(phase: &str) -> String {
    let base = profile::current_region();
    if base.is_empty() {
        phase.to_string()
    } else {
        format!("{base}/{phase}")
    }
}

/// The ReaxFF pair style.
pub struct PairReaxff {
    pub params: ReaxParams,
    name: String,
    /// Diagnostics from the last compute.
    pub last_qeq_iterations: usize,
    pub last_quad_stats: QuadStats,
    pub last_charges: Vec<f64>,
    pub last_bond_count: u64,
}

impl PairReaxff {
    pub fn new(params: ReaxParams) -> Self {
        PairReaxff {
            params,
            name: "reaxff".into(),
            last_qeq_iterations: 0,
            last_quad_stats: QuadStats::default(),
            last_charges: Vec::new(),
            last_bond_count: 0,
        }
    }

    /// Register `reaxff` / `reaxff/kk`. `pair_style reaxff` takes no
    /// arguments; the HNS-like parameterization is built in.
    pub fn register(registry: &mut StyleRegistry) {
        registry.register_pair("reaxff", |_spec: &PairSpec, _space: &Space| {
            Ok(Box::new(PairReaxff::new(ReaxParams::hns_like())))
        });
    }

    fn note_stats(
        &self,
        space: &Space,
        nlocal: f64,
        bond_count: f64,
        quad_stats: &QuadStats,
        nnz: f64,
        cg_iters: f64,
    ) {
        if !space.is_device() {
            return;
        }
        // Bond-order build: divergent scan of the long neighbor list.
        let mut bo = KernelStats::new("BondOrderBuild");
        bo.region = phase_region("bond_order");
        bo.work_items = nlocal;
        bo.flops = bond_count * 60.0 + nlocal * 30.0;
        bo.dram_bytes = nlocal * 200.0 + bond_count * 60.0;
        bo.convergence = 0.2; // most candidates fail the r/BO tests
        space.note_kernel(bo);

        // Torsion pre-processing: cheap but very divergent.
        let mut tp = KernelStats::new("TorsionCountFill");
        tp.region = phase_region("valence");
        tp.work_items = quad_stats.candidates as f64;
        tp.flops = quad_stats.candidates as f64 * 8.0;
        tp.dram_bytes = quad_stats.candidates as f64 * 24.0 + quad_stats.kept as f64 * 16.0;
        tp.convergence =
            (quad_stats.kept as f64 / quad_stats.candidates.max(1) as f64).clamp(0.02, 1.0);
        tp.launches = 2.0;
        space.note_kernel(tp);

        // Torsion compute: fully convergent on the compressed table.
        let mut tc = KernelStats::new("TorsionCompute");
        tc.region = phase_region("valence");
        tc.work_items = quad_stats.kept as f64;
        tc.flops = quad_stats.kept as f64 * 250.0;
        tc.dram_bytes = quad_stats.kept as f64 * 96.0;
        tc.atomic_f64_ops = quad_stats.kept as f64 * 15.0;
        tc.convergence = 1.0;
        space.note_kernel(tc);

        // QEq matrix build (hierarchical row parallelism on device).
        let mut qb = KernelStats::new("QEqMatrixBuild");
        qb.region = phase_region("qeq");
        qb.work_items = nnz;
        qb.flops = nnz * 40.0;
        qb.dram_bytes = nnz * 40.0 + nlocal * 40.0;
        space.note_kernel(qb);

        // Fused dual SpMV per CG iteration: bandwidth bound on the
        // matrix values (§4.2.3).
        let mut sp = KernelStats::new("QEqSpmvFused");
        sp.region = phase_region("qeq");
        sp.work_items = nnz;
        sp.flops = cg_iters * nnz * 4.0;
        sp.dram_bytes = cg_iters * nnz * 12.0;
        sp.launches = cg_iters.max(1.0);
        sp.ilp = 2.0; // two right-hand sides per matrix load
        space.note_kernel(sp);

        // Non-bonded force kernel.
        let mut nb = KernelStats::new("NonbondedCompute");
        nb.region = phase_region("nonbonded");
        nb.work_items = nlocal;
        nb.flops = nnz * 2.0 * 60.0;
        nb.dram_bytes = nlocal * 48.0 + nnz * 2.0 * 28.0;
        nb.reused_bytes = nnz * 2.0 * 24.0;
        nb.working_set_bytes = 64.0 * 1024.0;
        space.note_kernel(nb);
    }
}

impl PairStyle for PairReaxff {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    fn cutoff(&self) -> f64 {
        self.params.r_nonb
    }

    fn wants_half_list(&self) -> bool {
        false
    }

    fn needs_reverse_comm(&self) -> bool {
        false // all scatters land on owner rows
    }

    fn compute(&mut self, system: &mut System, list: &NeighborList, _eflag: bool) -> PairResults {
        let space = system.space.clone();
        // The ReaxFF pipeline reads host mirrors (kernels dispatch
        // through `space` for parallelism + launch accounting).
        system.atoms.sync(&Space::Serial, Mask::X | Mask::TYPE);
        let nlocal = system.atoms.nlocal;
        let params = self.params.clone();

        // 1. Bond table + bond orders.
        let bo_region = profile::begin_region("bond_order");
        let table = BondTable::build(&system.atoms, list, &system.ghosts, &params, &space);
        self.last_bond_count = table.total_bonds();
        let mut state = BondState::compute(table, &params, &system.atoms);
        drop(bo_region);

        // 2. Charge equilibration.
        let qeq_region = profile::begin_region("qeq");
        let matrix = QeqMatrix::build(&system.atoms, list, &system.ghosts, &params, &space);
        let typ = system.atoms.typ.h_view();
        let chi: Vec<f64> = (0..nlocal)
            .map(|i| params.elements[typ.at([i]) as usize].chi)
            .collect();
        let sol = qeq::solve(&matrix, &chi, &params, &space);
        self.last_qeq_iterations = sol.iterations;
        drop(qeq_region);

        let mut forces = vec![[0.0f64; 3]; nlocal];
        let mut energy = 0.0;
        let mut virial = 0.0;

        // 3. Bond + over-coordination energy (coefficients only).
        energy += state.bonded_energy(&params, &system.atoms);

        // 4. Angles and torsions.
        let valence_region = profile::begin_region("valence");
        let (triplets, _cand3) = build_triplets(&state, &params, &space);
        let (e_ang, w_ang) = compute_angles(&triplets, &mut state, &params, &mut forces, &space);
        energy += e_ang;
        virial += w_ang;
        let (quads, quad_stats) = build_quads(&state, &params, &space);
        self.last_quad_stats = quad_stats;
        let (e_tor, w_tor) = compute_torsions(&quads, &mut state, &params, &mut forces, &space);
        energy += e_tor;
        virial += w_tor;
        drop(valence_region);

        // 5. Bond-order force chains.
        virial += state.accumulate_forces(&mut forces);

        // 6. Non-bonded (vdW + Coulomb at the equilibrated charges) and
        //    the electrostatic self energy χ·q + η·q².
        let nonbonded_region = profile::begin_region("nonbonded");
        let (e_vdw, e_coul, w_nb) = compute_nonbonded(
            &system.atoms,
            list,
            &system.ghosts,
            &sol.q,
            &params,
            &mut forces,
            &space,
        );
        energy += e_vdw + e_coul;
        virial += w_nb;
        drop(nonbonded_region);
        for (i, &chi_i) in chi.iter().enumerate().take(nlocal) {
            let eta = params.elements[typ.at([i]) as usize].eta;
            energy += chi_i * sol.q[i] + eta * sol.q[i] * sol.q[i];
        }

        // Store charges back on the atoms (observable state).
        {
            let qh = system.atoms.q.h_view_mut();
            for (i, &qv) in sol.q.iter().enumerate() {
                qh.set([i], qv);
            }
        }
        self.last_charges = sol.q;

        // Publish forces to the engine's force field.
        {
            let fh = system.atoms.f.h_view_mut();
            fh.fill(0.0);
            for (i, f) in forces.iter().enumerate() {
                for (k, &fk) in f.iter().enumerate() {
                    fh.set([i, k], fk);
                }
            }
        }
        system.atoms.modified(&Space::Serial, Mask::F | Mask::Q);

        self.note_stats(
            &space,
            nlocal as f64,
            self.last_bond_count as f64,
            &self.last_quad_stats,
            matrix.total_nnz() as f64,
            self.last_qeq_iterations as f64,
        );
        // The many-body BO chains make per-component accumulation
        // intricate; ReaxFF reports the isotropic virial (trace) only.
        PairResults::isotropic(energy, virial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hns;
    use lkk_core::atom::AtomData;
    use lkk_core::comm::build_ghosts;
    use lkk_core::lattice::create_velocities;
    use lkk_core::neighbor::NeighborSettings;
    use lkk_core::sim::Simulation;
    use lkk_core::units::Units;

    fn hns_system(nx: usize, space: Space) -> System {
        let (pos, types, domain) = hns::crystal(nx, nx, nx, 17.0);
        let mut atoms = AtomData::from_positions(&pos);
        atoms.mass = vec![12.0, 1.0, 14.0, 16.0];
        for (i, &t) in types.iter().enumerate() {
            atoms.typ.h_view_mut().set([i], t);
        }
        System::new(atoms, domain, space).with_units(Units::metal())
    }

    fn run_compute(system: &mut System, pair: &mut PairReaxff) -> (Vec<[f64; 3]>, PairResults) {
        let settings = NeighborSettings::new(pair.cutoff(), 0.3, false);
        let space = system.space.clone();
        system.atoms.wrap_positions(&system.domain);
        system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
        let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
        let res = pair.compute(system, &list, true);
        let fh = system.atoms.f.h_view();
        let forces = (0..system.atoms.nlocal)
            .map(|i| [fh.at([i, 0]), fh.at([i, 1]), fh.at([i, 2])])
            .collect();
        (forces, res)
    }

    #[test]
    fn hns_crystal_has_bonds_angles_and_quads() {
        let mut system = hns_system(1, Space::Serial);
        let mut pair = PairReaxff::new(ReaxParams::hns_like());
        let (_, res) = run_compute(&mut system, &mut pair);
        assert!(pair.last_bond_count > 0, "no bonds found");
        assert!(pair.last_quad_stats.kept > 0, "no torsions found");
        // The selectivity constraint: well under half the candidates.
        let sel = pair.last_quad_stats.kept as f64 / pair.last_quad_stats.candidates as f64;
        assert!(sel < 0.5, "quad selectivity {sel}");
        assert!(pair.last_qeq_iterations > 0);
        assert!(res.energy.is_finite());
        // Charges: oxygens negative on average.
        let typ = system.atoms.typ.h_view();
        let mut o_sum = 0.0;
        let mut o_count = 0;
        for i in 0..system.atoms.nlocal {
            if typ.at([i]) == hns::TYPE_O {
                o_sum += pair.last_charges[i];
                o_count += 1;
            }
        }
        assert!(
            o_sum / (o_count as f64) < 0.0,
            "O mean charge {}",
            o_sum / o_count as f64
        );
        // Net neutral.
        assert!(pair.last_charges.iter().sum::<f64>().abs() < 1e-8);
    }

    #[test]
    fn total_force_is_zero() {
        let mut system = hns_system(1, Space::Threads);
        let mut pair = PairReaxff::new(ReaxParams::hns_like());
        let (forces, _) = run_compute(&mut system, &mut pair);
        for k in 0..3 {
            let total: f64 = forces.iter().map(|f| f[k]).sum();
            assert!(total.abs() < 1e-7, "net force {total}");
        }
        assert!(forces.iter().any(|f| f[0].abs() > 1e-3));
    }

    /// The decisive correctness test: analytic forces (through bond
    /// orders, the over-coordination chain, angles, torsions, QEq
    /// charges, vdW and Coulomb) match finite differences of the total
    /// energy.
    #[test]
    fn forces_match_finite_difference_of_total_energy() {
        let (pos, types, domain) = hns::crystal(1, 1, 1, 17.0);
        let energy_of = |positions: &[[f64; 3]]| -> f64 {
            let mut atoms = AtomData::from_positions(positions);
            atoms.mass = vec![12.0, 1.0, 14.0, 16.0];
            for (i, &t) in types.iter().enumerate() {
                atoms.typ.h_view_mut().set([i], t);
            }
            let mut system = System::new(atoms, domain, Space::Serial);
            let mut pair = PairReaxff::new(ReaxParams::hns_like());
            let (_, res) = run_compute(&mut system, &mut pair);
            res.energy
        };
        let mut system = hns_system(1, Space::Serial);
        let mut pair = PairReaxff::new(ReaxParams::hns_like());
        let (forces, _) = run_compute(&mut system, &mut pair);
        let h = 1e-5;
        // Spot-check a carbon, a nitrogen, and an oxygen.
        for &a in &[0usize, 3, 4] {
            for dir in 0..3 {
                let mut pp = pos.clone();
                let mut pm = pos.clone();
                pp[a][dir] += h;
                pm[a][dir] -= h;
                let fd = -(energy_of(&pp) - energy_of(&pm)) / (2.0 * h);
                assert!(
                    (forces[a][dir] - fd).abs() < 2e-4 * fd.abs().max(1.0),
                    "atom {a} dir {dir}: analytic {} vs fd {fd}",
                    forces[a][dir]
                );
            }
        }
    }

    #[test]
    fn spaces_agree() {
        let mut reference: Option<(Vec<[f64; 3]>, f64)> = None;
        for space in [
            Space::Serial,
            Space::Threads,
            Space::device(lkk_gpusim::GpuArch::h100()),
        ] {
            let mut system = hns_system(1, space);
            let mut pair = PairReaxff::new(ReaxParams::hns_like());
            let (forces, res) = run_compute(&mut system, &mut pair);
            match &reference {
                None => reference = Some((forces, res.energy)),
                Some((rf, re)) => {
                    assert!((res.energy - re).abs() < 1e-8 * re.abs().max(1.0));
                    for (a, b) in forces.iter().zip(rf) {
                        for k in 0..3 {
                            assert!((a[k] - b[k]).abs() < 1e-7, "{} vs {}", a[k], b[k]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn device_logs_reaxff_kernels() {
        let space = Space::device(lkk_gpusim::GpuArch::h100());
        let ctx = space.device_ctx().unwrap().clone();
        let mut system = hns_system(1, space);
        let mut pair = PairReaxff::new(ReaxParams::hns_like());
        let _ = run_compute(&mut system, &mut pair);
        let agg = ctx.log.aggregate();
        for name in [
            "BondOrderBuild",
            "TorsionCountFill",
            "TorsionCompute",
            "QEqMatrixBuild",
            "QEqSpmvFused",
            "NonbondedCompute",
        ] {
            assert!(
                agg.iter().any(|s| s.name == name),
                "{name} not logged; have {:?}",
                agg.iter().map(|s| &s.name).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn nve_with_reaxff_conserves_energy() {
        let mut system = hns_system(1, Space::Threads);
        create_velocities(&mut system.atoms, &Units::metal(), 300.0, 4242);
        let pair = PairReaxff::new(ReaxParams::hns_like());
        let mut sim = Simulation::new(system, Box::new(pair));
        sim.dt = 0.0002; // reactive systems need short steps
        sim.setup();
        let e0 = sim.total_energy();
        sim.run(25);
        let drift = ((sim.total_energy() - e0) / sim.system.atoms.nlocal as f64).abs();
        assert!(drift < 5e-4, "per-atom drift {drift}");
    }

    #[test]
    fn registry_integration() {
        let mut reg = StyleRegistry::core();
        PairReaxff::register(&mut reg);
        let spec = PairSpec::default();
        let p = reg
            .create_pair("reaxff", &spec, &Space::Threads, Some("kk"))
            .unwrap();
        assert_eq!(p.name(), "reaxff/kk");
        assert!(!p.wants_half_list());
    }

    #[test]
    fn bond_breaking_is_continuous() {
        // Stretch a C-C dimer through the bond cutoff: the energy must
        // be continuous (no jump when the pair leaves the bond table)
        // and must approach the pure non-bonded value beyond r_bond.
        // This is the "reactive" property: bonds break smoothly.
        let params = ReaxParams::single_element();
        let energy_at = |r: f64| -> f64 {
            let mut atoms = AtomData::from_positions(&[[9.0, 9.0, 9.0], [9.0 + r, 9.0, 9.0]]);
            atoms.mass = vec![12.0];
            let mut system =
                System::new(atoms, lkk_core::domain::Domain::cubic(18.0), Space::Serial)
                    .with_units(Units::metal());
            let mut pair = PairReaxff::new(params.clone());
            let (_, res) = run_compute(&mut system, &mut pair);
            res.energy
        };
        // Scan across the r_bond = 3.0 Å crossing.
        let mut prev = energy_at(2.5);
        let mut r = 2.5;
        while r < 3.3 {
            r += 0.01;
            let e = energy_at(r);
            assert!(
                (e - prev).abs() < 0.05,
                "energy jump at r = {r}: {prev} -> {e}"
            );
            prev = e;
        }
        // Past the cutoff the bonded terms are gone: the dimer energy
        // equals vdW + electrostatics only (both atoms identical ⇒
        // q = 0 ⇒ just vdW + any residual over-coordination constant).
        let e_far = energy_at(3.2);
        let (vdw_far, _) = crate::nonbonded::vdw(3.2, 0, 0, &params);
        // Remaining difference is the constant Δ = −valence softplus
        // penalty of two isolated atoms.
        let sp = (1.0f64 + (-params.elements[0].valence).exp()).ln();
        let e_over_iso = 2.0 * params.p_over * sp * sp;
        assert!(
            (e_far - (vdw_far + e_over_iso)).abs() < 1e-6,
            "{e_far} vs vdw {vdw_far} + over {e_over_iso}"
        );
    }
}
