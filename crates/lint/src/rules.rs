//! The five workspace invariant rules.
//!
//! Every rule is a heuristic matcher over the comment/string-masked
//! source (see [`crate::source`]) — deliberately AST-lite so the
//! linter has zero dependencies and runs in milliseconds, at the cost
//! of being pattern-driven. False positives are handled by the audited
//! allowlist (`lint_allow.toml`), never by weakening a rule.
//!
//! | id     | invariant                                                    |
//! |--------|--------------------------------------------------------------|
//! | LKK001 | no wall clock / OS entropy outside audited modules           |
//! | LKK002 | no `HashMap`/`HashSet` iteration (unordered bytes can leak   |
//! |        | into canonical JSON, baselines, and trace export)            |
//! | LKK003 | every `note_*`/`flow_*` hook emission sits behind a          |
//! |        | `has_subscribers()` fast path                                |
//! | LKK004 | no allocating calls inside `parallel_*` dispatch closures    |
//! | LKK005 | no raw indexed `+=`/`-=` scatter inside `parallel_*`         |
//! |        | closures (use `ScatterView` or a quantized path)             |

use crate::source::{ident_boundary_before, matching_paren, File};
use std::fmt;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock / OS-entropy call outside the audited module set.
    Lkk001,
    /// Iteration over a std hash container (unordered).
    Lkk002,
    /// Profile hook emission without a `has_subscribers()` gate.
    Lkk003,
    /// Allocation inside a parallel dispatch closure.
    Lkk004,
    /// Raw indexed compound-assign scatter inside a parallel closure.
    Lkk005,
}

impl Rule {
    pub const ALL: [Rule; 5] = [
        Rule::Lkk001,
        Rule::Lkk002,
        Rule::Lkk003,
        Rule::Lkk004,
        Rule::Lkk005,
    ];

    pub fn id(self) -> &'static str {
        match self {
            Rule::Lkk001 => "LKK001",
            Rule::Lkk002 => "LKK002",
            Rule::Lkk003 => "LKK003",
            Rule::Lkk004 => "LKK004",
            Rule::Lkk005 => "LKK005",
        }
    }

    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }

    pub fn summary(self) -> &'static str {
        match self {
            Rule::Lkk001 => "wall clock or OS entropy outside the audited wall-clock modules",
            Rule::Lkk002 => "iteration over a std hash container (nondeterministic order)",
            Rule::Lkk003 => "profile hook emission without a has_subscribers() fast path",
            Rule::Lkk004 => "allocation inside a parallel dispatch closure",
            Rule::Lkk005 => "raw indexed scatter inside a parallel dispatch closure",
        }
    }

    pub fn hint(self) -> &'static str {
        match self {
            Rule::Lkk001 => {
                "deterministic-mode output must be byte-stable: route timing through \
                 lkk_kokkos::profile regions or the trace layer's logical ticks, or add an \
                 audited lint_allow.toml entry for a genuinely wall-clock-only path"
            }
            Rule::Lkk002 => {
                "HashMap/HashSet iteration order varies per process: use BTreeMap/BTreeSet, \
                 or collect-and-sort before anything that feeds canonical JSON, baselines, \
                 or trace export"
            }
            Rule::Lkk003 => {
                "building the hook payload (format!, joins, table walks) must be skipped when \
                 nobody is listening: wrap the emission in `if profile::has_subscribers() { .. }` \
                 (the hooks early-out internally, but only after the payload exists)"
            }
            Rule::Lkk004 => {
                "hot kernels must not touch the allocator (steady-state zero-alloc invariant): \
                 hoist buffers into pooled storage or per-thread scratch re-used across steps \
                 (see docs/performance.md)"
            }
            Rule::Lkk005 => {
                "unsynchronised indexed accumulation races under parallel dispatch: scatter \
                 through ScatterView::add (atomic/duplicated/sequential deconfliction) or a \
                 quantized path, or accumulate into a closure-local buffer"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub path: String,
    pub line: usize,
    pub rule: Rule,
    pub excerpt: String,
    pub detail: String,
}

fn finding(file: &File, off: usize, rule: Rule, detail: String) -> Finding {
    Finding {
        path: file.path.clone(),
        line: file.line_of(off),
        rule,
        excerpt: file.excerpt(off),
        detail,
    }
}

/// Run every applicable rule over one file.
pub fn check_file(file: &File) -> Vec<Finding> {
    let mut out = Vec::new();
    lkk001_wall_clock(file, &mut out);
    lkk002_hash_iteration(file, &mut out);
    lkk003_ungated_hooks(file, &mut out);
    let spans = dispatch_spans(file);
    lkk004_alloc_in_kernel(file, &spans, &mut out);
    lkk005_raw_scatter(file, &spans, &mut out);
    out.sort();
    out.dedup();
    out
}

/// Word-bounded occurrences of `pat` in the masked text.
fn occurrences<'a>(file: &'a File, pat: &'a str) -> impl Iterator<Item = usize> + 'a {
    let b = file.masked.as_bytes();
    let mut from = 0;
    std::iter::from_fn(move || {
        while let Some(p) = file.masked[from..].find(pat) {
            let at = from + p;
            from = at + pat.len();
            if ident_boundary_before(b, at) {
                return Some(at);
            }
        }
        None
    })
}

// ---------------------------------------------------------------------
// LKK001 — wall clock / OS entropy
// ---------------------------------------------------------------------

const WALL_CLOCK_PATTERNS: &[&str] = &[
    "Instant::now",
    "SystemTime",
    "UNIX_EPOCH",
    "thread_rng",
    "from_entropy",
    "RandomState",
    "getrandom",
];

fn lkk001_wall_clock(file: &File, out: &mut Vec<Finding>) {
    for pat in WALL_CLOCK_PATTERNS {
        for at in occurrences(file, pat) {
            out.push(finding(
                file,
                at,
                Rule::Lkk001,
                format!("nondeterministic source `{pat}`"),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// LKK002 — hash container iteration
// ---------------------------------------------------------------------

/// Names bound (via `let` or a struct field declaration) to a
/// `HashMap`/`HashSet` anywhere in the file.
fn hash_bindings(file: &File) -> Vec<String> {
    let mut names = Vec::new();
    let b = file.masked.as_bytes();
    for container in ["HashMap", "HashSet"] {
        for at in occurrences(file, container) {
            // Statement start: last `;`, `{`, `}` or `(` before the match.
            let stmt = file.masked[..at]
                .rfind([';', '{', '}', '('])
                .map(|p| p + 1)
                .unwrap_or(0);
            let before = &file.masked[stmt..at];
            if let Some(let_pos) = before.find("let ") {
                // `let [mut] NAME [: T] = …HashMap…`
                let after_let = before[let_pos + 4..].trim_start();
                let after_let = after_let
                    .strip_prefix("mut ")
                    .unwrap_or(after_let)
                    .trim_start();
                let name: String = after_let
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    names.push(name);
                }
            } else if let Some(colon) = before.rfind(':') {
                // Field or local type ascription: `NAME: HashMap<…>`.
                let head = before[..colon].trim_end();
                let name: String = head
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<String>()
                    .chars()
                    .rev()
                    .collect();
                if !name.is_empty() && !name.chars().next().unwrap().is_ascii_digit() {
                    names.push(name);
                }
            }
            let _ = b;
        }
    }
    names.sort();
    names.dedup();
    names
}

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
];

fn lkk002_hash_iteration(file: &File, out: &mut Vec<Finding>) {
    let names = hash_bindings(file);
    for name in &names {
        for at in occurrences(file, name) {
            if file.in_test_code(at) {
                continue;
            }
            let after = &file.masked[at + name.len()..];
            let b = file.masked.as_bytes();
            let end = at + name.len();
            // `name.iter()` and friends.
            if end < b.len() && b[end] == b'.' && ITER_METHODS.iter().any(|m| after.starts_with(m))
            {
                out.push(finding(
                    file,
                    at,
                    Rule::Lkk002,
                    format!("`{name}` is a std hash container and its entries are iterated"),
                ));
                continue;
            }
            // `for … in [&[mut ]]name` followed by a block or method-free use.
            let mut before = file.masked[..at].trim_end();
            before = before.strip_suffix("&mut").unwrap_or(before).trim_end();
            before = before.strip_suffix('&').unwrap_or(before).trim_end();
            if before.ends_with(" in") || before.ends_with("\tin") {
                let next = after.trim_start().chars().next().unwrap_or(' ');
                if next == '{' || next == '.' && after.trim_start().starts_with(".iter") {
                    out.push(finding(
                        file,
                        at,
                        Rule::Lkk002,
                        format!("`for … in {name}` iterates a std hash container"),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// LKK003 — ungated hook emission
// ---------------------------------------------------------------------

const HOOK_CALLS: &[&str] = &[
    "note_instant(",
    "note_counter(",
    "note_flow_begin(",
    "note_flow_end(",
];

/// Byte spans `(fn_kw, body_open, body_end)` of every `fn` item.
fn fn_spans(file: &File) -> Vec<(usize, usize, usize)> {
    let mut spans = Vec::new();
    let b = file.masked.as_bytes();
    for at in occurrences(file, "fn ") {
        // Find the body `{`, skipping the parameter list and any
        // return type; a `;` at depth 0 first means a bodyless decl.
        let mut j = at + 3;
        let mut paren = 0usize;
        let mut angle = 0usize;
        let open = loop {
            if j >= b.len() {
                break None;
            }
            match b[j] {
                b'(' => paren += 1,
                b')' => paren = paren.saturating_sub(1),
                b'<' => angle += 1,
                b'>' => angle = angle.saturating_sub(1),
                b'{' if paren == 0 => break Some(j),
                b';' if paren == 0 && angle == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        if let Some(open) = open {
            let close = crate::source::matching_brace(b, open);
            spans.push((at, open, close));
        }
    }
    spans
}

fn lkk003_ungated_hooks(file: &File, out: &mut Vec<Finding>) {
    // The hooks' own definitions (which early-out internally) live in
    // the profile module; the rule audits *callers*.
    if file.path == "crates/kokkos/src/profile.rs" {
        return;
    }
    let spans = fn_spans(file);
    for call in HOOK_CALLS {
        for at in occurrences(file, call) {
            if file.in_test_code(at) {
                continue;
            }
            // Skip definitions (`fn note_instant(…`).
            let before = file.masked[..at].trim_end();
            if before.ends_with("fn") {
                continue;
            }
            // Innermost enclosing fn body.
            let encl = spans
                .iter()
                .filter(|&&(_, open, close)| open < at && at < close)
                .max_by_key(|&&(_, open, _)| open);
            let gated = match encl {
                Some(&(_, open, _)) => file.masked[open..at].contains("has_subscribers"),
                None => false,
            };
            if !gated {
                let name = call.trim_end_matches('(');
                out.push(finding(
                    file,
                    at,
                    Rule::Lkk003,
                    format!("`{name}` emission without a has_subscribers() gate in scope"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// LKK004 / LKK005 — parallel dispatch closures
// ---------------------------------------------------------------------

const DISPATCHES: &[&str] = &[
    "parallel_for(",
    "parallel_for_2d(",
    "parallel_for_team(",
    "parallel_reduce(",
    "parallel_reduce_sum(",
];

/// Byte spans of every parallel dispatch call's argument list
/// (closures included), excluding test code.
fn dispatch_spans(file: &File) -> Vec<(usize, usize)> {
    let b = file.masked.as_bytes();
    let mut spans = Vec::new();
    for d in DISPATCHES {
        for at in occurrences(file, d) {
            if file.in_test_code(at) {
                continue;
            }
            let open = at + d.len() - 1;
            spans.push((open, matching_paren(b, open)));
        }
    }
    spans.sort_unstable();
    spans
}

const ALLOC_PATTERNS: &[&str] = &[
    "Vec::new(",
    "Vec::with_capacity(",
    "vec!",
    "Box::new(",
    "String::new(",
    "String::from(",
    "format!",
    ".to_string(",
    ".to_vec(",
    ".to_owned(",
    ".collect(",
    ".collect::<",
];

fn lkk004_alloc_in_kernel(file: &File, spans: &[(usize, usize)], out: &mut Vec<Finding>) {
    for &(open, close) in spans {
        for pat in ALLOC_PATTERNS {
            let region = &file.masked[open..close];
            let mut from = 0;
            while let Some(p) = region[from..].find(pat) {
                let at = open + from + p;
                from += p + pat.len();
                if pat.starts_with('.') || ident_boundary_before(file.masked.as_bytes(), at) {
                    out.push(finding(
                        file,
                        at,
                        Rule::Lkk004,
                        format!(
                            "allocating call `{}` inside a parallel dispatch",
                            pat.trim_end_matches('(')
                        ),
                    ));
                }
            }
        }
    }
}

/// Identifiers declared locally inside `span` (let bindings and
/// closure parameters) — these may be scattered into freely.
fn local_names(masked: &str, span: (usize, usize)) -> Vec<String> {
    let region = &masked[span.0..span.1];
    let mut names = Vec::new();
    // `let [mut] name`
    let mut from = 0;
    while let Some(p) = region[from..].find("let ") {
        let at = from + p;
        from = at + 4;
        let rest = region[at + 4..].trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let rest = rest.trim_start_matches(['(', '[']);
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            names.push(name);
        }
    }
    // Closure parameter lists: idents between a `|` pair on one line.
    let bytes = region.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'|' {
            if let Some(len) = region[i + 1..]
                .find(['|', '\n'])
                .and_then(|p| (region.as_bytes()[i + 1 + p] == b'|').then_some(p))
            {
                let params = &region[i + 1..i + 1 + len];
                for tok in params.split(|c: char| !(c.is_alphanumeric() || c == '_')) {
                    if !tok.is_empty() && !tok.chars().next().unwrap().is_ascii_digit() {
                        names.push(tok.to_string());
                    }
                }
                i += len + 2;
                continue;
            }
        }
        i += 1;
    }
    names.sort();
    names.dedup();
    names
}

fn lkk005_raw_scatter(file: &File, spans: &[(usize, usize)], out: &mut Vec<Finding>) {
    let b = file.masked.as_bytes();
    for &span in spans {
        let locals = local_names(&file.masked, span);
        let region = &file.masked[span.0..span.1];
        for op in ["+=", "-="] {
            let mut from = 0;
            while let Some(p) = region[from..].find(op) {
                let at = span.0 + from + p;
                from += p + op.len();
                // LHS must end with `]` (indexed target).
                let lhs_end = file.masked[..at].trim_end().len();
                if lhs_end == 0 || b[lhs_end - 1] != b']' {
                    continue;
                }
                // Reverse-match the bracket, then read the base path.
                let mut depth = 0i32;
                let mut k = lhs_end - 1;
                loop {
                    match b[k] {
                        b']' => depth += 1,
                        b'[' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                let path_end = k;
                let path_start = file.masked[..path_end]
                    .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
                    .map(|p| p + 1)
                    .unwrap_or(0);
                let base_path = &file.masked[path_start..path_end];
                let base = base_path.split('.').next().unwrap_or("");
                if base.is_empty() || locals.iter().any(|l| l == base) {
                    continue;
                }
                out.push(finding(
                    file,
                    at,
                    Rule::Lkk005,
                    format!(
                        "raw `{base_path}[…] {op}` scatter inside a parallel dispatch \
                         (`{base}` is not closure-local)"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        check_file(&File::new(path, src))
    }

    #[test]
    fn rule_ids_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_id(r.id()), Some(r));
        }
        assert_eq!(Rule::from_id("LKK999"), None);
    }

    #[test]
    fn wall_clock_in_comment_or_string_is_ignored() {
        let f = check(
            "crates/x/src/a.rs",
            "// Instant::now() is banned\nfn f() { let s = \"SystemTime\"; }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn local_scatter_and_scratch_pass() {
        let src = r#"
fn kernel(space: &Space) {
    space.parallel_reduce("k", n, [0.0f64; 6], |i| {
        let mut w = [0.0f64; 6];
        w[0] += 1.0;
        w
    }, |a, b| a);
}
"#;
        assert!(check("crates/x/src/a.rs", src).is_empty());
    }
}
