//! `lkk-lint` CLI: scan the workspace, apply `lint_allow.toml`, print
//! a byte-stable report, and gate via exit code.
//!
//! Exit codes: 0 clean (or fully allowlisted), 1 violations found,
//! 2 configuration/IO error (malformed allowlist, unreadable tree).

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: lkk-lint [--root DIR] [--allow FILE] [--verbose] [--list-rules]

  --root DIR     workspace root (default: walk up from cwd to the
                 first Cargo.toml containing [workspace])
  --allow FILE   allowlist path (default: <root>/lint_allow.toml;
                 missing file means an empty allowlist)
  --verbose      also print allowlisted findings
  --list-rules   print the rule table and exit
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--allow" => allow_path = args.next().map(PathBuf::from),
            "--verbose" => verbose = true,
            "--list-rules" => {
                for r in lkk_lint::rules::Rule::ALL {
                    println!("{}  {}", r.id(), r.summary());
                    println!("        {}", r.hint());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lkk-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| lkk_lint::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("lkk-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let allow_path = allow_path.unwrap_or_else(|| root.join("lint_allow.toml"));
    let allow = if allow_path.is_file() {
        let text = match std::fs::read_to_string(&allow_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("lkk-lint: cannot read {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        };
        match lkk_lint::allowlist::parse(&text) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("lkk-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Vec::new()
    };

    let report = match lkk_lint::scan_workspace(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lkk-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", lkk_lint::format_report(&report, verbose));
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
