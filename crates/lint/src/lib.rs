//! lkk-lint: the workspace invariant linter.
//!
//! Enforces the determinism and hot-path invariants this codebase is
//! built around (see `docs/static-analysis.md` for the rationale and
//! `rules::Rule` for the rule set). Runs as `cargo run -p lkk-lint`
//! locally and as the gating `lint-invariants` CI job; exit codes are
//! 0 (clean), 1 (findings), 2 (config error).
//!
//! Output is byte-stable across runs and machines: files are walked in
//! sorted order with forward-slash relative paths, findings are sorted
//! by (path, line, rule), and nothing in the report depends on wall
//! time or hash order — the linter holds itself to its own rules.

pub mod allowlist;
pub mod rules;
pub mod source;

use rules::Finding;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Directories under the workspace root that are scanned.
const SCAN_ROOTS: &[&str] = &["src", "crates", "tests", "examples"];

/// Path segments that exclude a file from scanning: build output,
/// vendored shims (third-party idiom, not ours to lint), and lint
/// test fixtures (which contain violations on purpose).
const EXCLUDED_SEGMENTS: &[&str] = &["target", "shims", "fixtures"];

/// All `.rs` files to lint, as `(relative_path, absolute_path)`,
/// sorted by relative path for byte-stable output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if EXCLUDED_SEGMENTS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked path is under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// The outcome of a full workspace scan.
pub struct Report {
    /// Violations not covered by any allowlist entry, sorted.
    pub findings: Vec<Finding>,
    /// Violations covered by an allowlist entry, sorted.
    pub allowed: Vec<Finding>,
    /// Allowlist entries that matched nothing (stale — candidates for
    /// removal), identified by `(rule id, path)`.
    pub unused_allow: Vec<(String, String)>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Scan every workspace file and partition findings by the allowlist.
pub fn scan_workspace(root: &Path, allow: &[allowlist::Entry]) -> std::io::Result<Report> {
    let files = workspace_files(root)?;
    let files_scanned = files.len();
    let mut findings = Vec::new();
    let mut allowed = Vec::new();
    let mut used = vec![false; allow.len()];
    for (rel, abs) in files {
        let text = std::fs::read_to_string(&abs)?;
        let file = source::File::new(rel, text);
        for f in rules::check_file(&file) {
            let mut hit = false;
            for (i, entry) in allow.iter().enumerate() {
                if entry.matches(&f) {
                    used[i] = true;
                    hit = true;
                }
            }
            if hit {
                allowed.push(f);
            } else {
                findings.push(f);
            }
        }
    }
    findings.sort();
    allowed.sort();
    let unused_allow = allow
        .iter()
        .zip(&used)
        .filter(|&(_, &u)| !u)
        .map(|(e, _)| (e.rule.id().to_string(), e.path.clone()))
        .collect();
    Ok(Report {
        findings,
        allowed,
        unused_allow,
        files_scanned,
    })
}

/// Render the report. Byte-stable: same tree in, same bytes out.
pub fn format_report(report: &Report, verbose: bool) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(out, "{} {}:{}: {}", f.rule.id(), f.path, f.line, f.detail);
        let _ = writeln!(out, "    | {}", f.excerpt);
        let _ = writeln!(out, "    = hint: {}", f.rule.hint());
    }
    if verbose {
        for f in &report.allowed {
            let _ = writeln!(
                out,
                "allowed {} {}:{}: {}",
                f.rule.id(),
                f.path,
                f.line,
                f.detail
            );
        }
    }
    for (rule, path) in &report.unused_allow {
        let _ = writeln!(
            out,
            "note: unused allowlist entry {rule} for `{path}` (stale? remove it)"
        );
    }
    let _ = writeln!(
        out,
        "lkk-lint: {} file(s) scanned, {} violation(s), {} allowlisted",
        report.files_scanned,
        report.findings.len(),
        report.allowed.len()
    );
    out
}

/// Walk up from `start` to the workspace root (the first ancestor
/// whose `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excluded_segments_cover_shims_and_fixtures() {
        for seg in ["target", "shims", "fixtures"] {
            assert!(EXCLUDED_SEGMENTS.contains(&seg));
        }
    }

    #[test]
    fn report_formatting_is_stable() {
        let report = Report {
            findings: vec![Finding {
                path: "crates/x/src/a.rs".into(),
                line: 3,
                rule: rules::Rule::Lkk001,
                excerpt: "let t = Instant::now();".into(),
                detail: "nondeterministic source `Instant::now`".into(),
            }],
            allowed: vec![],
            unused_allow: vec![("LKK002".into(), "src/gone.rs".into())],
            files_scanned: 1,
        };
        let a = format_report(&report, false);
        let b = format_report(&report, false);
        assert_eq!(a, b);
        assert!(a.contains("LKK001 crates/x/src/a.rs:3"));
        assert!(a.contains("unused allowlist entry LKK002"));
        assert!(a.ends_with("1 violation(s), 0 allowlisted\n"));
    }
}
