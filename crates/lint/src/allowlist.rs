//! The audited exemption list (`lint_allow.toml`).
//!
//! A minimal, dependency-free TOML-subset parser: the file is a
//! sequence of `[[allow]]` tables with string-valued keys. Every entry
//! must carry a non-trivial `justification` — an exemption without a
//! reason is a config error (exit code 2), not a warning.
//!
//! ```toml
//! [[allow]]
//! rule = "LKK001"
//! path = "crates/perf/src/timing.rs"
//! contains = "Instant::now"          # optional excerpt filter
//! justification = "the --time harness measures real wall time by design"
//! ```

use crate::rules::{Finding, Rule};

/// One audited exemption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub rule: Rule,
    pub path: String,
    /// When set, the entry only matches findings whose source excerpt
    /// contains this substring (narrows a file-wide waiver to a site).
    pub contains: Option<String>,
    pub justification: String,
    /// 1-based line of the `[[allow]]` header (for diagnostics).
    pub line: usize,
}

impl Entry {
    pub fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule
            && self.path == f.path
            && self
                .contains
                .as_ref()
                .is_none_or(|c| f.excerpt.contains(c.as_str()))
    }
}

/// A malformed allowlist is a hard error: silent exemptions are worse
/// than noisy findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint_allow.toml:{}: {}", self.line, self.message)
    }
}

/// Minimum length for a justification to count as written-by-a-human.
const MIN_JUSTIFICATION: usize = 15;

pub fn parse(text: &str) -> Result<Vec<Entry>, ParseError> {
    struct Draft {
        rule: Option<Rule>,
        path: Option<String>,
        contains: Option<String>,
        justification: Option<String>,
        line: usize,
    }
    let mut drafts: Vec<Draft> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        // Note: the '#'-split above is safe for this grammar only
        // because none of our string values may contain '#'.
        if raw.trim_start().starts_with('#') || line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            drafts.push(Draft {
                rule: None,
                path: None,
                contains: None,
                justification: None,
                line: lineno,
            });
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(ParseError {
                line: lineno,
                message: format!("expected `key = \"value\"` or `[[allow]]`, got `{line}`"),
            });
        };
        let key = line[..eq].trim();
        let val = line[eq + 1..].trim();
        let value = val
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| ParseError {
                line: lineno,
                message: format!("value for `{key}` must be a double-quoted string"),
            })?
            .to_string();
        let Some(draft) = drafts.last_mut() else {
            return Err(ParseError {
                line: lineno,
                message: "assignment before the first [[allow]] header".into(),
            });
        };
        match key {
            "rule" => {
                draft.rule = Some(Rule::from_id(&value).ok_or_else(|| ParseError {
                    line: lineno,
                    message: format!("unknown rule id `{value}` (known: LKK001..LKK005)"),
                })?)
            }
            "path" => draft.path = Some(value),
            "contains" => draft.contains = Some(value),
            "justification" => draft.justification = Some(value),
            other => {
                return Err(ParseError {
                    line: lineno,
                    message: format!(
                        "unknown key `{other}` (expected rule/path/contains/justification)"
                    ),
                })
            }
        }
    }
    let mut entries = Vec::new();
    for d in drafts {
        let rule = d.rule.ok_or(ParseError {
            line: d.line,
            message: "entry is missing `rule`".into(),
        })?;
        let path = d.path.filter(|p| !p.is_empty()).ok_or(ParseError {
            line: d.line,
            message: "entry is missing `path`".into(),
        })?;
        let justification = d.justification.unwrap_or_default();
        if justification.trim().len() < MIN_JUSTIFICATION {
            return Err(ParseError {
                line: d.line,
                message: format!(
                    "entry for {} at `{path}` needs a real justification \
                     (>= {MIN_JUSTIFICATION} chars explaining why the invariant does not apply)",
                    rule.id()
                ),
            });
        }
        entries.push(Entry {
            rule,
            path,
            contains: d.contains,
            justification,
            line: d.line,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_matches() {
        let entries = parse(
            r#"
# audited exemptions
[[allow]]
rule = "LKK001"
path = "crates/perf/src/timing.rs"
contains = "Instant::now"
justification = "wall-time harness measures real elapsed time by design"
"#,
        )
        .unwrap();
        assert_eq!(entries.len(), 1);
        let f = Finding {
            path: "crates/perf/src/timing.rs".into(),
            line: 88,
            rule: Rule::Lkk001,
            excerpt: "let t0 = Instant::now();".into(),
            detail: String::new(),
        };
        assert!(entries[0].matches(&f));
        let other = Finding {
            excerpt: "let t0 = SystemTime::now();".into(),
            ..f
        };
        assert!(!entries[0].matches(&other));
    }

    #[test]
    fn rejects_missing_justification() {
        let err = parse("[[allow]]\nrule = \"LKK001\"\npath = \"src/a.rs\"\n").unwrap_err();
        assert!(err.message.contains("justification"), "{err}");
    }

    #[test]
    fn rejects_trivial_justification() {
        let err =
            parse("[[allow]]\nrule = \"LKK002\"\npath = \"src/a.rs\"\njustification = \"ok\"\n")
                .unwrap_err();
        assert!(err.message.contains("justification"), "{err}");
    }

    #[test]
    fn rejects_unknown_rule_and_key() {
        assert!(parse("[[allow]]\nrule = \"LKK009\"\n").is_err());
        assert!(parse("[[allow]]\nfoo = \"bar\"\n").is_err());
        assert!(parse("rule = \"LKK001\"\n").is_err());
    }
}
