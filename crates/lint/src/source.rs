//! Lexical preprocessing: turn Rust source into a *masked* twin where
//! every comment, string literal, and char literal is replaced by
//! spaces (newlines preserved), so the rule matchers in
//! [`crate::rules`] never fire on pattern text that merely appears in
//! a doc comment or a format string. Offsets and line numbers in the
//! masked text are identical to the original.
//!
//! The lexer handles line and (nested) block comments, plain and raw
//! strings (`r"…"`, `r#"…"#`, byte variants), char literals, and the
//! lifetime-vs-char ambiguity (`'a` is code, `'a'` is masked).

/// A source file prepared for rule matching.
pub struct File {
    /// Workspace-relative path with forward slashes (the identity used
    /// by findings and the allowlist).
    pub path: String,
    /// Original text (used for excerpts).
    pub text: String,
    /// Comment/string-masked twin of `text`, same length.
    pub masked: String,
    /// Byte offset of the start of each line in `text`/`masked`.
    line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_spans: Vec<(usize, usize)>,
}

impl File {
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> File {
        let text = text.into();
        let masked = mask(&text);
        let mut line_starts = vec![0usize];
        for (i, b) in masked.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let test_spans = find_test_spans(&masked);
        File {
            path: path.into(),
            text,
            masked,
            line_starts,
            test_spans,
        }
    }

    /// 1-based line number of byte offset `off`.
    pub fn line_of(&self, off: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= off)
    }

    /// The trimmed original text of the line containing `off`.
    pub fn excerpt(&self, off: usize) -> String {
        let line = self.line_of(off);
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e.saturating_sub(1))
            .unwrap_or(self.text.len());
        self.text[start..end].trim().to_string()
    }

    /// Is `off` inside a `#[cfg(test)]` module or `#[test]` function?
    pub fn in_test_code(&self, off: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| s <= off && off < e)
    }
}

/// Replace comments, string literals, and char literals with spaces.
fn mask(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let n = b.len();
    let mut i = 0;
    let blank = |out: &mut Vec<u8>, from: usize, to: usize| {
        for slot in out.iter_mut().take(to).skip(from) {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };
    while i < n {
        let c = b[i];
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            let end = src[i..].find('\n').map(|p| i + p).unwrap_or(n);
            blank(&mut out, i, end);
            i = end;
        } else if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 1;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if b[j] == b'/' && j + 1 < n && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < n && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, i, j);
            i = j;
        } else if c == b'"' {
            let j = skip_string(b, i);
            blank(&mut out, i, j);
            i = j;
        } else if c == b'r' || c == b'b' {
            // r"…", r#"…"#, b"…", br#"…"# — only when `r`/`b` starts a
            // token (previous byte is not part of an identifier).
            let prev_ident = i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
            if prev_ident {
                i += 1;
                continue;
            }
            let mut k = i + 1;
            if c == b'b' && k < n && b[k] == b'r' {
                k += 1;
            }
            let mut hashes = 0;
            while k < n && b[k] == b'#' {
                hashes += 1;
                k += 1;
            }
            if k < n && b[k] == b'"' && (c == b'r' || hashes > 0 || (c == b'b' && k == i + 1)) {
                let j = if hashes == 0 && c == b'b' && k == i + 1 {
                    skip_string(b, k)
                } else {
                    skip_raw_string(src, k, hashes)
                };
                blank(&mut out, i, j);
                i = j;
            } else {
                i += 1;
            }
        } else if c == b'\'' {
            // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
            if i + 2 < n && b[i + 1] == b'\\' {
                // Escaped char literal.
                let mut j = i + 2;
                while j < n && b[j] != b'\'' {
                    j += 1;
                }
                blank(&mut out, i, (j + 1).min(n));
                i = (j + 1).min(n);
            } else if i + 2 < n && b[i + 2] == b'\'' {
                blank(&mut out, i, i + 3);
                i += 3;
            } else {
                i += 1; // lifetime
            }
        } else {
            i += 1;
        }
    }
    String::from_utf8(out).expect("masking only rewrites ASCII bytes")
}

/// Skip a plain string starting at the opening quote; returns the
/// offset one past the closing quote.
fn skip_string(b: &[u8], open: usize) -> usize {
    let n = b.len();
    let mut j = open + 1;
    while j < n {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Skip a raw string whose opening quote is at `open` with `hashes`
/// leading `#`s; returns the offset one past the closing delimiter.
fn skip_raw_string(src: &str, open: usize, hashes: usize) -> usize {
    let closer: String = format!("\"{}", "#".repeat(hashes));
    src[open + 1..]
        .find(&closer)
        .map(|p| open + 1 + p + closer.len())
        .unwrap_or(src.len())
}

/// Byte spans of items annotated `#[cfg(test)]` or `#[test]` (from the
/// attribute to the closing brace of the item body).
fn find_test_spans(masked: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for pat in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0;
        while let Some(p) = masked[from..].find(pat) {
            let at = from + p;
            if let Some(open) = masked[at..].find('{').map(|o| at + o) {
                let close = matching_brace(masked.as_bytes(), open);
                spans.push((at, close));
                from = at + pat.len();
            } else {
                break;
            }
        }
    }
    spans.sort_unstable();
    spans
}

/// Offset one past the `}` matching the `{` at `open` (or end of
/// input when unbalanced).
pub fn matching_brace(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
    }
    b.len()
}

/// Offset one past the `)` matching the `(` at `open`.
pub fn matching_paren(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
    }
    b.len()
}

/// Is the byte before `off` something that could end an identifier?
/// Used to require word boundaries when matching keywords/names.
/// A preceding `:` is a boundary on purpose: `profile::note_instant(`
/// and `time::Instant::now` are qualified uses of the matched name.
pub fn ident_boundary_before(b: &[u8], off: usize) -> bool {
    off == 0 || !(b[off - 1].is_ascii_alphanumeric() || b[off - 1] == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let f = File::new(
            "x.rs",
            "let a = \"Instant::now()\"; // Instant::now()\nlet b = 1;\n",
        );
        assert!(!f.masked.contains("Instant::now"));
        assert!(f.masked.contains("let b = 1;"));
        assert_eq!(f.masked.len(), f.text.len());
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let f = File::new(
            "x.rs",
            "let s = r#\"HashMap text \" inner\"#; let c = 'x'; let lt: &'static str = \"y\";\n",
        );
        assert!(!f.masked.contains("HashMap"));
        assert!(f.masked.contains("'static"));
    }

    #[test]
    fn nested_block_comments() {
        let f = File::new("x.rs", "/* outer /* SystemTime */ still */ let x = 2;");
        assert!(!f.masked.contains("SystemTime"));
        assert!(f.masked.contains("let x = 2;"));
    }

    #[test]
    fn line_numbers_track_offsets() {
        let f = File::new("x.rs", "a\nbb\nccc\n");
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 2);
        assert_eq!(f.line_of(5), 3);
        assert_eq!(f.excerpt(5), "ccc");
    }

    #[test]
    fn test_spans_cover_cfg_test_modules() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn tail() {}\n";
        let f = File::new("x.rs", src);
        let helper = src.find("helper").unwrap();
        let tail = src.find("tail").unwrap();
        assert!(f.in_test_code(helper));
        assert!(!f.in_test_code(tail));
        assert!(!f.in_test_code(0));
    }
}
