// Fixture: LKK005 — raw indexed scatter inside a parallel dispatch.
use lkk_kokkos::Space;

pub fn kernel(space: &Space, f: &mut [f64], n: usize) {
    space.parallel_for("FixtureScatter", n, |i| {
        let j = (i + 1) % n;
        f[j] += 1.0;
        f[i] -= 0.5;
    });
}
