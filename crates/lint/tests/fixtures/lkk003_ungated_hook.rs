// Fixture: LKK003 — hook emission without a has_subscribers() gate.
use lkk_kokkos::profile;

pub fn report(flops: f64, bytes: f64) {
    profile::note_instant("fixture.flops", flops);
    profile::note_counter("fixture.bytes", bytes);
}

pub fn report_gated(flops: f64) {
    if profile::has_subscribers() {
        profile::note_instant("fixture.flops", flops);
    }
}
