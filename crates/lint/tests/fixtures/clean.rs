// Fixture: a file that follows every invariant — must produce zero
// findings (guards against matcher over-reach).
use lkk_kokkos::{profile, ScatterView, Space};
use std::collections::BTreeMap;

pub fn kernel(space: &Space, sv: &ScatterView, n: usize) -> f64 {
    let e = space.parallel_reduce(
        "CleanKernel",
        n,
        0.0f64,
        |i| {
            let mut w = [0.0f64; 3];
            w[0] += 1.0; // closure-local accumulator: fine
            sv.add(i, 0, w[0]); // deconflicted scatter: fine
            w[0]
        },
        |a, b| a + b,
    );
    if profile::has_subscribers() {
        profile::note_instant("clean.energy", e);
    }
    e
}

pub fn dump(m: &BTreeMap<String, f64>) -> String {
    // Ordered container: iteration is deterministic.
    let mut out = String::new();
    for (k, v) in m {
        out.push_str(&format!("{k}={v};"));
    }
    out
}

pub fn commentary() {
    // Mentions of Instant::now() or HashMap in comments and strings
    // must never fire: "SystemTime::now() is banned here".
    let _doc = "call thread_rng() nowhere";
}
