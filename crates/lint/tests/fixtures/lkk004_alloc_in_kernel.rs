// Fixture: LKK004 — allocation inside a parallel dispatch closure.
use lkk_kokkos::Space;

pub fn kernel(space: &Space, n: usize) -> f64 {
    space.parallel_reduce(
        "FixtureKernel",
        n,
        0.0f64,
        |i| {
            let scratch = vec![0.0f64; 8];
            let names: Vec<String> = (0..4).map(|k| k.to_string()).collect();
            scratch[i % 8] + names.len() as f64
        },
        |a, b| a + b,
    )
}
