// Fixture: LKK002 — iterating a std hash container.
use std::collections::HashMap;

pub fn dump(m: &HashMap<String, f64>) -> String {
    let mut out = String::new();
    for (k, v) in m.iter() {
        out.push_str(&format!("{k}={v};"));
    }
    out
}

pub fn keys_of(counts: HashMap<String, u64>) -> Vec<String> {
    counts.keys().cloned().collect()
}
