// Fixture: LKK001 — wall clock / OS entropy in library code.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let _wall = SystemTime::now();
    t0.elapsed().as_nanos()
}
