//! Fixture-based end-to-end tests: each rule fires on its seeded
//! violation (with the right rule id and line) and stays silent on the
//! clean fixture. A scratch-workspace test exercises the walker,
//! allowlist, and exit-code contract the CI job relies on.

use lkk_lint::rules::{check_file, Rule};
use lkk_lint::source::File;

/// Scan a fixture under a synthetic in-scope path (the fixture dir
/// itself is excluded from real workspace scans by name).
fn scan(fixture: &str, text: &str) -> Vec<(Rule, usize)> {
    let path = format!("crates/scratch/src/{fixture}");
    check_file(&File::new(path, text))
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn lkk001_fires_on_wall_clock_fixture() {
    let found = scan(
        "lkk001_wall_clock.rs",
        include_str!("fixtures/lkk001_wall_clock.rs"),
    );
    assert!(found.iter().any(|&(r, l)| r == Rule::Lkk001 && l == 5));
    assert!(found.iter().any(|&(r, l)| r == Rule::Lkk001 && l == 6));
    assert!(found.iter().all(|&(r, _)| r == Rule::Lkk001));
}

#[test]
fn lkk002_fires_on_hash_iteration_fixture() {
    let found = scan(
        "lkk002_hash_iter.rs",
        include_str!("fixtures/lkk002_hash_iter.rs"),
    );
    assert!(found.iter().any(|&(r, l)| r == Rule::Lkk002 && l == 6));
    assert!(found.iter().any(|&(r, l)| r == Rule::Lkk002 && l == 13));
}

#[test]
fn lkk003_fires_on_ungated_hooks_only() {
    let found = scan(
        "lkk003_ungated_hook.rs",
        include_str!("fixtures/lkk003_ungated_hook.rs"),
    );
    let lkk003: Vec<usize> = found
        .iter()
        .filter(|&&(r, _)| r == Rule::Lkk003)
        .map(|&(_, l)| l)
        .collect();
    // The two ungated emissions fire; the gated one (line 12) must not.
    assert_eq!(lkk003, vec![5, 6], "{found:?}");
}

#[test]
fn lkk004_fires_on_kernel_allocations() {
    let found = scan(
        "lkk004_alloc_in_kernel.rs",
        include_str!("fixtures/lkk004_alloc_in_kernel.rs"),
    );
    let lkk004: Vec<usize> = found
        .iter()
        .filter(|&&(r, _)| r == Rule::Lkk004)
        .map(|&(_, l)| l)
        .collect();
    // vec! on line 10; .to_string + .collect on line 11.
    assert!(lkk004.contains(&10), "{found:?}");
    assert!(lkk004.contains(&11), "{found:?}");
}

#[test]
fn lkk005_fires_on_raw_scatter() {
    let found = scan(
        "lkk005_raw_scatter.rs",
        include_str!("fixtures/lkk005_raw_scatter.rs"),
    );
    let lkk005: Vec<usize> = found
        .iter()
        .filter(|&&(r, _)| r == Rule::Lkk005)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(lkk005, vec![7, 8], "{found:?}");
}

#[test]
fn clean_fixture_produces_zero_findings() {
    let found = scan("clean.rs", include_str!("fixtures/clean.rs"));
    assert!(found.is_empty(), "{found:?}");
}

/// End-to-end: seed a violation into a scratch workspace on disk and
/// drive the same scan the CI job runs (walker + allowlist + report).
#[test]
fn scratch_workspace_scan_finds_seeded_violation() {
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-scratch-ws");
    let src = root.join("src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    std::fs::write(
        src.join("lib.rs"),
        "use std::time::Instant;\npub fn t() -> Instant { Instant::now() }\n",
    )
    .unwrap();

    let report = lkk_lint::scan_workspace(&root, &[]).unwrap();
    assert!(!report.is_clean());
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::Lkk001);
    assert_eq!(f.path, "src/lib.rs");
    assert_eq!(f.line, 2);

    // The same violation disappears under a justified allowlist entry
    // and the entry is reported as used (not stale).
    let allow = lkk_lint::allowlist::parse(
        "[[allow]]\nrule = \"LKK001\"\npath = \"src/lib.rs\"\n\
         justification = \"scratch fixture exercising the allowlist path end to end\"\n",
    )
    .unwrap();
    let report = lkk_lint::scan_workspace(&root, &allow).unwrap();
    assert!(report.is_clean());
    assert_eq!(report.allowed.len(), 1);
    assert!(report.unused_allow.is_empty());

    // Byte-stable output: two scans render identical reports.
    let a = lkk_lint::format_report(&report, true);
    let b = lkk_lint::format_report(&lkk_lint::scan_workspace(&root, &allow).unwrap(), true);
    assert_eq!(a, b);
}

/// The committed workspace itself must be clean: this is the same
/// gate the `lint-invariants` CI job applies, run as a unit test so
/// `cargo test` catches regressions even without the CI lane.
#[test]
fn committed_workspace_is_clean_under_committed_allowlist() {
    let root = match lkk_lint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
    {
        Some(r) => r,
        None => return, // packaged out of tree: nothing to scan
    };
    let allow_path = root.join("lint_allow.toml");
    let allow = if allow_path.is_file() {
        lkk_lint::allowlist::parse(&std::fs::read_to_string(&allow_path).unwrap())
            .expect("committed lint_allow.toml must parse")
    } else {
        Vec::new()
    };
    let report = lkk_lint::scan_workspace(&root, &allow).unwrap();
    assert!(
        report.is_clean(),
        "workspace has unwaived lint findings:\n{}",
        lkk_lint::format_report(&report, false)
    );
    assert!(
        report.unused_allow.is_empty(),
        "stale allowlist entries: {:?}",
        report.unused_allow
    );
}
