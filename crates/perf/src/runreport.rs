//! `--report` mode: run the rank-parallel smoke workloads under an
//! `lkk-trace` collector and distill each run into a critical-path
//! attribution report.
//!
//! Unlike [`crate::tracing`], which captures the whole suite on one
//! collector for a single Perfetto timeline, this mode gives every
//! rank-parallel workload a **fresh** deterministic collector: the
//! analyzer matches `step` spans by index per lane *name*, and both
//! workloads spawn lanes named `rank0`.., so sharing a collector would
//! splice two unrelated timelines into one fictitious run.
//!
//! Two artifacts per capture:
//!
//! * a canonical JSON document (`results/run_report.json` is the
//!   committed baseline) embedding each workload's
//!   [`lkk_trace::CriticalPathReport`] — byte-stable across runs in
//!   deterministic mode, so CI gates it with a byte comparison exactly
//!   like the counter and metrics baselines;
//! * a human-readable text rendering (attribution table per rank, flow
//!   counts by phase, the top critical-path spans, and the
//!   `owned_atoms` histogram quantiles) printed to stderr — advisory,
//!   never gated.

use crate::json::{self, Value};
use crate::report::with_exclusive_run;
use crate::workloads;
use lkk_gpusim::GpuArch;
use lkk_kokkos::profile;
use lkk_trace::{CriticalPathReport, MetricsRegistry, TraceCollector};
use std::fmt::Write as _;
use std::sync::Arc;

/// Schema version of the run-report document.
const SCHEMA_VERSION: f64 = 1.0;

/// The two artifacts of one `--report` capture.
pub struct RunReport {
    /// Canonical JSON — diffed byte-for-byte against
    /// `results/run_report.json` in CI.
    pub json: String,
    /// Human-readable attribution summary for the terminal.
    pub text: String,
}

/// Capture both rank-parallel workloads (`ranks4`, `skewed8`), each
/// under its own deterministic collector, and render the combined
/// report document.
pub fn capture_report() -> RunReport {
    let mut doc = Value::obj();
    doc.set("schema", Value::Num(SCHEMA_VERSION));
    let mut wl_obj = Value::obj();
    let mut text = String::new();

    for ranks in workloads::all_ranks() {
        let name = ranks.name;
        let collector = Arc::new(TraceCollector::deterministic(GpuArch::h100()));
        let metrics = collector.metrics();
        let report = with_exclusive_run(|| {
            let id = profile::register_subscriber(collector.clone());
            let run = ranks
                .spec
                .run(ranks.factory)
                .expect("fault-free rank-parallel run failed");
            profile::unregister_subscriber(id);
            for &owned in &run.owned_atoms {
                metrics.observe(&format!("{name}/owned_atoms"), owned as f64);
            }
            collector.critical_path()
        });
        render_text(&mut text, name, &report, &metrics);
        let parsed = json::parse(&report.to_canonical_json())
            .expect("critical-path canonical JSON must parse");
        wl_obj.set(name, parsed);
    }

    doc.set("workloads", wl_obj);
    RunReport {
        json: doc.to_pretty(),
        text,
    }
}

/// Shortest-round-trip rendering right-padded into a fixed-width
/// column, matching the canonical JSON number format.
fn col(v: f64, width: usize) -> String {
    format!("{:>width$}", format!("{v}"))
}

fn render_text(
    out: &mut String,
    name: &str,
    report: &CriticalPathReport,
    metrics: &MetricsRegistry,
) {
    let _ = writeln!(out, "== {name} ==");
    let pct = if report.total_time > 0.0 {
        100.0 * report.critical_time / report.total_time
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "  {} lanes, {} steps, clock {}; total {} {}, critical path {} ({pct:.1}%)",
        report.lanes.len(),
        report.nsteps,
        report.clock,
        report.total_time,
        report.clock,
        report.critical_time,
    );
    let tags: Vec<String> = report
        .flows_by_tag
        .iter()
        .map(|(tag, n)| format!("{tag} {n}"))
        .collect();
    let _ = writeln!(
        out,
        "  flows: {} complete, {} dangling ({})",
        report.flows_complete,
        report.flows_dangling,
        tags.join(", "),
    );
    let _ = writeln!(
        out,
        "  {:<8}{:>10}{:>10}{:>11}{:>9}{:>8}{:>8}{:>10}",
        "rank", "compute", "pack", "wire_wait", "unpack", "retry", "slack", "total"
    );
    for r in &report.ranks {
        let _ = writeln!(
            out,
            "  {:<8}{}{}{}{}{}{}{}",
            r.lane,
            col(r.compute, 10),
            col(r.pack, 10),
            col(r.wire_wait, 11),
            col(r.unpack, 9),
            col(r.retry, 8),
            col(r.slack, 8),
            col(r.total(), 10),
        );
    }
    let _ = writeln!(out, "  top critical-path spans:");
    for (i, s) in report.top_spans(5).iter().enumerate() {
        let _ = writeln!(
            out,
            "    {}. {} step {:>2} {:<24} {:<9} {}",
            i + 1,
            s.lane,
            s.step,
            s.name,
            s.bucket.name(),
            s.duration,
        );
    }
    if let Some(h) = metrics.histogram(&format!("{name}/owned_atoms")) {
        let _ = writeln!(
            out,
            "  owned_atoms p50/p95/p99: {} / {} / {}",
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The report document must be byte-stable, cover both rank
    /// workloads, and keep every attribution row summing to the run
    /// total (the analyzer's exactness contract, re-checked here at the
    /// harness level).
    #[test]
    fn report_is_stable_and_exact() {
        let a = capture_report();
        let b = capture_report();
        assert_eq!(a.json, b.json, "run report not byte-stable");

        let doc = json::parse(&a.json).unwrap();
        let wls = doc.get("workloads").unwrap();
        for wl in ["ranks4", "skewed8"] {
            let r = wls.get(wl).unwrap_or_else(|| panic!("missing {wl}"));
            assert_eq!(r.get("clock").unwrap(), &Value::Str("ticks".into()));
            let total = r.get("total_time").and_then(Value::as_f64).unwrap();
            assert!(total > 0.0, "{wl}: empty run");
            // No `critical <= total` bound: per-lane tick clocks are
            // unaligned, so a cross-lane path can sum to more than the
            // slowest single lane (see the note on
            // `CriticalPathReport::critical_time`).
            let critical = r.get("critical_time").and_then(Value::as_f64).unwrap();
            assert!(critical > 0.0, "{wl}: empty critical path");
            let flows = r.get("flows").unwrap();
            assert!(flows.get("complete").and_then(Value::as_f64).unwrap() > 0.0);
            assert_eq!(flows.get("dangling").and_then(Value::as_f64).unwrap(), 0.0);
            let Value::Obj(ranks) = r.get("ranks").unwrap() else {
                panic!("{wl}: ranks not an object");
            };
            for (lane, row) in ranks {
                let sum: f64 = ["compute", "pack", "wire_wait", "unpack", "retry", "slack"]
                    .iter()
                    .map(|k| row.get(k).and_then(Value::as_f64).unwrap())
                    .sum();
                assert_eq!(
                    sum,
                    row.get("total").and_then(Value::as_f64).unwrap(),
                    "{wl}/{lane}: buckets do not sum to total"
                );
                assert_eq!(
                    row.get("total").and_then(Value::as_f64).unwrap(),
                    total,
                    "{wl}/{lane}: rank total != run total"
                );
                assert_eq!(
                    row.get("retry").and_then(Value::as_f64).unwrap(),
                    0.0,
                    "{wl}/{lane}: retry time in a fault-free run"
                );
            }
        }

        // The text rendering mentions each workload and the table.
        for needle in [
            "== ranks4 ==",
            "== skewed8 ==",
            "wire_wait",
            "owned_atoms p50/p95/p99",
        ] {
            assert!(a.text.contains(needle), "report text missing {needle:?}");
        }
    }
}
