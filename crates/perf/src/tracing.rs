//! `--trace` / `--metrics` capture mode: run the smoke workloads under
//! an `lkk-trace` [`TraceCollector`] and return the Chrome trace_event
//! timeline plus the canonical metrics dump.
//!
//! The collector runs in [`TraceMode::Deterministic`]
//! (`lkk_trace::TraceMode`): timestamps are per-lane logical ticks, so
//! the exported timeline and the metrics dump are both byte-identical
//! across runs of the same binary — the metrics dump is gated against
//! `results/metrics_baseline.json` at `cmp` strictness, the same
//! zero-tolerance discipline as the counter baseline.
//!
//! Lane layout of the capture: the four single-rank workloads run on
//! the calling thread (lane `host`, each wrapped in a top-level region
//! named after the workload), then the rank-parallel workloads
//! (`ranks4`, then the load-balanced `skewed8`) add one lane per rank
//! thread (`rank0`..`rank7`) with the brick-comm phase spans recorded
//! by the gated instrumentation in `lkk-core`. Kernel launches on the
//! simulated device additionally populate the `pid 1` device lanes
//! with cost-model-predicted durations.

use crate::report::RUN_LOCK;
use crate::workloads::{self, Workload};
use lkk_gpusim::GpuArch;
use lkk_kokkos::{exec, profile};
use lkk_trace::TraceCollector;
use std::sync::Arc;

/// The two artifacts of one capture run.
pub struct TraceCapture {
    /// Chrome trace_event JSON — load at <https://ui.perfetto.dev>.
    pub chrome_json: String,
    /// Canonical metrics dump — diffed byte-for-byte in CI.
    pub metrics_json: String,
}

/// Capture the full smoke suite (all four single-rank workloads plus
/// `ranks4`). This is what `perf-smoke --trace/--metrics` runs and what
/// `results/metrics_baseline.json` is generated from.
pub fn capture() -> TraceCapture {
    capture_with(workloads::all())
}

/// Capture with an explicit single-rank workload subset (the
/// rank-parallel workloads always run — they put the per-rank lanes,
/// the comm-phase spans, and the balance gauges on the timeline).
/// Tests pass a smaller subset to stay fast.
pub fn capture_with(single: Vec<Workload>) -> TraceCapture {
    let _exclusive = RUN_LOCK.lock().unwrap();
    let was_sequential = exec::force_sequential();
    exec::set_force_sequential(true);

    let collector = Arc::new(TraceCollector::deterministic(GpuArch::h100()));
    let id = profile::register_subscriber(collector.clone());

    for workload in single {
        let Workload {
            name,
            mut sim,
            steps,
            ..
        } = workload;
        let _span = profile::begin_region(name);
        sim.run(steps);
    }
    let rank_runs: Vec<_> = workloads::all_ranks()
        .into_iter()
        .map(|ranks| {
            let run = ranks
                .spec
                .run(ranks.factory)
                .expect("fault-free rank-parallel run failed");
            (ranks.name, run)
        })
        .collect();

    profile::unregister_subscriber(id);
    exec::set_force_sequential(was_sequential);

    // Harvest the run-level exchange counters and the per-rank
    // ownership census into the registry. Everything here is a
    // deterministic counter — wall-clock quantities (like
    // `pair_time_imbalance`) deliberately stay out of the dump.
    let metrics = collector.metrics();
    for (wl, run) in &rank_runs {
        let s = &run.comm_stats;
        for (name, value) in [
            ("forward_bytes", s.forward_bytes),
            ("forward_msgs", s.forward_msgs),
            ("reverse_bytes", s.reverse_bytes),
            ("reverse_msgs", s.reverse_msgs),
            ("scalar_bytes", s.scalar_bytes),
            ("scalar_msgs", s.scalar_msgs),
            ("border_bytes", s.border_bytes),
            ("border_msgs", s.border_msgs),
            ("migrate_bytes", s.migrate_bytes),
            ("migrate_msgs", s.migrate_msgs),
            ("balance_bytes", s.balance_bytes),
            ("balance_msgs", s.balance_msgs),
            ("rebalances", s.rebalances),
            ("allreduce_count", s.allreduce_count),
        ] {
            metrics.set_gauge(&format!("{wl}/comm/{name}"), value as f64);
        }
        metrics.set_gauge(&format!("{wl}/comm/pool_grow"), run.comm_grow as f64);
        metrics.set_gauge(
            &format!("{wl}/comm/pool_grow_after_warmup"),
            run.comm_grow_after_warmup as f64,
        );
        for (rank, &owned) in run.owned_atoms.iter().enumerate() {
            metrics.set_gauge(&format!("{wl}/rank{rank}/owned_atoms"), owned as f64);
            metrics.observe(&format!("{wl}/owned_atoms"), owned as f64);
        }
        metrics.set_gauge(&format!("{wl}/atom_imbalance"), run.atom_imbalance());
    }

    TraceCapture {
        chrome_json: collector.export_chrome(),
        metrics_json: metrics.to_canonical_json(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast capture (LJ + ranks4) must produce a rank lane per rank,
    /// the comm-phase spans, and a byte-stable metrics dump.
    #[test]
    fn capture_is_deterministic_and_rank_aware() {
        let a = capture_with(vec![workloads::lj()]);
        let b = capture_with(vec![workloads::lj()]);
        assert_eq!(
            a.metrics_json, b.metrics_json,
            "metrics dump not byte-stable"
        );
        assert_eq!(a.chrome_json, b.chrome_json, "trace not byte-stable");

        for needle in [
            "\"rank0\"",
            "\"rank3\"",
            "\"name\": \"pack\"",
            "\"name\": \"unpack\"",
            "\"clock\": \"ticks\"",
            "gpusim NVIDIA H100 (predicted)",
        ] {
            assert!(a.chrome_json.contains(needle), "trace missing {needle}");
        }
        for needle in [
            "\"ranks4/comm/forward_bytes\"",
            "\"ranks4/comm/pool_grow_after_warmup\": 0",
            "\"ranks4/comm/balance_msgs\": 0",
            "\"ranks4/rank0/owned_atoms\"",
            "\"ranks4/atom_imbalance\"",
            "\"skewed8/comm/pool_grow_after_warmup\": 0",
            "\"skewed8/rank7/owned_atoms\"",
            "\"skewed8/atom_imbalance\"",
            "\"lj/owned_atoms\"",
        ] {
            assert!(a.metrics_json.contains(needle), "metrics missing {needle}");
        }
        // The balancer engaged on the skewed workload.
        let metrics = crate::json::parse(&a.metrics_json).unwrap();
        let gauges = metrics.get("gauges").unwrap();
        assert!(
            gauges
                .get("skewed8/comm/rebalances")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        assert!(
            gauges
                .get("skewed8/atom_imbalance")
                .unwrap()
                .as_f64()
                .unwrap()
                <= 1.15
        );
    }
}
