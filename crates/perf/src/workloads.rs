//! The four smoke workloads: small, fixed-seed systems for each force
//! field family the paper benchmarks, run through the full
//! `Simulation::run` timestep loop on a simulated device.
//!
//! Sizes are deliberately tiny — the harness gates on *counters*, not
//! throughput, so a few hundred atoms exercise every kernel, the
//! neighbor rebuild path, and the transfer machinery in well under a
//! second per workload.

use lkk_core::prelude::*;
use lkk_gpusim::GpuArch;
use lkk_reaxff::{hns, PairReaxff, ReaxParams};
use lkk_snap::{PairSnap, SnapParams};

/// A workload ready to run: a wired simulation plus the step count the
/// smoke report uses.
pub struct Workload {
    pub name: &'static str,
    pub sim: Simulation,
    pub steps: u64,
}

fn device() -> Space {
    Space::device(GpuArch::h100())
}

/// LJ melt: fcc at ρ* = 0.8442, T* = 1.44, the paper's §4.1 workload.
pub fn lj() -> Workload {
    let space = device();
    let n = 4; // 4³ fcc cells = 256 atoms
    let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let mut atoms = AtomData::from_positions(&lat.positions(n, n, n));
    let units = Units::lj();
    create_velocities(&mut atoms, &units, 1.44, 87287);
    let system = System::new(atoms, lat.domain(n, n, n), space.clone());
    let pair = PairKokkos::new(LjCut::single_type(1.0, 1.0, 2.5), &space);
    Workload {
        name: "lj",
        sim: Simulation::new(system, Box::new(pair)),
        steps: 30,
    }
}

/// EAM metal: fcc Cu-like lattice with the analytic Johnson-style
/// potential (two-pass density/force kernels + F′ ghost exchange).
pub fn eam() -> Workload {
    let space = device();
    let n = 3; // 3³ fcc cells = 108 atoms; a = r0·√2 ≈ 3.61 Å
    let params = EamParams::default();
    let lat = Lattice::new(LatticeKind::Fcc, params.r0 * std::f64::consts::SQRT_2);
    let mut atoms = AtomData::from_positions(&lat.positions(n, n, n));
    let units = Units::metal();
    create_velocities(&mut atoms, &units, 600.0, 12345);
    let system = System::new(atoms, lat.domain(n, n, n), space).with_units(units);
    let pair = PairEam::new(params);
    Workload {
        name: "eam",
        sim: Simulation::new(system, Box::new(pair)),
        steps: 20,
    }
}

/// SNAP: bcc tungsten-like lattice at a reduced `twojmax` (the kernel
/// structure — Ui/Yi/FusedDeidrj — is identical; the band count is
/// smaller so the smoke run stays fast).
pub fn snap() -> Workload {
    let space = device();
    let n = 3; // 3³ bcc cells = 54 atoms
    let lat = Lattice::new(LatticeKind::Bcc, 3.16);
    let mut atoms = AtomData::from_positions(&lat.positions(n, n, n));
    let units = Units::metal();
    create_velocities(&mut atoms, &units, 300.0, 4711);
    let system = System::new(atoms, lat.domain(n, n, n), space.clone()).with_units(units);
    let params = SnapParams {
        twojmax: 4,
        rcut: 3.5,
        ..Default::default()
    };
    let pair = PairSnap::new(params, &space);
    Workload {
        name: "snap",
        sim: Simulation::new(system, Box::new(pair)),
        steps: 10,
    }
}

/// ReaxFF: the HNS-like molecular crystal with charge equilibration.
pub fn reaxff() -> Workload {
    let space = device();
    // 3³ × 18-atom cells = 486 atoms; 2³ would leave the 15 Å box
    // smaller than twice the ~8.3 Å ghost cutoff and fail comm setup.
    let cells = 3;
    let (pos, types, domain) = hns::crystal(cells, cells, cells, 7.5);
    let mut atoms = AtomData::from_positions(&pos);
    atoms.mass = vec![12.0, 1.0, 14.0, 16.0];
    for (i, &t) in types.iter().enumerate() {
        atoms.typ.h_view_mut().set([i], t);
    }
    let units = Units::metal();
    create_velocities(&mut atoms, &units, 300.0, 2718);
    let system = System::new(atoms, domain, space).with_units(units);
    let pair = PairReaxff::new(ReaxParams::hns_like());
    Workload {
        name: "reaxff",
        sim: Simulation::new(system, Box::new(pair)),
        steps: 5,
    }
}

/// All four single-rank workloads in report order.
pub fn all() -> Vec<Workload> {
    vec![lj(), eam(), snap(), reaxff()]
}

/// A rank-parallel workload: an initial state plus the per-rank
/// simulation factory. The spec carries its [`CommSpec::Brick`] layout,
/// so callers just invoke [`lkk_core::comm::brick::RunSpec::run`].
pub struct RankWorkload {
    pub name: &'static str,
    pub spec: RunSpec,
    pub nranks: usize,
    pub factory: fn(usize, System) -> Simulation,
}

fn ranks4_sim(_rank: usize, system: System) -> Simulation {
    // Half list + newton on: the cross-rank pair convention, completed
    // by reverse communication every step.
    let pair = PairKokkos::with_options(
        LjCut::single_type(1.0, 1.0, 2.5),
        &Space::Serial,
        PairKokkosOptions {
            force_half: Some(true),
            ..Default::default()
        },
    );
    Simulation::new(system, Box::new(pair))
}

/// The [`lj`] melt decomposed over 4 simulated MPI ranks (grid 1x2x2).
/// The warmup segment sizes the message pools; the measured segment
/// must then hold `pool_grow_after_warmup` at exactly 0 — that counter
/// is part of the committed baseline, so any steady-state allocation in
/// the exchange path fails the perf gate.
pub fn ranks4() -> RankWorkload {
    let n = 4;
    let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let mut atoms = AtomData::from_positions(&lat.positions(n, n, n));
    let units = Units::lj();
    create_velocities(&mut atoms, &units, 1.44, 87287);
    let mut spec = RunSpec::new(&atoms, lat.domain(n, n, n), 20).comm(CommSpec::Brick {
        ranks: 4,
        balance: None,
    });
    spec.warmup_steps = 10;
    RankWorkload {
        name: "ranks4",
        spec,
        nranks: 4,
        factory: ranks4_sim,
    }
}

fn skewed8_sim(_rank: usize, system: System) -> Simulation {
    // Full list + newton off + canonical row order: the determinism
    // knobs under which rebalancing is bitwise invisible to the
    // trajectory (see `tests/balance_equivalence.rs`).
    let pair = PairKokkos::with_options(
        LjCut::single_type(1.0, 1.0, 2.5),
        &Space::Serial,
        PairKokkosOptions {
            force_half: Some(false),
            ..Default::default()
        },
    );
    let mut sim = Simulation::new(system, Box::new(pair));
    sim.settings.sort_rows = true;
    sim
}

/// The load-balancer smoke: an elongated LJ box (32x4x4 cells) whose
/// first quarter along x keeps every atom while the tail keeps one in
/// four, decomposed over 8 ranks with rebalancing on. Statically the
/// dense slabs carry ~2.3x the mean load; the committed baseline pins
/// the `comm.balance_*` counters and the peak atom imbalance the
/// balancer settles at.
pub fn skewed8() -> RankWorkload {
    let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
    let (nx, ny, nz) = (32, 4, 4);
    let domain = lat.domain(nx, ny, nz);
    let lx = domain.hi[0] - domain.lo[0];
    let kept: Vec<[f64; 3]> = lat
        .positions(nx, ny, nz)
        .into_iter()
        .enumerate()
        .filter(|(i, p)| p[0] - domain.lo[0] < 0.25 * lx || i % 4 == 0)
        .map(|(_, p)| p)
        .collect();
    let mut atoms = AtomData::from_positions(&kept);
    create_velocities(&mut atoms, &Units::lj(), 1.44, 87287);
    let mut spec = RunSpec::new(&atoms, domain, 16).comm(CommSpec::Brick {
        ranks: 8,
        balance: Some(BalancePolicy::default()),
    });
    spec.warmup_steps = 8;
    RankWorkload {
        name: "skewed8",
        spec,
        nranks: 8,
        factory: skewed8_sim,
    }
}

/// Both rank-parallel workloads in report order: the static 4-rank
/// exchange smoke, then the 8-rank load-balancer smoke.
pub fn all_ranks() -> Vec<RankWorkload> {
    vec![ranks4(), skewed8()]
}
