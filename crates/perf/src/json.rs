//! A minimal, dependency-free JSON representation.
//!
//! The perf harness needs exactly two properties from its serializer
//! that a generic library would not guarantee out of the box:
//!
//! 1. **Byte-stable output** — object keys are emitted in the order the
//!    report builder inserts them (sorted), and floats use Rust's
//!    shortest-roundtrip `Display`, so the same counters always produce
//!    the same bytes. The baseline check diffs parsed values, but
//!    byte-stability keeps committed baselines free of formatting churn.
//! 2. **Exact numeric round-trip** — shortest-roundtrip printing parses
//!    back to the identical `f64`, so a written-then-reread report
//!    compares clean at zero tolerance.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (the report builder
/// inserts keys sorted).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Insert/overwrite a key on an object. Panics on non-objects.
    pub fn set(&mut self, key: impl Into<String>, val: Value) {
        let Value::Obj(entries) = self else {
            panic!("set() on non-object");
        };
        let key = key.into();
        match entries.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = val,
            None => entries.push((key, val)),
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Obj(entries) => entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => write_f64(out, *x),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Flatten to `path → scalar` pairs for diffing. Paths join object
    /// keys and array indices with `.`; scalars keep their `Value`.
    pub fn flatten(&self) -> Vec<(String, Value)> {
        let mut out = Vec::new();
        flatten_into(self, String::new(), &mut out);
        out
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    // JSON has no NaN/Infinity; counters are always finite, so treat a
    // non-finite value as a harness bug rather than emitting null.
    assert!(x.is_finite(), "non-finite counter {x} in perf report");
    // Shortest-roundtrip Display; ensure integral values still read as
    // numbers identical to their parse (Display prints "5" for 5.0,
    // which parses back to 5.0 — fine).
    let _ = write!(out, "{x}");
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn flatten_into(v: &Value, prefix: String, out: &mut Vec<(String, Value)>) {
    match v {
        Value::Obj(entries) => {
            for (k, child) in entries {
                let p = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_into(child, p, out);
            }
        }
        Value::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                let p = if prefix.is_empty() {
                    i.to_string()
                } else {
                    format!("{prefix}.{i}")
                };
                flatten_into(child, p, out);
            }
        }
        scalar => out.push((prefix, scalar.clone())),
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Parse a JSON document (the subset this crate emits, which is plain
/// standard JSON).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, word: &str, val: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(val)
    } else {
        Err(format!("bad keyword at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(entries));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        entries.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_exact() {
        let mut obj = Value::obj();
        obj.set("a", Value::Num(0.1));
        obj.set("b", Value::Num(1.0 / 3.0));
        obj.set("c", Value::Num(1e18));
        obj.set("d", Value::Str("weird \"chars\"\n\u{1}".into()));
        obj.set("e", Value::Arr(vec![Value::Bool(true), Value::Null]));
        let text = obj.to_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, obj);
        // And re-serialization is byte-identical.
        assert_eq!(back.to_pretty(), text);
    }

    #[test]
    fn flatten_paths() {
        let mut inner = Value::obj();
        inner.set("x", Value::Num(1.0));
        let mut obj = Value::obj();
        obj.set("k", inner);
        obj.set("arr", Value::Arr(vec![Value::Num(2.0)]));
        let flat = obj.flatten();
        assert_eq!(flat[0].0, "k.x");
        assert_eq!(flat[1].0, "arr.0");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
    }
}
