//! `perf-smoke` — run the deterministic smoke workloads and gate on a
//! committed counter baseline.
//!
//! ```text
//! perf-smoke                                   # write results/perf_smoke.json
//! perf-smoke --out PATH                        # write elsewhere
//! perf-smoke --check results/perf_baseline.json
//! perf-smoke --check BASE --tolerance 1e-9     # allow tiny relative drift
//! perf-smoke --write-baseline                  # refresh results/perf_baseline.json
//! perf-smoke --time                            # wall-clock medians -> results/BENCH_hotpath.json
//! perf-smoke --time --reps 5 --scale 25        # tune repetition count / run length
//! perf-smoke --trace trace.json                # Perfetto timeline of the smoke suite
//! perf-smoke --metrics metrics.json            # canonical metrics dump
//! perf-smoke --check-metrics results/metrics_baseline.json
//! perf-smoke --write-metrics-baseline          # refresh results/metrics_baseline.json
//! perf-smoke --report report.json              # critical-path run report
//! perf-smoke --check-report results/run_report.json
//! perf-smoke --write-report-baseline           # refresh results/run_report.json
//! perf-smoke --faults 1,2,3                    # chaos sweep: faulted ranks4 must
//!                                              # match the fault-free run bitwise
//! ```
//!
//! `--time` is advisory: it runs the same four workloads multi-threaded
//! and records median-of-N wall-clock per phase, but CI gates only on
//! the deterministic counters from the default mode.
//!
//! `--trace`/`--metrics`/`--check-metrics` are a separate capture mode
//! (they run the suite once under an `lkk-trace` collector). The trace
//! is a Chrome trace_event JSON — open it at <https://ui.perfetto.dev>.
//! The metrics dump is deterministic and is compared *byte-for-byte*
//! against the committed baseline.
//!
//! `--report`/`--check-report` run only the rank-parallel workloads,
//! each under a fresh collector, and render the critical-path
//! attribution document (see `docs/observability.md`). Like the
//! metrics dump it is byte-stable in deterministic mode and gated
//! byte-for-byte against `results/run_report.json`; the human-readable
//! attribution table prints to stderr.
//!
//! Exit codes: 0 = ok, 1 = counter/metrics drift vs baseline, 2 =
//! usage or I/O error.

use lkk_perf::{compare, json, report, timing, workloads};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const DEFAULT_OUT: &str = "results/perf_smoke.json";
const DEFAULT_BASELINE: &str = "results/perf_baseline.json";
const DEFAULT_TIME_OUT: &str = "results/BENCH_hotpath.json";
const DEFAULT_METRICS_BASELINE: &str = "results/metrics_baseline.json";
const DEFAULT_REPORT_BASELINE: &str = "results/run_report.json";
const DEFAULT_FAULTS_OUT: &str = "results/fault_report.json";

struct Args {
    out: PathBuf,
    check: Option<PathBuf>,
    write_baseline: bool,
    tolerance: f64,
    time: bool,
    reps: usize,
    scale: u64,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    check_metrics: Option<PathBuf>,
    write_metrics_baseline: bool,
    report: Option<PathBuf>,
    check_report: Option<PathBuf>,
    write_report_baseline: bool,
    faults: Option<Vec<u64>>,
}

fn usage() -> &'static str {
    "usage: perf-smoke [--out PATH] [--check BASELINE] [--tolerance T] [--write-baseline]\n       perf-smoke --time [--reps N] [--scale S] [--out PATH]\n       perf-smoke [--trace PATH] [--metrics PATH] [--check-metrics BASELINE] [--write-metrics-baseline]\n       perf-smoke [--report PATH] [--check-report BASELINE] [--write-report-baseline]\n       perf-smoke --faults SEED[,SEED...] [--out PATH]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: PathBuf::from(DEFAULT_OUT),
        check: None,
        write_baseline: false,
        tolerance: 0.0,
        time: false,
        reps: 5,
        scale: 25,
        trace: None,
        metrics: None,
        check_metrics: None,
        write_metrics_baseline: false,
        report: None,
        check_report: None,
        write_report_baseline: false,
        faults: None,
    };
    let mut out_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => {
                args.out = PathBuf::from(it.next().ok_or("--out needs a path")?);
                out_set = true;
            }
            "--check" => {
                args.check = Some(PathBuf::from(it.next().ok_or("--check needs a path")?));
            }
            "--tolerance" => {
                let t = it.next().ok_or("--tolerance needs a value")?;
                args.tolerance = t
                    .parse::<f64>()
                    .map_err(|e| format!("bad tolerance {t:?}: {e}"))?;
                if !(args.tolerance >= 0.0) {
                    return Err(format!("tolerance must be >= 0, got {t}"));
                }
            }
            "--write-baseline" => args.write_baseline = true,
            "--time" => args.time = true,
            "--reps" => {
                let r = it.next().ok_or("--reps needs a value")?;
                args.reps = r
                    .parse::<usize>()
                    .map_err(|e| format!("bad reps {r:?}: {e}"))?;
                if args.reps == 0 {
                    return Err("reps must be >= 1".into());
                }
            }
            "--scale" => {
                let s = it.next().ok_or("--scale needs a value")?;
                args.scale = s
                    .parse::<u64>()
                    .map_err(|e| format!("bad scale {s:?}: {e}"))?;
                if args.scale == 0 {
                    return Err("scale must be >= 1".into());
                }
            }
            "--trace" => {
                args.trace = Some(PathBuf::from(it.next().ok_or("--trace needs a path")?));
            }
            "--metrics" => {
                args.metrics = Some(PathBuf::from(it.next().ok_or("--metrics needs a path")?));
            }
            "--check-metrics" => {
                args.check_metrics = Some(PathBuf::from(
                    it.next().ok_or("--check-metrics needs a path")?,
                ));
            }
            "--write-metrics-baseline" => args.write_metrics_baseline = true,
            "--report" => {
                args.report = Some(PathBuf::from(it.next().ok_or("--report needs a path")?));
            }
            "--check-report" => {
                args.check_report = Some(PathBuf::from(
                    it.next().ok_or("--check-report needs a path")?,
                ));
            }
            "--write-report-baseline" => args.write_report_baseline = true,
            "--faults" => {
                let list = it.next().ok_or("--faults needs SEED[,SEED...]")?;
                let seeds = list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u64>()
                            .map_err(|e| format!("bad seed {s:?}: {e}"))
                    })
                    .collect::<Result<Vec<u64>, String>>()?;
                if seeds.is_empty() {
                    return Err("--faults needs at least one seed".into());
                }
                args.faults = Some(seeds);
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.time && !out_set {
        args.out = PathBuf::from(DEFAULT_TIME_OUT);
    }
    if args.faults.is_some() && !out_set {
        args.out = PathBuf::from(DEFAULT_FAULTS_OUT);
    }
    Ok(args)
}

fn write_report(path: &Path, text: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if let Some(seeds) = &args.faults {
        eprintln!(
            "perf-smoke: chaos sweep — ranks4 under {} fault seed(s) vs the fault-free run...",
            seeds.len()
        );
        let outcomes = lkk_perf::faults::run_seeds(seeds);
        let doc = lkk_perf::faults::render(&outcomes);
        if let Err(msg) = write_report(&args.out, &doc.to_pretty()) {
            eprintln!("perf-smoke: {msg}");
            return ExitCode::from(2);
        }
        eprintln!("perf-smoke: wrote {}", args.out.display());
        let mut failed = 0usize;
        for o in &outcomes {
            if o.violations.is_empty() {
                eprintln!(
                    "perf-smoke:   seed {:>12}: OK — {} faults injected, {} recovery actions, bitwise identical",
                    o.seed, o.injected, o.recovered
                );
            } else {
                failed += 1;
                eprintln!("perf-smoke:   seed {:>12}: FAIL", o.seed);
                for v in &o.violations {
                    eprintln!("perf-smoke:     {v}");
                }
            }
        }
        if failed > 0 {
            eprintln!(
                "perf-smoke: FAIL — {failed} of {} seed(s) broke determinism",
                outcomes.len()
            );
            return ExitCode::from(1);
        }
        eprintln!(
            "perf-smoke: OK — all {} seed(s) bitwise identical",
            outcomes.len()
        );
        return ExitCode::SUCCESS;
    }

    let report_mode =
        args.report.is_some() || args.check_report.is_some() || args.write_report_baseline;
    if report_mode {
        eprintln!("perf-smoke: critical-path report — ranks4 + skewed8 (forced sequential)...");
        let cap = lkk_perf::runreport::capture_report();
        eprint!("{}", cap.text);
        if let Some(path) = &args.report {
            if let Err(msg) = write_report(path, &cap.json) {
                eprintln!("perf-smoke: {msg}");
                return ExitCode::from(2);
            }
            eprintln!("perf-smoke: wrote {}", path.display());
        }
        if args.write_report_baseline {
            let path = Path::new(DEFAULT_REPORT_BASELINE);
            if let Err(msg) = write_report(path, &cap.json) {
                eprintln!("perf-smoke: {msg}");
                return ExitCode::from(2);
            }
            eprintln!("perf-smoke: wrote {}", path.display());
        }
        if let Some(baseline_path) = &args.check_report {
            let baseline_text = match std::fs::read_to_string(baseline_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("perf-smoke: reading {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            };
            if baseline_text == cap.json {
                eprintln!(
                    "perf-smoke: OK — run report byte-identical to {}",
                    baseline_path.display()
                );
            } else {
                eprintln!(
                    "perf-smoke: FAIL — run report drifted vs {} (byte comparison):",
                    baseline_path.display()
                );
                match (json::parse(&baseline_text), json::parse(&cap.json)) {
                    (Ok(base), Ok(cur)) => {
                        for d in compare(&base, &cur, 0.0) {
                            eprintln!("  {d}");
                        }
                    }
                    _ => eprintln!("  (one side is not parseable JSON)"),
                }
                eprintln!(
                    "perf-smoke: if the change is intentional, refresh with \
                     `cargo run --release -p lkk-perf --bin perf-smoke -- --write-report-baseline`"
                );
                return ExitCode::from(1);
            }
        }
        return ExitCode::SUCCESS;
    }

    let trace_mode = args.trace.is_some()
        || args.metrics.is_some()
        || args.check_metrics.is_some()
        || args.write_metrics_baseline;
    if trace_mode {
        eprintln!(
            "perf-smoke: tracing 4 single-rank workloads + ranks4 + skewed8 (forced sequential)..."
        );
        let cap = lkk_perf::tracing::capture();
        if let Some(path) = &args.trace {
            if let Err(msg) = write_report(path, &cap.chrome_json) {
                eprintln!("perf-smoke: {msg}");
                return ExitCode::from(2);
            }
            eprintln!(
                "perf-smoke: wrote {} (open at https://ui.perfetto.dev)",
                path.display()
            );
        }
        if let Some(path) = &args.metrics {
            if let Err(msg) = write_report(path, &cap.metrics_json) {
                eprintln!("perf-smoke: {msg}");
                return ExitCode::from(2);
            }
            eprintln!("perf-smoke: wrote {}", path.display());
        }
        if args.write_metrics_baseline {
            let path = Path::new(DEFAULT_METRICS_BASELINE);
            if let Err(msg) = write_report(path, &cap.metrics_json) {
                eprintln!("perf-smoke: {msg}");
                return ExitCode::from(2);
            }
            eprintln!("perf-smoke: wrote {}", path.display());
        }
        if let Some(baseline_path) = &args.check_metrics {
            let baseline_text = match std::fs::read_to_string(baseline_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("perf-smoke: reading {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            };
            if baseline_text == cap.metrics_json {
                eprintln!(
                    "perf-smoke: OK — metrics byte-identical to {}",
                    baseline_path.display()
                );
            } else {
                eprintln!(
                    "perf-smoke: FAIL — metrics drifted vs {} (byte comparison):",
                    baseline_path.display()
                );
                // Byte gate, structural report: parse both sides so the
                // failure names the drifted keys instead of a bare cmp.
                match (json::parse(&baseline_text), json::parse(&cap.metrics_json)) {
                    (Ok(base), Ok(cur)) => {
                        for d in compare(&base, &cur, 0.0) {
                            eprintln!("  {d}");
                        }
                    }
                    _ => eprintln!("  (one side is not parseable JSON)"),
                }
                eprintln!(
                    "perf-smoke: if the change is intentional, refresh with \
                     `cargo run --release -p lkk-perf --bin perf-smoke -- --write-metrics-baseline`"
                );
                return ExitCode::from(1);
            }
        }
        return ExitCode::SUCCESS;
    }

    if args.time {
        eprintln!(
            "perf-smoke: timing 4 workloads ({} reps, {}x steps, multi-threaded)...",
            args.reps, args.scale
        );
        let doc = timing::run_timed(args.reps, args.scale);
        if let Err(msg) = write_report(&args.out, &doc.to_pretty()) {
            eprintln!("perf-smoke: {msg}");
            return ExitCode::from(2);
        }
        eprintln!("perf-smoke: wrote {}", args.out.display());
        if let Some(wls) = doc.get("workloads") {
            for name in ["lj", "eam", "snap", "reaxff"] {
                if let Some(med) = wls
                    .get(name)
                    .and_then(|w| w.get("total_ms"))
                    .and_then(|t| t.get("median"))
                    .and_then(lkk_perf::Value::as_f64)
                {
                    eprintln!("perf-smoke:   {name:7} median {med:9.3} ms");
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "perf-smoke: running 4 single-rank workloads + ranks4 + skewed8 (forced sequential)..."
    );
    let current = report::run_all(workloads::all());
    let text = current.to_pretty();

    if let Err(msg) = write_report(&args.out, &text) {
        eprintln!("perf-smoke: {msg}");
        return ExitCode::from(2);
    }
    eprintln!("perf-smoke: wrote {}", args.out.display());

    if args.write_baseline {
        let baseline_path = Path::new(DEFAULT_BASELINE);
        if let Err(msg) = write_report(baseline_path, &text) {
            eprintln!("perf-smoke: {msg}");
            return ExitCode::from(2);
        }
        eprintln!("perf-smoke: wrote {}", baseline_path.display());
    }

    if let Some(baseline_path) = &args.check {
        let baseline_text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("perf-smoke: reading {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match json::parse(&baseline_text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("perf-smoke: parsing {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        let drifts = compare(&baseline, &current, args.tolerance);
        if drifts.is_empty() {
            eprintln!(
                "perf-smoke: OK — counters match {} (tolerance {})",
                baseline_path.display(),
                args.tolerance
            );
        } else {
            eprintln!(
                "perf-smoke: FAIL — {} counter(s) drifted vs {} (tolerance {}):",
                drifts.len(),
                baseline_path.display(),
                args.tolerance
            );
            for d in &drifts {
                eprintln!("  {d}");
            }
            eprintln!(
                "perf-smoke: if the change is intentional, refresh with \
                 `cargo run --release -p lkk-perf --bin perf-smoke -- --write-baseline`"
            );
            return ExitCode::from(1);
        }
    }

    ExitCode::SUCCESS
}
