//! `--time` mode: wall-clock phase timing for the smoke workloads.
//!
//! Counters (see [`crate::report`]) gate CI because they are bit-stable;
//! wall-clock is noisy and machine-dependent, so it is *reported and
//! archived* (`results/BENCH_hotpath.json`) but never diffed against a
//! baseline. The point is trend visibility: a hot-path overhead
//! regression shows up here as a jump in the per-phase medians even
//! though every counter stays identical.
//!
//! Unlike the counter run, timing runs are **not** forced sequential —
//! they execute with whatever thread pool the vendored rayon shim
//! provides, exactly like a real user run. Each workload is rebuilt
//! from scratch for every repetition (fresh allocations, fresh neighbor
//! list) and run for `steps × scale` timesteps; per-region wall-clock
//! comes from the same `ProfileSubscriber` region layer the counter
//! harness uses, and we report the median across repetitions.

use crate::json::Value;
use crate::workloads::{self, Workload};
use lkk_gpusim::ProfileSubscriber;
use lkk_kokkos::{exec, profile};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Schema version for `BENCH_hotpath.json`.
pub const TIME_SCHEMA_VERSION: f64 = 1.0;

/// Wall-clock accumulator: sums the `seconds` payload of every
/// `region_end` event per region path, for one repetition.
struct PhaseClock {
    totals: Mutex<BTreeMap<String, f64>>,
}

impl PhaseClock {
    fn new() -> Self {
        Self {
            totals: Mutex::new(BTreeMap::new()),
        }
    }

    fn take(&self) -> BTreeMap<String, f64> {
        std::mem::take(&mut self.totals.lock().unwrap())
    }
}

impl ProfileSubscriber for PhaseClock {
    fn region_end(&self, path: &str, _depth: usize, seconds: f64) {
        let mut totals = self.totals.lock().unwrap();
        *totals.entry(path.to_string()).or_insert(0.0) += seconds;
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in timing samples"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

fn min_max(xs: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

/// One timed repetition: build the workload fresh, run it under a
/// [`PhaseClock`], return (total wall seconds, per-phase seconds).
// Audited wall-clock site: lint_allow.toml LKK001 (--time harness).
#[allow(clippy::disallowed_methods)]
fn run_one_rep(make: fn() -> Workload, scale: u64) -> (f64, BTreeMap<String, f64>, usize, u64) {
    let Workload {
        name: _,
        mut sim,
        steps,
    } = make();
    let steps = steps * scale;
    let clock = Arc::new(PhaseClock::new());
    let id = profile::register_subscriber(clock.clone());
    let start = Instant::now();
    sim.run(steps);
    let total = start.elapsed().as_secs_f64();
    profile::unregister_subscriber(id);
    let natoms = sim.system.atoms.nlocal;
    (total, clock.take(), natoms, steps)
}

/// Run every smoke workload `reps` times for `steps × scale` timesteps
/// and build the `BENCH_hotpath.json` document: median / min / max
/// total wall-clock plus median per-phase wall-clock (milliseconds),
/// keyed by the region paths the timestep loop opens.
pub fn run_timed(reps: usize, scale: u64) -> Value {
    // Timing must not race a counter run: both use the process-global
    // subscriber registry and the force-sequential flag.
    let _exclusive = crate::report::RUN_LOCK.lock().unwrap();
    let was_sequential = exec::force_sequential();
    exec::set_force_sequential(false);

    type NamedFactory = (&'static str, fn() -> Workload);
    let factories: [NamedFactory; 4] = [
        ("lj", workloads::lj),
        ("eam", workloads::eam),
        ("snap", workloads::snap),
        ("reaxff", workloads::reaxff),
    ];

    let mut doc = Value::obj();
    doc.set("schema", Value::Num(TIME_SCHEMA_VERSION));
    doc.set("mode", Value::Str("wall_clock_advisory".into()));
    doc.set("reps", Value::Num(reps as f64));
    doc.set("steps_scale", Value::Num(scale as f64));

    let mut wl_obj = Value::obj();
    for (name, make) in factories {
        eprintln!("perf-smoke --time: {name} ({reps} reps)...");
        let mut totals: Vec<f64> = Vec::with_capacity(reps);
        let mut phases: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let mut natoms = 0;
        let mut steps = 0;
        for _ in 0..reps {
            let (total, rep_phases, n, s) = run_one_rep(make, scale);
            totals.push(total);
            natoms = n;
            steps = s;
            for (path, secs) in rep_phases {
                phases.entry(path).or_default().push(secs);
            }
        }

        let mut entry = Value::obj();
        entry.set("natoms", Value::Num(natoms as f64));
        entry.set("steps", Value::Num(steps as f64));
        let (lo, hi) = min_max(&totals);
        let med = median(totals);
        let mut total_ms = Value::obj();
        total_ms.set("median", Value::Num(med * 1e3));
        total_ms.set("min", Value::Num(lo * 1e3));
        total_ms.set("max", Value::Num(hi * 1e3));
        entry.set("total_ms", total_ms);
        let mut phases_ms = Value::obj();
        for (path, samples) in phases {
            phases_ms.set(path, Value::Num(median(samples) * 1e3));
        }
        entry.set("phases_ms", phases_ms);
        wl_obj.set(name, entry);
    }
    doc.set("workloads", wl_obj);

    exec::set_force_sequential(was_sequential);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median(vec![]), 0.0);
        assert_eq!(median(vec![3.0]), 3.0);
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    /// A 1-rep scale-1 timing run must produce positive totals and the
    /// core phase keys for every workload. (Values are wall-clock and
    /// therefore unasserted beyond positivity.)
    #[test]
    fn timed_run_reports_phases() {
        let doc = run_timed(1, 1);
        let wls = doc.get("workloads").unwrap();
        for name in ["lj", "eam", "snap", "reaxff"] {
            let wl = wls.get(name).unwrap_or_else(|| panic!("missing {name}"));
            let total = wl
                .get("total_ms")
                .and_then(|t| t.get("median"))
                .and_then(Value::as_f64)
                .unwrap();
            assert!(total > 0.0, "{name}: non-positive total {total}");
            let phases = wl.get("phases_ms").unwrap();
            for key in ["step", "step/pair", "step/integrate"] {
                assert!(
                    phases.get(key).is_some(),
                    "{name}: missing phase {key:?} in {:?}",
                    doc.to_pretty()
                );
            }
        }
    }
}
