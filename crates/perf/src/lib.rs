//! `lkk-perf` — the deterministic perf-regression harness.
//!
//! The `perf-smoke` binary runs four small fixed-seed workloads (LJ,
//! EAM, SNAP, ReaxFF) through the full `Simulation::run` loop on a
//! simulated device, collects per-kernel counters through the
//! `lkk-kokkos` profiling subscriber API, and renders them as a
//! canonical JSON document. Because every number is a counter (or a
//! pure function of counters, like predicted device time), the report
//! is bit-stable across machines — diffing it against a committed
//! baseline catches cost-model and kernel-shape regressions without
//! any of the noise wall-clock gating suffers from.
//!
//! Layout:
//! - [`json`] — minimal dependency-free JSON value, canonical writer,
//!   and parser (shortest-roundtrip `f64` formatting, sorted keys).
//! - [`diff`] — flatten two reports, compare every scalar with a
//!   relative tolerance (default 0 = bit exact).
//! - [`workloads`] — the four fixed-seed smoke systems.
//! - [`report`] — run workloads under a subscriber, build the report.
//! - [`timing`] — `--time` mode: advisory wall-clock phase medians
//!   (archived as `results/BENCH_hotpath.json`, never gated).
//! - [`tracing`] — `--trace`/`--metrics` mode: capture the same
//!   workloads under an `lkk-trace` collector, export a Perfetto
//!   timeline and a byte-stable metrics dump (gated against
//!   `results/metrics_baseline.json`).
//! - [`faults`] — `--faults` mode: run `ranks4` under seeded fault
//!   injection and assert the trajectory is bitwise identical to the
//!   fault-free run (the chaos CI gate; see `docs/robustness.md`).
//! - [`runreport`] — `--report` mode: capture the rank-parallel
//!   workloads under fresh trace collectors and render the per-run
//!   critical-path attribution report (gated against
//!   `results/run_report.json`).

pub mod diff;
pub mod faults;
pub mod json;
pub mod report;
pub mod runreport;
pub mod timing;
pub mod tracing;
pub mod workloads;

pub use diff::{compare, Drift};
pub use json::Value;
pub use report::run_all;

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end baseline round trip: render a report, parse it back,
    /// confirm zero drift; then perturb one counter and confirm the
    /// diff pinpoints exactly that path.
    #[test]
    fn check_round_trip_and_perturbation_detection() {
        let report = run_all(vec![workloads::lj()]);
        let text = report.to_pretty();
        let parsed = json::parse(&text).unwrap();

        // Parse must be lossless: re-rendering gives identical bytes
        // and the structural diff is empty at zero tolerance.
        assert_eq!(parsed.to_pretty(), text);
        assert!(compare(&report, &parsed, 0.0).is_empty());

        // Deliberate perturbation: bump one flop counter by 1 ppm and
        // verify zero-tolerance gating flags it while a loose
        // tolerance lets it through.
        let mut perturbed = parsed.clone();
        let lj = perturbed
            .get_mut("workloads")
            .unwrap()
            .get_mut("lj")
            .unwrap();
        let kernels = lj.get_mut("kernels").unwrap();
        let Value::Obj(entries) = kernels else {
            panic!("kernels not an object")
        };
        // Pick a kernel that actually does flops (some, like index
        // fills, legitimately report 0 and 0*(1+eps) is still 0).
        let (key, entry) = entries
            .iter_mut()
            .find(|(_, e)| e.get("flops").and_then(Value::as_f64).unwrap_or(0.0) > 0.0)
            .expect("no kernel with nonzero flops");
        let key = key.clone();
        let flops = entry.get_mut("flops").unwrap();
        let Value::Num(x) = flops else {
            panic!("flops not numeric")
        };
        *x *= 1.0 + 1e-6;

        let drifts = compare(&report, &perturbed, 0.0);
        assert_eq!(drifts.len(), 1, "expected exactly one drift: {drifts:?}");
        match &drifts[0] {
            Drift::NumChanged { path, .. } => {
                assert_eq!(path, &format!("workloads.lj.kernels.{key}.flops"));
            }
            other => panic!("unexpected drift kind: {other:?}"),
        }
        assert!(compare(&report, &perturbed, 1e-3).is_empty());
    }
}
