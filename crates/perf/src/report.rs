//! Run workloads under a [`StatsAccumulator`] subscriber and render the
//! deterministic counter report.
//!
//! Everything emitted here is a *counter* (event counts, bytes, flops,
//! launches, region entries) or a pure function of counters (predicted
//! device time per architecture, roofline class). Wall-clock never
//! enters the report, and execution is forced sequential for the
//! duration, so two runs of the same binary produce byte-identical
//! output regardless of machine load or core count.

use crate::json::Value;
use crate::workloads::{RankWorkload, Workload};
use lkk_gpusim::{AccumulatedProfile, GpuArch, KernelStats, RooflineClass, StatsAccumulator};
use lkk_kokkos::{exec, profile};
use std::sync::{Arc, Mutex};

/// Report format version; bump when the schema changes shape (a bumped
/// schema fails the baseline check loudly instead of half-matching).
pub const SCHEMA_VERSION: f64 = 1.0;

/// Short keys for the per-architecture predicted-time map, in Table-1
/// row order (must stay in sync with `GpuArch::by_name`).
const ARCH_KEYS: [&str; 7] = ["v100", "a100", "h100", "gh200", "mi250x", "mi300a", "pvc"];

/// Serializes whole-report runs: the profiling subscriber registry and
/// the force-sequential flag are process-global, so concurrent runs
/// (including `--time` mode, see [`crate::timing`]) would cross-feed
/// each other's accumulators.
pub(crate) static RUN_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` under the global run exclusion with the executor forced
/// sequential — the same discipline every capture/report entry point
/// here uses. For integration tests that install their own profile
/// subscriber (e.g. the fault-abort trace audit in
/// `tests/trace_schema.rs`) and must not cross-feed a concurrent
/// capture.
pub fn with_exclusive_run<T>(f: impl FnOnce() -> T) -> T {
    let _exclusive = RUN_LOCK.lock().unwrap();
    let was_sequential = exec::force_sequential();
    exec::set_force_sequential(true);
    let out = f();
    exec::set_force_sequential(was_sequential);
    out
}

/// Run every workload and build the full report document.
pub fn run_all(workloads: Vec<Workload>) -> Value {
    let _exclusive = RUN_LOCK.lock().unwrap();
    let was_sequential = exec::force_sequential();
    exec::set_force_sequential(true);

    let mut doc = Value::obj();
    doc.set("schema", Value::Num(SCHEMA_VERSION));
    doc.set("device", Value::Str("h100".into()));
    let mut wl_obj = Value::obj();
    for workload in workloads {
        let name = workload.name;
        wl_obj.set(name, run_one(workload));
    }
    for ranks in crate::workloads::all_ranks() {
        let name = ranks.name;
        wl_obj.set(name, run_ranks(ranks));
    }
    doc.set("workloads", wl_obj);

    exec::set_force_sequential(was_sequential);
    doc
}

/// Run one workload under a fresh accumulator and render its section.
fn run_one(workload: Workload) -> Value {
    let Workload {
        name: _,
        mut sim,
        steps,
    } = workload;
    let acc = Arc::new(StatsAccumulator::new());
    let id = profile::register_subscriber(acc.clone());
    sim.run(steps);
    let e_total = sim.total_energy();
    profile::unregister_subscriber(id);
    let snap = acc.snapshot();

    let mut out = Value::obj();
    out.set("natoms", Value::Num(sim.system.atoms.nlocal as f64));
    out.set("steps", Value::Num(steps as f64));
    out.set("rebuilds", Value::Num(sim.rebuild_count as f64));
    out.set("e_total", Value::Num(e_total));

    // Neighbor-list shape (the list left in place after the run).
    {
        let list = sim.neighbor_list();
        let mut neigh = Value::obj();
        neigh.set("total_pairs", Value::Num(list.total_pairs as f64));
        neigh.set("avg_neighbors", Value::Num(list.avg_neighbors()));
        out.set("neighbor", neigh);
    }

    render_snapshot(&mut out, &snap);
    out
}

/// Run the rank-parallel workload and render its section: the same
/// kernel/launch/region/transfer counters as the single-rank sections
/// (kernel keys carry the per-rank region prefix, e.g.
/// `PairCompute@rank0/step/pair`), plus the exchange counters of the
/// brick comm layer. Every field is deterministic — the exchanges are
/// lockstep, reductions combine in rank order, and pool reclaim waits
/// for exact counts — so the section diffs at tolerance 0 like the
/// rest of the report.
fn run_ranks(workload: RankWorkload) -> Value {
    let acc = Arc::new(StatsAccumulator::new());
    let id = profile::register_subscriber(acc.clone());
    let run = workload
        .spec
        .run(workload.factory)
        .expect("fault-free rank-parallel run failed");
    profile::unregister_subscriber(id);
    let snap = acc.snapshot();

    let mut out = Value::obj();
    out.set("natoms", Value::Num(run.natoms as f64));
    out.set("nranks", Value::Num(run.nranks as f64));
    out.set("steps", Value::Num(run.steps as f64));
    out.set(
        "warmup_steps",
        Value::Num(workload.spec.warmup_steps as f64),
    );
    out.set(
        "rebuilds",
        Value::Num(run.rebuild_counts.iter().sum::<u64>() as f64),
    );
    out.set("e_total", Value::Num(run.e_pair + run.e_kinetic));
    // Peak owned-atoms over the run divided by the perfect share — a
    // pure function of the (deterministic) migration history, so it
    // diffs at tolerance 0 like every counter.
    out.set("atom_imbalance", Value::Num(run.atom_imbalance()));

    {
        let mut neigh = Value::obj();
        neigh.set("total_pairs", Value::Num(run.total_pairs as f64));
        out.set("neighbor", neigh);
    }

    // Exchange counters summed over ranks, plus the steady-state pool
    // invariant: `pool_grow_after_warmup` is committed as 0 and checked
    // at tolerance 0.
    {
        let s = run.comm_stats;
        let mut comm = Value::obj();
        comm.set("forward_bytes", Value::Num(s.forward_bytes as f64));
        comm.set("forward_msgs", Value::Num(s.forward_msgs as f64));
        comm.set("reverse_bytes", Value::Num(s.reverse_bytes as f64));
        comm.set("reverse_msgs", Value::Num(s.reverse_msgs as f64));
        comm.set("scalar_bytes", Value::Num(s.scalar_bytes as f64));
        comm.set("scalar_msgs", Value::Num(s.scalar_msgs as f64));
        comm.set("border_bytes", Value::Num(s.border_bytes as f64));
        comm.set("border_msgs", Value::Num(s.border_msgs as f64));
        comm.set("migrate_bytes", Value::Num(s.migrate_bytes as f64));
        comm.set("migrate_msgs", Value::Num(s.migrate_msgs as f64));
        comm.set("balance_bytes", Value::Num(s.balance_bytes as f64));
        comm.set("balance_msgs", Value::Num(s.balance_msgs as f64));
        comm.set("rebalances", Value::Num(s.rebalances as f64));
        comm.set("allreduce_count", Value::Num(s.allreduce_count as f64));
        comm.set("pool_grow", Value::Num(run.comm_grow as f64));
        comm.set(
            "pool_grow_after_warmup",
            Value::Num(run.comm_grow_after_warmup as f64),
        );
        out.set("comm", comm);
    }

    render_snapshot(&mut out, &snap);
    out
}

/// Render the accumulator counters common to every section.
fn render_snapshot(out: &mut Value, snap: &AccumulatedProfile) {
    // Per-kernel counters + model predictions, keyed "name@region"
    // (already sorted by (region, name) by the accumulator; re-key and
    // sort by the rendered key for a stable document).
    let mut kernel_entries: Vec<(String, Value)> = snap
        .kernels
        .iter()
        .map(|k| (kernel_key(k), kernel_value(k)))
        .collect();
    kernel_entries.sort_by(|a, b| a.0.cmp(&b.0));
    out.set("kernels", Value::Obj(kernel_entries));

    // Dispatch counts per kernel label (includes host-side and
    // stats-free launches the kernel table does not cover).
    let mut launches = Value::obj();
    for (label, count) in &snap.launches {
        launches.set(label.clone(), Value::Num(*count as f64));
    }
    out.set("launches", launches);

    // Region entry counts ("step", "step/pair", ...).
    let mut regions = Value::obj();
    for (path, count) in &snap.regions {
        regions.set(path.clone(), Value::Num(*count as f64));
    }
    out.set("regions", regions);

    // Instant/counter samples (`name@region`), rendered as
    // {count, sum}. Includes the SNAP contraction-table shape counters
    // (`snap.table.*`), which the baseline pins at zero tolerance —
    // `snap.table.builds` drifting above one launch-count's worth would
    // betray a mid-run table rebuild.
    let mut counters = Value::obj();
    for (key, (count, sum)) in &snap.counters {
        let mut c = Value::obj();
        c.set("count", Value::Num(*count as f64));
        c.set("sum", Value::Num(*sum));
        counters.set(key.clone(), c);
    }
    out.set("counters", counters);

    // Host<->device traffic observed by the subscriber during the run.
    let mut transfers = Value::obj();
    transfers.set("h2d_bytes", Value::Num(snap.h2d.bytes as f64));
    transfers.set("h2d_count", Value::Num(snap.h2d.count as f64));
    transfers.set("d2h_bytes", Value::Num(snap.d2h.bytes as f64));
    transfers.set("d2h_count", Value::Num(snap.d2h.count as f64));
    out.set("transfers", transfers);

    // Whole-workload predicted time per architecture (sum of kernels).
    let mut totals = Value::obj();
    for key in ARCH_KEYS {
        let arch = GpuArch::by_name(key).expect("ARCH_KEYS out of sync with by_name");
        // fold, not sum: f64's Sum identity is -0.0, which would render
        // the kernel-free rank sections as "-0".
        let total: f64 = snap
            .kernels
            .iter()
            .fold(0.0, |acc, k| acc + k.time_on_default(&arch).seconds);
        totals.set(key, Value::Num(total * 1e6));
    }
    out.set("predicted_us_total", totals);
}

fn kernel_key(k: &KernelStats) -> String {
    if k.region.is_empty() {
        k.name.clone()
    } else {
        format!("{}@{}", k.name, k.region)
    }
}

fn kernel_value(k: &KernelStats) -> Value {
    let mut v = Value::obj();
    v.set("launches", Value::Num(k.launches));
    v.set("work_items", Value::Num(k.work_items));
    v.set("flops", Value::Num(k.flops));
    v.set("dram_bytes", Value::Num(k.dram_bytes));
    v.set("reused_bytes", Value::Num(k.reused_bytes));
    v.set("l1_only_bytes", Value::Num(k.l1_only_bytes));
    v.set("atomic_f64_ops", Value::Num(k.atomic_f64_ops));
    v.set(
        "scratch_bytes_per_team",
        Value::Num(k.scratch_bytes_per_team),
    );

    // Model-derived (pure functions of the counters + arch tables).
    let h100 = GpuArch::h100();
    let roofline = k.roofline_on(&h100);
    v.set(
        "roofline_h100",
        Value::Str(
            match roofline.class {
                RooflineClass::MemoryBound => "memory",
                RooflineClass::ComputeBound => "compute",
                RooflineClass::LatencyBound => "latency",
            }
            .into(),
        ),
    );
    let mut predicted = Value::obj();
    for key in ARCH_KEYS {
        let arch = GpuArch::by_name(key).expect("ARCH_KEYS out of sync with by_name");
        predicted.set(key, Value::Num(k.time_on_default(&arch).seconds * 1e6));
    }
    v.set("predicted_us", predicted);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    /// The full determinism + coverage test: two complete runs of every
    /// workload must render byte-identical JSON, and each family must
    /// report its signature kernels.
    #[test]
    fn report_is_bit_stable_and_covers_all_families() {
        let a = run_all(workloads::all()).to_pretty();
        let b = run_all(workloads::all()).to_pretty();
        assert_eq!(a, b, "two identical runs produced different reports");

        for needle in [
            "\"lj\"",
            "\"eam\"",
            "\"snap\"",
            "\"reaxff\"",
            "\"ranks4\"",
            "\"skewed8\"",
            "\"balance_msgs\"",
            "PairCompute",
            "EAMForce",
            "ComputeUi@",
            "ComputeYi@",
            "QEqSpmvFused@",
            "BondOrderBuild@",
            "step/pair",
            "predicted_us",
            "roofline_h100",
            "snap.table.items@",
            "snap.table.builds@",
            "snap.ui.flops@",
        ] {
            assert!(a.contains(needle), "report missing {needle}:\n{a}");
        }

        // Counters must be parseable and structurally diffable.
        let doc = crate::json::parse(&a).unwrap();
        assert!(crate::diff::compare(&doc, &doc, 0.0).is_empty());
        let lj = doc.get("workloads").unwrap().get("lj").unwrap();
        assert_eq!(lj.get("natoms").unwrap().as_f64(), Some(256.0));
        assert!(
            lj.get("transfers")
                .unwrap()
                .get("h2d_bytes")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );

        // The rank-parallel sections carry the exchange counters and
        // the steady-state pool invariant. The static decomposition
        // must stay balance-silent so its bytes don't drift.
        let ranks = doc.get("workloads").unwrap().get("ranks4").unwrap();
        assert_eq!(ranks.get("nranks").unwrap().as_f64(), Some(4.0));
        let comm = ranks.get("comm").unwrap();
        assert!(comm.get("forward_msgs").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(comm.get("balance_msgs").unwrap().as_f64(), Some(0.0));
        assert_eq!(comm.get("rebalances").unwrap().as_f64(), Some(0.0));
        assert_eq!(
            comm.get("pool_grow_after_warmup").unwrap().as_f64(),
            Some(0.0),
            "steady-state exchange allocated"
        );

        // The load-balancer smoke: the balancer engaged, pulled the
        // peak imbalance under the gate, and the pools still held.
        let skewed = doc.get("workloads").unwrap().get("skewed8").unwrap();
        assert_eq!(skewed.get("nranks").unwrap().as_f64(), Some(8.0));
        let comm = skewed.get("comm").unwrap();
        assert!(comm.get("rebalances").unwrap().as_f64().unwrap() > 0.0);
        assert!(comm.get("balance_msgs").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(
            comm.get("pool_grow_after_warmup").unwrap().as_f64(),
            Some(0.0),
            "steady-state exchange allocated under rebalancing"
        );
        let imbalance = skewed.get("atom_imbalance").unwrap().as_f64().unwrap();
        assert!(
            imbalance <= 1.15,
            "skewed8 peak imbalance {imbalance} above the 1.15 gate"
        );
    }
}
