//! `--faults` mode: chaos-test the rank-parallel exchange path.
//!
//! For each seed, the `ranks4` workload runs twice — once fault-free,
//! once with `FaultConfig::recoverable(seed)` installed on every
//! rank's `BrickComm` — and the final per-atom states, reduced
//! energies, and thermo histories are compared *bitwise*. Injected
//! delays, drops, duplicates, reorders, and payload corruptions must
//! all be absorbed by the retry/NACK machinery without perturbing a
//! single bit of the trajectory (the determinism contract of
//! `docs/robustness.md`), and without growing the message pool after
//! warmup (retransmit scratch comes from the same recycle pool).
//!
//! The rendered report carries the per-seed fault counters — the
//! artifact the CI chaos job uploads.

use crate::json::Value;
use crate::report::RUN_LOCK;
use crate::workloads;
use lkk_core::comm::brick::MultiRankRun;
use lkk_core::comm::FaultConfig;
use lkk_kokkos::exec;

/// Outcome of one seed: the faulted run's counters plus any
/// determinism violations (empty = pass).
pub struct SeedOutcome {
    pub seed: u64,
    pub injected: u64,
    pub recovered: u64,
    pub counters: Vec<(&'static str, u64)>,
    pub violations: Vec<String>,
}

fn bits3(v: &[f64; 3]) -> [u64; 3] {
    [v[0].to_bits(), v[1].to_bits(), v[2].to_bits()]
}

/// Bitwise comparison of a faulted run against the fault-free
/// reference. Returns human-readable violation descriptions.
pub fn diff_runs(reference: &MultiRankRun, faulted: &MultiRankRun) -> Vec<String> {
    let mut violations = Vec::new();
    if reference.states.len() != faulted.states.len() {
        violations.push(format!(
            "atom count diverged: {} vs {}",
            reference.states.len(),
            faulted.states.len()
        ));
        return violations;
    }
    for (a, b) in reference.states.iter().zip(&faulted.states) {
        if a.tag != b.tag {
            violations.push(format!("tag order diverged: {} vs {}", a.tag, b.tag));
            continue;
        }
        for (field, ra, rb) in [("x", a.x, b.x), ("v", a.v, b.v), ("f", a.f, b.f)] {
            if bits3(&ra) != bits3(&rb) {
                violations.push(format!("atom {} {field} diverged: {ra:?} vs {rb:?}", a.tag));
            }
        }
    }
    if reference.e_pair.to_bits() != faulted.e_pair.to_bits() {
        violations.push(format!(
            "e_pair diverged: {} vs {}",
            reference.e_pair, faulted.e_pair
        ));
    }
    if reference.e_kinetic.to_bits() != faulted.e_kinetic.to_bits() {
        violations.push(format!(
            "e_kinetic diverged: {} vs {}",
            reference.e_kinetic, faulted.e_kinetic
        ));
    }
    if faulted.comm_grow_after_warmup != 0 {
        violations.push(format!(
            "message pool grew {} times after warmup under faults",
            faulted.comm_grow_after_warmup
        ));
    }
    violations
}

/// Run the chaos sweep over `seeds`. Returns one outcome per seed.
pub fn run_seeds(seeds: &[u64]) -> Vec<SeedOutcome> {
    let _exclusive = RUN_LOCK.lock().unwrap();
    let was_sequential = exec::force_sequential();
    exec::set_force_sequential(true);

    let ranks = workloads::ranks4();
    let reference = ranks
        .spec
        .run(ranks.factory)
        .expect("fault-free reference run failed");

    let outcomes = seeds
        .iter()
        .map(|&seed| {
            let mut spec = ranks.spec.clone();
            spec.fault = Some(FaultConfig::recoverable(seed));
            match spec.run(ranks.factory) {
                Ok(faulted) => {
                    let mut violations = diff_runs(&reference, &faulted);
                    if faulted.fault_stats.injected() == 0 {
                        violations.push("seed injected no faults (sweep has no teeth)".into());
                    }
                    SeedOutcome {
                        seed,
                        injected: faulted.fault_stats.injected(),
                        recovered: faulted.fault_stats.recovered(),
                        counters: faulted.fault_stats.entries().to_vec(),
                        violations,
                    }
                }
                Err(failure) => SeedOutcome {
                    seed,
                    injected: 0,
                    recovered: 0,
                    counters: Vec::new(),
                    violations: vec![format!("recoverable seed aborted: {failure}")],
                },
            }
        })
        .collect();

    exec::set_force_sequential(was_sequential);
    outcomes
}

/// Render the sweep as the canonical JSON artifact.
pub fn render(outcomes: &[SeedOutcome]) -> Value {
    let mut doc = Value::obj();
    doc.set("schema", Value::Num(1.0));
    doc.set("workload", Value::Str("ranks4".into()));
    let mut seeds = Value::obj();
    for o in outcomes {
        let mut entry = Value::obj();
        entry.set("injected", Value::Num(o.injected as f64));
        entry.set("recovered", Value::Num(o.recovered as f64));
        let mut counters = Value::obj();
        for (name, value) in &o.counters {
            counters.set(format!("comm.fault.{name}"), Value::Num(*value as f64));
        }
        entry.set("counters", counters);
        entry.set("bitwise_identical", Value::Bool(o.violations.is_empty()));
        if !o.violations.is_empty() {
            let mut arr = Vec::new();
            for v in &o.violations {
                arr.push(Value::Str(v.clone()));
            }
            entry.set("violations", Value::Arr(arr));
        }
        seeds.set(format!("seed{}", o.seed), entry);
    }
    doc.set("seeds", seeds);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One fixed seed through the full sweep machinery: faults must be
    /// injected, recovered, and invisible in the final state.
    #[test]
    fn single_seed_sweep_is_bitwise_clean() {
        let outcomes = run_seeds(&[0xC0FFEE]);
        assert_eq!(outcomes.len(), 1);
        let o = &outcomes[0];
        assert!(
            o.violations.is_empty(),
            "seed {} violations: {:?}",
            o.seed,
            o.violations
        );
        assert!(o.injected > 0, "no faults injected");
        let doc = render(&outcomes);
        let text = doc.to_pretty();
        assert!(text.contains("\"bitwise_identical\": true"));
        assert!(text.contains("\"comm.fault.drops\""));
    }
}
