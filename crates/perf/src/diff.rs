//! Baseline comparison: flatten two reports and diff every scalar.

use crate::json::Value;

/// One detected difference between baseline and current report.
#[derive(Debug, Clone, PartialEq)]
pub enum Drift {
    /// Path exists in the baseline but not the current report.
    Missing(String),
    /// Path exists in the current report but not the baseline.
    Extra(String),
    /// Numeric value moved beyond tolerance.
    NumChanged {
        path: String,
        baseline: f64,
        current: f64,
        rel: f64,
    },
    /// Non-numeric scalar (string/bool/null) changed.
    ValueChanged {
        path: String,
        baseline: String,
        current: String,
    },
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Drift::Missing(p) => write!(f, "missing from current report: {p}"),
            Drift::Extra(p) => write!(f, "not in baseline: {p}"),
            Drift::NumChanged {
                path,
                baseline,
                current,
                rel,
            } => write!(f, "{path}: {baseline} -> {current} (rel {rel:.3e})"),
            Drift::ValueChanged {
                path,
                baseline,
                current,
            } => {
                write!(f, "{path}: {baseline} -> {current}")
            }
        }
    }
}

/// Relative difference: |a−b| scaled by the larger magnitude (0 when
/// both are 0). An exact match reports 0 even for infinite tolerance
/// arithmetic corner cases.
fn rel_diff(a: f64, b: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

/// Compare `current` against `baseline`. `tolerance` is the maximum
/// allowed *relative* difference per numeric counter (0 = bit exact,
/// the default for same-machine regression gating).
pub fn compare(baseline: &Value, current: &Value, tolerance: f64) -> Vec<Drift> {
    let base: Vec<(String, Value)> = baseline.flatten();
    let cur: Vec<(String, Value)> = current.flatten();
    let mut drifts = Vec::new();

    // Both sides come from sorted report builders, but diff by lookup
    // so key order never matters.
    let cur_map: std::collections::BTreeMap<&str, &Value> =
        cur.iter().map(|(k, v)| (k.as_str(), v)).collect();
    let base_map: std::collections::BTreeMap<&str, &Value> =
        base.iter().map(|(k, v)| (k.as_str(), v)).collect();

    for (path, bval) in &base {
        match cur_map.get(path.as_str()) {
            None => drifts.push(Drift::Missing(path.clone())),
            Some(cval) => match (bval, cval) {
                (Value::Num(a), Value::Num(b)) => {
                    let rel = rel_diff(*a, *b);
                    if rel > tolerance {
                        drifts.push(Drift::NumChanged {
                            path: path.clone(),
                            baseline: *a,
                            current: *b,
                            rel,
                        });
                    }
                }
                (a, b) if a == *b => {}
                (a, b) => drifts.push(Drift::ValueChanged {
                    path: path.clone(),
                    baseline: format!("{a:?}"),
                    current: format!("{b:?}"),
                }),
            },
        }
    }
    for (path, _) in &cur {
        if !base_map.contains_key(path.as_str()) {
            drifts.push(Drift::Extra(path.clone()));
        }
    }
    drifts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn identical_reports_have_no_drift() {
        let a = parse(r#"{"x": 1.5, "y": {"z": [1, 2]}}"#).unwrap();
        assert!(compare(&a, &a, 0.0).is_empty());
    }

    #[test]
    fn numeric_drift_respects_tolerance() {
        let a = parse(r#"{"x": 100.0}"#).unwrap();
        let b = parse(r#"{"x": 100.5}"#).unwrap();
        assert_eq!(compare(&a, &b, 0.0).len(), 1);
        assert_eq!(compare(&a, &b, 1e-6).len(), 1);
        assert!(compare(&a, &b, 0.01).is_empty());
    }

    #[test]
    fn missing_and_extra_keys_are_reported() {
        let a = parse(r#"{"x": 1, "gone": 2}"#).unwrap();
        let b = parse(r#"{"x": 1, "new": 3}"#).unwrap();
        let d = compare(&a, &b, 0.0);
        assert!(d
            .iter()
            .any(|x| matches!(x, Drift::Missing(p) if p == "gone")));
        assert!(d.iter().any(|x| matches!(x, Drift::Extra(p) if p == "new")));
    }

    #[test]
    fn type_change_is_reported() {
        let a = parse(r#"{"x": "mem"}"#).unwrap();
        let b = parse(r#"{"x": "comp"}"#).unwrap();
        assert_eq!(compare(&a, &b, 0.0).len(), 1);
    }
}
