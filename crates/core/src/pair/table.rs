//! Tabulated pair potential: piecewise-linear interpolation of energy
//! and force on a uniform `r²` grid (the LAMMPS `pair_style table`
//! `linear` mode, which GPU ports favor because lookups vectorize).

use super::TwoBody;

/// A tabulated isotropic pair potential.
#[derive(Debug, Clone)]
pub struct PairTable {
    name: &'static str,
    cut: f64,
    rsq_lo: f64,
    drsq_inv: f64,
    /// Sampled (fpair, energy) at uniform r² knots.
    knots: Vec<(f64, f64)>,
}

impl PairTable {
    /// Tabulate `source` between `r_lo` and `cut` with `n` knots on a
    /// uniform r² grid.
    pub fn tabulate<P: TwoBody>(
        source: &P,
        name: &'static str,
        r_lo: f64,
        cut: f64,
        n: usize,
    ) -> Self {
        assert!(n >= 2 && cut > r_lo && r_lo > 0.0);
        let rsq_lo = r_lo * r_lo;
        let rsq_hi = cut * cut;
        let drsq = (rsq_hi - rsq_lo) / (n - 1) as f64;
        let knots = (0..n)
            .map(|k| source.pair(rsq_lo + k as f64 * drsq, 0, 0))
            .collect();
        PairTable {
            name,
            cut,
            rsq_lo,
            drsq_inv: 1.0 / drsq,
            knots,
        }
    }
}

impl TwoBody for PairTable {
    fn type_name(&self) -> &'static str {
        self.name
    }

    fn cutsq(&self, _ti: usize, _tj: usize) -> f64 {
        self.cut * self.cut
    }

    fn max_cutoff(&self) -> f64 {
        self.cut
    }

    #[inline(always)]
    fn pair(&self, rsq: f64, _ti: usize, _tj: usize) -> (f64, f64) {
        let t = ((rsq - self.rsq_lo) * self.drsq_inv).max(0.0);
        let k = (t as usize).min(self.knots.len() - 2);
        let frac = t - k as f64;
        let (f0, e0) = self.knots[k];
        let (f1, e1) = self.knots[k + 1];
        (f0 + (f1 - f0) * frac, e0 + (e1 - e0) * frac)
    }

    fn flops_per_pair(&self) -> f64 {
        12.0
    }
}

#[cfg(test)]
mod tests {
    use super::super::lj::LjCut;
    use super::*;

    #[test]
    fn table_approximates_lj() {
        let lj = LjCut::single_type(1.0, 1.0, 2.5);
        let table = PairTable::tabulate(&lj, "lj/table", 0.8, 2.5, 4096);
        for &r in &[0.9f64, 1.1, 1.5, 2.0, 2.4] {
            let (fa, ea) = lj.pair(r * r, 0, 0);
            let (ft, et) = table.pair(r * r, 0, 0);
            assert!((fa - ft).abs() < 1e-3 * fa.abs().max(1.0), "r={r}");
            assert!((ea - et).abs() < 1e-3, "r={r}");
        }
    }

    #[test]
    fn clamps_below_table_start() {
        let lj = LjCut::single_type(1.0, 1.0, 2.5);
        let table = PairTable::tabulate(&lj, "lj/table", 0.8, 2.5, 64);
        // Below r_lo: clamped to the first segment, no panic.
        let (f, _) = table.pair(0.3, 0, 0);
        assert!(f.is_finite());
    }
}
