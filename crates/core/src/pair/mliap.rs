//! A generic machine-learning interatomic potential interface — the
//! ML-IAP integration strategy of the paper's Appendix A.
//!
//! Appendix A describes how LAMMPS hosts ML potentials that are *not*
//! hand-ported to Kokkos: a generic driver computes descriptors and
//! neighborhoods, hands them to an external model (PyTorch / JAX via
//! ML-IAP), and chains the returned descriptor gradients into forces.
//! [`PairMliap`] is that driver: it is generic over
//!
//! * a [`DescriptorSet`] — per-atom neighborhood featurization with an
//!   analytic chain rule, and
//! * an [`MlModel`] — `E_i = model(descriptors)` with
//!   `∂E_i/∂descriptor` (what autodiff frameworks return).
//!
//! Provided instances: Behler-Parrinello radial symmetry functions
//! ([`RadialSymmetry`]) and a small tanh multilayer perceptron
//! ([`Mlp`]) standing in for the external framework. Forces are exact
//! gradients (finite-difference verified), and the energy is invariant
//! under rotations by construction of the descriptors.

use crate::atom::Mask;
use crate::neighbor::NeighborList;
use crate::pair::scratch::with_neigh_scratch;
use crate::pair::{PairResults, PairStyle};
use crate::sim::System;
use crate::switch::cubic_switch;
use lkk_gpusim::KernelStats;
use lkk_kokkos::ScatterView;

/// Per-atom neighborhood featurization with an analytic chain rule.
pub trait DescriptorSet: Send + Sync {
    fn n_descriptors(&self) -> usize;
    fn cutoff(&self) -> f64;
    /// Fill `desc` (length `n_descriptors`) from relative neighbor
    /// positions.
    fn compute(&self, neigh: &[[f64; 3]], desc: &mut [f64]);
    /// Chain rule: given `∂E/∂desc`, return `∂E/∂x_k` per neighbor.
    fn chain(&self, neigh: &[[f64; 3]], dedd: &[f64]) -> Vec<[f64; 3]>;
}

/// An energy model over descriptors (the "external framework" side).
pub trait MlModel: Send + Sync {
    /// Per-atom energy and `∂E/∂descriptor` (written into `grad`).
    fn forward(&self, desc: &[f64], grad: &mut [f64]) -> f64;
}

/// Behler-Parrinello radial symmetry functions:
/// `G_k = Σ_j exp(−η (r_j − μ_k)²) · fc(r_j)`.
#[derive(Debug, Clone)]
pub struct RadialSymmetry {
    pub mus: Vec<f64>,
    pub eta: f64,
    pub rcut: f64,
}

impl RadialSymmetry {
    /// `n` Gaussian centers spread over `(0.8, rcut)`.
    pub fn new(n: usize, eta: f64, rcut: f64) -> Self {
        let mus = (0..n)
            .map(|k| 0.8 + (rcut - 0.8) * (k as f64 + 0.5) / n as f64)
            .collect();
        RadialSymmetry { mus, eta, rcut }
    }

    #[inline]
    fn fc(&self, r: f64) -> (f64, f64) {
        cubic_switch(r, 0.7 * self.rcut, self.rcut)
    }
}

impl DescriptorSet for RadialSymmetry {
    fn n_descriptors(&self) -> usize {
        self.mus.len()
    }

    fn cutoff(&self) -> f64 {
        self.rcut
    }

    fn compute(&self, neigh: &[[f64; 3]], desc: &mut [f64]) {
        desc.iter_mut().for_each(|d| *d = 0.0);
        for d3 in neigh {
            let r = (d3[0] * d3[0] + d3[1] * d3[1] + d3[2] * d3[2]).sqrt();
            if r >= self.rcut {
                continue;
            }
            let (fc, _) = self.fc(r);
            for (k, &mu) in self.mus.iter().enumerate() {
                desc[k] += (-self.eta * (r - mu) * (r - mu)).exp() * fc;
            }
        }
    }

    fn chain(&self, neigh: &[[f64; 3]], dedd: &[f64]) -> Vec<[f64; 3]> {
        neigh
            .iter()
            .map(|d3| {
                let rsq = d3[0] * d3[0] + d3[1] * d3[1] + d3[2] * d3[2];
                let r = rsq.sqrt();
                if r >= self.rcut {
                    return [0.0; 3];
                }
                let (fc, dfc) = self.fc(r);
                // dG_k/dr, then ∂r/∂x = x/r.
                let mut dedr = 0.0;
                for (k, &mu) in self.mus.iter().enumerate() {
                    let g = (-self.eta * (r - mu) * (r - mu)).exp();
                    let dg = -2.0 * self.eta * (r - mu) * g;
                    dedr += dedd[k] * (dg * fc + g * dfc);
                }
                [dedr * d3[0] / r, dedr * d3[1] / r, dedr * d3[2] / r]
            })
            .collect()
    }
}

/// A single-hidden-layer tanh perceptron with analytic input gradients
/// (standing in for libtorch/JAX autodiff; Appendix A).
#[derive(Debug, Clone)]
pub struct Mlp {
    pub n_in: usize,
    pub n_hidden: usize,
    /// `w1[h * n_in + i]`, `b1[h]`, `w2[h]`, `b2`.
    pub w1: Vec<f64>,
    pub b1: Vec<f64>,
    pub w2: Vec<f64>,
    pub b2: f64,
}

impl Mlp {
    /// Deterministic pseudo-random weights at sane magnitudes.
    pub fn synthetic(n_in: usize, n_hidden: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.8
        };
        Mlp {
            n_in,
            n_hidden,
            w1: (0..n_in * n_hidden).map(|_| next()).collect(),
            b1: (0..n_hidden).map(|_| next()).collect(),
            w2: (0..n_hidden).map(|_| next() * 0.2).collect(),
            b2: next(),
        }
    }
}

impl MlModel for Mlp {
    fn forward(&self, desc: &[f64], grad: &mut [f64]) -> f64 {
        debug_assert_eq!(desc.len(), self.n_in);
        grad.iter_mut().for_each(|g| *g = 0.0);
        let mut e = self.b2;
        for h in 0..self.n_hidden {
            let mut z = self.b1[h];
            for (i, &di) in desc.iter().enumerate() {
                z += self.w1[h * self.n_in + i] * di;
            }
            let t = z.tanh();
            e += self.w2[h] * t;
            let dt = self.w2[h] * (1.0 - t * t);
            for (i, gi) in grad.iter_mut().enumerate() {
                *gi += dt * self.w1[h * self.n_in + i];
            }
        }
        e
    }
}

/// The generic ML-IAP pair style.
pub struct PairMliap<D: DescriptorSet + 'static, M: MlModel + 'static> {
    pub descriptors: D,
    pub model: M,
    name: String,
    scatter: Option<ScatterView>,
}

impl<D: DescriptorSet + 'static, M: MlModel + 'static> PairMliap<D, M> {
    pub fn new(descriptors: D, model: M) -> Self {
        PairMliap {
            descriptors,
            model,
            name: "mliap".into(),
            scatter: None,
        }
    }
}

impl<D: DescriptorSet + 'static, M: MlModel + 'static> PairStyle for PairMliap<D, M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    fn cutoff(&self) -> f64 {
        self.descriptors.cutoff()
    }

    fn wants_half_list(&self) -> bool {
        false
    }

    fn compute(&mut self, system: &mut System, list: &NeighborList, _eflag: bool) -> PairResults {
        let space = system.space.clone();
        system.atoms.sync(&space, Mask::X | Mask::TYPE);
        let nlocal = system.atoms.nlocal;
        let nall = system.atoms.nall();
        let scatter = match &mut self.scatter {
            Some(s) if s.target_len() == nall * 3 => s,
            _ => {
                self.scatter = Some(ScatterView::for_space(nall, 3, &space));
                self.scatter.as_mut().unwrap()
            }
        };
        let sref: &ScatterView = scatter;
        let x = system.atoms.x.view_for(&space);
        let desc_set = &self.descriptors;
        let model = &self.model;
        let nd = desc_set.n_descriptors();
        let cutsq = desc_set.cutoff() * desc_set.cutoff();
        let (energy, virial) = space.parallel_reduce(
            "PairMliapCompute",
            nlocal,
            (0.0f64, [0.0f64; 6]),
            |i| {
                with_neigh_scratch(|sc| {
                    let xi = [x.at([i, 0]), x.at([i, 1]), x.at([i, 2])];
                    let nn = list.numneigh.at([i]) as usize;
                    for s in 0..nn {
                        let j = list.neighbors.at([i, s]) as usize;
                        let d = [
                            x.at([j, 0]) - xi[0],
                            x.at([j, 1]) - xi[1],
                            x.at([j, 2]) - xi[2],
                        ];
                        if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] < cutsq {
                            sc.rel.push(d);
                            sc.ids.push(j);
                        }
                    }
                    // Descriptor/gradient slots live in the same scratch;
                    // `resize` after `clear` zero-fills without realloc in
                    // steady state (LKK004).
                    sc.a.resize(nd, 0.0);
                    sc.b.resize(nd, 0.0);
                    let (rel, ids, desc, grad) = (&sc.rel, &sc.ids, &mut sc.a, &mut sc.b);
                    desc_set.compute(rel, desc);
                    let e = model.forward(desc, grad);
                    let dedx = desc_set.chain(rel, grad);
                    let mut w = [0.0f64; 6];
                    for (k, &j) in ids.iter().enumerate() {
                        let f = [-dedx[k][0], -dedx[k][1], -dedx[k][2]];
                        for (dir, &fd) in f.iter().enumerate() {
                            sref.add(j, dir, fd);
                            sref.add(i, dir, -fd);
                        }
                        // W_ab = Σ d_a f_b, symmetrized (d = x_j − x_i, f on j).
                        let d = rel[k];
                        w[0] += d[0] * f[0];
                        w[1] += d[1] * f[1];
                        w[2] += d[2] * f[2];
                        w[3] += 0.5 * (d[0] * f[1] + d[1] * f[0]);
                        w[4] += 0.5 * (d[0] * f[2] + d[2] * f[0]);
                        w[5] += 0.5 * (d[1] * f[2] + d[2] * f[1]);
                    }
                    (e, w)
                })
            },
            |a, b| {
                let mut w = a.1;
                for (wk, bk) in w.iter_mut().zip(b.1) {
                    *wk += bk;
                }
                (a.0 + b.0, w)
            },
        );
        let f = system.atoms.f.view_for_mut(&space);
        f.fill(0.0);
        scatter.contribute_into_view(f);
        system.atoms.modified(&space, Mask::F);
        if space.is_device() {
            let mut k = KernelStats::new("PairMliapCompute");
            k.work_items = nlocal as f64;
            k.flops = nlocal as f64 * (nd as f64 * 40.0 + list.avg_neighbors() * nd as f64 * 10.0);
            k.dram_bytes = nlocal as f64 * (nd as f64 * 8.0 + 48.0);
            space.note_kernel(k);
        }
        PairResults::with_tensor(energy, virial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::AtomData;
    use crate::comm::build_ghosts;
    use crate::domain::Domain;
    use crate::lattice::{Lattice, LatticeKind};
    use crate::neighbor::NeighborSettings;
    use lkk_kokkos::Space;

    fn style() -> PairMliap<RadialSymmetry, Mlp> {
        let desc = RadialSymmetry::new(8, 2.0, 4.0);
        let model = Mlp::synthetic(8, 12, 99);
        PairMliap::new(desc, model)
    }

    fn setup(perturb: f64) -> (System, NeighborList) {
        let lat = Lattice::new(LatticeKind::Fcc, 3.0);
        let positions: Vec<[f64; 3]> = lat
            .positions(3, 3, 3)
            .iter()
            .enumerate()
            .map(|(i, p)| {
                [
                    p[0] + perturb * (((i * 7) % 13) as f64 / 13.0 - 0.5),
                    p[1] + perturb * (((i * 11) % 17) as f64 / 17.0 - 0.5),
                    p[2] + perturb * (((i * 5) % 19) as f64 / 19.0 - 0.5),
                ]
            })
            .collect();
        let atoms = AtomData::from_positions(&positions);
        let space = Space::Serial;
        let mut system = System::new(atoms, lat.domain(3, 3, 3), space.clone());
        let settings = NeighborSettings::new(4.0, 0.3, false);
        system.atoms.wrap_positions(&system.domain);
        system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
        let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
        (system, list)
    }

    #[test]
    fn mlp_gradient_matches_fd() {
        let m = Mlp::synthetic(6, 10, 3);
        let desc: Vec<f64> = (0..6).map(|i| 0.3 * i as f64 - 0.7).collect();
        let mut grad = vec![0.0; 6];
        m.forward(&desc, &mut grad);
        let h = 1e-6;
        for k in 0..6 {
            let mut dp = desc.clone();
            let mut dm = desc.clone();
            dp[k] += h;
            dm[k] -= h;
            let mut g = vec![0.0; 6];
            let fd = (m.forward(&dp, &mut g) - m.forward(&dm, &mut g)) / (2.0 * h);
            assert!((grad[k] - fd).abs() < 1e-8, "k={k}");
        }
    }

    #[test]
    fn descriptors_are_rotation_invariant() {
        let d = RadialSymmetry::new(8, 2.0, 4.0);
        let neigh = vec![[1.0, 0.5, -0.3], [-2.0, 1.0, 0.7], [0.2, -1.8, 2.2]];
        let mut a = vec![0.0; 8];
        d.compute(&neigh, &mut a);
        // Rotate 90° about z.
        let rotated: Vec<[f64; 3]> = neigh.iter().map(|v| [-v[1], v[0], v[2]]).collect();
        let mut b = vec![0.0; 8];
        d.compute(&rotated, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        assert!(a.iter().any(|&x| x > 1e-3));
    }

    #[test]
    fn forces_match_finite_difference() {
        let (mut system, list) = setup(0.15);
        let mut pair = style();
        let _ = pair.compute(&mut system, &list, true);
        system.atoms.sync(&Space::Serial, Mask::F);
        crate::comm::reverse_forces(&mut system.atoms, &system.ghosts);
        let fh = system.atoms.f.h_view();
        let f0: Vec<[f64; 3]> = (0..system.atoms.nlocal)
            .map(|i| [fh.at([i, 0]), fh.at([i, 1]), fh.at([i, 2])])
            .collect();
        let energy_of = |a: usize, k: usize, dh: f64| -> f64 {
            let (mut sys2, _) = setup(0.15);
            let v = sys2.atoms.x.h_view().at([a, k]) + dh;
            sys2.atoms.x.h_view_mut().set([a, k], v);
            let settings = NeighborSettings::new(4.0, 0.3, false);
            sys2.atoms.wrap_positions(&sys2.domain);
            sys2.ghosts = build_ghosts(&mut sys2.atoms, &sys2.domain, settings.cutneigh());
            let list2 = NeighborList::build(&sys2.atoms, &sys2.domain, &settings, &Space::Serial);
            let mut p2 = style();
            p2.compute(&mut sys2, &list2, true).energy
        };
        let h = 1e-6;
        for &a in &[0usize, 17] {
            for k in 0..3 {
                let fd = -(energy_of(a, k, h) - energy_of(a, k, -h)) / (2.0 * h);
                assert!(
                    (f0[a][k] - fd).abs() < 1e-6 * fd.abs().max(1e-3),
                    "atom {a} dir {k}: {} vs {fd}",
                    f0[a][k]
                );
            }
        }
    }

    #[test]
    fn total_force_is_zero() {
        let (mut system, list) = setup(0.2);
        let mut pair = style();
        let _ = pair.compute(&mut system, &list, true);
        system.atoms.sync(&Space::Serial, Mask::F);
        crate::comm::reverse_forces(&mut system.atoms, &system.ghosts);
        let fh = system.atoms.f.h_view();
        for k in 0..3 {
            let tot: f64 = (0..system.atoms.nlocal).map(|i| fh.at([i, k])).sum();
            assert!(tot.abs() < 1e-9, "net force {tot}");
        }
    }

    #[test]
    fn domain_unused_guard() {
        // Silence unused import in non-test builds if any.
        let _ = Domain::cubic(1.0);
    }
}
