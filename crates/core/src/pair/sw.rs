//! The Stillinger-Weber potential — the other classic of the MANYBODY
//! package (§3.1), with explicit three-body angular terms:
//!
//! ```text
//! E  = Σ_{i<j} φ₂(r_ij) + Σ_i Σ_{j<k} φ₃(r_ij, r_ik, θ_jik)
//! φ₂ = A ε [B (σ/r)^p − (σ/r)^q] · exp(σ / (r − aσ))
//! φ₃ = λ ε [cos θ − cos θ₀]² · exp(γσ/(r_ij − aσ)) · exp(γσ/(r_ik − aσ))
//! ```
//!
//! Both terms vanish with all derivatives at the cutoff `aσ` (the
//! essential singularity in the exponent), so dynamics conserve energy
//! without any shifting. Default parameters are the published silicon
//! set (Stillinger & Weber 1985) in metal units.

use crate::atom::Mask;
use crate::neighbor::NeighborList;
use crate::pair::scratch::with_neigh_scratch;
use crate::pair::{PairResults, PairStyle};
use crate::sim::System;
use lkk_gpusim::KernelStats;
use lkk_kokkos::ScatterView;

/// Stillinger-Weber parameters (single element).
#[derive(Debug, Clone, Copy)]
pub struct SwParams {
    pub epsilon: f64,
    pub sigma: f64,
    /// Cutoff in units of σ.
    pub a: f64,
    pub lambda: f64,
    pub gamma: f64,
    pub cos_theta0: f64,
    pub big_a: f64,
    pub big_b: f64,
    pub p: i32,
    pub q: i32,
}

impl Default for SwParams {
    /// The published silicon parameterization (ε in eV, σ in Å).
    fn default() -> Self {
        SwParams {
            epsilon: 2.1683,
            sigma: 2.0951,
            a: 1.80,
            lambda: 21.0,
            gamma: 1.20,
            cos_theta0: -1.0 / 3.0, // tetrahedral
            big_a: 7.049_556_277,
            big_b: 0.602_224_558_4,
            p: 4,
            q: 0,
        }
    }
}

impl SwParams {
    pub fn cutoff(&self) -> f64 {
        self.a * self.sigma
    }

    /// Two-body energy and dφ₂/dr. Zero at/after the cutoff.
    #[inline]
    pub fn phi2(&self, r: f64) -> (f64, f64) {
        let rc = self.cutoff();
        if r >= rc {
            return (0.0, 0.0);
        }
        let sr = self.sigma / r;
        let srp = sr.powi(self.p);
        let srq = sr.powi(self.q);
        let core = self.big_a * self.epsilon * (self.big_b * srp - srq);
        let dcore =
            self.big_a * self.epsilon * (-(self.p as f64) * self.big_b * srp + self.q as f64 * srq)
                / r;
        let ex = (self.sigma / (r - rc)).exp();
        let dex = -self.sigma / ((r - rc) * (r - rc)) * ex;
        (core * ex, dcore * ex + core * dex)
    }

    /// Radial factor of φ₃: `h(r) = exp(γσ/(r − aσ))` and dh/dr.
    #[inline]
    pub fn h3(&self, r: f64) -> (f64, f64) {
        let rc = self.cutoff();
        if r >= rc {
            return (0.0, 0.0);
        }
        let ex = (self.gamma * self.sigma / (r - rc)).exp();
        let dex = -self.gamma * self.sigma / ((r - rc) * (r - rc)) * ex;
        (ex, dex)
    }
}

/// The `pair_style sw` implementation.
pub struct PairSw {
    pub params: SwParams,
    name: String,
    scatter: Option<ScatterView>,
}

impl PairSw {
    pub fn new(params: SwParams) -> Self {
        PairSw {
            params,
            name: "sw".into(),
            scatter: None,
        }
    }
}

impl PairStyle for PairSw {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    fn cutoff(&self) -> f64 {
        self.params.cutoff()
    }

    fn wants_half_list(&self) -> bool {
        false
    }

    fn compute(&mut self, system: &mut System, list: &NeighborList, _eflag: bool) -> PairResults {
        let space = system.space.clone();
        system.atoms.sync(&space, Mask::X | Mask::TYPE);
        let nlocal = system.atoms.nlocal;
        let nall = system.atoms.nall();
        let scatter = match &mut self.scatter {
            Some(s) if s.target_len() == nall * 3 => s,
            _ => {
                self.scatter = Some(ScatterView::for_space(nall, 3, &space));
                self.scatter.as_mut().unwrap()
            }
        };
        let sref: &ScatterView = scatter;
        let x = system.atoms.x.view_for(&space);
        let p = self.params;
        let cutsq = p.cutoff() * p.cutoff();
        let (energy, w) = space.parallel_reduce(
            "PairSwCompute",
            nlocal,
            (0.0f64, [0.0f64; 6]),
            |i| {
                with_neigh_scratch(|sc| {
                    let xi = [x.at([i, 0]), x.at([i, 1]), x.at([i, 2])];
                    let nn = list.numneigh.at([i]) as usize;
                    // Pre-filter the in-cutoff neighbors (divergence
                    // pre-processing, §4.2.1 pattern) into per-thread
                    // scratch re-used across work items (LKK004).
                    for s in 0..nn {
                        let j = list.neighbors.at([i, s]) as usize;
                        let d = [
                            x.at([j, 0]) - xi[0],
                            x.at([j, 1]) - xi[1],
                            x.at([j, 2]) - xi[2],
                        ];
                        let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                        if rsq < cutsq {
                            sc.rel.push(d);
                            sc.rs.push(rsq.sqrt());
                            sc.ids.push(j);
                        }
                    }
                    let (rel, rs, ids) = (&sc.rel, &sc.rs, &sc.ids);
                    let mut e = 0.0;
                    let mut w6 = [0.0f64; 6];
                    let add_force = |atom: usize, f: [f64; 3]| {
                        for (k, &fk) in f.iter().enumerate() {
                            sref.add(atom, k, fk);
                        }
                    };
                    // Two-body: one-sided over the full list (half energy).
                    for (m, &j) in ids.iter().enumerate() {
                        let (e2, de2) = p.phi2(rs[m]);
                        e += 0.5 * e2;
                        let fpair = -de2 / rs[m]; // force on j along +d
                        let f = [fpair * rel[m][0], fpair * rel[m][1], fpair * rel[m][2]];
                        // Half the pair force per visit (the mirrored visit
                        // adds the other half with opposite displacement).
                        let fh = [0.5 * f[0], 0.5 * f[1], 0.5 * f[2]];
                        add_force(j, fh);
                        add_force(i, [-fh[0], -fh[1], -fh[2]]);
                        crate::pair::add_pair_virial(&mut w6, 0.5 * fpair, rel[m]);
                    }
                    // Three-body: all (j, k) pairs around center i.
                    for m1 in 0..ids.len() {
                        let (h1, dh1) = p.h3(rs[m1]);
                        if h1 == 0.0 {
                            continue;
                        }
                        for m2 in (m1 + 1)..ids.len() {
                            let (h2, dh2) = p.h3(rs[m2]);
                            if h2 == 0.0 {
                                continue;
                            }
                            let d1 = rel[m1];
                            let d2 = rel[m2];
                            let (r1, r2) = (rs[m1], rs[m2]);
                            let c = (d1[0] * d2[0] + d1[1] * d2[1] + d1[2] * d2[2]) / (r1 * r2);
                            let dc = c - p.cos_theta0;
                            let pref = p.lambda * p.epsilon;
                            e += pref * dc * dc * h1 * h2;
                            // Gradients.
                            let dedc = pref * 2.0 * dc * h1 * h2;
                            let dedr1 = pref * dc * dc * dh1 * h2;
                            let dedr2 = pref * dc * dc * h1 * dh2;
                            let mut g1 = [0.0f64; 3]; // ∂E/∂d1
                            let mut g2 = [0.0f64; 3];
                            for k in 0..3 {
                                // ∂c/∂d1 = d2/(r1 r2) − c d1/r1².
                                g1[k] = dedc * (d2[k] / (r1 * r2) - c * d1[k] / (r1 * r1))
                                    + dedr1 * d1[k] / r1;
                                g2[k] = dedc * (d1[k] / (r1 * r2) - c * d2[k] / (r2 * r2))
                                    + dedr2 * d2[k] / r2;
                            }
                            let fj = [-g1[0], -g1[1], -g1[2]];
                            let fk = [-g2[0], -g2[1], -g2[2]];
                            add_force(ids[m1], fj);
                            add_force(ids[m2], fk);
                            add_force(i, [g1[0] + g2[0], g1[1] + g2[1], g1[2] + g2[2]]);
                            // Virial: Σ d ⊗ f over the two legs.
                            w6[0] += d1[0] * fj[0] + d2[0] * fk[0];
                            w6[1] += d1[1] * fj[1] + d2[1] * fk[1];
                            w6[2] += d1[2] * fj[2] + d2[2] * fk[2];
                            w6[3] += 0.5
                                * (d1[0] * fj[1] + d1[1] * fj[0] + d2[0] * fk[1] + d2[1] * fk[0]);
                            w6[4] += 0.5
                                * (d1[0] * fj[2] + d1[2] * fj[0] + d2[0] * fk[2] + d2[2] * fk[0]);
                            w6[5] += 0.5
                                * (d1[1] * fj[2] + d1[2] * fj[1] + d2[1] * fk[2] + d2[2] * fk[1]);
                        }
                    }
                    (e, w6)
                })
            },
            |a, b| {
                let mut w = a.1;
                for (wk, bk) in w.iter_mut().zip(b.1) {
                    *wk += bk;
                }
                (a.0 + b.0, w)
            },
        );
        let f = system.atoms.f.view_for_mut(&space);
        f.fill(0.0);
        scatter.contribute_into_view(f);
        system.atoms.modified(&space, Mask::F);
        if space.is_device() {
            let mut k = KernelStats::new("PairSwCompute");
            k.work_items = nlocal as f64;
            let avg = list.avg_neighbors();
            k.flops = nlocal as f64 * (avg * 40.0 + avg * avg / 2.0 * 90.0);
            k.dram_bytes = nlocal as f64 * 48.0 + list.total_pairs as f64 * 28.0;
            k.working_set_bytes = list.working_set_bytes_cached();
            k.atomic_f64_ops = nlocal as f64 * (avg * 6.0 + avg * avg / 2.0 * 9.0);
            space.note_kernel(k);
        }
        PairResults::with_tensor(energy, w)
    }

    fn needs_reverse_comm(&self) -> bool {
        true // forces scatter onto ghost neighbors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::AtomData;
    use crate::comm::{build_ghosts, reverse_forces};
    use crate::domain::Domain;
    use crate::lattice::create_velocities;
    use crate::neighbor::NeighborSettings;
    use crate::sim::Simulation;
    use crate::units::Units;
    use lkk_kokkos::Space;

    /// Diamond-cubic silicon positions (8 atoms per cell, a = 5.431 Å).
    fn diamond(n: usize) -> (Vec<[f64; 3]>, Domain) {
        let a = 5.431;
        let basis = [
            [0.0, 0.0, 0.0],
            [0.0, 0.5, 0.5],
            [0.5, 0.0, 0.5],
            [0.5, 0.5, 0.0],
            [0.25, 0.25, 0.25],
            [0.25, 0.75, 0.75],
            [0.75, 0.25, 0.75],
            [0.75, 0.75, 0.25],
        ];
        let mut pos = Vec::new();
        for ix in 0..n {
            for iy in 0..n {
                for iz in 0..n {
                    for b in &basis {
                        pos.push([
                            (ix as f64 + b[0]) * a,
                            (iy as f64 + b[1]) * a,
                            (iz as f64 + b[2]) * a,
                        ]);
                    }
                }
            }
        }
        (pos, Domain::cubic(a * n as f64))
    }

    fn compute(
        positions: &[[f64; 3]],
        domain: Domain,
        space: Space,
    ) -> (Vec<[f64; 3]>, PairResults) {
        let mut atoms = AtomData::from_positions(positions);
        atoms.mass = vec![28.0855];
        let mut system = System::new(atoms, domain, space.clone()).with_units(Units::metal());
        let mut pair = PairSw::new(SwParams::default());
        let settings = NeighborSettings::new(pair.cutoff(), 0.3, false);
        system.atoms.wrap_positions(&system.domain);
        system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
        let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
        let res = pair.compute(&mut system, &list, true);
        system.atoms.sync(&Space::Serial, Mask::F);
        reverse_forces(&mut system.atoms, &system.ghosts);
        let fh = system.atoms.f.h_view();
        let forces = (0..positions.len())
            .map(|i| [fh.at([i, 0]), fh.at([i, 1]), fh.at([i, 2])])
            .collect();
        (forces, res)
    }

    #[test]
    fn diamond_silicon_cohesive_energy_is_correct() {
        // SW silicon is fit to E_coh = −4.3363 eV/atom at a = 5.431 Å —
        // a strong end-to-end anchor against the published potential.
        let (pos, domain) = diamond(2);
        let (forces, res) = compute(&pos, domain, Space::Threads);
        let per_atom = res.energy / pos.len() as f64;
        assert!(
            (per_atom - (-4.3363)).abs() < 5e-3,
            "E_coh = {per_atom} eV/atom"
        );
        // Perfect lattice: zero forces.
        for f in &forces {
            for k in 0..3 {
                assert!(f[k].abs() < 1e-9);
            }
        }
    }

    #[test]
    fn forces_match_finite_difference() {
        let (mut pos, domain) = diamond(2);
        for (i, p) in pos.iter_mut().enumerate() {
            for (k, c) in p.iter_mut().enumerate() {
                *c += 0.12 * (((i * 7 + k * 3) % 13) as f64 / 13.0 - 0.5);
            }
        }
        let (forces, _) = compute(&pos, domain, Space::Serial);
        let h = 1e-6;
        for &a in &[0usize, 21, 40] {
            for k in 0..3 {
                let mut pp = pos.clone();
                let mut pm = pos.clone();
                pp[a][k] += h;
                pm[a][k] -= h;
                let ep = compute(&pp, domain, Space::Serial).1.energy;
                let em = compute(&pm, domain, Space::Serial).1.energy;
                let fd = -(ep - em) / (2.0 * h);
                assert!(
                    (forces[a][k] - fd).abs() < 1e-5 * fd.abs().max(1.0),
                    "atom {a} dir {k}: {} vs {fd}",
                    forces[a][k]
                );
            }
        }
    }

    #[test]
    fn spaces_agree() {
        let (mut pos, domain) = diamond(2);
        for (i, p) in pos.iter_mut().enumerate() {
            p[0] += 0.05 * ((i % 5) as f64 - 2.0) / 5.0;
        }
        let (f_ref, r_ref) = compute(&pos, domain, Space::Serial);
        for space in [Space::Threads, Space::device(lkk_gpusim::GpuArch::h100())] {
            let (f, r) = compute(&pos, domain, space);
            assert!((r.energy - r_ref.energy).abs() < 1e-9 * r_ref.energy.abs());
            for (a, b) in f.iter().zip(&f_ref) {
                for k in 0..3 {
                    assert!((a[k] - b[k]).abs() < 1e-8);
                }
            }
        }
    }

    #[test]
    fn nve_conserves_energy() {
        let (pos, domain) = diamond(2);
        let mut atoms = AtomData::from_positions(&pos);
        atoms.mass = vec![28.0855];
        create_velocities(&mut atoms, &Units::metal(), 600.0, 31415);
        let space = Space::Threads;
        let system = System::new(atoms, domain, space.clone()).with_units(Units::metal());
        let pair = PairSw::new(SwParams::default());
        let mut sim = Simulation::new(system, Box::new(pair));
        sim.dt = 0.001;
        sim.setup();
        let e0 = sim.total_energy();
        sim.run(50);
        let drift = ((sim.total_energy() - e0) / pos.len() as f64).abs();
        assert!(drift < 2e-4, "per-atom drift {drift} eV");
    }
}
