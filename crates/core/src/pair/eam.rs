//! The Embedded Atom Method (EAM) — the style the paper's Figure 1
//! diagrams (`PairEAMKokkos`), and the flagship of the MANYBODY package
//! (§3.1).
//!
//! EAM is the simplest potential with a *per-atom intermediate*: the
//! host-side electron density
//!
//! ```text
//! ρ_i = Σ_j ψ(r_ij),    E_i = F(ρ_i) + ½ Σ_j φ(r_ij),
//! ```
//!
//! whose embedding derivative `F′(ρ)` must be known for ghost atoms
//! before the force pass — "the EAM pair style requires additional
//! communication, which is performed with calls to the LAMMPS
//! communication classes" (Fig. 1). Here that is the
//! [`crate::comm::GhostMap`]-driven forward communication of `F′(ρ)`.
//!
//! Analytic single-element parameterization (Johnson-style nearest-
//! neighbor EAM): exponential density, square-root embedding, and a
//! Morse-like pair term, all smoothly switched off at the cutoff.

use crate::atom::Mask;
use crate::neighbor::NeighborList;
use crate::pair::{PairResults, PairStyle};
use crate::sim::System;
use crate::switch::cubic_switch;
use lkk_gpusim::KernelStats;
use lkk_kokkos::Space;

/// Johnson-style analytic EAM parameters.
#[derive(Debug, Clone, Copy)]
pub struct EamParams {
    /// Density prefactor.
    pub rho_a: f64,
    /// Density decay (1/Å-ish).
    pub beta: f64,
    /// Nearest-neighbor reference distance.
    pub r0: f64,
    /// Embedding strength: `F(ρ) = −e_c·sqrt(ρ/ρ_ref)`.
    pub e_c: f64,
    /// Reference density (coordination × ψ(r0) of the target lattice).
    pub rho_ref: f64,
    /// Pair-repulsion strength and decay.
    pub phi_a: f64,
    pub phi_alpha: f64,
    /// Cutoff.
    pub cut: f64,
}

impl Default for EamParams {
    fn default() -> Self {
        // A generic fcc-metal-ish parameter set (Cu-like magnitudes).
        EamParams {
            rho_a: 1.0,
            beta: 5.0,
            r0: 2.55,
            e_c: 3.5,
            rho_ref: 12.0 * 1.0, // 12 nearest neighbors × ψ(r0)=1
            phi_a: 0.4,
            phi_alpha: 4.0,
            cut: 4.95,
        }
    }
}

impl EamParams {
    /// Density contribution ψ(r) and dψ/dr, switched to zero at `cut`.
    #[inline]
    pub fn density(&self, r: f64) -> (f64, f64) {
        if r >= self.cut {
            return (0.0, 0.0);
        }
        let e = (-self.beta * (r / self.r0 - 1.0)).exp();
        let de = -self.beta / self.r0 * e;
        let (s, ds) = cubic_switch(r, 0.8 * self.cut, self.cut);
        (self.rho_a * e * s, self.rho_a * (de * s + e * ds))
    }

    /// Pair repulsion φ(r) and dφ/dr.
    #[inline]
    pub fn phi(&self, r: f64) -> (f64, f64) {
        if r >= self.cut {
            return (0.0, 0.0);
        }
        let e = (-self.phi_alpha * (r / self.r0 - 1.0)).exp();
        let de = -self.phi_alpha / self.r0 * e;
        let (s, ds) = cubic_switch(r, 0.8 * self.cut, self.cut);
        (self.phi_a * e * s, self.phi_a * (de * s + e * ds))
    }

    /// Embedding energy F(ρ) and F′(ρ).
    #[inline]
    pub fn embed(&self, rho: f64) -> (f64, f64) {
        // sqrt embedding with a guard at ρ → 0 (F' would diverge).
        let x = (rho / self.rho_ref).max(1e-12);
        let f = -self.e_c * x.sqrt();
        let fp = -self.e_c * 0.5 / (self.rho_ref * x.sqrt());
        (f, fp)
    }
}

/// The EAM pair style (`pair_style eam`).
pub struct PairEam {
    pub params: EamParams,
    name: String,
    /// F′(ρ) for locals + ghosts (the communicated intermediate).
    fp: Vec<f64>,
    rho: Vec<f64>,
}

impl PairEam {
    pub fn new(params: EamParams) -> Self {
        PairEam {
            params,
            name: "eam".into(),
            fp: Vec::new(),
            rho: Vec::new(),
        }
    }

    /// Last computed per-atom densities (locals).
    pub fn densities(&self) -> &[f64] {
        &self.rho
    }
}

impl PairStyle for PairEam {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    fn cutoff(&self) -> f64 {
        self.params.cut
    }

    fn wants_half_list(&self) -> bool {
        false
    }

    fn needs_reverse_comm(&self) -> bool {
        false // one-sided force accumulation over the full list
    }

    fn compute(&mut self, system: &mut System, list: &NeighborList, _eflag: bool) -> PairResults {
        let space = system.space.clone();
        system.atoms.sync(&Space::Serial, Mask::X | Mask::TYPE);
        let nlocal = system.atoms.nlocal;
        let nall = system.atoms.nall();
        let params = self.params;
        let cutsq = params.cut * params.cut;

        // Flat-slice fast path (see `docs/performance.md`): positions
        // gathered once per atom, neighbor rows walked as contiguous
        // slices when the layout allows.
        let counts = list.numneigh.as_slice();
        let neigh = list.neighbors.as_slice();
        let (neigh_s0, neigh_s1) = (list.neighbors.stride(0), list.neighbors.stride(1));

        // --- Pass 1: densities of owned atoms. ---
        self.rho.clear();
        self.rho.resize(nlocal, 0.0);
        {
            let xh = system.atoms.x.h_view();
            let rho_ptr = self.rho.as_mut_ptr() as usize;
            space.parallel_for("EAMDensity", nlocal, |i| {
                let xi = xh.get3(i);
                let nn = counts[i] as usize;
                let mut acc = 0.0;
                let mut body = |j: usize| {
                    let xj = xh.get3(j);
                    let d = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                    let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                    if rsq < cutsq {
                        acc += params.density(rsq.sqrt()).0;
                    }
                };
                if let Some(row) = list.neighbors.try_row(i) {
                    for &ju in &row[..nn] {
                        body(ju as usize);
                    }
                } else {
                    let base = i * neigh_s0;
                    for s in 0..nn {
                        body(neigh[base + s * neigh_s1] as usize);
                    }
                }
                unsafe { *(rho_ptr as *mut f64).add(i) = acc };
            });
        }

        // --- Embedding energy + F'(ρ), then the Fig.-1 communication:
        //     forward F' to ghost copies so the force pass can read
        //     fp_j for any neighbor. ---
        let mut energy = 0.0;
        self.fp.clear();
        self.fp.resize(nall, 0.0);
        for i in 0..nlocal {
            let (f, fp) = params.embed(self.rho[i]);
            energy += f;
            self.fp[i] = fp;
        }
        system.forward_ghost_scalar(&mut self.fp);

        // --- Pass 2: forces (one-sided over the full list). ---
        let xh = system.atoms.x.h_view();
        let f = system.atoms.f.view_for_mut(&Space::Serial);
        f.fill(0.0);
        let fw = f.par_write();
        let fp = &self.fp;
        let (e_pair, virial) = space.parallel_reduce(
            "EAMForce",
            nlocal,
            (0.0f64, [0.0f64; 6]),
            |i| {
                let xi = xh.get3(i);
                let nn = counts[i] as usize;
                let mut fi = [0.0f64; 3];
                let mut e = 0.0;
                let mut w = [0.0f64; 6];
                let mut body = |j: usize| {
                    let xj = xh.get3(j);
                    let d = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                    let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                    if rsq >= cutsq {
                        return;
                    }
                    let r = rsq.sqrt();
                    let (phi, dphi) = params.phi(r);
                    let (_, dpsi) = params.density(r);
                    // dE/dr for the pair: φ' + (F'_i + F'_j)·ψ'.
                    let dedr = dphi + (fp[i] + fp[j]) * dpsi;
                    let fpair = -dedr / r;
                    for k in 0..3 {
                        fi[k] += fpair * d[k];
                    }
                    e += 0.5 * phi;
                    crate::pair::add_pair_virial(&mut w, 0.5 * fpair, d);
                };
                if let Some(row) = list.neighbors.try_row(i) {
                    for &ju in &row[..nn] {
                        body(ju as usize);
                    }
                } else {
                    let base = i * neigh_s0;
                    for s in 0..nn {
                        body(neigh[base + s * neigh_s1] as usize);
                    }
                }
                unsafe {
                    fw.write([i, 0], fi[0]);
                    fw.write([i, 1], fi[1]);
                    fw.write([i, 2], fi[2]);
                }
                (e, w)
            },
            |a, b| {
                let mut w = a.1;
                for (wk, bk) in w.iter_mut().zip(b.1) {
                    *wk += bk;
                }
                (a.0 + b.0, w)
            },
        );
        system.atoms.modified(&Space::Serial, Mask::F);

        if space.is_device() {
            let mut k = KernelStats::new("EAMForce");
            k.work_items = nlocal as f64;
            k.flops = list.total_pairs as f64 * 45.0;
            k.dram_bytes = nlocal as f64 * 64.0 + list.total_pairs as f64 * 4.0;
            k.reused_bytes = list.total_pairs as f64 * 32.0;
            k.working_set_bytes = list.working_set_bytes_cached() * 4.0 / 3.0;
            space.note_kernel(k);
        }

        PairResults::with_tensor(energy + e_pair, virial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::AtomData;
    use crate::comm::build_ghosts;
    use crate::lattice::{Lattice, LatticeKind};
    use crate::neighbor::NeighborSettings;

    fn fcc_system(a: f64, n: usize, perturb: f64) -> (System, NeighborList) {
        let lat = Lattice::new(LatticeKind::Fcc, a);
        let positions: Vec<[f64; 3]> = lat
            .positions(n, n, n)
            .iter()
            .enumerate()
            .map(|(i, p)| {
                [
                    p[0] + perturb * (((i * 7) % 11) as f64 / 11.0 - 0.5),
                    p[1] + perturb * (((i * 5) % 13) as f64 / 13.0 - 0.5),
                    p[2] + perturb * (((i * 3) % 17) as f64 / 17.0 - 0.5),
                ]
            })
            .collect();
        let atoms = AtomData::from_positions(&positions);
        let space = Space::Serial;
        let mut system = System::new(atoms, lat.domain(n, n, n), space.clone());
        let settings = NeighborSettings::new(4.95, 0.3, false);
        system.atoms.wrap_positions(&system.domain);
        system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
        let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
        (system, list)
    }

    #[test]
    fn perfect_fcc_has_zero_force_and_cohesion() {
        let (mut system, list) = fcc_system(3.61, 3, 0.0);
        let mut eam = PairEam::new(EamParams::default());
        let res = eam.compute(&mut system, &list, true);
        let fh = system.atoms.f.h_view();
        for i in 0..system.atoms.nlocal {
            for k in 0..3 {
                assert!(fh.at([i, k]).abs() < 1e-9);
            }
        }
        // Cohesive (negative) energy dominated by embedding.
        assert!(res.energy < 0.0);
        // Densities near the reference coordination.
        let rho = eam.densities()[0];
        assert!(rho > 6.0 && rho < 20.0, "rho = {rho}");
    }

    #[test]
    fn forces_match_finite_difference() {
        let energy_of = |perturb_extra: Option<(usize, usize, f64)>| -> f64 {
            let lat = Lattice::new(LatticeKind::Fcc, 3.61);
            let mut positions: Vec<[f64; 3]> = lat
                .positions(3, 3, 3)
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    [
                        p[0] + 0.1 * (((i * 7) % 11) as f64 / 11.0 - 0.5),
                        p[1] + 0.1 * (((i * 5) % 13) as f64 / 13.0 - 0.5),
                        p[2] + 0.1 * (((i * 3) % 17) as f64 / 17.0 - 0.5),
                    ]
                })
                .collect();
            if let Some((a, k, h)) = perturb_extra {
                positions[a][k] += h;
            }
            let atoms = AtomData::from_positions(&positions);
            let space = Space::Serial;
            let mut system = System::new(atoms, lat.domain(3, 3, 3), space.clone());
            let settings = NeighborSettings::new(4.95, 0.3, false);
            system.atoms.wrap_positions(&system.domain);
            system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
            let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
            let mut eam = PairEam::new(EamParams::default());
            eam.compute(&mut system, &list, true).energy
        };
        // Analytic forces on the same configuration.
        let lat = Lattice::new(LatticeKind::Fcc, 3.61);
        let positions: Vec<[f64; 3]> = lat
            .positions(3, 3, 3)
            .iter()
            .enumerate()
            .map(|(i, p)| {
                [
                    p[0] + 0.1 * (((i * 7) % 11) as f64 / 11.0 - 0.5),
                    p[1] + 0.1 * (((i * 5) % 13) as f64 / 13.0 - 0.5),
                    p[2] + 0.1 * (((i * 3) % 17) as f64 / 17.0 - 0.5),
                ]
            })
            .collect();
        let atoms = AtomData::from_positions(&positions);
        let space = Space::Serial;
        let mut system = System::new(atoms, lat.domain(3, 3, 3), space.clone());
        let settings = NeighborSettings::new(4.95, 0.3, false);
        system.atoms.wrap_positions(&system.domain);
        system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
        let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
        let mut eam = PairEam::new(EamParams::default());
        eam.compute(&mut system, &list, true);
        let fh = system.atoms.f.h_view();
        let h = 1e-6;
        for &a in &[0usize, 13, 50] {
            for k in 0..3 {
                let fd = -(energy_of(Some((a, k, h))) - energy_of(Some((a, k, -h)))) / (2.0 * h);
                let an = fh.at([a, k]);
                assert!(
                    (an - fd).abs() < 1e-5 * fd.abs().max(1.0),
                    "atom {a} dir {k}: {an} vs {fd}"
                );
            }
        }
    }

    #[test]
    fn embedding_makes_eam_non_pairwise() {
        // Remove one atom: the energy change differs from the sum of
        // pair energies (many-body signature).
        let (mut system, list) = fcc_system(3.61, 3, 0.05);
        let mut eam = PairEam::new(EamParams::default());
        let e_full = eam.compute(&mut system, &list, true).energy;
        // Pure pair part of the same configuration.
        let mut pair_only = PairEam::new(EamParams {
            e_c: 0.0,
            ..EamParams::default()
        });
        let e_pair = pair_only.compute(&mut system, &list, true).energy;
        assert!((e_full - e_pair).abs() > 1.0, "embedding inert?");
    }

    #[test]
    fn ghost_fp_communication_is_consistent() {
        let (mut system, list) = fcc_system(3.61, 3, 0.05);
        let mut eam = PairEam::new(EamParams::default());
        eam.compute(&mut system, &list, true);
        let nlocal = system.atoms.nlocal;
        for (g, &owner) in system.ghosts.owner.iter().enumerate() {
            assert_eq!(eam.fp[nlocal + g], eam.fp[owner]);
        }
    }
}
