//! The Morse potential: `E = D₀[e^{−2α(r−r₀)} − 2e^{−α(r−r₀)}]`.
//!
//! A second simple pairwise style demonstrating that [`super::PairKokkos`]
//! is a single-source driver (§4.1: the non-Kokkos implementation
//! duplicates this logic per style; the Kokkos one does not).

use super::TwoBody;

#[derive(Debug, Clone, Copy)]
pub struct Morse {
    pub d0: f64,
    pub alpha: f64,
    pub r0: f64,
    pub cut: f64,
    offset: f64,
}

impl Morse {
    pub fn new(d0: f64, alpha: f64, r0: f64, cut: f64) -> Self {
        let e = (-(alpha) * (cut - r0)).exp();
        Morse {
            d0,
            alpha,
            r0,
            cut,
            offset: d0 * (e * e - 2.0 * e),
        }
    }
}

impl TwoBody for Morse {
    fn type_name(&self) -> &'static str {
        "morse"
    }

    fn cutsq(&self, _ti: usize, _tj: usize) -> f64 {
        self.cut * self.cut
    }

    fn max_cutoff(&self) -> f64 {
        self.cut
    }

    #[inline(always)]
    fn pair(&self, rsq: f64, _ti: usize, _tj: usize) -> (f64, f64) {
        let r = rsq.sqrt();
        let e = (-self.alpha * (r - self.r0)).exp();
        // dE/dr = D0 * (-2α e² + 2α e); F = -dE/dr; fpair = F / r.
        let dedr = self.d0 * (-2.0 * self.alpha * e * e + 2.0 * self.alpha * e);
        let fpair = -dedr / r;
        let energy = self.d0 * (e * e - 2.0 * e) - self.offset;
        (fpair, energy)
    }

    fn flops_per_pair(&self) -> f64 {
        // sqrt + exp dominate; count exp as ~20 flops.
        40.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_at_r0() {
        let m = Morse::new(1.0, 2.0, 1.2, 5.0);
        let (fpair, e) = m.pair(1.2 * 1.2, 0, 0);
        assert!(fpair.abs() < 1e-12);
        assert!((e - (-1.0 - m.offset)).abs() < 1e-9);
    }

    #[test]
    fn force_is_minus_denergy_dr() {
        let m = Morse::new(0.9, 1.7, 1.0, 4.0);
        for &r in &[0.8f64, 1.0, 1.5, 2.5, 3.5] {
            let h = 1e-6;
            let (_, ep) = m.pair((r + h) * (r + h), 0, 0);
            let (_, em) = m.pair((r - h) * (r - h), 0, 0);
            let dedr = (ep - em) / (2.0 * h);
            let (fpair, _) = m.pair(r * r, 0, 0);
            assert!((fpair * r + dedr).abs() < 1e-5);
        }
    }

    #[test]
    fn energy_zero_at_cutoff() {
        let m = Morse::new(1.0, 2.0, 1.2, 5.0);
        let (_, e) = m.pair(25.0 * (1.0 - 1e-12), 0, 0);
        assert!(e.abs() < 1e-9);
    }
}
