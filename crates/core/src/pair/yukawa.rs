//! The Yukawa (screened Coulomb) potential: `E = A e^{−κr} / r`.

use super::TwoBody;

#[derive(Debug, Clone, Copy)]
pub struct Yukawa {
    pub a: f64,
    pub kappa: f64,
    pub cut: f64,
    offset: f64,
}

impl Yukawa {
    pub fn new(a: f64, kappa: f64, cut: f64) -> Self {
        Yukawa {
            a,
            kappa,
            cut,
            offset: a * (-kappa * cut).exp() / cut,
        }
    }
}

impl TwoBody for Yukawa {
    fn type_name(&self) -> &'static str {
        "yukawa"
    }

    fn cutsq(&self, _ti: usize, _tj: usize) -> f64 {
        self.cut * self.cut
    }

    fn max_cutoff(&self) -> f64 {
        self.cut
    }

    #[inline(always)]
    fn pair(&self, rsq: f64, _ti: usize, _tj: usize) -> (f64, f64) {
        let r = rsq.sqrt();
        let screening = (-self.kappa * r).exp();
        let e_over_r = self.a * screening / r;
        // dE/dr = -A e^{-κr} (κ r + 1) / r²; fpair = -dE/dr / r.
        let fpair = e_over_r * (self.kappa * r + 1.0) / rsq;
        (fpair, e_over_r - self.offset)
    }

    fn flops_per_pair(&self) -> f64 {
        35.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repulsive_everywhere_for_positive_a() {
        let y = Yukawa::new(2.0, 1.5, 5.0);
        for &r in &[0.5f64, 1.0, 2.0, 4.0] {
            let (fpair, e) = y.pair(r * r, 0, 0);
            assert!(fpair > 0.0);
            assert!(e > -1e-12);
        }
    }

    #[test]
    fn force_is_minus_denergy_dr() {
        let y = Yukawa::new(1.3, 0.8, 6.0);
        for &r in &[0.7f64, 1.3, 2.9, 5.0] {
            let h = 1e-6;
            let (_, ep) = y.pair((r + h) * (r + h), 0, 0);
            let (_, em) = y.pair((r - h) * (r - h), 0, 0);
            let dedr = (ep - em) / (2.0 * h);
            let (fpair, _) = y.pair(r * r, 0, 0);
            assert!((fpair * r + dedr).abs() < 1e-5, "r = {r}");
        }
    }
}
