//! Thread-local neighbor scratch shared by pair kernels.
//!
//! Several pair styles pre-filter the in-cutoff neighbors of each atom
//! into dense arrays before the force loop (divergence pre-processing,
//! §4.2.1 pattern). Allocating those arrays per work item violates the
//! steady-state zero-alloc invariant (lkk-lint rule LKK004): the
//! allocator is a serialization point under parallel dispatch and the
//! per-atom `malloc`/`free` churn dwarfs the filter itself for small
//! neighbor counts.
//!
//! This module keeps one reusable buffer set per OS thread. Capacity
//! grows to the high-water mark (max neighbors / descriptor width seen
//! by that thread) and is then re-used allocation-free. With the
//! vendored rayon shim each dispatch spawns fresh scoped threads, so
//! the pool amortizes per dispatch rather than per process — still one
//! allocation set per thread per kernel launch instead of one per
//! atom.

use std::cell::RefCell;

/// Reusable per-thread buffers for neighbor pre-filtering and
/// fixed-width descriptor work.
#[derive(Default)]
pub struct NeighScratch {
    /// Relative positions `x_j − x_i` of in-cutoff neighbors.
    pub rel: Vec<[f64; 3]>,
    /// Distances (or squared distances — kernel's choice).
    pub rs: Vec<f64>,
    /// Neighbor atom indices.
    pub ids: Vec<usize>,
    /// Neighbor weights / descriptor values.
    pub a: Vec<f64>,
    /// Descriptor gradients / second value channel.
    pub b: Vec<f64>,
}

thread_local! {
    static SCRATCH: RefCell<NeighScratch> = RefCell::new(NeighScratch::default());
}

/// Run `f` with this thread's scratch. The vectors are cleared (length
/// zero, capacity kept) before `f` sees them.
///
/// Nesting panics (`RefCell` double-borrow) by design: a kernel that
/// re-enters `with_neigh_scratch` from inside `f` would silently alias
/// its own buffers.
pub fn with_neigh_scratch<R>(f: impl FnOnce(&mut NeighScratch) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut s = cell.borrow_mut();
        s.rel.clear();
        s.rs.clear();
        s.ids.clear();
        s.a.clear();
        s.b.clear();
        f(&mut s)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_cleared_but_keeps_capacity() {
        let cap = with_neigh_scratch(|s| {
            s.rel.extend([[1.0, 2.0, 3.0]; 64]);
            s.a.extend([0.5; 128]);
            s.rel.capacity()
        });
        with_neigh_scratch(|s| {
            assert!(s.rel.is_empty());
            assert!(s.a.is_empty());
            assert!(s.rel.capacity() >= cap);
        });
    }

    #[test]
    fn scratch_is_per_thread() {
        with_neigh_scratch(|s| {
            s.ids.push(7);
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    // A different thread gets its own buffers, so this
                    // nested use must not double-borrow or see data.
                    with_neigh_scratch(|inner| assert!(inner.ids.is_empty()));
                });
            });
            assert_eq!(s.ids, [7]);
        });
    }
}
