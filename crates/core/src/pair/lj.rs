//! The Lennard-Jones 12-6 potential (§4, case study 1).
//!
//! `E = 4ε[(σ/r)¹² − (σ/r)⁶]` for `r < r_c` (eq. 1 of the paper), with
//! an optional energy shift making `E(r_c) = 0` (LAMMPS
//! `pair_modify shift yes`), which we default to so microcanonical
//! energy conservation tests are clean.

use super::TwoBody;

/// LJ coefficients for one type pair, precomputed LAMMPS-style.
#[derive(Debug, Clone, Copy, Default)]
struct Coeff {
    lj1: f64, // 48 ε σ¹²
    lj2: f64, // 24 ε σ⁶
    lj3: f64, // 4 ε σ¹²
    lj4: f64, // 4 ε σ⁶
    offset: f64,
    cutsq: f64,
}

/// Lennard-Jones with per-type-pair coefficients.
#[derive(Debug, Clone)]
pub struct LjCut {
    ntypes: usize,
    coeff: Vec<Coeff>,
    max_cut: f64,
    shift: bool,
}

impl LjCut {
    /// `pair_style lj/cut <cut>` with `ntypes` atom types; coefficients
    /// must then be set per type pair.
    pub fn new(ntypes: usize) -> Self {
        LjCut {
            ntypes,
            coeff: vec![Coeff::default(); ntypes * ntypes],
            max_cut: 0.0,
            shift: true,
        }
    }

    /// Single-type convenience: `pair_coeff 1 1 ε σ` with cutoff `cut`.
    pub fn single_type(epsilon: f64, sigma: f64, cut: f64) -> Self {
        let mut p = Self::new(1);
        p.set_coeff(0, 0, epsilon, sigma, cut);
        p
    }

    /// Disable the cutoff energy shift (LAMMPS default behaviour).
    pub fn without_shift(mut self) -> Self {
        self.shift = false;
        for i in 0..self.ntypes {
            for j in 0..self.ntypes {
                let c = &mut self.coeff[i * self.ntypes + j];
                c.offset = 0.0;
            }
        }
        self
    }

    /// `pair_coeff i j ε σ cut` (0-based types; symmetric).
    pub fn set_coeff(&mut self, ti: usize, tj: usize, epsilon: f64, sigma: f64, cut: f64) {
        let s6 = sigma.powi(6);
        let s12 = s6 * s6;
        let offset = if self.shift {
            let rc6 = cut.powi(6);
            4.0 * epsilon * (s12 / (rc6 * rc6) - s6 / rc6)
        } else {
            0.0
        };
        let c = Coeff {
            lj1: 48.0 * epsilon * s12,
            lj2: 24.0 * epsilon * s6,
            lj3: 4.0 * epsilon * s12,
            lj4: 4.0 * epsilon * s6,
            offset,
            cutsq: cut * cut,
        };
        self.coeff[ti * self.ntypes + tj] = c;
        self.coeff[tj * self.ntypes + ti] = c;
        self.max_cut = self.max_cut.max(cut);
    }
}

impl TwoBody for LjCut {
    fn type_name(&self) -> &'static str {
        "lj/cut"
    }

    #[inline(always)]
    fn cutsq(&self, ti: usize, tj: usize) -> f64 {
        self.coeff[ti * self.ntypes + tj].cutsq
    }

    fn max_cutoff(&self) -> f64 {
        self.max_cut
    }

    #[inline(always)]
    fn pair(&self, rsq: f64, ti: usize, tj: usize) -> (f64, f64) {
        let c = &self.coeff[ti * self.ntypes + tj];
        let r2inv = 1.0 / rsq;
        let r6inv = r2inv * r2inv * r2inv;
        let forcelj = r6inv * (c.lj1 * r6inv - c.lj2);
        let fpair = forcelj * r2inv;
        let evdwl = r6inv * (c.lj3 * r6inv - c.lj4) - c.offset;
        (fpair, evdwl)
    }

    fn flops_per_pair(&self) -> f64 {
        // 3 sub + 3 mul + 2 add (rsq) + div + 2 mul (r6inv) + fma chain:
        // LAMMPS counts ~23 flops for the LJ inner loop.
        23.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_at_two_to_sixth() {
        let lj = LjCut::single_type(1.0, 1.0, 10.0);
        let rmin: f64 = 2.0_f64.powf(1.0 / 6.0);
        // Force magnitude ~ 0 at the minimum.
        let (fpair, e) = lj.pair(rmin * rmin, 0, 0);
        assert!(fpair.abs() < 1e-12);
        // Energy at minimum ≈ −ε (+ tiny shift from the far cutoff).
        assert!((e - (-1.0)).abs() < 1e-4, "e = {e}");
    }

    #[test]
    fn force_is_minus_denergy_dr() {
        let lj = LjCut::single_type(0.7, 1.1, 3.0);
        for &r in &[1.0f64, 1.2, 1.5, 2.0, 2.8] {
            let h = 1e-6;
            let (_, e_plus) = lj.pair((r + h) * (r + h), 0, 0);
            let (_, e_minus) = lj.pair((r - h) * (r - h), 0, 0);
            let dedr = (e_plus - e_minus) / (2.0 * h);
            let (fpair, _) = lj.pair(r * r, 0, 0);
            // F = fpair * r must equal -dE/dr.
            assert!(
                (fpair * r + dedr).abs() < 1e-5,
                "r={r}: fpair*r={} -dE/dr={}",
                fpair * r,
                -dedr
            );
        }
    }

    #[test]
    fn shift_zeroes_energy_at_cutoff() {
        let lj = LjCut::single_type(1.0, 1.0, 2.5);
        let (_, e) = lj.pair(2.5f64.powi(2) * (1.0 - 1e-12), 0, 0);
        assert!(e.abs() < 1e-9);
        let unshifted = LjCut::single_type(1.0, 1.0, 2.5).without_shift();
        let (_, e2) = lj.pair(1.0, 0, 0);
        let (_, e2u) = unshifted.pair(1.0, 0, 0);
        assert!((e2u - e2).abs() > 1e-4); // offset actually applied
    }

    #[test]
    fn mixed_types() {
        let mut lj = LjCut::new(2);
        lj.set_coeff(0, 0, 1.0, 1.0, 2.5);
        lj.set_coeff(0, 1, 1.5, 0.8, 2.0);
        lj.set_coeff(1, 1, 0.5, 1.2, 3.0);
        assert_eq!(lj.max_cutoff(), 3.0);
        assert_eq!(lj.cutsq(0, 1), 4.0);
        assert_eq!(lj.cutsq(1, 0), 4.0);
        // Symmetry of mixed pair.
        assert_eq!(lj.pair(1.1, 0, 1), lj.pair(1.1, 1, 0));
    }
}
