//! Binned neighbor lists.
//!
//! Reproduces the LAMMPS neighbor machinery the paper's case studies
//! rest on: atoms (including ghosts) are binned into cells of the
//! neighbor cutoff, and each owned atom gathers neighbors from its
//! 3×3×3 bin stencil. Two list styles exist (§4.1):
//!
//! * **full** — every `i–j` pair appears in both `i`'s and `j`'s rows;
//!   forces are computed twice ("redundant computation") but each atom
//!   only writes its own row, avoiding atomics. GPU default.
//! * **half** — each pair appears once (Newton's third law); the force
//!   kernel writes both atoms' rows and needs a deconfliction strategy
//!   (`ScatterView`). CPU default.
//!
//! The list is stored as a 2-D `View` (`[atom, slot]`) so the layout
//! adapts to the execution space: rows contiguous on the host for
//! caching, interleaved on the device for coalescing (§4.1).

use crate::atom::AtomData;
use crate::domain::Domain;
use lkk_kokkos::{Space, View, View1, View2};

/// Neighbor list construction settings.
#[derive(Debug, Clone, Copy)]
pub struct NeighborSettings {
    /// Force cutoff.
    pub cutoff: f64,
    /// Extra skin so lists survive several steps (LAMMPS default 0.3σ).
    pub skin: f64,
    /// Build half (true) or full (false) lists.
    pub half: bool,
    /// Check for rebuild every this many steps.
    pub every: usize,
    /// Canonically sort every neighbor row by the neighbor's image
    /// position after each (re)build. Off by default: the bin-major fill
    /// order is already deterministic for a fixed decomposition, and the
    /// committed baselines pin it. Turn on (together with full lists and
    /// own-row accumulation) to make per-atom force sums independent of
    /// the decomposition — the knob the balance-equivalence tests use to
    /// compare rebalanced runs bitwise against static ones.
    pub sort_rows: bool,
}

impl NeighborSettings {
    pub fn new(cutoff: f64, skin: f64, half: bool) -> Self {
        NeighborSettings {
            cutoff,
            skin,
            half,
            every: 1,
            sort_rows: false,
        }
    }

    /// Neighbor cutoff = force cutoff + skin.
    pub fn cutneigh(&self) -> f64 {
        self.cutoff + self.skin
    }
}

/// Spatial bins over the ghost-extended region, CSR-indexed.
///
/// All backing vectors are reused across [`Bins::rebuild`] calls, so a
/// persistent `Bins` (as held by [`NeighborList`]) stops touching the
/// allocator once its capacity has peaked.
#[derive(Debug)]
pub struct Bins {
    lo: [f64; 3],
    inv_size: [f64; 3],
    nbins: [usize; 3],
    /// CSR offsets per bin, length `nbins_total + 1`.
    starts: Vec<usize>,
    /// Atom indices ordered by bin.
    atoms: Vec<u32>,
    /// Counting-sort scratch, reused across rebuilds.
    bin_idx: Vec<usize>,
    cursor: Vec<usize>,
}

impl Bins {
    /// An empty bin structure ready for [`Bins::rebuild`].
    pub fn empty() -> Bins {
        Bins {
            lo: [0.0; 3],
            inv_size: [0.0; 3],
            nbins: [1; 3],
            starts: Vec::new(),
            atoms: Vec::new(),
            bin_idx: Vec::new(),
            cursor: Vec::new(),
        }
    }

    /// Bin all `nall` atoms. The binned region covers the box extended
    /// by `cutghost` on every side.
    pub fn build(atoms: &AtomData, domain: &Domain, bin_size: f64, cutghost: f64) -> Bins {
        let mut bins = Bins::empty();
        bins.rebuild(atoms, domain, bin_size, cutghost);
        bins
    }

    /// Re-bin in place, reusing every scratch vector's capacity.
    pub fn rebuild(&mut self, atoms: &AtomData, domain: &Domain, bin_size: f64, cutghost: f64) {
        let nall = atoms.nall();
        let lo = [
            domain.lo[0] - cutghost,
            domain.lo[1] - cutghost,
            domain.lo[2] - cutghost,
        ];
        let hi = [
            domain.hi[0] + cutghost,
            domain.hi[1] + cutghost,
            domain.hi[2] + cutghost,
        ];
        let mut nbins = [0usize; 3];
        let mut inv_size = [0f64; 3];
        for k in 0..3 {
            nbins[k] = (((hi[k] - lo[k]) / bin_size).floor() as usize).max(1);
            inv_size[k] = nbins[k] as f64 / (hi[k] - lo[k]);
        }
        self.lo = lo;
        self.inv_size = inv_size;
        self.nbins = nbins;
        let total = nbins[0] * nbins[1] * nbins[2];
        let xh = atoms.x.h_view();
        let bin_of = |i: usize| -> usize {
            let p = xh.get3(i);
            let mut b = [0usize; 3];
            for k in 0..3 {
                let t = ((p[k] - lo[k]) * inv_size[k]) as isize;
                b[k] = t.clamp(0, nbins[k] as isize - 1) as usize;
            }
            (b[0] * nbins[1] + b[1]) * nbins[2] + b[2]
        };
        // Counting sort (all buffers capacity-reusing).
        self.bin_idx.clear();
        self.bin_idx.extend((0..nall).map(bin_of));
        self.starts.clear();
        self.starts.resize(total + 1, 0);
        for &b in &self.bin_idx {
            self.starts[b + 1] += 1;
        }
        for b in 0..total {
            self.starts[b + 1] += self.starts[b];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts[..total]);
        self.atoms.clear();
        self.atoms.resize(nall, 0);
        for (i, &b) in self.bin_idx.iter().enumerate() {
            self.atoms[self.cursor[b]] = i as u32;
            self.cursor[b] += 1;
        }
    }

    #[inline]
    fn bin_coords(&self, x: [f64; 3]) -> [isize; 3] {
        let mut b = [0isize; 3];
        for k in 0..3 {
            b[k] = (((x[k] - self.lo[k]) * self.inv_size[k]) as isize)
                .clamp(0, self.nbins[k] as isize - 1);
        }
        b
    }

    #[inline]
    fn bin_atoms(&self, b: [isize; 3]) -> &[u32] {
        let idx = (b[0] as usize * self.nbins[1] + b[1] as usize) * self.nbins[2] + b[2] as usize;
        &self.atoms[self.starts[idx]..self.starts[idx + 1]]
    }

    /// The spatial ordering of atoms (bin-major), used for spatial
    /// sorting of atom data to improve cache locality.
    pub fn ordered_atoms(&self) -> &[u32] {
        &self.atoms
    }

    /// Collect (into `out`, reusing its capacity) the atoms in the
    /// outermost bin layer — every bin with a coordinate at 0 or
    /// `nbins-1`. Because bins are at least `bin_size` wide, binning a
    /// sub-domain with `bin_size = cutghost` makes this layer a
    /// superset of all atoms within `cutghost` of any face: the halo
    /// candidate set, found in O(surface) instead of O(N).
    ///
    /// Each atom appears exactly once (bins partition the atoms), in
    /// deterministic bin-major order.
    pub fn boundary_atoms(&self, out: &mut Vec<u32>) {
        out.clear();
        let [nx, ny, nz] = self.nbins;
        let mut take = |b: [usize; 3]| {
            out.extend_from_slice(self.bin_atoms([b[0] as isize, b[1] as isize, b[2] as isize]));
        };
        for bx in 0..nx {
            if bx == 0 || bx == nx - 1 {
                // A boundary slab in x: every bin belongs to the shell.
                for by in 0..ny {
                    for bz in 0..nz {
                        take([bx, by, bz]);
                    }
                }
            } else {
                // Interior slab: only the frame of the y/z rectangle.
                for by in 0..ny {
                    if by == 0 || by == ny - 1 {
                        for bz in 0..nz {
                            take([bx, by, bz]);
                        }
                    } else {
                        take([bx, by, 0]);
                        if nz > 1 {
                            take([bx, by, nz - 1]);
                        }
                    }
                }
            }
        }
    }
}

/// A built neighbor list.
///
/// The list (and its [`Bins`]) is designed to be *persistent*: call
/// [`NeighborList::rebuild`] on an existing list and every buffer —
/// neighbor rows, per-atom counts, bin CSR arrays — is refilled in
/// place, reusing capacity. Once the high-water shape has been reached
/// no rebuild touches the allocator; [`NeighborList::grow_count`]
/// counts the (rare) capacity growths so tests can assert steady-state
/// behavior.
#[derive(Debug)]
pub struct NeighborList {
    pub half: bool,
    pub cutneigh: f64,
    /// `[nlocal, maxneigh]` neighbor indices; layout per execution space.
    pub neighbors: View2<u32>,
    /// Number of neighbors per owned atom.
    pub numneigh: View1<u32>,
    pub maxneigh: usize,
    pub nlocal: usize,
    /// Total stored pairs (`Σ numneigh`).
    pub total_pairs: u64,
    /// Persistent spatial bins, reused across rebuilds.
    bins: Bins,
    /// Row-sort scratch (one row of indices), reused across rebuilds.
    sort_scratch: Vec<u32>,
    /// Number of heap growths across rebuilds (0 in steady state).
    grow_count: u64,
    /// Cached `working_set_bytes(2048)`, refreshed on every rebuild.
    ws2048: f64,
}

impl NeighborList {
    /// Build a neighbor list for the owned atoms. Ghosts must already
    /// exist out to `settings.cutneigh()`.
    pub fn build(
        atoms: &AtomData,
        domain: &Domain,
        settings: &NeighborSettings,
        space: &Space,
    ) -> NeighborList {
        let mut list = NeighborList {
            half: settings.half,
            cutneigh: settings.cutneigh(),
            neighbors: View::for_space("neighlist", [0, 0], space),
            numneigh: View::for_space("numneigh", [0], space),
            maxneigh: 0,
            nlocal: 0,
            total_pairs: 0,
            bins: Bins::empty(),
            sort_scratch: Vec::new(),
            grow_count: 0,
            ws2048: 0.0,
        };
        // The initial build's allocations are construction, not churn.
        list.rebuild(atoms, domain, settings, space);
        list.grow_count = 0;
        list
    }

    /// Heap growths since construction (0 in steady state).
    pub fn grow_count(&self) -> u64 {
        self.grow_count
    }

    /// Rebuild in place, reusing the neighbor/count/bin buffers.
    ///
    /// Identical logical behavior to [`NeighborList::build`] (same
    /// row-capacity estimate, same overflow-retry sequence, same stored
    /// list), but the retry loop grows the existing views in place
    /// instead of freeing and reallocating them.
    pub fn rebuild(
        &mut self,
        atoms: &AtomData,
        domain: &Domain,
        settings: &NeighborSettings,
        space: &Space,
    ) {
        let nlocal = atoms.nlocal;
        let cutneigh = settings.cutneigh();
        let cutsq = cutneigh * cutneigh;
        self.bins.rebuild(atoms, domain, cutneigh, cutneigh);
        // Initial per-row capacity from density estimate.
        let density = atoms.nall() as f64 / {
            let l = domain.lengths();
            (l[0] + 2.0 * cutneigh) * (l[1] + 2.0 * cutneigh) * (l[2] + 2.0 * cutneigh)
        };
        let sphere = 4.0 / 3.0 * std::f64::consts::PI * cutneigh.powi(3) * density;
        let guess = (sphere * if settings.half { 0.7 } else { 1.4 }) as usize + 8;
        let mut maxneigh = guess.max(8);

        // A space change (different preferred layout) cannot reuse the
        // stored strides; rebuild the views from scratch. Never taken
        // in a steady-state run loop.
        if self.neighbors.layout() != lkk_kokkos::Layout::for_space(space) {
            self.neighbors = View::for_space("neighlist", [0, 0], space);
            self.numneigh = View::for_space("numneigh", [0], space);
        }

        loop {
            let mut grew = self.neighbors.realloc([nlocal, maxneigh]);
            grew |= self.numneigh.realloc([nlocal]);
            if grew {
                self.grow_count += 1;
            }
            let (needed, total_pairs) = Self::fill(
                atoms,
                &self.bins,
                cutsq,
                settings.half,
                nlocal,
                maxneigh,
                &mut self.neighbors,
                &mut self.numneigh,
                space,
            );
            if needed > maxneigh {
                // Overflow: grow in place and refill.
                maxneigh = needed + needed / 4 + 4;
                continue;
            }
            self.half = settings.half;
            self.cutneigh = cutneigh;
            self.maxneigh = maxneigh;
            self.nlocal = nlocal;
            self.total_pairs = total_pairs;
            if settings.sort_rows {
                self.sort_rows_canonical(atoms);
            }
            self.ws2048 = self.working_set_bytes(2048);
            return;
        }
    }

    /// Reorder every neighbor row by the neighbor's *image position*
    /// ((x, y, z) lexicographic under `total_cmp`). Within a cutoff
    /// smaller than half the box, each neighbor of atom `i` appears at
    /// a unique periodic image, and the comm layer produces that image
    /// coordinate bit-for-bit regardless of which rank owns whom — so
    /// the sorted row (and with it any own-row accumulation over the
    /// row) is a pure function of the physical configuration, not of
    /// the decomposition. See `docs/comm.md` (balancer determinism).
    fn sort_rows_canonical(&mut self, atoms: &AtomData) {
        let xh = atoms.x.h_view();
        let mut row = std::mem::take(&mut self.sort_scratch);
        for i in 0..self.nlocal {
            let nn = self.numneigh.at([i]) as usize;
            row.clear();
            row.extend((0..nn).map(|s| self.neighbors.at([i, s])));
            row.sort_unstable_by(|&a, &b| {
                let pa = xh.get3(a as usize);
                let pb = xh.get3(b as usize);
                pa[0]
                    .total_cmp(&pb[0])
                    .then_with(|| pa[1].total_cmp(&pb[1]))
                    .then_with(|| pa[2].total_cmp(&pb[2]))
            });
            for (s, &j) in row.iter().enumerate() {
                self.neighbors.set([i, s], j);
            }
        }
        self.sort_scratch = row;
    }

    /// Fill pass. Returns `(max_required, total_stored_pairs)`; the row
    /// capacity check *and* the `Σ numneigh` total come out of the same
    /// parallel reduction (tuple-joined), so the build has no serial
    /// tail. `max_required > maxneigh` means some row overflowed.
    #[allow(clippy::too_many_arguments)]
    fn fill(
        atoms: &AtomData,
        bins: &Bins,
        cutsq: f64,
        half: bool,
        nlocal: usize,
        maxneigh: usize,
        neighbors: &mut View2<u32>,
        numneigh: &mut View1<u32>,
        space: &Space,
    ) -> (usize, u64) {
        let xh = atoms.x.h_view();
        let nw = neighbors.par_write();
        let cw = numneigh.par_write();
        space.parallel_reduce(
            "NeighborBuild",
            nlocal,
            (0usize, 0u64),
            |i| {
                let xi = xh.get3(i);
                let bc = bins.bin_coords(xi);
                let mut count = 0usize;
                for dx in -1isize..=1 {
                    for dy in -1isize..=1 {
                        for dz in -1isize..=1 {
                            let b = [bc[0] + dx, bc[1] + dy, bc[2] + dz];
                            if b.iter()
                                .zip(&bins.nbins)
                                .any(|(&bb, &n)| bb < 0 || bb >= n as isize)
                            {
                                continue;
                            }
                            for &ju in bins.bin_atoms(b) {
                                let j = ju as usize;
                                if j == i {
                                    continue;
                                }
                                let xj = xh.get3(j);
                                if half {
                                    // Half-list ownership rule: local
                                    // pairs stored on the lower index;
                                    // ghost pairs on coordinate order.
                                    if j < nlocal {
                                        if j < i {
                                            continue;
                                        }
                                    } else {
                                        let keep = xj[2] > xi[2]
                                            || (xj[2] == xi[2] && xj[1] > xi[1])
                                            || (xj[2] == xi[2] && xj[1] == xi[1] && xj[0] > xi[0]);
                                        if !keep {
                                            continue;
                                        }
                                    }
                                }
                                let d = [xj[0] - xi[0], xj[1] - xi[1], xj[2] - xi[2]];
                                let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                                if rsq < cutsq {
                                    if count < maxneigh {
                                        unsafe { nw.write([i, count], ju) };
                                    }
                                    count += 1;
                                }
                            }
                        }
                    }
                }
                let stored = count.min(maxneigh);
                unsafe { cw.write([i], stored as u32) };
                (count, stored as u64)
            },
            |a, b| (a.0.max(b.0), a.1 + b.1),
        )
    }

    /// Cached [`Self::working_set_bytes`]`(2048)` of the current list,
    /// refreshed on every rebuild. The list is immutable between
    /// rebuilds, so the per-step cost-model query returns exactly this
    /// value; caching it moves an `O(total_pairs)` hash-set sampling out
    /// of the per-step hot path, where it used to rival the small-system
    /// LJ force kernel itself in wall-clock cost.
    pub fn working_set_bytes_cached(&self) -> f64 {
        self.ws2048
    }

    /// Measured per-block neighbor working set: the average number of
    /// *distinct* atoms referenced by a block of `block` consecutive
    /// owned atoms, times 24 bytes (one coordinate triple). This feeds
    /// the L1 working-set term of the device cost model.
    // Insert/len-only set (never iterated): order cannot leak (LKK002).
    #[allow(clippy::disallowed_types)]
    pub fn working_set_bytes(&self, block: usize) -> f64 {
        use std::collections::HashSet;
        if self.nlocal == 0 {
            return 0.0;
        }
        let block = block.max(1);
        let nblocks = self.nlocal.div_ceil(block);
        // Sample up to 16 blocks evenly.
        let step = nblocks.div_ceil(16).max(1);
        let mut total = 0usize;
        let mut sampled = 0usize;
        let mut set = HashSet::new();
        let mut b = 0;
        while b < nblocks {
            set.clear();
            let start = b * block;
            let end = (start + block).min(self.nlocal);
            for i in start..end {
                set.insert(i as u32);
                for s in 0..self.numneigh.at([i]) as usize {
                    set.insert(self.neighbors.at([i, s]));
                }
            }
            total += set.len();
            sampled += 1;
            b += step;
        }
        (total as f64 / sampled as f64) * 24.0
    }

    /// Average neighbors per atom.
    pub fn avg_neighbors(&self) -> f64 {
        if self.nlocal == 0 {
            0.0
        } else {
            self.total_pairs as f64 / self.nlocal as f64
        }
    }
}

/// Spatially reorder the *owned* atoms into bin-major order (LAMMPS'
/// `atom_modify sort`): after sorting, atoms that are close in space
/// are close in memory, which is what makes the per-SM neighbor
/// working set fit in cache (§4.1 / Fig. 3). Must be called between
/// neighbor rebuilds (it invalidates ghost indices and the list).
/// Returns the permutation applied (new index → old index).
pub fn spatial_sort(atoms: &mut AtomData, domain: &Domain, bin_size: f64) -> Vec<u32> {
    let nlocal = atoms.nlocal;
    // Bin owned atoms only (strip ghosts first — they are rebuilt).
    atoms.resize_all(nlocal, nlocal);
    atoms.nghost = 0;
    let bins = Bins::build(atoms, domain, bin_size, 0.0);
    let order: Vec<u32> = bins.ordered_atoms().to_vec();
    debug_assert_eq!(order.len(), nlocal);
    // Apply the permutation to every per-atom field (host side).
    let perm = |v: &mut Vec<f64>, stride: usize| {
        let old = v.clone();
        for (new_i, &old_i) in order.iter().enumerate() {
            for k in 0..stride {
                v[new_i * stride + k] = old[old_i as usize * stride + k];
            }
        }
    };
    // DualView fields: operate on host mirrors then mark modified.
    for dv in [&mut atoms.x, &mut atoms.v, &mut atoms.f] {
        let mut flat: Vec<f64> = (0..nlocal)
            .flat_map(|i| (0..3).map(move |k| (i, k)))
            .map(|(i, k)| dv.h_view().at([i, k]))
            .collect();
        perm(&mut flat, 3);
        let h = dv.h_view_mut();
        for i in 0..nlocal {
            for k in 0..3 {
                h.set([i, k], flat[i * 3 + k]);
            }
        }
    }
    {
        let old: Vec<i32> = (0..nlocal).map(|i| atoms.typ.h_view().at([i])).collect();
        let h = atoms.typ.h_view_mut();
        for (new_i, &old_i) in order.iter().enumerate() {
            h.set([new_i], old[old_i as usize]);
        }
    }
    {
        let old: Vec<f64> = (0..nlocal).map(|i| atoms.q.h_view().at([i])).collect();
        let h = atoms.q.h_view_mut();
        for (new_i, &old_i) in order.iter().enumerate() {
            h.set([new_i], old[old_i as usize]);
        }
    }
    {
        let old: Vec<i64> = (0..nlocal).map(|i| atoms.tag.h_view().at([i])).collect();
        let h = atoms.tag.h_view_mut();
        for (new_i, &old_i) in order.iter().enumerate() {
            h.set([new_i], old[old_i as usize]);
        }
    }
    let old_image = atoms.image.clone();
    for (new_i, &old_i) in order.iter().enumerate() {
        atoms.image[new_i] = old_image[old_i as usize];
    }
    order
}

/// Largest squared displacement of owned atoms since `x_old`; the
/// rebuild trigger is `max_disp_sq > (skin/2)²`.
pub fn max_displacement_sq(atoms: &AtomData, x_old: &[[f64; 3]], domain: &Domain) -> f64 {
    let xh = atoms.x.h_view();
    let mut m: f64 = 0.0;
    for (i, old) in x_old.iter().enumerate().take(atoms.nlocal) {
        let p = [xh.at([i, 0]), xh.at([i, 1]), xh.at([i, 2])];
        m = m.max(domain.min_image_dsq(&p, old));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::build_ghosts;
    use crate::lattice::{Lattice, LatticeKind};

    fn lj_melt(n: usize) -> (AtomData, Domain) {
        let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
        let positions = lat.positions(n, n, n);
        let domain = lat.domain(n, n, n);
        let atoms = AtomData::from_positions(&positions);
        (atoms, domain)
    }

    /// Brute-force pair count within cutoff using minimum image.
    fn brute_pairs(atoms: &AtomData, domain: &Domain, cut: f64) -> u64 {
        let n = atoms.nlocal;
        let mut count = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if domain.min_image_dsq(&atoms.pos(i), &atoms.pos(j)) < cut * cut {
                    count += 1;
                }
            }
        }
        count
    }

    #[test]
    fn half_list_counts_each_pair_once() {
        let (mut atoms, domain) = lj_melt(4);
        let settings = NeighborSettings::new(2.5, 0.3, true);
        build_ghosts(&mut atoms, &domain, settings.cutneigh());
        let nl = NeighborList::build(&atoms, &domain, &settings, &Space::Serial);
        let brute = brute_pairs(&atoms, &domain, settings.cutneigh());
        assert_eq!(nl.total_pairs, brute);
    }

    #[test]
    fn full_list_counts_each_pair_twice() {
        let (mut atoms, domain) = lj_melt(4);
        let settings = NeighborSettings::new(2.5, 0.3, false);
        build_ghosts(&mut atoms, &domain, settings.cutneigh());
        let nl = NeighborList::build(&atoms, &domain, &settings, &Space::Threads);
        let brute = brute_pairs(&atoms, &domain, settings.cutneigh());
        assert_eq!(nl.total_pairs, 2 * brute);
    }

    #[test]
    fn full_list_is_symmetric_for_local_pairs() {
        let (mut atoms, domain) = lj_melt(4);
        let settings = NeighborSettings::new(2.5, 0.3, false);
        build_ghosts(&mut atoms, &domain, settings.cutneigh());
        let nl = NeighborList::build(&atoms, &domain, &settings, &Space::Serial);
        for i in 0..nl.nlocal {
            for s in 0..nl.numneigh.at([i]) as usize {
                let j = nl.neighbors.at([i, s]) as usize;
                if j < nl.nlocal {
                    let back = (0..nl.numneigh.at([j]) as usize)
                        .any(|t| nl.neighbors.at([j, t]) as usize == i);
                    assert!(back, "{j} missing back-reference to {i}");
                }
            }
        }
    }

    #[test]
    fn fcc_coordination_number() {
        // At cutoff between 1st and 2nd neighbor shell, fcc has 12
        // nearest neighbors.
        let lat = Lattice::new(LatticeKind::Fcc, 1.0);
        let mut atoms = AtomData::from_positions(&lat.positions(4, 4, 4));
        let domain = lat.domain(4, 4, 4);
        // 1st shell at 0.7071, 2nd at 1.0.
        let settings = NeighborSettings::new(0.85, 0.0, false);
        build_ghosts(&mut atoms, &domain, settings.cutneigh());
        let nl = NeighborList::build(&atoms, &domain, &settings, &Space::Serial);
        for i in 0..nl.nlocal {
            assert_eq!(nl.numneigh.at([i]), 12);
        }
    }

    #[test]
    fn overflow_retry_produces_same_list() {
        let (mut atoms, domain) = lj_melt(5);
        let settings = NeighborSettings::new(3.5, 0.3, false); // large cutoff forces retries
        build_ghosts(&mut atoms, &domain, settings.cutneigh());
        let nl = NeighborList::build(&atoms, &domain, &settings, &Space::Serial);
        let brute = brute_pairs(&atoms, &domain, settings.cutneigh());
        assert_eq!(nl.total_pairs, 2 * brute);
    }

    #[test]
    fn layout_follows_space() {
        let (mut atoms, domain) = lj_melt(4);
        let settings = NeighborSettings::new(2.5, 0.3, false);
        build_ghosts(&mut atoms, &domain, settings.cutneigh());
        let host = NeighborList::build(&atoms, &domain, &settings, &Space::Threads);
        assert_eq!(host.neighbors.layout(), lkk_kokkos::Layout::Right);
        let dev = NeighborList::build(
            &atoms,
            &domain,
            &settings,
            &Space::device(lkk_gpusim::GpuArch::h100()),
        );
        assert_eq!(dev.neighbors.layout(), lkk_kokkos::Layout::Left);
        assert_eq!(host.total_pairs, dev.total_pairs);
    }

    #[test]
    fn working_set_grows_with_block() {
        let (mut atoms, domain) = lj_melt(5);
        let settings = NeighborSettings::new(2.5, 0.3, false);
        build_ghosts(&mut atoms, &domain, settings.cutneigh());
        let nl = NeighborList::build(&atoms, &domain, &settings, &Space::Serial);
        let w1 = nl.working_set_bytes(32);
        let w2 = nl.working_set_bytes(256);
        assert!(w2 > w1);
        assert!(w1 > 32.0 * 24.0);
    }

    #[test]
    fn displacement_tracking() {
        let (atoms, domain) = lj_melt(2);
        let x_old: Vec<[f64; 3]> = (0..atoms.nlocal).map(|i| atoms.pos(i)).collect();
        assert_eq!(max_displacement_sq(&atoms, &x_old, &domain), 0.0);
        let mut atoms = atoms;
        let new_x = atoms.pos(0)[0] + 0.4;
        atoms.x.h_view_mut().set([0, 0], new_x);
        let d = max_displacement_sq(&atoms, &x_old, &domain);
        assert!((d - 0.16).abs() < 1e-12);
    }

    #[test]
    fn canonical_row_sort_orders_rows_and_preserves_sets() {
        let (mut atoms, domain) = lj_melt(4);
        let mut settings = NeighborSettings::new(2.5, 0.3, false);
        build_ghosts(&mut atoms, &domain, settings.cutneigh());
        let plain = NeighborList::build(&atoms, &domain, &settings, &Space::Serial);
        settings.sort_rows = true;
        let sorted = NeighborList::build(&atoms, &domain, &settings, &Space::Serial);
        assert_eq!(plain.total_pairs, sorted.total_pairs);
        let xh = atoms.x.h_view();
        for i in 0..sorted.nlocal {
            let nn = sorted.numneigh.at([i]) as usize;
            assert_eq!(nn, plain.numneigh.at([i]) as usize);
            for s in 1..nn {
                let a = xh.get3(sorted.neighbors.at([i, s - 1]) as usize);
                let b = xh.get3(sorted.neighbors.at([i, s]) as usize);
                assert!(a <= b, "row {i} not position-ordered: {a:?} after {b:?}");
            }
            let mut pa: Vec<u32> = (0..nn).map(|s| plain.neighbors.at([i, s])).collect();
            let mut pb: Vec<u32> = (0..nn).map(|s| sorted.neighbors.at([i, s])).collect();
            pa.sort_unstable();
            pb.sort_unstable();
            assert_eq!(pa, pb, "row {i} changed its neighbor set");
        }
    }

    #[test]
    fn spatial_sort_improves_locality_and_preserves_physics() {
        use crate::pair::lj::LjCut;
        use crate::pair::{PairKokkos, PairStyle};
        use crate::sim::System;
        // Shuffle a melt so memory order is decorrelated from space.
        let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
        let mut positions = lat.positions(6, 6, 6);
        let n = positions.len();
        // Deterministic shuffle.
        let mut s = 12345u64;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            positions.swap(i, (s >> 33) as usize % (i + 1));
        }
        let domain = lat.domain(6, 6, 6);
        let settings = NeighborSettings::new(2.5, 0.3, false);

        let energy_and_ws = |pos: &[[f64; 3]]| -> (f64, f64) {
            let mut system = System::new(AtomData::from_positions(pos), domain, Space::Serial);
            system.ghosts = build_ghosts(&mut system.atoms, &domain, settings.cutneigh());
            let nl = NeighborList::build(&system.atoms, &domain, &settings, &Space::Serial);
            let ws = nl.working_set_bytes(256);
            let mut pair = PairKokkos::with_options(
                LjCut::single_type(1.0, 1.0, 2.5),
                &Space::Serial,
                crate::pair::PairKokkosOptions {
                    force_half: Some(false),
                    team_over_neighbors: false,
                },
            );
            let res = pair.compute(&mut system, &nl, true);
            (res.energy, ws)
        };
        let (e_shuffled, ws_shuffled) = energy_and_ws(&positions);

        let mut atoms = AtomData::from_positions(&positions);
        spatial_sort(&mut atoms, &domain, settings.cutneigh());
        let sorted: Vec<[f64; 3]> = (0..atoms.nlocal).map(|i| atoms.pos(i)).collect();
        let (e_sorted, ws_sorted) = energy_and_ws(&sorted);

        // Same physics...
        assert!((e_shuffled - e_sorted).abs() < 1e-9 * e_shuffled.abs());
        // ...much smaller per-block neighbor working set.
        assert!(
            ws_sorted < 0.6 * ws_shuffled,
            "sorted {ws_sorted} vs shuffled {ws_shuffled}"
        );
        // Tags are a permutation (nothing lost).
        let mut tags: Vec<i64> = (0..atoms.nlocal)
            .map(|i| atoms.tag.h_view().at([i]))
            .collect();
        tags.sort_unstable();
        assert!(tags.iter().enumerate().all(|(i, &t)| t == i as i64 + 1));
    }
}
