//! Crystal structure generation and velocity initialization.
//!
//! The standard LAMMPS benchmark setups: an fcc lattice at reduced
//! density 0.8442 for the LJ melt, bcc for SNAP's tungsten-like
//! benchmark, and Maxwell-Boltzmann velocity creation with exact
//! temperature rescaling and zero net momentum (the `velocity all
//! create` command).

use crate::atom::AtomData;
use crate::domain::Domain;
use crate::units::Units;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Supported lattice types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatticeKind {
    Sc,
    Bcc,
    Fcc,
}

impl LatticeKind {
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "sc" => Some(LatticeKind::Sc),
            "bcc" => Some(LatticeKind::Bcc),
            "fcc" => Some(LatticeKind::Fcc),
            _ => None,
        }
    }

    /// Basis positions in lattice-constant units.
    pub fn basis(&self) -> &'static [[f64; 3]] {
        match self {
            LatticeKind::Sc => &[[0.0, 0.0, 0.0]],
            LatticeKind::Bcc => &[[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]],
            LatticeKind::Fcc => &[
                [0.0, 0.0, 0.0],
                [0.5, 0.5, 0.0],
                [0.5, 0.0, 0.5],
                [0.0, 0.5, 0.5],
            ],
        }
    }

    /// Atoms per unit cell.
    pub fn atoms_per_cell(&self) -> usize {
        self.basis().len()
    }

    /// Lattice constant producing reduced density `rho` (atoms per
    /// volume), LAMMPS' `lattice fcc <rho>` convention in lj units.
    pub fn constant_for_density(&self, rho: f64) -> f64 {
        (self.atoms_per_cell() as f64 / rho).cbrt()
    }
}

/// A lattice: kind + lattice constant.
#[derive(Debug, Clone, Copy)]
pub struct Lattice {
    pub kind: LatticeKind,
    pub a: f64,
}

impl Lattice {
    pub fn new(kind: LatticeKind, a: f64) -> Self {
        Lattice { kind, a }
    }

    /// `lattice fcc 0.8442`-style construction from reduced density.
    pub fn from_density(kind: LatticeKind, rho: f64) -> Self {
        Lattice {
            kind,
            a: kind.constant_for_density(rho),
        }
    }

    /// The domain spanned by `nx × ny × nz` unit cells at the origin.
    pub fn domain(&self, nx: usize, ny: usize, nz: usize) -> Domain {
        Domain::new(
            [0.0; 3],
            [self.a * nx as f64, self.a * ny as f64, self.a * nz as f64],
        )
    }

    /// Generate all atom positions for `nx × ny × nz` cells.
    pub fn positions(&self, nx: usize, ny: usize, nz: usize) -> Vec<[f64; 3]> {
        let mut out = Vec::with_capacity(nx * ny * nz * self.kind.atoms_per_cell());
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nz {
                    for b in self.kind.basis() {
                        out.push([
                            (ix as f64 + b[0]) * self.a,
                            (iy as f64 + b[1]) * self.a,
                            (iz as f64 + b[2]) * self.a,
                        ]);
                    }
                }
            }
        }
        out
    }
}

/// `velocity all create T seed`: Maxwell-Boltzmann velocities with the
/// net momentum removed and the temperature rescaled to exactly `t_target`.
pub fn create_velocities(atoms: &mut AtomData, units: &Units, t_target: f64, seed: u64) {
    let n = atoms.nlocal;
    if n == 0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let masses = atoms.mass.clone();
    let mut vs = vec![[0.0f64; 3]; n];
    let typ = atoms.typ.h_view();
    // Box-Muller Gaussians scaled by sqrt(kT/m).
    for (i, v) in vs.iter_mut().enumerate() {
        let m = masses[typ.at([i]) as usize];
        let s = (units.boltz * t_target.max(1e-300) / (m * units.mvv2e)).sqrt();
        for x in v.iter_mut() {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            *x = s * (-2.0 * u1.ln()).sqrt() * u2.cos();
        }
    }
    // Zero total momentum.
    let mut p = [0.0f64; 3];
    let mut mtot = 0.0;
    for (i, v) in vs.iter().enumerate() {
        let m = masses[typ.at([i]) as usize];
        mtot += m;
        for k in 0..3 {
            p[k] += m * v[k];
        }
    }
    for v in vs.iter_mut() {
        for k in 0..3 {
            v[k] -= p[k] / mtot;
        }
    }
    // Rescale to exact target temperature (3N - 3 degrees of freedom).
    let mut ke2 = 0.0; // sum m v^2
    for (i, v) in vs.iter().enumerate() {
        let m = masses[typ.at([i]) as usize];
        ke2 += m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
    }
    let dof = (3 * n - 3).max(1) as f64;
    let t_now = units.mvv2e * ke2 / (dof * units.boltz);
    let scale = if t_now > 0.0 && t_target > 0.0 {
        (t_target / t_now).sqrt()
    } else {
        0.0
    };
    let vh = atoms.v.h_view_mut();
    for (i, v) in vs.iter().enumerate() {
        for (k, &vk) in v.iter().enumerate() {
            vh.set([i, k], vk * scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::temperature;

    #[test]
    fn fcc_counts_and_density() {
        let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
        let pos = lat.positions(5, 5, 5);
        assert_eq!(pos.len(), 4 * 125);
        let dom = lat.domain(5, 5, 5);
        let rho = pos.len() as f64 / dom.volume();
        assert!((rho - 0.8442).abs() < 1e-12);
        // All positions inside the domain.
        assert!(pos.iter().all(|p| dom.contains(p)));
    }

    #[test]
    fn bcc_and_sc_bases() {
        assert_eq!(LatticeKind::Bcc.atoms_per_cell(), 2);
        assert_eq!(LatticeKind::Sc.atoms_per_cell(), 1);
        assert_eq!(LatticeKind::from_name("fcc"), Some(LatticeKind::Fcc));
        assert_eq!(LatticeKind::from_name("hcp"), None);
    }

    #[test]
    fn nearest_neighbor_distance_fcc() {
        let lat = Lattice::new(LatticeKind::Fcc, 1.0);
        let pos = lat.positions(3, 3, 3);
        let dom = lat.domain(3, 3, 3);
        let mut min = f64::INFINITY;
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                min = min.min(dom.min_image_dsq(&pos[i], &pos[j]).sqrt());
            }
        }
        // fcc nearest neighbor = a/sqrt(2).
        assert!((min - 1.0 / 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn velocities_hit_target_temperature_and_zero_momentum() {
        let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
        let mut atoms = AtomData::from_positions(&lat.positions(4, 4, 4));
        let units = Units::lj();
        create_velocities(&mut atoms, &units, 1.44, 12345);
        let t = temperature(&atoms, &units);
        assert!((t - 1.44).abs() < 1e-9, "T = {t}");
        // Zero net momentum.
        let vh = atoms.v.h_view();
        for k in 0..3 {
            let p: f64 = (0..atoms.nlocal).map(|i| vh.at([i, k])).sum();
            assert!(p.abs() < 1e-9);
        }
    }
}
