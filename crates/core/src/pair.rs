//! Pair styles and the generic `PairKokkos` two-body driver.
//!
//! §4.1 of the paper: "most two-body forces are implemented through a
//! pair_kokkos abstraction. Each two-body pair style derives from a
//! base 'PairKokkos' class that contains a method defining a generic
//! two-body potential. The derived class implements its own kernels
//! that only compute the pairwise force and, if required, energy for
//! the specific potential form. The base class handles all other
//! details: neighbor list style, managing ScatterView objects, radial
//! cutoff calculations, accumulating forces and energies, etc."
//!
//! Here [`TwoBody`] is the derived-class contract (force magnitude and
//! energy of one pair) and [`PairKokkos`] the base-class driver, with
//! three execution strategies:
//!
//! * full neighbor list, one work item per atom (GPU default),
//! * half neighbor list with `ScatterView` deconfliction (CPU default),
//! * full list with hierarchical team-over-neighbors parallelism for
//!   small systems (Fig. 2a).

use crate::neighbor::NeighborList;
use crate::sim::System;
use lkk_gpusim::KernelStats;
use lkk_kokkos::{ScatterView, Space, TeamPolicy};

pub mod eam;
pub mod lj;
pub mod mliap;
pub mod morse;
pub mod scratch;
pub mod sw;
pub mod table;
pub mod yukawa;

/// Energy and virial returned by a force computation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PairResults {
    pub energy: f64,
    /// Pair virial `Σ r·f` (scalar trace), for pressure.
    pub virial: f64,
    /// Full virial tensor in Voigt order `xx, yy, zz, xy, xz, yz`
    /// (`W_ab = Σ r_a f_b` over pairs). Styles that only track the
    /// isotropic part put `virial/3` on the diagonal.
    pub virial_tensor: [f64; 6],
}

impl PairResults {
    /// Build from energy and a pair-wise accumulated tensor.
    pub fn with_tensor(energy: f64, w: [f64; 6]) -> Self {
        PairResults {
            energy,
            virial: w[0] + w[1] + w[2],
            virial_tensor: w,
        }
    }

    /// Build from energy and the scalar virial only (isotropic).
    pub fn isotropic(energy: f64, virial: f64) -> Self {
        let d = virial / 3.0;
        PairResults {
            energy,
            virial,
            virial_tensor: [d, d, d, 0.0, 0.0, 0.0],
        }
    }
}

/// Accumulate one pair's contribution `fpair·d ⊗ d` into a Voigt
/// tensor (`d` the pair displacement, `fpair·d` the force).
#[inline(always)]
pub fn add_pair_virial(w: &mut [f64; 6], fpair: f64, d: [f64; 3]) {
    w[0] += fpair * d[0] * d[0];
    w[1] += fpair * d[1] * d[1];
    w[2] += fpair * d[2] * d[2];
    w[3] += fpair * d[0] * d[1];
    w[4] += fpair * d[0] * d[2];
    w[5] += fpair * d[1] * d[2];
}

/// A persistent force-field style (§2.2: "pair styles ... are typically
/// the most expensive part of a simulation").
pub trait PairStyle: Send + std::any::Any {
    fn name(&self) -> &str;
    /// Downcast support (e.g. to read style-specific diagnostics).
    fn as_any(&self) -> &dyn std::any::Any;
    /// Rename the style to its resolved registry key (e.g. after
    /// suffix resolution turned `lj/cut` into `lj/cut/kk`).
    fn set_name(&mut self, _name: &str) {}
    /// Largest force cutoff (drives neighbor-list construction).
    fn cutoff(&self) -> f64;
    /// Does this style want a half list (Newton's third law)?
    fn wants_half_list(&self) -> bool;
    /// Does the style accumulate force on ghost atoms (requiring
    /// reverse communication)?
    fn needs_reverse_comm(&self) -> bool {
        self.wants_half_list()
    }
    /// Compute forces into `system.atoms.f` (host mirror), returning
    /// energy/virial when `eflag` is set.
    fn compute(&mut self, system: &mut System, list: &NeighborList, eflag: bool) -> PairResults;
    /// Heap growths of the style's persistent scatter buffers since
    /// construction (0 in steady state; styles without scatter storage
    /// report 0). See `docs/performance.md`.
    fn scatter_grow_count(&self) -> u64 {
        0
    }
}

/// The per-pair contract a concrete two-body potential implements.
pub trait TwoBody: Send + Sync {
    fn type_name(&self) -> &'static str;
    /// Squared cutoff for a type pair (0-based types).
    fn cutsq(&self, ti: usize, tj: usize) -> f64;
    /// Largest cutoff over all type pairs.
    fn max_cutoff(&self) -> f64;
    /// For a pair within the cutoff: `(fpair, evdwl)` where the force
    /// on atom `i` is `fpair * (x_i - x_j)` and `evdwl` is the full
    /// pair energy.
    fn pair(&self, rsq: f64, ti: usize, tj: usize) -> (f64, f64);
    /// FP64 operations per computed pair (for the device cost model).
    fn flops_per_pair(&self) -> f64 {
        23.0
    }
}

/// Execution strategy knobs for [`PairKokkos`] (Fig. 2's experiment
/// axes).
#[derive(Debug, Clone, Copy, Default)]
pub struct PairKokkosOptions {
    /// `None`: follow the execution-space default (full on device, half
    /// on host). `Some(h)`: force half (`true`) or full (`false`).
    pub force_half: Option<bool>,
    /// Expose parallelism over neighbors with team policies (Fig. 2a).
    pub team_over_neighbors: bool,
}

/// The generic two-body driver.
pub struct PairKokkos<P: TwoBody> {
    pub pot: P,
    pub options: PairKokkosOptions,
    scatter: Option<ScatterView>,
    half: bool,
    name: String,
}

impl<P: TwoBody> PairKokkos<P> {
    pub fn new(pot: P, space: &Space) -> Self {
        Self::with_options(pot, space, PairKokkosOptions::default())
    }

    pub fn with_options(pot: P, space: &Space, options: PairKokkosOptions) -> Self {
        // §4.1: "typically a full neighbor list and newton off is better
        // for GPUs, while a half list and newton on is better for CPUs".
        let half = options.force_half.unwrap_or(!space.is_device());
        let name = format!(
            "{}{}",
            pot.type_name(),
            if space.is_device() { "/kk" } else { "" }
        );
        PairKokkos {
            pot,
            options,
            scatter: None,
            half,
            name,
        }
    }

    /// Full-list kernel: one work item per atom, each writing only its
    /// own force row (no conflicts, no atomics; work is duplicated).
    fn compute_full(&self, system: &mut System, list: &NeighborList) -> (PairResults, u64) {
        let space = system.space.clone();
        let nlocal = system.atoms.nlocal;
        let atoms = &mut system.atoms;
        let x = atoms.x.view_for(&space);
        let typ = atoms.typ.view_for(&space);
        let f = atoms.f.view_for_mut(&space);
        f.fill(0.0);
        let fw = f.par_write();
        let pot = &self.pot;
        // Flat-slice fast path: positions gathered once per atom via
        // `get3` (one bounds check), types and counts read through flat
        // rank-1 slices, neighbor rows iterated as a contiguous slice
        // when the layout allows it.
        let typs = typ.as_slice();
        let counts = list.numneigh.as_slice();
        let neigh = list.neighbors.as_slice();
        let (neigh_s0, neigh_s1) = (list.neighbors.stride(0), list.neighbors.stride(1));
        let (e, w, inside) = space.parallel_reduce(
            "PairComputeFull",
            nlocal,
            (0.0f64, [0.0f64; 6], 0u64),
            |i| {
                let xi = x.get3(i);
                let ti = typs[i] as usize;
                let nn = counts[i] as usize;
                let mut fi = [0.0f64; 3];
                let mut e = 0.0;
                let mut w = [0.0f64; 6];
                let mut inside = 0u64;
                if let Some(row) = list.neighbors.try_row(i) {
                    // Contiguous row (Layout::Right): branchless
                    // accumulation. Excluded pairs contribute exact-zero
                    // terms instead of branching around the accumulators,
                    // letting the compiler if-convert the unit-stride
                    // loop. Adding `±0.0` to a non-negative-zero
                    // accumulator is a bitwise identity, so results match
                    // the branchy form bit for bit.
                    for &ju in &row[..nn] {
                        let j = ju as usize;
                        let tj = typs[j] as usize;
                        let xj = x.get3(j);
                        let d = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                        let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                        let in_cut = rsq < pot.cutsq(ti, tj);
                        let (fpair, evdwl) = if in_cut {
                            pot.pair(rsq, ti, tj)
                        } else {
                            (0.0, 0.0)
                        };
                        for k in 0..3 {
                            fi[k] += fpair * d[k];
                        }
                        // Full list sees each pair twice: count half.
                        e += 0.5 * evdwl;
                        add_pair_virial(&mut w, 0.5 * fpair, d);
                        inside += in_cut as u64;
                    }
                } else {
                    // Strided row (Layout::Left): the gather-stride
                    // defeats vectorization anyway, so keep the cutoff
                    // guard — it skips the force/energy/virial math for
                    // the ~30% of list entries between cutoff and
                    // cutoff+skin.
                    let base = i * neigh_s0;
                    for s in 0..nn {
                        let j = neigh[base + s * neigh_s1] as usize;
                        let tj = typs[j] as usize;
                        let xj = x.get3(j);
                        let d = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                        let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                        if rsq >= pot.cutsq(ti, tj) {
                            continue;
                        }
                        let (fpair, evdwl) = pot.pair(rsq, ti, tj);
                        for k in 0..3 {
                            fi[k] += fpair * d[k];
                        }
                        e += 0.5 * evdwl;
                        add_pair_virial(&mut w, 0.5 * fpair, d);
                        inside += 1;
                    }
                }
                unsafe {
                    fw.write([i, 0], fi[0]);
                    fw.write([i, 1], fi[1]);
                    fw.write([i, 2], fi[2]);
                }
                (e, w, inside)
            },
            |a, b| {
                let mut w = a.1;
                for (wk, bk) in w.iter_mut().zip(b.1) {
                    *wk += bk;
                }
                (a.0 + b.0, w, a.2 + b.2)
            },
        );
        (PairResults::with_tensor(e, w), inside)
    }

    /// Full-list kernel with hierarchical parallelism over neighbors
    /// (Fig. 2a): one team per atom, the neighbor loop distributed over
    /// the team, exposing `atoms × neighbors` concurrency.
    fn compute_full_team(&self, system: &mut System, list: &NeighborList) -> (PairResults, u64) {
        let space = system.space.clone();
        let nlocal = system.atoms.nlocal;
        let atoms = &mut system.atoms;
        let x = atoms.x.view_for(&space);
        let typ = atoms.typ.view_for(&space);
        let f = atoms.f.view_for_mut(&space);
        f.fill(0.0);
        let fw = f.par_write();
        let pot = &self.pot;
        use lkk_kokkos::AtomicF64;
        let e_acc = AtomicF64::new(0.0);
        let w_acc: Vec<AtomicF64> = (0..6).map(|_| AtomicF64::new(0.0)).collect();
        let inside_acc = AtomicF64::new(0.0);
        let typs = typ.as_slice();
        let counts = list.numneigh.as_slice();
        let neigh = list.neighbors.as_slice();
        let (neigh_s0, neigh_s1) = (list.neighbors.stride(0), list.neighbors.stride(1));
        let policy = TeamPolicy::new(nlocal, 32).with_vector(1);
        space.parallel_for_team("PairComputeFullTeam", policy, |team| {
            let i = team.league_rank();
            let xi = x.get3(i);
            let ti = typs[i] as usize;
            let nn = counts[i] as usize;
            let mut fi = [0.0f64; 3];
            let mut e = 0.0;
            let mut w = [0.0f64; 6];
            let mut inside = 0u64;
            let base = i * neigh_s0;
            team.team_range(nn, |s| {
                let j = neigh[base + s * neigh_s1] as usize;
                let tj = typs[j] as usize;
                let xj = x.get3(j);
                let d = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if rsq < pot.cutsq(ti, tj) {
                    let (fpair, evdwl) = pot.pair(rsq, ti, tj);
                    for k in 0..3 {
                        fi[k] += fpair * d[k];
                    }
                    e += 0.5 * evdwl;
                    add_pair_virial(&mut w, 0.5 * fpair, d);
                    inside += 1;
                }
            });
            unsafe {
                fw.write([i, 0], fi[0]);
                fw.write([i, 1], fi[1]);
                fw.write([i, 2], fi[2]);
            }
            e_acc.fetch_add(e);
            for k in 0..6 {
                w_acc[k].fetch_add(w[k]);
            }
            inside_acc.fetch_add(inside as f64);
        });
        let mut w = [0.0f64; 6];
        for k in 0..6 {
            w[k] = w_acc[k].load();
        }
        (
            PairResults::with_tensor(e_acc.load(), w),
            inside_acc.load() as u64,
        )
    }

    /// Half-list kernel: each pair computed once, force scattered to
    /// both atoms through a `ScatterView` (atomics on the device,
    /// duplication on threaded hosts, §3.2).
    fn compute_half(&mut self, system: &mut System, list: &NeighborList) -> (PairResults, u64) {
        let space = system.space.clone();
        let nlocal = system.atoms.nlocal;
        let nall = system.atoms.nall();
        let x = system.atoms.x.view_for(&space);
        let typ = system.atoms.typ.view_for(&space);
        // Persistent scatter buffer: reshaped in place when the ghost
        // count changes, reusing capacity (pool reuse, not realloc).
        let mode = lkk_kokkos::ScatterMode::default_for(&space);
        let scatter = self
            .scatter
            .get_or_insert_with(|| ScatterView::new(nall, 3, mode));
        scatter.ensure(nall, 3, mode);
        let pot = &self.pot;
        let sref: &ScatterView = scatter;
        let typs = typ.as_slice();
        let counts = list.numneigh.as_slice();
        let neigh = list.neighbors.as_slice();
        let (neigh_s0, neigh_s1) = (list.neighbors.stride(0), list.neighbors.stride(1));
        let (e, w, inside) = space.parallel_reduce(
            "PairComputeHalf",
            nlocal,
            (0.0f64, [0.0f64; 6], 0u64),
            |i| {
                let xi = x.get3(i);
                let ti = typs[i] as usize;
                let nn = counts[i] as usize;
                let mut fi = [0.0f64; 3];
                let mut e = 0.0;
                let mut w = [0.0f64; 6];
                let mut inside = 0u64;
                // The cutoff branch stays: the `j`-side scatter adds are
                // atomic on devices, and issuing them for excluded pairs
                // would trade a predictable branch for contended CAS traffic.
                let mut body = |j: usize| {
                    let tj = typs[j] as usize;
                    let xj = x.get3(j);
                    let d = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                    let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                    if rsq < pot.cutsq(ti, tj) {
                        let (fpair, evdwl) = pot.pair(rsq, ti, tj);
                        for k in 0..3 {
                            fi[k] += fpair * d[k];
                            sref.add(j, k, -fpair * d[k]);
                        }
                        e += evdwl;
                        add_pair_virial(&mut w, fpair, d);
                        inside += 1;
                    }
                };
                if let Some(row) = list.neighbors.try_row(i) {
                    for &ju in &row[..nn] {
                        body(ju as usize);
                    }
                } else {
                    let base = i * neigh_s0;
                    for s in 0..nn {
                        body(neigh[base + s * neigh_s1] as usize);
                    }
                }
                for (k, &fik) in fi.iter().enumerate() {
                    sref.add(i, k, fik);
                }
                (e, w, inside)
            },
            |a, b| {
                let mut w = a.1;
                for (wk, bk) in w.iter_mut().zip(b.1) {
                    *wk += bk;
                }
                (a.0 + b.0, w, a.2 + b.2)
            },
        );
        let f = system.atoms.f.view_for_mut(&space);
        f.fill(0.0);
        scatter.contribute_into_view(f);
        (PairResults::with_tensor(e, w), inside)
    }

    /// Attach measured event counts for the device cost model.
    fn note_stats(&self, system: &System, list: &NeighborList, pairs_inside: u64) {
        let space = &system.space;
        if !space.is_device() {
            return;
        }
        let nlocal = system.atoms.nlocal as f64;
        let total_pairs = list.total_pairs as f64;
        let mut s = KernelStats::new(if self.half {
            "PairComputeHalf"
        } else if self.options.team_over_neighbors {
            "PairComputeTeam"
        } else {
            "PairComputeLJCut"
        });
        s.work_items = if self.options.team_over_neighbors {
            total_pairs
        } else {
            nlocal
        };
        s.flops = pairs_inside as f64 * self.pot.flops_per_pair() + total_pairs * 8.0; // distance + cutoff check on every listed pair
        if self.options.team_over_neighbors {
            // Fig. 2a: "the benefit of additional parallelism outweighs
            // the reduced efficiency of the more complex iteration
            // pattern" — at saturation that reduced efficiency is what
            // remains (team reductions + per-team bookkeeping).
            s.flops *= 1.15;
        }
        s.dram_bytes = nlocal * (24.0 + 24.0) + total_pairs * 4.0;
        s.reused_bytes = total_pairs * 24.0;
        // One SM runs ~2048 resident threads = 2048 atoms' neighborhoods.
        s.working_set_bytes = list.working_set_bytes_cached();
        s.atomic_f64_ops = if self.half {
            (pairs_inside * 6) as f64
        } else {
            0.0
        };
        s.convergence = if total_pairs > 0.0 {
            (pairs_inside as f64 / total_pairs).clamp(0.05, 1.0)
        } else {
            1.0
        };
        space.note_kernel(s);
    }
}

impl<P: TwoBody + 'static> PairStyle for PairKokkos<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    fn cutoff(&self) -> f64 {
        self.pot.max_cutoff()
    }

    fn wants_half_list(&self) -> bool {
        self.half
    }

    fn scatter_grow_count(&self) -> u64 {
        self.scatter.as_ref().map_or(0, ScatterView::grow_count)
    }

    fn compute(&mut self, system: &mut System, list: &NeighborList, _eflag: bool) -> PairResults {
        assert_eq!(
            list.half, self.half,
            "pair style '{}' given wrong list style",
            self.name
        );
        let space = system.space.clone();
        system
            .atoms
            .sync(&space, crate::atom::Mask::X | crate::atom::Mask::TYPE);
        let (res, inside) = if self.half {
            self.compute_half(system, list)
        } else if self.options.team_over_neighbors {
            self.compute_full_team(system, list)
        } else {
            self.compute_full(system, list)
        };
        system.atoms.modified(&space, crate::atom::Mask::F);
        self.note_stats(system, list, inside);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::lj::LjCut;
    use super::*;
    use crate::atom::AtomData;
    use crate::comm::build_ghosts;
    use crate::lattice::{Lattice, LatticeKind};
    use crate::neighbor::{NeighborList, NeighborSettings};
    use crate::sim::System;

    fn melt_system(space: Space) -> System {
        let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
        let atoms = AtomData::from_positions(&lat.positions(4, 4, 4));
        System::new(atoms, lat.domain(4, 4, 4), space)
    }

    fn forces_and_energy(
        space: Space,
        options: PairKokkosOptions,
        half: bool,
    ) -> (Vec<f64>, PairResults) {
        let mut system = melt_system(space);
        let pot = LjCut::single_type(1.0, 1.0, 2.5);
        let opts = PairKokkosOptions {
            force_half: Some(half),
            ..options
        };
        let space = system.space.clone();
        let mut pair = PairKokkos::with_options(pot, &space, opts);
        let settings = NeighborSettings::new(pair.cutoff(), 0.3, half);
        system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
        let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
        let res = pair.compute(&mut system, &list, true);
        if pair.needs_reverse_comm() {
            system.atoms.sync(&Space::Serial, crate::atom::Mask::F);
            crate::comm::reverse_forces(&mut system.atoms, &system.ghosts);
        }
        system.atoms.sync(&Space::Serial, crate::atom::Mask::F);
        let fh = system.atoms.f.h_view();
        let forces: Vec<f64> = (0..system.atoms.nlocal)
            .flat_map(|i| (0..3).map(move |k| (i, k)))
            .map(|(i, k)| fh.at([i, k]))
            .collect();
        (forces, res)
    }

    #[test]
    fn half_and_full_agree() {
        let (ff, rf) = forces_and_energy(Space::Serial, Default::default(), false);
        let (fh, rh) = forces_and_energy(Space::Serial, Default::default(), true);
        assert!((rf.energy - rh.energy).abs() < 1e-9 * rf.energy.abs());
        assert!((rf.virial - rh.virial).abs() < 1e-9 * rf.virial.abs().max(1.0));
        for (a, b) in ff.iter().zip(&fh) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn team_variant_agrees_with_flat() {
        let (ff, rf) = forces_and_energy(Space::Serial, Default::default(), false);
        let opts = PairKokkosOptions {
            team_over_neighbors: true,
            force_half: None,
        };
        let (ft, rt) = forces_and_energy(Space::Serial, opts, false);
        assert!((rf.energy - rt.energy).abs() < 1e-9 * rf.energy.abs());
        for (a, b) in ff.iter().zip(&ft) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn spaces_agree() {
        let (fs, rs) = forces_and_energy(Space::Serial, Default::default(), false);
        let (ft, rt) = forces_and_energy(Space::Threads, Default::default(), false);
        let (fd, rd) = forces_and_energy(
            Space::device(lkk_gpusim::GpuArch::h100()),
            Default::default(),
            false,
        );
        assert!((rs.energy - rt.energy).abs() < 1e-9 * rs.energy.abs());
        assert!((rs.energy - rd.energy).abs() < 1e-9 * rs.energy.abs());
        for ((a, b), c) in fs.iter().zip(&ft).zip(&fd) {
            assert!((a - b).abs() < 1e-9);
            assert!((a - c).abs() < 1e-9);
        }
    }

    #[test]
    fn perfect_lattice_at_minimum_has_near_zero_force() {
        // In a perfect fcc lattice every atom's force vanishes by symmetry.
        let (f, res) = forces_and_energy(Space::Serial, Default::default(), false);
        for x in &f {
            assert!(x.abs() < 1e-9, "residual force {x}");
        }
        // Cohesive energy is negative.
        assert!(res.energy < 0.0);
    }

    #[test]
    fn device_records_kernel_stats() {
        let space = Space::device(lkk_gpusim::GpuArch::h100());
        let ctx = space.device_ctx().unwrap().clone();
        let _ = forces_and_energy(space, Default::default(), false);
        let agg = ctx.log.aggregate();
        let pair = agg.iter().find(|s| s.name == "PairComputeLJCut").unwrap();
        assert!(pair.flops > 0.0);
        assert!(pair.reused_bytes > 0.0);
        assert!(pair.working_set_bytes > 0.0);
        assert_eq!(pair.atomic_f64_ops, 0.0);
    }

    #[test]
    fn newtons_third_law_total_force_zero() {
        let (f, _) = forces_and_energy(Space::Threads, Default::default(), true);
        for k in 0..3 {
            let total: f64 = f.iter().skip(k).step_by(3).sum();
            assert!(total.abs() < 1e-9, "net force component {total}");
        }
    }
}
