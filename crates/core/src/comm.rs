//! Ghost atoms and forward/reverse communication behind the [`Comm`]
//! abstraction.
//!
//! In LAMMPS, atoms near sub-domain faces are replicated on neighboring
//! ranks (or across periodic boundaries) as *ghost atoms*. Every
//! timestep, positions are pushed owner → ghost ("forward
//! communication") and, with `newton on`, forces accumulated on ghosts
//! are pushed back ghost → owner ("reverse communication"). §4.1: using
//! Newton's third law for ghosts "reduces computation but increases the
//! amount of communication required".
//!
//! The [`Comm`] trait abstracts the four exchange operations the
//! timestep loop needs (border/ghost construction, forward, reverse,
//! and per-atom scalar forwarding) plus the collective reductions, so
//! `Simulation::run` drives single- and multi-rank runs through the
//! same code path (see `docs/comm.md` for the full contract):
//!
//! * [`SingleRankComm`] — every ghost is a periodic image of a local
//!   atom; no messages ever move.
//! * [`brick::BrickComm`] — a simulated-MPI brick decomposition where
//!   ranks run as threads and exchange typed messages over per-edge
//!   channels.

use crate::atom::AtomData;
use crate::domain::Domain;
use crate::sim::System;

pub mod balance;
pub mod brick;
pub mod fault;

pub use balance::{BalancePolicy, BalanceWeight};
pub use fault::{CommError, FaultConfig, FaultKind, FaultPlan, FaultStats, RetryPolicy};

/// Which communication layer a run uses — the driver-level knob of the
/// unified [`brick::RunSpec`] API (`spec.comm(...)` /
/// `SimulationBuilder::comm(...)`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CommSpec {
    /// In-process single rank ([`SingleRankComm`]): no messages move.
    /// Bit-for-bit the classic `Simulation::run` path.
    #[default]
    Single,
    /// Brick-decomposed rank-parallel run on `ranks` simulated MPI
    /// ranks ([`brick::BrickComm`]), optionally rebalancing the brick
    /// cut planes under the given policy.
    Brick {
        ranks: usize,
        balance: Option<BalancePolicy>,
    },
}

/// Ghost bookkeeping: ghost row `nlocal + g` is a copy of `owner[g]`
/// displaced by `shift[g]`.
#[derive(Debug, Clone, Default)]
pub struct GhostMap {
    pub owner: Vec<usize>,
    pub shift: Vec<[f64; 3]>,
    /// Ghost cutoff used to build this map.
    pub cutghost: f64,
}

impl GhostMap {
    pub fn nghost(&self) -> usize {
        self.owner.len()
    }
}

/// Build periodic-image ghosts for all owned atoms within `cutghost` of
/// a periodic face, resize the atom arrays, and fill the ghost rows.
/// Owned positions must already be wrapped into the box.
///
/// Panics if the box is smaller than `2 × cutghost` in any direction
/// (the minimum-image requirement; LAMMPS raises the same error).
pub fn build_ghosts(atoms: &mut AtomData, domain: &Domain, cutghost: f64) -> GhostMap {
    let mut map = GhostMap::default();
    build_ghosts_into(atoms, domain, cutghost, &mut map);
    map
}

/// [`build_ghosts`] refilling an existing map in place, reusing the
/// owner/shift buffer capacity (no steady-state allocation across
/// rebuilds once the high-water ghost count has been reached).
///
/// Debug builds verify the documented precondition that owned positions
/// are already wrapped into the box — migration paths that drift atoms
/// across brick faces must wrap *before* building borders, or ghost
/// images would be double-shifted.
pub fn build_ghosts_into(atoms: &mut AtomData, domain: &Domain, cutghost: f64, map: &mut GhostMap) {
    let l = domain.lengths();
    for (k, &lk) in l.iter().enumerate() {
        assert!(
            lk >= 2.0 * cutghost,
            "box length {lk} in dim {k} smaller than 2*cutghost = {}",
            2.0 * cutghost
        );
    }
    let nlocal = atoms.nlocal;
    debug_assert!(
        (0..nlocal).all(|i| domain.contains(&atoms.pos(i))),
        "build_ghosts precondition violated: owned positions must be wrapped into the box"
    );
    map.owner.clear();
    map.shift.clear();
    map.cutghost = cutghost;
    {
        let xh = atoms.x.h_view();
        for i in 0..nlocal {
            let p = [xh.at([i, 0]), xh.at([i, 1]), xh.at([i, 2])];
            // Each dim can contribute a +L or -L image (not both, since
            // L >= 2*cut). 0 = none, ±1 = shift direction.
            let mut opts = [[0i8; 2]; 3];
            let mut nopts = [1usize; 3];
            for k in 0..3 {
                opts[k][0] = 0;
                if p[k] < domain.lo[k] + cutghost {
                    opts[k][1] = 1;
                    nopts[k] = 2;
                } else if p[k] >= domain.hi[k] - cutghost {
                    opts[k][1] = -1;
                    nopts[k] = 2;
                }
            }
            for a in 0..nopts[0] {
                for b in 0..nopts[1] {
                    for c in 0..nopts[2] {
                        if a == 0 && b == 0 && c == 0 {
                            continue; // the original atom
                        }
                        map.owner.push(i);
                        map.shift.push([
                            opts[0][a] as f64 * l[0],
                            opts[1][b] as f64 * l[1],
                            opts[2][c] as f64 * l[2],
                        ]);
                    }
                }
            }
        }
    }
    let nghost = map.nghost();
    atoms.resize_all(nlocal + nghost, nlocal);
    atoms.nghost = nghost;
    // Fill ghost metadata (type, charge, tag) once; positions follow.
    {
        let (typ_vals, q_vals, tag_vals): (Vec<i32>, Vec<f64>, Vec<i64>) = {
            let typ = atoms.typ.h_view();
            let q = atoms.q.h_view();
            let tag = atoms.tag.h_view();
            (
                map.owner.iter().map(|&o| typ.at([o])).collect(),
                map.owner.iter().map(|&o| q.at([o])).collect(),
                map.owner.iter().map(|&o| tag.at([o])).collect(),
            )
        };
        let typ = atoms.typ.h_view_mut();
        for (g, v) in typ_vals.iter().enumerate() {
            typ.set([nlocal + g], *v);
        }
        let q = atoms.q.h_view_mut();
        for (g, v) in q_vals.iter().enumerate() {
            q.set([nlocal + g], *v);
        }
        let tag = atoms.tag.h_view_mut();
        for (g, v) in tag_vals.iter().enumerate() {
            tag.set([nlocal + g], *v);
        }
    }
    forward_positions(atoms, map);
}

/// Forward communication: refresh ghost positions from their owners.
pub fn forward_positions(atoms: &mut AtomData, map: &GhostMap) {
    let nlocal = atoms.nlocal;
    let xh = atoms.x.h_view_mut();
    for g in 0..map.nghost() {
        let o = map.owner[g];
        for k in 0..3 {
            let v = xh.at([o, k]) + map.shift[g][k];
            xh.set([nlocal + g, k], v);
        }
    }
}

/// Reverse communication: fold ghost forces back into their owners and
/// zero the ghost rows. Required for half neighbor lists with
/// `newton on`; a full-list `newton off` run never accumulates force on
/// ghosts and skips this entirely (§4.1 / Fig. 2b).
pub fn reverse_forces(atoms: &mut AtomData, map: &GhostMap) {
    let nlocal = atoms.nlocal;
    let fh = atoms.f.h_view_mut();
    for g in 0..map.nghost() {
        let o = map.owner[g];
        for k in 0..3 {
            let add = fh.at([nlocal + g, k]);
            let v = fh.at([o, k]) + add;
            fh.set([o, k], v);
            fh.set([nlocal + g, k], 0.0);
        }
    }
}

/// Forward communication executed through an execution space (§3.3:
/// "it may be more performant to keep all communication routines
/// (packing, unpacking, sending data) on host, or execute it on the
/// device"). On a device space the pack/unpack run as logged kernels
/// against the device mirrors; on host spaces it is equivalent to
/// [`forward_positions`].
pub fn forward_positions_space(
    atoms: &mut crate::atom::AtomData,
    map: &GhostMap,
    space: &lkk_kokkos::Space,
) {
    use crate::atom::Mask;
    atoms.sync(space, Mask::X);
    let nlocal = atoms.nlocal;
    let x = atoms.x.view_for_mut(space);
    let xw = x.par_write();
    let owners = &map.owner;
    let shifts = &map.shift;
    space.parallel_for("CommForwardPack", map.nghost(), |g| {
        let o = owners[g];
        for (k, &shift) in shifts[g].iter().enumerate() {
            let v = xw.get([o, k]) + shift;
            unsafe { xw.write([nlocal + g, k], v) };
        }
    });
    atoms.modified(space, Mask::X);
}

/// Reverse (force) communication through an execution space. Ghost
/// rows are folded into their owners; parallelism is over *owners*
/// (each owner sums its own ghosts serially) to keep writes disjoint,
/// which requires the owner → ghosts index built here.
pub fn reverse_forces_space(
    atoms: &mut crate::atom::AtomData,
    map: &GhostMap,
    space: &lkk_kokkos::Space,
) {
    use crate::atom::Mask;
    atoms.sync(space, Mask::F);
    let nlocal = atoms.nlocal;
    // Owner-major ghost index (CSR) so each owner's fold is private.
    let mut counts = vec![0usize; nlocal];
    for &o in &map.owner {
        counts[o] += 1;
    }
    let mut offsets = vec![0usize; nlocal + 1];
    for i in 0..nlocal {
        offsets[i + 1] = offsets[i] + counts[i];
    }
    let mut ghosts_of = vec![0u32; map.nghost()];
    let mut cursor = offsets.clone();
    for (g, &o) in map.owner.iter().enumerate() {
        ghosts_of[cursor[o]] = g as u32;
        cursor[o] += 1;
    }
    let f = atoms.f.view_for_mut(space);
    let fw = f.par_write();
    space.parallel_for("CommReverseUnpack", nlocal, |o| {
        for &gs in &ghosts_of[offsets[o]..offsets[o + 1]] {
            let g = gs as usize;
            for k in 0..3 {
                let add = fw.get([nlocal + g, k]);
                unsafe {
                    fw.write([o, k], fw.get([o, k]) + add);
                    fw.write([nlocal + g, k], 0.0);
                }
            }
        }
    });
    atoms.modified(space, Mask::F);
}

/// Bytes moved by one forward position communication (3 doubles per
/// ghost), used by the strong-scaling communication model.
pub fn forward_bytes(map: &GhostMap) -> u64 {
    (map.nghost() * 3 * 8) as u64
}

/// Cumulative message/byte counters of a [`Comm`] implementation.
/// All values are integers measured from actual exchanges, so they are
/// deterministic and baseline-diffable; a single-rank comm moves no
/// messages and reports zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Payload bytes of forward (position) exchanges.
    pub forward_bytes: u64,
    /// Non-empty forward messages.
    pub forward_msgs: u64,
    /// Payload bytes of reverse (force) exchanges.
    pub reverse_bytes: u64,
    /// Non-empty reverse messages.
    pub reverse_msgs: u64,
    /// Payload bytes of per-atom scalar forwards (e.g. EAM F′).
    pub scalar_bytes: u64,
    /// Non-empty scalar messages.
    pub scalar_msgs: u64,
    /// Payload bytes of atom migration.
    pub migrate_bytes: u64,
    /// Non-empty migration messages.
    pub migrate_msgs: u64,
    /// Payload bytes of border (ghost-list setup) exchanges.
    pub border_bytes: u64,
    /// Non-empty border messages.
    pub border_msgs: u64,
    /// Payload bytes of load-balance census exchanges.
    pub balance_bytes: u64,
    /// Load-balance census messages.
    pub balance_msgs: u64,
    /// Times the balancer actually moved the cut planes.
    pub rebalances: u64,
    /// Collective reductions performed (OR + SUM).
    pub allreduce_count: u64,
}

impl CommStats {
    /// Element-wise sum (for aggregating per-rank stats).
    pub fn add(&mut self, other: &CommStats) {
        self.forward_bytes += other.forward_bytes;
        self.forward_msgs += other.forward_msgs;
        self.reverse_bytes += other.reverse_bytes;
        self.reverse_msgs += other.reverse_msgs;
        self.scalar_bytes += other.scalar_bytes;
        self.scalar_msgs += other.scalar_msgs;
        self.migrate_bytes += other.migrate_bytes;
        self.migrate_msgs += other.migrate_msgs;
        self.border_bytes += other.border_bytes;
        self.border_msgs += other.border_msgs;
        self.balance_bytes += other.balance_bytes;
        self.balance_msgs += other.balance_msgs;
        self.rebalances += other.rebalances;
        self.allreduce_count += other.allreduce_count;
    }

    /// Total halo (forward + reverse + scalar) payload bytes.
    pub fn halo_bytes(&self) -> u64 {
        self.forward_bytes + self.reverse_bytes + self.scalar_bytes
    }

    /// Total halo (forward + reverse + scalar) messages.
    pub fn halo_msgs(&self) -> u64 {
        self.forward_msgs + self.reverse_msgs + self.scalar_msgs
    }
}

/// The communication contract `Simulation::run` is generic over.
///
/// Implementations own the ghost bookkeeping of the [`System`] they
/// serve: [`Comm::borders`] (re)builds `system.ghosts` / the ghost rows,
/// [`Comm::forward`] / [`Comm::reverse`] / [`Comm::forward_scalar`]
/// refresh them between rebuilds. Multi-rank implementations are
/// *collective*: every rank's driver must issue the same sequence of
/// calls, which `Simulation::run` guarantees by reducing the rebuild
/// decision through [`Comm::allreduce_or`]. See `docs/comm.md` for the
/// ordering and pooling contract.
///
/// Every exchange is fallible: instead of deadlocking on a stalled or
/// dead peer, implementations return a structured [`CommError`] and the
/// driver aborts the run with per-rank diagnostics (the graceful-
/// degradation contract of `docs/robustness.md`). Single-rank comms
/// never fail.
pub trait Comm: Send {
    /// Implementation name (for reports and `Debug`).
    fn name(&self) -> &'static str;

    /// Number of ranks participating in the exchange.
    fn nranks(&self) -> usize {
        1
    }

    /// This rank's index.
    fn rank(&self) -> usize {
        0
    }

    /// Rebuild-time exchange: wrap owned positions, migrate atoms that
    /// left this rank's sub-domain, and (re)build the ghost rows out to
    /// `cutghost`. Positions must be host-resident; the result is
    /// host-modified (the caller flushes the sync state).
    fn borders(&mut self, system: &mut System, cutghost: f64) -> Result<(), CommError>;

    /// Forward (position) exchange: refresh every ghost row from its
    /// owner. Host-side, like the rest of the exchange path.
    fn forward(&mut self, system: &mut System) -> Result<(), CommError>;

    /// Reverse (force) exchange: fold ghost-row forces back into their
    /// owners and zero the ghost rows.
    fn reverse(&mut self, system: &mut System) -> Result<(), CommError>;

    /// Forward a per-atom scalar (length `nall`) owner → ghost; used by
    /// styles with intermediate per-atom state (EAM's F′(ρ), Fig. 1).
    fn forward_scalar(&mut self, system: &mut System, values: &mut [f64]) -> Result<(), CommError>;

    /// Collective OR (the global rebuild decision).
    fn allreduce_or(&mut self, flag: bool) -> Result<bool, CommError> {
        Ok(flag)
    }

    /// Collective sum, combined in rank order so every rank computes a
    /// bitwise-identical result.
    fn allreduce_sum(&mut self, value: f64) -> Result<f64, CommError> {
        Ok(value)
    }

    /// Drain in-flight traffic so every peer can shut down cleanly.
    /// Only meaningful under fault injection (a dropped final-phase
    /// message must be retransmitted before its sender exits); a no-op
    /// everywhere else.
    fn quiesce(&mut self) -> Result<(), CommError> {
        Ok(())
    }

    /// Cumulative exchange counters.
    fn stats(&self) -> CommStats {
        CommStats::default()
    }

    /// Cumulative fault-injection / recovery counters (all zero unless
    /// a fault plan is installed; see [`fault`]).
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// Heap growths of the persistent message-buffer pool since
    /// construction (0 in steady state; see `docs/performance.md`).
    fn grow_count(&self) -> u64 {
        0
    }

    /// Cumulative `[halo, migrate]` wall-clock seconds spent inside
    /// [`Comm::borders`] (advisory, like all wall-clock).
    fn phase_seconds(&self) -> [f64; 2] {
        [0.0, 0.0]
    }

    /// Advisory work hint for [`BalanceWeight::PairTime`]: cumulative
    /// pair-force seconds this rank has measured. The driver refreshes
    /// it before every `borders`; implementations without a balancer
    /// ignore it.
    fn note_work(&mut self, _seconds: f64) {}

    /// Peak owned-atom count (`nlocal`) this comm has observed across
    /// migrations — the max-over-run census behind
    /// `MultiRankRun::atom_imbalance`. 0 when the implementation does
    /// not migrate atoms.
    fn max_owned(&self) -> usize {
        0
    }
}

impl std::fmt::Debug for dyn Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Comm({})", self.name())
    }
}

/// The single-rank [`Comm`]: every ghost is a periodic image of a local
/// atom, so "exchange" is a host-side copy through [`GhostMap`] and the
/// collectives are identities. This is bit-for-bit the pre-`Comm`
/// behavior of the driver (the committed perf baselines depend on it).
#[derive(Debug, Default)]
pub struct SingleRankComm;

impl Comm for SingleRankComm {
    fn name(&self) -> &'static str {
        "single"
    }

    fn borders(&mut self, system: &mut System, cutghost: f64) -> Result<(), CommError> {
        system.atoms.wrap_positions(&system.domain);
        let mut map = std::mem::take(&mut system.ghosts);
        build_ghosts_into(&mut system.atoms, &system.domain, cutghost, &mut map);
        system.ghosts = map;
        Ok(())
    }

    fn forward(&mut self, system: &mut System) -> Result<(), CommError> {
        forward_positions(&mut system.atoms, &system.ghosts);
        Ok(())
    }

    fn reverse(&mut self, system: &mut System) -> Result<(), CommError> {
        reverse_forces(&mut system.atoms, &system.ghosts);
        Ok(())
    }

    fn forward_scalar(&mut self, system: &mut System, values: &mut [f64]) -> Result<(), CommError> {
        let nlocal = system.atoms.nlocal;
        for (g, &owner) in system.ghosts.owner.iter().enumerate() {
            values[nlocal + g] = values[owner];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corner_system() -> (AtomData, Domain) {
        // One atom near a corner: gets 7 images. One in the middle: none.
        let atoms = AtomData::from_positions(&[[0.5, 0.5, 0.5], [5.0, 5.0, 5.0]]);
        (atoms, Domain::cubic(10.0))
    }

    #[test]
    fn corner_atom_gets_seven_images() {
        let (mut atoms, domain) = corner_system();
        let map = build_ghosts(&mut atoms, &domain, 2.0);
        assert_eq!(map.nghost(), 7);
        assert_eq!(atoms.nall(), 9);
        assert!(map.owner.iter().all(|&o| o == 0));
        // All images are outside the primary box but within cut of it.
        let xh = atoms.x.h_view();
        for g in 0..7 {
            let p = [xh.at([2 + g, 0]), xh.at([2 + g, 1]), xh.at([2 + g, 2])];
            assert!(!domain.contains(&p));
            // Image of the corner atom: each coordinate 0.5 or 10.5.
            for k in 0..3 {
                assert!((p[k] - 0.5).abs() < 1e-12 || (p[k] - 10.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn face_atom_gets_one_image() {
        let mut atoms = AtomData::from_positions(&[[9.5, 5.0, 5.0]]);
        let domain = Domain::cubic(10.0);
        let map = build_ghosts(&mut atoms, &domain, 2.0);
        assert_eq!(map.nghost(), 1);
        let p = atoms.pos(1);
        assert!((p[0] - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn ghost_metadata_copied() {
        let mut atoms = AtomData::from_positions(&[[0.5, 5.0, 5.0]]);
        atoms.mass = vec![1.0, 2.0];
        atoms.typ.h_view_mut().set([0], 1);
        atoms.q.h_view_mut().set([0], -0.3);
        let domain = Domain::cubic(10.0);
        build_ghosts(&mut atoms, &domain, 2.0);
        assert_eq!(atoms.typ.h_view().at([1]), 1);
        assert_eq!(atoms.q.h_view().at([1]), -0.3);
        assert_eq!(atoms.tag.h_view().at([1]), 1);
    }

    #[test]
    fn forward_updates_after_motion() {
        let (mut atoms, domain) = corner_system();
        let map = build_ghosts(&mut atoms, &domain, 2.0);
        atoms.x.h_view_mut().set([0, 0], 0.7);
        forward_positions(&mut atoms, &map);
        let xh = atoms.x.h_view();
        // Every image's x-coordinate is 0.7 or 10.7 now.
        for g in 0..map.nghost() {
            let x0 = xh.at([2 + g, 0]);
            assert!((x0 - 0.7).abs() < 1e-12 || (x0 - 10.7).abs() < 1e-12);
        }
    }

    #[test]
    fn reverse_folds_ghost_forces() {
        let (mut atoms, domain) = corner_system();
        let map = build_ghosts(&mut atoms, &domain, 2.0);
        let nlocal = atoms.nlocal;
        {
            let fh = atoms.f.h_view_mut();
            for g in 0..map.nghost() {
                fh.set([nlocal + g, 0], 1.0);
            }
        }
        reverse_forces(&mut atoms, &map);
        assert_eq!(atoms.f.h_view().at([0, 0]), 7.0);
        assert_eq!(atoms.f.h_view().at([nlocal, 0]), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "must be wrapped")]
    fn unwrapped_positions_are_rejected() {
        // The documented precondition is enforced, not assumed: an atom
        // left outside the box (e.g. migrated across a brick face but
        // not wrapped) would get double-shifted ghost images.
        let mut atoms = AtomData::from_positions(&[[12.5, 5.0, 5.0]]);
        let domain = Domain::cubic(10.0);
        build_ghosts(&mut atoms, &domain, 2.0);
    }

    #[test]
    fn build_into_reuses_buffers_and_matches_fresh_build() {
        let (mut a, domain) = corner_system();
        let fresh = build_ghosts(&mut a, &domain, 2.0);
        let (mut b, _) = corner_system();
        let mut map = GhostMap::default();
        build_ghosts_into(&mut b, &domain, 2.0, &mut map);
        assert_eq!(map.owner, fresh.owner);
        assert_eq!(map.shift, fresh.shift);
        let cap = map.owner.capacity();
        // Refill in place: same result, no reallocation.
        build_ghosts_into(&mut b, &domain, 2.0, &mut map);
        assert_eq!(map.owner, fresh.owner);
        assert_eq!(map.owner.capacity(), cap);
    }

    #[test]
    fn single_rank_comm_matches_free_functions() {
        use crate::sim::System;
        let (atoms, domain) = corner_system();
        let mut system = System::new(atoms, domain, lkk_kokkos::Space::Serial);
        let mut comm = SingleRankComm;
        comm.borders(&mut system, 2.0).unwrap();
        assert_eq!(system.ghosts.nghost(), 7);
        assert_eq!(comm.nranks(), 1);
        assert!(!comm.allreduce_or(false).unwrap() && comm.allreduce_or(true).unwrap());
        assert_eq!(comm.allreduce_sum(2.5).unwrap(), 2.5);
        assert_eq!(comm.stats(), CommStats::default());
        assert_eq!(comm.fault_stats(), FaultStats::default());
        // forward_scalar copies owner values into ghost slots.
        let mut vals = vec![0.0; system.atoms.nall()];
        vals[0] = 3.25;
        comm.forward_scalar(&mut system, &mut vals).unwrap();
        for g in 0..system.ghosts.nghost() {
            assert_eq!(vals[system.atoms.nlocal + g], 3.25);
        }
    }

    #[test]
    #[should_panic]
    fn too_small_box_is_rejected() {
        let mut atoms = AtomData::from_positions(&[[0.5, 0.5, 0.5]]);
        let domain = Domain::cubic(3.0);
        build_ghosts(&mut atoms, &domain, 2.0);
    }

    #[test]
    fn comm_volume_accounting() {
        let (mut atoms, domain) = corner_system();
        let map = build_ghosts(&mut atoms, &domain, 2.0);
        assert_eq!(forward_bytes(&map), 7 * 24);
    }

    #[test]
    fn space_comm_matches_host_comm() {
        use lkk_kokkos::Space;
        for space in [Space::Threads, Space::device(lkk_gpusim::GpuArch::h100())] {
            let (mut a, domain) = corner_system();
            let map = build_ghosts(&mut a, &domain, 2.0);
            // Move the owner, forward through the space path.
            a.x.h_view_mut().set([0, 1], 0.9);
            forward_positions_space(&mut a, &map, &space);
            a.sync(&Space::Serial, crate::atom::Mask::X);
            let xh = a.x.h_view();
            for g in 0..map.nghost() {
                let y = xh.at([2 + g, 1]);
                assert!((y - 0.9).abs() < 1e-12 || (y - 10.9).abs() < 1e-12);
            }
            // Load ghost forces, reverse through the space path.
            {
                let fh = a.f.h_view_mut();
                for g in 0..map.nghost() {
                    fh.set([2 + g, 2], 2.0);
                }
            }
            reverse_forces_space(&mut a, &map, &space);
            a.sync(&Space::Serial, crate::atom::Mask::F);
            assert_eq!(a.f.h_view().at([0, 2]), 14.0);
            assert_eq!(a.f.h_view().at([2, 2]), 0.0);
            // Device spaces log the pack/unpack kernels.
            if let Some(ctx) = space.device_ctx() {
                let names: Vec<String> =
                    ctx.log.aggregate().iter().map(|s| s.name.clone()).collect();
                assert!(names.iter().any(|n| n == "CommForwardPack"));
                assert!(names.iter().any(|n| n == "CommReverseUnpack"));
            }
        }
    }
}
