//! Ghost atoms and forward/reverse communication (single-rank periodic
//! boundaries).
//!
//! In LAMMPS, atoms near sub-domain faces are replicated on neighboring
//! ranks (or across periodic boundaries) as *ghost atoms*. Every
//! timestep, positions are pushed owner → ghost ("forward
//! communication") and, with `newton on`, forces accumulated on ghosts
//! are pushed back ghost → owner ("reverse communication"). §4.1: using
//! Newton's third law for ghosts "reduces computation but increases the
//! amount of communication required".
//!
//! This module implements the single-rank case where all ghosts are
//! periodic images; the multi-rank simulated-MPI version lives in
//! [`crate::decomp`] and reuses the same shift machinery.

use crate::atom::AtomData;
use crate::domain::Domain;

/// Ghost bookkeeping: ghost row `nlocal + g` is a copy of `owner[g]`
/// displaced by `shift[g]`.
#[derive(Debug, Clone, Default)]
pub struct GhostMap {
    pub owner: Vec<usize>,
    pub shift: Vec<[f64; 3]>,
    /// Ghost cutoff used to build this map.
    pub cutghost: f64,
}

impl GhostMap {
    pub fn nghost(&self) -> usize {
        self.owner.len()
    }
}

/// Build periodic-image ghosts for all owned atoms within `cutghost` of
/// a periodic face, resize the atom arrays, and fill the ghost rows.
/// Owned positions must already be wrapped into the box.
///
/// Panics if the box is smaller than `2 × cutghost` in any direction
/// (the minimum-image requirement; LAMMPS raises the same error).
pub fn build_ghosts(atoms: &mut AtomData, domain: &Domain, cutghost: f64) -> GhostMap {
    let l = domain.lengths();
    for (k, &lk) in l.iter().enumerate() {
        assert!(
            lk >= 2.0 * cutghost,
            "box length {lk} in dim {k} smaller than 2*cutghost = {}",
            2.0 * cutghost
        );
    }
    let nlocal = atoms.nlocal;
    let mut map = GhostMap {
        owner: Vec::new(),
        shift: Vec::new(),
        cutghost,
    };
    {
        let xh = atoms.x.h_view();
        for i in 0..nlocal {
            let p = [xh.at([i, 0]), xh.at([i, 1]), xh.at([i, 2])];
            // Each dim can contribute a +L or -L image (not both, since
            // L >= 2*cut). 0 = none, ±1 = shift direction.
            let mut opts = [[0i8; 2]; 3];
            let mut nopts = [1usize; 3];
            for k in 0..3 {
                opts[k][0] = 0;
                if p[k] < domain.lo[k] + cutghost {
                    opts[k][1] = 1;
                    nopts[k] = 2;
                } else if p[k] >= domain.hi[k] - cutghost {
                    opts[k][1] = -1;
                    nopts[k] = 2;
                }
            }
            for a in 0..nopts[0] {
                for b in 0..nopts[1] {
                    for c in 0..nopts[2] {
                        if a == 0 && b == 0 && c == 0 {
                            continue; // the original atom
                        }
                        map.owner.push(i);
                        map.shift.push([
                            opts[0][a] as f64 * l[0],
                            opts[1][b] as f64 * l[1],
                            opts[2][c] as f64 * l[2],
                        ]);
                    }
                }
            }
        }
    }
    let nghost = map.nghost();
    atoms.resize_all(nlocal + nghost, nlocal);
    atoms.nghost = nghost;
    // Fill ghost metadata (type, charge, tag) once; positions follow.
    {
        let (typ_vals, q_vals, tag_vals): (Vec<i32>, Vec<f64>, Vec<i64>) = {
            let typ = atoms.typ.h_view();
            let q = atoms.q.h_view();
            let tag = atoms.tag.h_view();
            (
                map.owner.iter().map(|&o| typ.at([o])).collect(),
                map.owner.iter().map(|&o| q.at([o])).collect(),
                map.owner.iter().map(|&o| tag.at([o])).collect(),
            )
        };
        let typ = atoms.typ.h_view_mut();
        for (g, v) in typ_vals.iter().enumerate() {
            typ.set([nlocal + g], *v);
        }
        let q = atoms.q.h_view_mut();
        for (g, v) in q_vals.iter().enumerate() {
            q.set([nlocal + g], *v);
        }
        let tag = atoms.tag.h_view_mut();
        for (g, v) in tag_vals.iter().enumerate() {
            tag.set([nlocal + g], *v);
        }
    }
    forward_positions(atoms, &map);
    map
}

/// Forward communication: refresh ghost positions from their owners.
pub fn forward_positions(atoms: &mut AtomData, map: &GhostMap) {
    let nlocal = atoms.nlocal;
    let xh = atoms.x.h_view_mut();
    for g in 0..map.nghost() {
        let o = map.owner[g];
        for k in 0..3 {
            let v = xh.at([o, k]) + map.shift[g][k];
            xh.set([nlocal + g, k], v);
        }
    }
}

/// Reverse communication: fold ghost forces back into their owners and
/// zero the ghost rows. Required for half neighbor lists with
/// `newton on`; a full-list `newton off` run never accumulates force on
/// ghosts and skips this entirely (§4.1 / Fig. 2b).
pub fn reverse_forces(atoms: &mut AtomData, map: &GhostMap) {
    let nlocal = atoms.nlocal;
    let fh = atoms.f.h_view_mut();
    for g in 0..map.nghost() {
        let o = map.owner[g];
        for k in 0..3 {
            let add = fh.at([nlocal + g, k]);
            let v = fh.at([o, k]) + add;
            fh.set([o, k], v);
            fh.set([nlocal + g, k], 0.0);
        }
    }
}

/// Forward communication executed through an execution space (§3.3:
/// "it may be more performant to keep all communication routines
/// (packing, unpacking, sending data) on host, or execute it on the
/// device"). On a device space the pack/unpack run as logged kernels
/// against the device mirrors; on host spaces it is equivalent to
/// [`forward_positions`].
pub fn forward_positions_space(
    atoms: &mut crate::atom::AtomData,
    map: &GhostMap,
    space: &lkk_kokkos::Space,
) {
    use crate::atom::Mask;
    atoms.sync(space, Mask::X);
    let nlocal = atoms.nlocal;
    let x = atoms.x.view_for_mut(space);
    let xw = x.par_write();
    let owners = &map.owner;
    let shifts = &map.shift;
    space.parallel_for("CommForwardPack", map.nghost(), |g| {
        let o = owners[g];
        for (k, &shift) in shifts[g].iter().enumerate() {
            let v = xw.get([o, k]) + shift;
            unsafe { xw.write([nlocal + g, k], v) };
        }
    });
    atoms.modified(space, Mask::X);
}

/// Reverse (force) communication through an execution space. Ghost
/// rows are folded into their owners; parallelism is over *owners*
/// (each owner sums its own ghosts serially) to keep writes disjoint,
/// which requires the owner → ghosts index built here.
pub fn reverse_forces_space(
    atoms: &mut crate::atom::AtomData,
    map: &GhostMap,
    space: &lkk_kokkos::Space,
) {
    use crate::atom::Mask;
    atoms.sync(space, Mask::F);
    let nlocal = atoms.nlocal;
    // Owner-major ghost index (CSR) so each owner's fold is private.
    let mut counts = vec![0usize; nlocal];
    for &o in &map.owner {
        counts[o] += 1;
    }
    let mut offsets = vec![0usize; nlocal + 1];
    for i in 0..nlocal {
        offsets[i + 1] = offsets[i] + counts[i];
    }
    let mut ghosts_of = vec![0u32; map.nghost()];
    let mut cursor = offsets.clone();
    for (g, &o) in map.owner.iter().enumerate() {
        ghosts_of[cursor[o]] = g as u32;
        cursor[o] += 1;
    }
    let f = atoms.f.view_for_mut(space);
    let fw = f.par_write();
    space.parallel_for("CommReverseUnpack", nlocal, |o| {
        for &gs in &ghosts_of[offsets[o]..offsets[o + 1]] {
            let g = gs as usize;
            for k in 0..3 {
                let add = fw.get([nlocal + g, k]);
                unsafe {
                    fw.write([o, k], fw.get([o, k]) + add);
                    fw.write([nlocal + g, k], 0.0);
                }
            }
        }
    });
    atoms.modified(space, Mask::F);
}

/// Bytes moved by one forward position communication (3 doubles per
/// ghost), used by the strong-scaling communication model.
pub fn forward_bytes(map: &GhostMap) -> u64 {
    (map.nghost() * 3 * 8) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corner_system() -> (AtomData, Domain) {
        // One atom near a corner: gets 7 images. One in the middle: none.
        let atoms = AtomData::from_positions(&[[0.5, 0.5, 0.5], [5.0, 5.0, 5.0]]);
        (atoms, Domain::cubic(10.0))
    }

    #[test]
    fn corner_atom_gets_seven_images() {
        let (mut atoms, domain) = corner_system();
        let map = build_ghosts(&mut atoms, &domain, 2.0);
        assert_eq!(map.nghost(), 7);
        assert_eq!(atoms.nall(), 9);
        assert!(map.owner.iter().all(|&o| o == 0));
        // All images are outside the primary box but within cut of it.
        let xh = atoms.x.h_view();
        for g in 0..7 {
            let p = [xh.at([2 + g, 0]), xh.at([2 + g, 1]), xh.at([2 + g, 2])];
            assert!(!domain.contains(&p));
            // Image of the corner atom: each coordinate 0.5 or 10.5.
            for k in 0..3 {
                assert!((p[k] - 0.5).abs() < 1e-12 || (p[k] - 10.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn face_atom_gets_one_image() {
        let mut atoms = AtomData::from_positions(&[[9.5, 5.0, 5.0]]);
        let domain = Domain::cubic(10.0);
        let map = build_ghosts(&mut atoms, &domain, 2.0);
        assert_eq!(map.nghost(), 1);
        let p = atoms.pos(1);
        assert!((p[0] - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn ghost_metadata_copied() {
        let mut atoms = AtomData::from_positions(&[[0.5, 5.0, 5.0]]);
        atoms.mass = vec![1.0, 2.0];
        atoms.typ.h_view_mut().set([0], 1);
        atoms.q.h_view_mut().set([0], -0.3);
        let domain = Domain::cubic(10.0);
        build_ghosts(&mut atoms, &domain, 2.0);
        assert_eq!(atoms.typ.h_view().at([1]), 1);
        assert_eq!(atoms.q.h_view().at([1]), -0.3);
        assert_eq!(atoms.tag.h_view().at([1]), 1);
    }

    #[test]
    fn forward_updates_after_motion() {
        let (mut atoms, domain) = corner_system();
        let map = build_ghosts(&mut atoms, &domain, 2.0);
        atoms.x.h_view_mut().set([0, 0], 0.7);
        forward_positions(&mut atoms, &map);
        let xh = atoms.x.h_view();
        // Every image's x-coordinate is 0.7 or 10.7 now.
        for g in 0..map.nghost() {
            let x0 = xh.at([2 + g, 0]);
            assert!((x0 - 0.7).abs() < 1e-12 || (x0 - 10.7).abs() < 1e-12);
        }
    }

    #[test]
    fn reverse_folds_ghost_forces() {
        let (mut atoms, domain) = corner_system();
        let map = build_ghosts(&mut atoms, &domain, 2.0);
        let nlocal = atoms.nlocal;
        {
            let fh = atoms.f.h_view_mut();
            for g in 0..map.nghost() {
                fh.set([nlocal + g, 0], 1.0);
            }
        }
        reverse_forces(&mut atoms, &map);
        assert_eq!(atoms.f.h_view().at([0, 0]), 7.0);
        assert_eq!(atoms.f.h_view().at([nlocal, 0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn too_small_box_is_rejected() {
        let mut atoms = AtomData::from_positions(&[[0.5, 0.5, 0.5]]);
        let domain = Domain::cubic(3.0);
        build_ghosts(&mut atoms, &domain, 2.0);
    }

    #[test]
    fn comm_volume_accounting() {
        let (mut atoms, domain) = corner_system();
        let map = build_ghosts(&mut atoms, &domain, 2.0);
        assert_eq!(forward_bytes(&map), 7 * 24);
    }

    #[test]
    fn space_comm_matches_host_comm() {
        use lkk_kokkos::Space;
        for space in [Space::Threads, Space::device(lkk_gpusim::GpuArch::h100())] {
            let (mut a, domain) = corner_system();
            let map = build_ghosts(&mut a, &domain, 2.0);
            // Move the owner, forward through the space path.
            a.x.h_view_mut().set([0, 1], 0.9);
            forward_positions_space(&mut a, &map, &space);
            a.sync(&Space::Serial, crate::atom::Mask::X);
            let xh = a.x.h_view();
            for g in 0..map.nghost() {
                let y = xh.at([2 + g, 1]);
                assert!((y - 0.9).abs() < 1e-12 || (y - 10.9).abs() < 1e-12);
            }
            // Load ghost forces, reverse through the space path.
            {
                let fh = a.f.h_view_mut();
                for g in 0..map.nghost() {
                    fh.set([2 + g, 2], 2.0);
                }
            }
            reverse_forces_space(&mut a, &map, &space);
            a.sync(&Space::Serial, crate::atom::Mask::F);
            assert_eq!(a.f.h_view().at([0, 2]), 14.0);
            assert_eq!(a.f.h_view().at([2, 2]), 0.0);
            // Device spaces log the pack/unpack kernels.
            if let Some(ctx) = space.device_ctx() {
                let names: Vec<String> =
                    ctx.log.aggregate().iter().map(|s| s.name.clone()).collect();
                assert!(names.iter().any(|n| n == "CommForwardPack"));
                assert!(names.iter().any(|n| n == "CommReverseUnpack"));
            }
        }
    }
}
