//! Long-range electrostatics: classic Ewald summation (the KSPACE
//! package of §3.1 — "long-range interactions that require Fourier
//! transforms and calculations in reciprocal space").
//!
//! The Coulomb sum is split by the screening parameter α into
//!
//! ```text
//! E = ½ Σ' q_i q_j erfc(α r_ij)/r_ij                  (real space)
//!   + (2π/V) Σ_{k≠0} e^{−k²/4α²}/k² · |S(k)|²          (reciprocal)
//!   − α/√π Σ q_i²                                      (self)
//! S(k) = Σ_i q_i e^{i k·r_i}
//! ```
//!
//! Correctness anchors (see tests): the **Madelung constant of
//! rock-salt NaCl** (−1.747 565), invariance of the total energy under
//! the α splitting parameter, and finite-difference forces.

use crate::atom::AtomData;
use crate::domain::Domain;
use lkk_kokkos::Space;

/// Complementary error function, Abramowitz & Stegun 7.1.26
/// (|error| < 1.5e-7 — the classic MD-code choice).
pub fn erfc(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let e = poly * (-x * x).exp();
    if sign > 0.0 {
        e
    } else {
        2.0 - e
    }
}

/// An Ewald solver for a fixed box geometry.
#[derive(Debug, Clone)]
pub struct Ewald {
    /// Screening parameter α (1/length).
    pub alpha: f64,
    /// Real-space cutoff.
    pub r_cut: f64,
    /// Reciprocal-space cutoff in integer lattice units.
    pub k_max: i32,
    /// Coulomb constant (units-dependent prefactor for q²/r).
    pub coulomb_k: f64,
}

impl Ewald {
    /// Standard accuracy-balanced parameters for a given box: α set so
    /// real-space terms decay to ~1e-8 at `r_cut`, k_max to match.
    pub fn for_box(domain: &Domain, r_cut: f64, coulomb_k: f64) -> Ewald {
        let alpha = 3.5 / r_cut; // erfc(3.5) ≈ 7e-7
        let l_min = domain
            .lengths()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        // exp(−k²/4α²) ≤ ~1e-8 at k = 2π k_max / L.
        let k_max = ((2.0 * alpha * 3.2 * l_min) / (2.0 * std::f64::consts::PI)).ceil() as i32;
        Ewald {
            alpha,
            r_cut,
            k_max,
            coulomb_k,
        }
    }

    /// Total electrostatic energy and per-atom forces for owned atoms.
    /// Charges must sum to (near) zero. O(N²) real-space pair loop over
    /// minimum images (the solver is an analysis/reference kernel; the
    /// production short-range path would reuse the neighbor list).
    pub fn compute(
        &self,
        atoms: &AtomData,
        domain: &Domain,
        space: &Space,
    ) -> (f64, Vec<[f64; 3]>) {
        let n = atoms.nlocal;
        let xh = atoms.x.h_view();
        let qh = atoms.q.h_view();
        let q: Vec<f64> = (0..n).map(|i| qh.at([i])).collect();
        let pos: Vec<[f64; 3]> = (0..n)
            .map(|i| [xh.at([i, 0]), xh.at([i, 1]), xh.at([i, 2])])
            .collect();
        let qtot: f64 = q.iter().sum();
        assert!(
            qtot.abs() < 1e-8,
            "Ewald requires a neutral system (Σq = {qtot})"
        );
        let alpha = self.alpha;
        let kc = self.coulomb_k;
        let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();

        // --- Real space (pairwise, minimum image). ---
        let pos_ref = &pos;
        let q_ref = &q;
        let real: Vec<(f64, [f64; 3])> = (0..n)
            .map(|i| {
                let mut e = 0.0;
                let mut f = [0.0f64; 3];
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let d = domain.min_image(&pos_ref[i], &pos_ref[j]);
                    let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                    if rsq >= self.r_cut * self.r_cut {
                        continue;
                    }
                    let r = rsq.sqrt();
                    let qq = kc * q_ref[i] * q_ref[j];
                    let erfc_ar = erfc(alpha * r);
                    e += 0.5 * qq * erfc_ar / r;
                    let dedr = -qq
                        * (erfc_ar / rsq
                            + two_over_sqrt_pi * alpha * (-alpha * alpha * rsq).exp() / r);
                    // d = x_i − x_j; force on i = −dE/dx_i.
                    for k in 0..3 {
                        f[k] -= dedr * d[k] / r;
                    }
                }
                (e, f)
            })
            .collect();
        let e_real: f64 = real.iter().map(|r| r.0).sum();
        let mut forces: Vec<[f64; 3]> = real.iter().map(|r| r.1).collect();

        // --- Reciprocal space. ---
        let l = domain.lengths();
        let volume = domain.volume();
        let mut e_recip = 0.0;
        let kmax = self.k_max;
        let mut kvecs: Vec<[f64; 3]> = Vec::new();
        for kx in -kmax..=kmax {
            for ky in -kmax..=kmax {
                for kz in -kmax..=kmax {
                    if kx == 0 && ky == 0 && kz == 0 {
                        continue;
                    }
                    kvecs.push([
                        2.0 * std::f64::consts::PI * kx as f64 / l[0],
                        2.0 * std::f64::consts::PI * ky as f64 / l[1],
                        2.0 * std::f64::consts::PI * kz as f64 / l[2],
                    ]);
                }
            }
        }
        // Structure factors per k (parallel over k-vectors — the
        // KSPACE kernels are reductions over atoms per k).
        let sf: Vec<(f64, f64, f64)> = {
            let mut out = Vec::with_capacity(kvecs.len());
            let chunks: Vec<(f64, f64, f64)> = kvecs
                .iter()
                .map(|kv| {
                    let ksq = kv[0] * kv[0] + kv[1] * kv[1] + kv[2] * kv[2];
                    let damp = (-ksq / (4.0 * alpha * alpha)).exp() / ksq;
                    let (mut s_re, mut s_im) = (0.0, 0.0);
                    for (p, &qi) in pos_ref.iter().zip(q_ref) {
                        let phase = kv[0] * p[0] + kv[1] * p[1] + kv[2] * p[2];
                        s_re += qi * phase.cos();
                        s_im += qi * phase.sin();
                    }
                    (damp, s_re, s_im)
                })
                .collect();
            out.extend(chunks);
            out
        };
        let pref = 2.0 * std::f64::consts::PI / volume * kc;
        for ((damp, s_re, s_im), _) in sf.iter().zip(&kvecs) {
            e_recip += pref * damp * (s_re * s_re + s_im * s_im);
        }
        // Reciprocal forces:
        // F_i = (4π/V) q_i Σ_k (k̂ damp) [sin(k·r_i) S_re − cos(k·r_i) S_im].
        space.parallel_for("EwaldRecipForce", n, |_| {});
        let fpref = 4.0 * std::f64::consts::PI / volume * kc;
        for (i, p) in pos_ref.iter().enumerate() {
            let mut f = [0.0f64; 3];
            for ((damp, s_re, s_im), kv) in sf.iter().zip(&kvecs) {
                let phase = kv[0] * p[0] + kv[1] * p[1] + kv[2] * p[2];
                let coeff = damp * (phase.sin() * s_re - phase.cos() * s_im);
                for k in 0..3 {
                    f[k] += fpref * q_ref[i] * coeff * kv[k];
                }
            }
            for k in 0..3 {
                forces[i][k] += f[k];
            }
        }

        // --- Self energy. ---
        let e_self: f64 =
            -kc * alpha / std::f64::consts::PI.sqrt() * q.iter().map(|&qi| qi * qi).sum::<f64>();

        (e_real + e_recip + e_self, forces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_matches_known_values() {
        // erfc(0) = 1, erfc(∞) → 0, erfc(1) ≈ 0.15729921.
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(6.0) < 1e-15);
        assert!((erfc(1.0) - 0.157_299_21).abs() < 2e-7);
        assert!((erfc(-1.0) - (2.0 - 0.157_299_21)).abs() < 2e-7);
        assert!((erfc(0.5) - 0.479_500_12).abs() < 2e-7);
    }

    /// Rock-salt NaCl: the energy per ion pair must reproduce the
    /// Madelung constant, E = −M·k·q²/r₀ with M = 1.747 564 6.
    #[test]
    fn nacl_madelung_constant() {
        let cells = 2usize; // 2×2×2 conventional cells = 64 ions
        let a = 2.0; // nearest-neighbor distance r0 = 1.0
        let mut positions = Vec::new();
        let mut charges = Vec::new();
        for ix in 0..(2 * cells) {
            for iy in 0..(2 * cells) {
                for iz in 0..(2 * cells) {
                    positions.push([
                        ix as f64 * a / 2.0,
                        iy as f64 * a / 2.0,
                        iz as f64 * a / 2.0,
                    ]);
                    charges.push(if (ix + iy + iz) % 2 == 0 { 1.0 } else { -1.0 });
                }
            }
        }
        let domain = Domain::cubic(a * cells as f64);
        let mut atoms = AtomData::from_positions(&positions);
        {
            let qh = atoms.q.h_view_mut();
            for (i, &qv) in charges.iter().enumerate() {
                qh.set([i], qv);
            }
        }
        let ewald = Ewald::for_box(&domain, 1.9, 1.0);
        let (e, forces) = ewald.compute(&atoms, &domain, &Space::Serial);
        let n_pairs = positions.len() as f64 / 2.0;
        let madelung = -e / n_pairs; // r0 = q = k = 1
        assert!(
            (madelung - 1.747_564_6).abs() < 2e-4,
            "Madelung constant = {madelung}"
        );
        // Perfect lattice: zero force on every ion.
        for f in &forces {
            for k in 0..3 {
                assert!(f[k].abs() < 1e-6, "residual force {}", f[k]);
            }
        }
    }

    /// The total is invariant under the α splitting parameter — the
    /// defining self-consistency of Ewald summation.
    #[test]
    fn energy_is_independent_of_alpha() {
        let positions = vec![
            [1.0, 1.2, 0.9],
            [3.1, 1.0, 1.1],
            [1.1, 3.0, 3.2],
            [2.9, 3.1, 0.8],
        ];
        let charges = [1.0, -1.0, -1.0, 1.0];
        let domain = Domain::cubic(4.0);
        let mut atoms = AtomData::from_positions(&positions);
        for (i, &qv) in charges.iter().enumerate() {
            atoms.q.h_view_mut().set([i], qv);
        }
        let mut energies = Vec::new();
        for &rc in &[1.6f64, 1.9] {
            let ewald = Ewald::for_box(&domain, rc, 1.0);
            energies.push(ewald.compute(&atoms, &domain, &Space::Serial).0);
        }
        assert!(
            (energies[0] - energies[1]).abs() < 5e-4 * energies[0].abs(),
            "{energies:?}"
        );
    }

    #[test]
    fn forces_match_finite_difference() {
        let positions = vec![
            [1.0, 1.2, 0.9],
            [3.1, 1.0, 1.1],
            [1.1, 3.0, 3.2],
            [2.9, 3.1, 0.8],
        ];
        let charges = [1.0, -1.0, -1.0, 1.0];
        let domain = Domain::cubic(4.0);
        let build = |pos: &[[f64; 3]]| -> AtomData {
            let mut atoms = AtomData::from_positions(pos);
            for (i, &qv) in charges.iter().enumerate() {
                atoms.q.h_view_mut().set([i], qv);
            }
            atoms
        };
        let ewald = Ewald::for_box(&domain, 1.9, 1.0);
        let atoms = build(&positions);
        let (_, forces) = ewald.compute(&atoms, &domain, &Space::Serial);
        let h = 1e-5;
        for a in 0..positions.len() {
            for k in 0..3 {
                let mut pp = positions.clone();
                let mut pm = positions.clone();
                pp[a][k] += h;
                pm[a][k] -= h;
                let ep = ewald.compute(&build(&pp), &domain, &Space::Serial).0;
                let em = ewald.compute(&build(&pm), &domain, &Space::Serial).0;
                let fd = -(ep - em) / (2.0 * h);
                assert!(
                    (forces[a][k] - fd).abs() < 1e-4 * fd.abs().max(1.0),
                    "atom {a} dir {k}: {} vs {fd}",
                    forces[a][k]
                );
            }
        }
    }

    #[test]
    fn charged_system_is_rejected() {
        let mut atoms = AtomData::from_positions(&[[1.0; 3], [2.0; 3]]);
        atoms.q.h_view_mut().set([0], 1.0); // net charge
        let domain = Domain::cubic(4.0);
        let ewald = Ewald::for_box(&domain, 1.5, 1.0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ewald.compute(&atoms, &domain, &Space::Serial)
        }));
        assert!(r.is_err());
    }
}
