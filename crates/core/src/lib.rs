//! `lkk-core`: a LAMMPS-like molecular dynamics engine.
//!
//! This crate rebuilds the parts of LAMMPS that the paper's §2-§3
//! describe, on top of the `lkk-kokkos` portability layer:
//!
//! * [`atom`] — struct-of-arrays atom storage held in `DualView`s with
//!   per-field modify/sync masks (§3.2's datamask flags).
//! * [`domain`] — orthogonal periodic simulation boxes.
//! * [`lattice`] — fcc/bcc/sc structure generation and Maxwell-Boltzmann
//!   velocity initialization.
//! * [`neighbor`] — binned half/full neighbor lists stored in 2-D views
//!   whose layout adapts to the execution space (§4.1).
//! * [`comm`] — ghost-atom construction, forward (position) and reverse
//!   (force) communication for periodic boundaries.
//! * [`decomp`] — the simulated-MPI brick domain decomposition: ranks
//!   run as threads and exchange halo data through channels.
//! * [`pair`] — the `PairStyle` trait and the generic `PairKokkos`
//!   two-body driver (§4.1), with the Lennard-Jones, Morse and Yukawa
//!   potentials as instances.
//! * [`fix`] / [`compute`] — time-integration and diagnostic styles
//!   (`nve`, `langevin`, temperature, kinetic/potential energy).
//! * [`style`] — the command-name → factory registry with `/kk`,
//!   `/kk/host`, `/kk/device` suffix resolution (§3.1).
//! * [`input`] — the input-script command parser (§2.1).
//! * [`sim`] — the time-stepping driver and thermo output.

pub mod atom;
pub mod comm;
pub mod compute;
pub mod data_io;
pub mod decomp;
pub mod domain;
pub mod dump;
pub mod fix;
pub mod input;
pub mod kspace;
pub mod lattice;
pub mod minimize;
pub mod molecule;
pub mod neighbor;
pub mod pair;
pub mod sim;
pub mod style;
pub mod switch;
pub mod units;

pub use atom::{AtomData, Mask};
pub use domain::Domain;
pub use neighbor::{NeighborList, NeighborSettings};
pub use pair::{PairResults, PairStyle};
pub use sim::{Simulation, SimulationBuilder, System};
pub use style::StyleRegistry;

/// The stable public surface in one import: everything an example or
/// integration test needs to stand up and run a simulation, without
/// reaching into deep module paths.
pub mod prelude {
    pub use crate::atom::{AtomData, AtomRecord, Mask};
    pub use crate::comm::brick::{BrickComm, CommFailure, MultiRankRun, RankAtomState, RunSpec};
    pub use crate::comm::{
        BalancePolicy, BalanceWeight, Comm, CommError, CommSpec, CommStats, FaultConfig, FaultPlan,
        FaultStats, GhostMap, RetryPolicy, SingleRankComm,
    };
    pub use crate::compute;
    pub use crate::decomp::BrickDecomp;
    pub use crate::domain::Domain;
    pub use crate::fix::{Fix, FixLangevin, FixNve};
    pub use crate::lattice::{create_velocities, Lattice, LatticeKind};
    pub use crate::neighbor::{NeighborList, NeighborSettings};
    pub use crate::pair::eam::{EamParams, PairEam};
    pub use crate::pair::lj::LjCut;
    pub use crate::pair::{PairKokkos, PairKokkosOptions, PairResults, PairStyle, TwoBody};
    pub use crate::sim::{Simulation, SimulationBuilder, System, ThermoRow, Timings};
    pub use crate::units::Units;
    pub use lkk_kokkos::Space;
}
