//! Trajectory output (`dump` command): extended-XYZ snapshots.
//!
//! The extended-XYZ format carries the periodic cell in the comment
//! line (`Lattice="..."`), so snapshots round-trip into OVITO/ASE.

use crate::atom::AtomData;
use crate::domain::Domain;
use std::io::Write;

/// Write one extended-XYZ frame of the owned atoms.
pub fn write_xyz_frame<W: Write>(
    out: &mut W,
    atoms: &AtomData,
    domain: &Domain,
    element_names: &[&str],
    step: u64,
) -> std::io::Result<()> {
    let n = atoms.nlocal;
    let l = domain.lengths();
    writeln!(out, "{n}")?;
    writeln!(
        out,
        "Lattice=\"{} 0 0 0 {} 0 0 0 {}\" Properties=species:S:1:pos:R:3 Time={step}",
        l[0], l[1], l[2]
    )?;
    let typ = atoms.typ.h_view();
    for i in 0..n {
        let t = typ.at([i]) as usize;
        let name = element_names.get(t).copied().unwrap_or("X");
        let p = atoms.pos(i);
        writeln!(out, "{name} {:.8} {:.8} {:.8}", p[0], p[1], p[2])?;
    }
    Ok(())
}

/// A dump "fix": writes a frame every `every` steps to a growing buffer
/// (or file, via any `Write`).
pub struct XyzDump<W: Write + Send> {
    pub every: u64,
    pub element_names: Vec<String>,
    writer: W,
    pub frames_written: u64,
}

impl<W: Write + Send> XyzDump<W> {
    pub fn new(writer: W, every: u64, element_names: &[&str]) -> Self {
        XyzDump {
            every: every.max(1),
            element_names: element_names.iter().map(|s| s.to_string()).collect(),
            writer,
            frames_written: 0,
        }
    }

    pub fn into_writer(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> crate::fix::Fix for XyzDump<W> {
    fn name(&self) -> &str {
        "dump/xyz"
    }

    fn post_force(&mut self, system: &mut crate::sim::System, _dt: f64, step: u64) {
        if !step.is_multiple_of(self.every) {
            return;
        }
        system
            .atoms
            .sync(&lkk_kokkos::Space::Serial, crate::atom::Mask::X);
        let names: Vec<&str> = self.element_names.iter().map(|s| s.as_str()).collect();
        write_xyz_frame(
            &mut self.writer,
            &system.atoms,
            &system.domain,
            &names,
            step,
        )
        .expect("dump write failed");
        self.frames_written += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_format_is_extended_xyz() {
        let atoms = AtomData::from_positions(&[[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]);
        let domain = Domain::cubic(10.0);
        let mut buf = Vec::new();
        write_xyz_frame(&mut buf, &atoms, &domain, &["Ar"], 7).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "2");
        assert!(lines[1].contains("Lattice=\"10 0 0 0 10 0 0 0 10\""));
        assert!(lines[1].contains("Time=7"));
        assert!(lines[2].starts_with("Ar 1.0"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn dump_fix_writes_at_interval() {
        use crate::fix::Fix;
        use crate::sim::System;
        use lkk_kokkos::Space;
        let atoms = AtomData::from_positions(&[[1.0; 3]]);
        let mut system = System::new(atoms, Domain::cubic(5.0), Space::Serial);
        let mut dump = XyzDump::new(Vec::new(), 10, &["Cu"]);
        for step in 1..=30 {
            dump.post_force(&mut system, 0.005, step);
        }
        assert_eq!(dump.frames_written, 3);
        let text = String::from_utf8(dump.into_writer()).unwrap();
        assert_eq!(text.matches("Time=").count(), 3);
    }
}
